#!/usr/bin/env python
"""Quickstart: build a fabric, send RDMA messages, inspect what Themis did.

Builds a 4-rack leaf-spine with commodity (NIC-SR) RNICs, runs the same
cross-rack traffic twice — once with plain random packet spraying, once
with Themis — and prints the difference the middleware makes.

Run:  python examples/quickstart.py
"""

from repro import Network, NetworkConfig, TopologySpec


def run(scheme: str) -> dict:
    config = NetworkConfig(
        topology=TopologySpec(kind="leaf_spine", num_tors=4, num_spines=2,
                              nics_per_tor=2, link_bandwidth_bps=100e9),
        scheme=scheme,           # "ecmp" | "rps" | "ar" | "themis"
        transport="nic_sr",      # commodity RNIC reliable transport
        seed=42)
    net = Network(config)

    # Two rings of cross-rack flows (the paper's Fig. 1 traffic).
    for src, dst in ((0, 2), (2, 4), (4, 6), (6, 0),
                     (1, 3), (3, 5), (5, 7), (7, 1)):
        net.post_message(src, dst, nbytes=1_000_000)

    net.run()                    # run the event loop to quiescence
    summary = net.metrics.summary()
    summary["completion_us"] = max(
        f.receiver_done_ns for f in net.metrics.flows.values()) / 1000
    return summary


def main() -> None:
    for scheme in ("rps", "themis"):
        s = run(scheme)
        print(f"--- scheme = {scheme}")
        print(f"  completion time     : {s['completion_us']:.0f} us")
        print(f"  data packets sent   : {s['data_packets_sent']}")
        print(f"  spurious retx ratio : {s['spurious_ratio']:.1%}")
        print(f"  NACKs blocked       : {s['themis_blocked']}")
        print(f"  NACKs forwarded     : {s['themis_forwarded']}")
        print(f"  mean goodput        : {s['mean_goodput_gbps']:.1f} Gbps")
        print()


if __name__ == "__main__":
    main()
