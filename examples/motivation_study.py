#!/usr/bin/env python
"""Reproduce the paper's Figure 1 motivation study (§2.2).

Eight nodes in two interleaved ring groups stream large messages over a
1:1 leaf-spine fabric with random packet spraying.  The commodity NIC-SR
transport misreads multi-path skew as loss; this script prints the three
measurement panels and then shows the same workload under Themis.

Run:  python examples/motivation_study.py [flow_bytes]
"""

import sys

from repro import motivation_config, run_motivation
from repro.harness.report import format_series, percent, sparkline


def panel(result) -> None:
    print(f"\n##### {result.scheme} / {result.transport} "
          f"(completed={result.completed}, "
          f"{result.duration_ns / 1000:.0f} us)")

    print("\n[Fig 1b] retransmission ratio over time "
          f"(watched flow {result.watched_flow}):")
    print(format_series(result.retx_ratio_series, max_rows=12))
    print(f"  average spurious retx ratio: "
          f"{percent(result.avg_retx_ratio)}")

    print("\n[Fig 1c] sending rate (Gbps):")
    print("  " + sparkline([v for _, v in result.rate_series_gbps]))
    print(f"  average rate: {result.avg_rate_gbps:.1f} / "
          f"{result.line_rate_gbps:.0f} Gbps "
          f"({percent(result.avg_rate_fraction)})")

    print(f"\n[Fig 1d] mean per-flow goodput: "
          f"{result.mean_goodput_gbps:.2f} Gbps")
    print(f"  NACKs: {result.nacks}   drops: {result.drops}   "
          f"blocked by Themis: {result.summary['themis_blocked']}")


def main() -> None:
    flow_bytes = int(sys.argv[1]) if len(sys.argv) > 1 else 4_000_000

    print("Figure 1 reproduction: random spraying + commodity NIC-SR")
    nic_sr = run_motivation(motivation_config(), flow_bytes=flow_bytes)
    panel(nic_sr)

    print("\nThe Ideal transport (oracle, Fig. 1d comparator):")
    ideal = run_motivation(motivation_config(transport="ideal"),
                           flow_bytes=flow_bytes)
    panel(ideal)

    print("\nAnd the fix — same workload, Themis on the ToRs:")
    themis = run_motivation(motivation_config(scheme="themis"),
                            flow_bytes=flow_bytes)
    panel(themis)

    ratio = nic_sr.mean_goodput_gbps / ideal.mean_goodput_gbps
    print("\n==== Headline (paper: NIC-SR at 71% of Ideal; ~16% retx) ====")
    print(f"  NIC-SR/Ideal throughput ratio : {percent(ratio)}")
    print(f"  NIC-SR spurious retx          : "
          f"{percent(nic_sr.avg_retx_ratio)}")
    print(f"  Themis spurious retx          : "
          f"{percent(themis.avg_retx_ratio)}")


if __name__ == "__main__":
    main()
