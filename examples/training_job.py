#!/usr/bin/env python
"""Simulate an AI training job's communication phases (§2.1).

Training traffic is bursty and synchronized: all workers idle the fabric
while computing, then enter a collective simultaneously.  This script
iterates that loop and reports per-iteration communication time for each
load-balancing scheme — the end-to-end quantity a training job feels.

Run:  python examples/training_job.py [iterations] [mbytes]
"""

import sys

from repro import NetworkConfig, TopologySpec
from repro.collectives import TrainingJob, RingAllreduce, \
    cross_rack_groups
from repro.harness.network import Network
from repro.harness.report import format_table
from repro.sim.engine import US

SCHEMES = ("ecmp", "rps", "ar", "themis")


def run(scheme: str, iterations: int, nbytes: int) -> TrainingJob:
    topo = TopologySpec(kind="leaf_spine", num_tors=4, num_spines=4,
                        nics_per_tor=4, link_bandwidth_bps=25e9)
    net = Network(NetworkConfig(topology=topo, scheme=scheme, seed=11))
    job = TrainingJob(
        net, cross_rack_groups(4, 4), collective_cls=RingAllreduce,
        bytes_per_iteration=nbytes, iterations=iterations,
        compute_time_ns=200 * US)
    job.start()
    net.run(until_ns=300_000_000_000)
    if not job.done:
        raise RuntimeError(f"{scheme}: job did not finish in time")
    return job


def main() -> None:
    iterations = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    mbytes = float(sys.argv[2]) if len(sys.argv) > 2 else 1.0
    nbytes = int(mbytes * 1_000_000)

    print(f"Training job: {iterations} iterations x {mbytes:.1f} MB "
          f"ring-allreduce in 4 groups, 200 us compute phases\n")
    rows = []
    baseline = None
    for scheme in SCHEMES:
        job = run(scheme, iterations, nbytes)
        mean_us = job.mean_iteration_ns / 1000
        if scheme == "ecmp":
            baseline = mean_us
        rows.append([scheme, f"{mean_us:.0f}",
                     f"{job.max_iteration_ns / 1000:.0f}",
                     f"{baseline / mean_us:.2f}x" if baseline else "-"])
    print(format_table(
        ["scheme", "mean comm us/iter", "worst iter us", "speedup vs ecmp"],
        rows))


if __name__ == "__main__":
    main()
