#!/usr/bin/env python
"""Fault injection: NACK compensation doing real work (§3.4, §6).

The paper's evaluation is loss-free; here we inject random drops on the
core links so some NACKs are *valid* (real loss) and some invalid (skew).
Themis must block the invalid ones while still recovering real losses
quickly — via forwarded valid NACKs and compensated NACKs for blocked
ePSNs that later prove lost — instead of waiting out retransmission
timeouts.

Run:  python examples/failure_injection.py [loss_rate]
"""

import sys

from repro import motivation_config
from repro.harness.network import Network
from repro.harness.report import format_table


def run(scheme: str, loss_rate: float) -> dict:
    net = Network(motivation_config(scheme=scheme, seed=7))
    for switch in net.topology.switches:
        if switch.name.startswith("spine"):
            for port in switch.ports:
                port.set_loss(loss_rate,
                              net.rng.fork(f"loss-{port.name}"))
    for src, dst in ((0, 2), (2, 4), (4, 6), (6, 0),
                     (1, 3), (3, 5), (5, 7), (7, 1)):
        net.post_message(src, dst, 1_000_000)
    net.run(until_ns=60_000_000_000)

    metrics = net.metrics
    done = [f.receiver_done_ns for f in metrics.flows.values()
            if f.receiver_done_ns is not None]
    return {
        "scheme": scheme,
        "completed": metrics.all_flows_done(),
        "tail_us": max(done) / 1000 if done else float("nan"),
        "drops": metrics.drops,
        "timeouts": sum(f.timeouts for f in metrics.flows.values()),
        "nacks": metrics.nacks_generated,
        "blocked": metrics.themis.nacks_blocked,
        "forwarded": metrics.themis.nacks_forwarded,
        "compensated": metrics.themis.nacks_compensated,
    }


def main() -> None:
    loss_rate = float(sys.argv[1]) if len(sys.argv) > 1 else 0.005
    print(f"Injecting {loss_rate:.1%} data-packet loss on all core links\n")

    rows = []
    for scheme in ("rps", "themis_nocomp", "themis"):
        r = run(scheme, loss_rate)
        rows.append([r["scheme"], r["completed"], f"{r['tail_us']:.0f}",
                     r["drops"], r["timeouts"], r["nacks"], r["blocked"],
                     r["forwarded"], r["compensated"]])
    print(format_table(
        ["scheme", "done", "tail us", "drops", "RTOs", "NACKs",
         "blocked", "forwarded", "compensated"], rows))

    print(
        "\nReading guide:\n"
        "  * rps           — every NACK reaches the sender: loss recovery\n"
        "    is instant but spurious retransmissions/slow-starts abound.\n"
        "  * themis_nocomp — invalid NACKs blocked; a blocked-but-lost\n"
        "    packet must wait for an RTO (more timeouts, longer tail).\n"
        "  * themis        — compensated NACKs stand in for the blocked\n"
        "    ones, keeping recovery NACK-driven.")


if __name__ == "__main__":
    main()
