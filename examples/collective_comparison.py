#!/usr/bin/env python
"""Compare load-balancing schemes on AI collective workloads (§5).

Runs ring-Allreduce and Alltoall in every cross-rack communication group
simultaneously and reports the slowest group's completion time — the
paper's bottleneck metric — for ECMP, adaptive routing, random spraying,
and Themis, at one chosen DCQCN configuration.

Run:  python examples/collective_comparison.py [ti_us] [td_us]
"""

import sys

from repro import EvalScale, fig5_config, run_collective
from repro.harness.report import format_table, percent

SCHEMES = ("ecmp", "rps", "ar", "themis")


def main() -> None:
    ti_us = float(sys.argv[1]) if len(sys.argv) > 1 else 900.0
    td_us = float(sys.argv[2]) if len(sys.argv) > 2 else 4.0
    scale = EvalScale.from_env()

    print(f"Fabric: {scale.num_tors}x{scale.num_spines} leaf-spine, "
          f"{scale.nics_per_tor} NICs/rack, "
          f"{scale.link_bandwidth_bps / 1e9:.0f} Gbps links")
    print(f"Workload: {scale.nics_per_tor} groups x "
          f"{scale.collective_bytes / 1e6:.1f} MB, "
          f"DCQCN (TI={ti_us:.0f} us, TD={td_us:.0f} us)\n")

    for collective in ("allreduce", "alltoall"):
        rows = []
        tails = {}
        for scheme in SCHEMES:
            config = fig5_config(scheme, ti_us, td_us, scale=scale)
            result = run_collective(config, collective, scale=scale)
            tails[scheme] = result.tail_completion_ms
            s = result.summary
            rows.append([scheme,
                         f"{result.tail_completion_ms:.3f}",
                         s["nacks_generated"],
                         f"{s['spurious_ratio']:.1%}",
                         s["themis_blocked"]])
        print(f"=== {collective} — tail completion time ===")
        print(format_table(
            ["scheme", "tail ms", "NACKs", "retx", "blocked"], rows))
        gain = 1 - tails["themis"] / tails["ar"]
        print(f"Themis vs AR: {percent(gain)} lower completion time\n")


if __name__ == "__main__":
    main()
