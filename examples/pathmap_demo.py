#!/usr/bin/env python
"""PathMap construction on a 3-tier fat-tree (§3.2, Fig. 3).

In multi-tier fabrics the source ToR cannot pick the whole path directly;
Themis-S instead rewrites the UDP source port through a precomputed
PathMap, exploiting ECMP hash linearity so that every downstream hop's
hashed choice becomes a deterministic function of ``PSN mod N``.

This script builds a k=4 fat-tree, constructs the PathMap for one
cross-pod flow, prints the delta table, and verifies the property Themis-D
depends on: equal residue => identical fabric path.

Run:  python examples/pathmap_demo.py
"""

from repro.harness.network import Network, NetworkConfig, TopologySpec
from repro.harness.report import format_table
from repro.net.packet import FlowKey
from repro.themis.pathmap import apply_pathmap, build_pathmap, trace_path


def main() -> None:
    net = Network(NetworkConfig(
        topology=TopologySpec(kind="fat_tree", fat_tree_k=4,
                              link_bandwidth_bps=25e9),
        scheme="ecmp"))
    topo = net.topology

    flow = FlowKey(0, 15)           # pod 0 -> pod 3 (cross-pod)
    base_sport = 4242
    n_paths = topo.path_count(*
                              (flow.src, flow.dst))
    print(f"Flow {flow}: {n_paths} equal-cost paths "
          f"(k=4 fat-tree, cross-pod => (k/2)^2)")

    deltas = build_pathmap(topo, flow, base_sport, n_paths)
    print("\nPathMap (Fig. 3): residue r -> sport delta")
    rows = []
    for r, delta in enumerate(deltas):
        sport = base_sport ^ delta
        path = " -> ".join(trace_path(topo, flow, sport))
        rows.append([r, f"0x{delta:04x}", sport, path])
    print(format_table(["PSN mod N", "delta", "sport'", "fabric path"],
                       rows))

    print("\nVerification over PSNs 0..19 (same residue => same path):")
    seen = {}
    for psn in range(20):
        sport = apply_pathmap(deltas, base_sport, psn)
        path = trace_path(topo, flow, sport)
        residue = psn % n_paths
        if residue in seen:
            assert seen[residue] == path, "determinism violated!"
        seen[residue] = path
        print(f"  PSN {psn:2d} (mod {n_paths} = {residue}) -> "
              f"{path[2]}")   # the core switch identifies the path
    print("\nOK: every residue class pinned to one core switch; "
          f"{len(set(map(tuple, seen.values())))} distinct paths used.")

    # Memory cost of this PathMap (§4):
    print(f"\nPathMap memory: {n_paths} entries x 2 B = {n_paths * 2} B")


if __name__ == "__main__":
    main()
