#!/usr/bin/env python
"""Fabric observability tour: tracing, utilization, fairness, export.

Runs the same cross-rack workload under ECMP and Themis and uses the
analysis toolkit to show *why* spraying wins: per-uplink byte counts
(ECMP collisions visible as imbalance), Jain fairness over flow
goodputs, and a per-hop packet trace proving Eq. 1 on the wire.
Results are exported to CSV/JSON next to this script.

Run:  python examples/fabric_analysis.py
"""

from pathlib import Path

from repro import Network, NetworkConfig, TopologySpec
from repro.harness.analysis import (flow_fairness, link_utilization,
                                    uplink_imbalance)
from repro.harness.export import flows_to_csv, run_to_json
from repro.harness.report import format_table
from repro.obs import attach_tracer

TOPO = TopologySpec(kind="leaf_spine", num_tors=2, num_spines=8,
                    nics_per_tor=8, link_bandwidth_bps=25e9)
OUT_DIR = Path(__file__).parent / "output"


def run(scheme: str):
    net = Network(NetworkConfig(topology=TOPO, scheme=scheme, seed=7))
    tracer = attach_tracer(net)
    for i in range(8):                     # rack 0 -> rack 1, 8 flows
        net.post_message(i, 8 + i, 1_000_000)
    net.run(until_ns=60_000_000_000)
    assert net.metrics.all_flows_done()
    return net, tracer


def main() -> None:
    rows = []
    for scheme in ("ecmp", "themis"):
        net, tracer = run(scheme)

        print(f"\n##### scheme = {scheme}")
        uplinks = [u for u in link_utilization(net) if u.src == "tor0"]
        print(format_table(
            ["uplink", "bytes", "busy"],
            [[f"{u.src}->{u.dst}", u.bytes_sent,
              f"{u.busy_fraction:.1%}"] for u in uplinks]))
        imbalance = uplink_imbalance(net, "tor0")
        fairness = flow_fairness(net)
        print(f"uplink imbalance (max/mean): {imbalance:.2f}   "
              f"flow fairness (Jain): {fairness:.3f}")
        rows.append([scheme, f"{imbalance:.2f}", f"{fairness:.3f}",
                     f"{net.metrics.mean_goodput_gbps():.1f}"])

        # Which spine did each of flow 0's first packets take?
        data_events = [e for e in tracer.events
                       if e.ptype == "data" and e.src == 0
                       and e.location == "tor0"][:8]
        picks = [(e.psn, tracer.spine_of(e.pkt_id)) for e in data_events]
        print("flow 0->8 PSN->spine: "
              + "  ".join(f"{psn}:{spine}" for psn, spine in picks))

        flows_to_csv(net.metrics, OUT_DIR / f"{scheme}_flows.csv")
        run_to_json(net.metrics, OUT_DIR / f"{scheme}_run.json",
                    extra={"scheme": scheme})

    print("\n==== Summary ====")
    print(format_table(
        ["scheme", "uplink imbalance", "Jain fairness", "goodput Gbps"],
        rows))
    print(f"\nCSV/JSON exports in {OUT_DIR}/")


if __name__ == "__main__":
    main()
