"""Discrete-event simulation core (engine, events, RNG, traces)."""

from repro.sim.engine import (MS, NS, SEC, US, HeapSimulator,
                              SimulationError, Simulator)
from repro.sim.events import Event
from repro.sim.rng import SimRng
# Time-series types live in the observability layer now; re-exported here
# because rate/series helpers are part of the sim package's public API.
from repro.obs.timeseries import (RateMeter, TimeSeries, WindowedCounter,
                                  summarize)

__all__ = [
    "Simulator", "HeapSimulator", "SimulationError", "Event", "SimRng",
    "TimeSeries", "WindowedCounter", "RateMeter", "summarize",
    "NS", "US", "MS", "SEC",
]
