"""Discrete-event simulation core (engine, events, RNG, traces)."""

from repro.sim.engine import (MS, NS, SEC, US, HeapSimulator,
                              SimulationError, Simulator)
from repro.sim.events import Event
from repro.sim.rng import SimRng
# Time-series types live in the observability layer now; re-exported here
# for compatibility (repro.sim.trace itself is deprecated).
from repro.obs.timeseries import (RateMeter, TimeSeries, WindowedCounter,
                                  summarize)

__all__ = [
    "Simulator", "HeapSimulator", "SimulationError", "Event", "SimRng",
    "TimeSeries", "WindowedCounter", "RateMeter", "summarize",
    "NS", "US", "MS", "SEC",
]
