"""Seeded randomness for deterministic simulations.

Every source of randomness in the simulator (random packet spraying, ECMP
hash salts, fault injection, jitter) draws from a :class:`SimRng`, which
wraps the stdlib :class:`random.Random` (Mersenne Twister).  Components
that need independent streams call :meth:`SimRng.fork` with a stable label
so adding a new consumer never perturbs existing streams.

The stdlib generator is used instead of ``numpy.random.Generator`` on
purpose: the simulator draws *scalars* on the per-packet hot path (path
picks under random spraying, ECN coin flips, loss draws), and a scalar
``Generator.integers`` call costs microseconds while ``random.Random``
stays in the ~100 ns range.  Streams are still fully reproducible from the
seed; they are simply different streams than a numpy-backed build drew.
"""

from __future__ import annotations

import random
import zlib


class SimRng:
    """Deterministic random source with labelled sub-streams."""

    __slots__ = ("seed", "_gen", "_random", "u01")

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._gen = random.Random(self.seed)
        # Bound method cached for the per-packet draws.  ``u01`` is the
        # public alias: hot-path consumers (random spraying) grab it once
        # and call straight into the C generator per draw.
        self._random = self._gen.random
        self.u01 = self._random

    def fork(self, label: str) -> "SimRng":
        """Derive an independent stream keyed by ``label``.

        The child seed mixes the parent seed with a CRC of the label, so
        ``fork("portA")`` yields the same stream across runs regardless of
        fork order.
        """
        mixed = (self.seed * 0x9E3779B1 + zlib.crc32(label.encode())) % (2**63)
        return SimRng(mixed)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in ``[low, high)``."""
        return self._gen.randrange(low, high)

    def choice(self, n: int) -> int:
        """Uniform integer in ``[0, n)`` — convenience for path picks.

        Computed as ``floor(random() * n)``: for the small ``n`` used in
        path selection the floor bias is ~2**-53 and the draw stays on the
        C fast path.
        """
        return int(self._random() * n)

    def random(self) -> float:
        """Uniform float in ``[0, 1)``."""
        return self._random()

    def exponential(self, mean: float) -> float:
        """Exponentially distributed sample with the given mean."""
        return self._gen.expovariate(1.0 / mean)

    def shuffled(self, items: list) -> list:
        """Return a new list with the items in random order."""
        out = list(items)
        self._gen.shuffle(out)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimRng(seed={self.seed})"
