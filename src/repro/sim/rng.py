"""Seeded randomness for deterministic simulations.

Every source of randomness in the simulator (random packet spraying, ECMP
hash salts, fault injection, jitter) draws from a :class:`SimRng`, which is
a thin wrapper over :class:`numpy.random.Generator`.  Components that need
independent streams call :meth:`SimRng.fork` with a stable label so adding
a new consumer never perturbs existing streams.
"""

from __future__ import annotations

import zlib

import numpy as np


class SimRng:
    """Deterministic random source with labelled sub-streams."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._gen = np.random.default_rng(self.seed)

    def fork(self, label: str) -> "SimRng":
        """Derive an independent stream keyed by ``label``.

        The child seed mixes the parent seed with a CRC of the label, so
        ``fork("portA")`` yields the same stream across runs regardless of
        fork order.
        """
        mixed = (self.seed * 0x9E3779B1 + zlib.crc32(label.encode())) % (2**63)
        return SimRng(mixed)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in ``[low, high)``."""
        return int(self._gen.integers(low, high))

    def choice(self, n: int) -> int:
        """Uniform integer in ``[0, n)`` — convenience for path picks."""
        return int(self._gen.integers(0, n))

    def random(self) -> float:
        """Uniform float in ``[0, 1)``."""
        return float(self._gen.random())

    def exponential(self, mean: float) -> float:
        """Exponentially distributed sample with the given mean."""
        return float(self._gen.exponential(mean))

    def shuffled(self, items: list) -> list:
        """Return a new list with the items in random order."""
        order = self._gen.permutation(len(items))
        return [items[i] for i in order]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimRng(seed={self.seed})"
