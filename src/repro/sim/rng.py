"""Seeded randomness for deterministic simulations.

Every source of randomness in the simulator (random packet spraying, ECMP
hash salts, fault injection, jitter) draws from a :class:`SimRng`, which
wraps the stdlib :class:`random.Random` (Mersenne Twister).  Components
that need independent streams call :meth:`SimRng.fork` with a stable label
so adding a new consumer never perturbs existing streams.

The stdlib generator is used instead of ``numpy.random.Generator`` on
purpose: the simulator draws *scalars* on the per-packet hot path (path
picks under random spraying, ECN coin flips, loss draws), and a scalar
``Generator.integers`` call costs microseconds while ``random.Random``
stays in the ~100 ns range.  Streams are still fully reproducible from the
seed; they are simply different streams than a numpy-backed build drew.
"""

from __future__ import annotations

import random
import zlib

#: Reserved substream label for the fault-injection subsystem
#: (:mod:`repro.faults`).  All fault randomness hangs off this one named
#: substream so that *enabling a fault schedule can never perturb* the
#: packet-level streams: :meth:`SimRng.fork` and :meth:`SimRng.substream`
#: derive the child seed arithmetically without drawing from the parent,
#: and no baseline component ever forks this label.
FAULT_STREAM = "faults"


class SimRng:
    """Deterministic random source with labelled sub-streams."""

    __slots__ = ("seed", "_gen", "_random", "u01", "_substreams")

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._gen = random.Random(self.seed)
        # Bound method cached for the per-packet draws.  ``u01`` is the
        # public alias: hot-path consumers (random spraying) grab it once
        # and call straight into the C generator per draw.
        self._random = self._gen.random
        self.u01 = self._random
        self._substreams: dict[str, "SimRng"] = {}

    def fork(self, label: str) -> "SimRng":
        """Derive an independent stream keyed by ``label``.

        The child seed mixes the parent seed with a CRC of the label, so
        ``fork("portA")`` yields the same stream across runs regardless of
        fork order.  Each call returns a *fresh* generator; use
        :meth:`substream` when multiple consumers must share one stream.
        """
        mixed = (self.seed * 0x9E3779B1 + zlib.crc32(label.encode())) % (2**63)
        return SimRng(mixed)

    def substream(self, label: str) -> "SimRng":
        """Named, *cached* substream: one shared generator per label.

        Unlike :meth:`fork`, repeated calls with the same label return the
        same :class:`SimRng` instance, so independent consumers (e.g. the
        fault scenario compiler and the injector) advance one common
        stream deterministically.  Derivation never draws from the parent,
        so taking a substream cannot perturb any other stream.
        """
        child = self._substreams.get(label)
        if child is None:
            child = self.fork(label)
            self._substreams[label] = child
        return child

    def fault_stream(self) -> "SimRng":
        """The dedicated fault-injection substream (see :data:`FAULT_STREAM`).

        The contract the determinism golden tests pin down: a run that
        never calls this draws exactly the same packet-level randomness as
        a run that does, because the substream is derived, not drawn.
        """
        return self.substream(FAULT_STREAM)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in ``[low, high)``."""
        return self._gen.randrange(low, high)

    def choice(self, n: int) -> int:
        """Uniform integer in ``[0, n)`` — convenience for path picks.

        Computed as ``floor(random() * n)``: for the small ``n`` used in
        path selection the floor bias is ~2**-53 and the draw stays on the
        C fast path.
        """
        return int(self._random() * n)

    def random(self) -> float:
        """Uniform float in ``[0, 1)``."""
        return self._random()

    def exponential(self, mean: float) -> float:
        """Exponentially distributed sample with the given mean."""
        return self._gen.expovariate(1.0 / mean)

    def shuffled(self, items: list) -> list:
        """Return a new list with the items in random order."""
        out = list(items)
        self._gen.shuffle(out)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimRng(seed={self.seed})"
