"""Event primitives for the discrete-event engine.

An :class:`Event` binds a callback (plus positional arguments) to a firing
time.  Events are ordered by ``(time, seq)`` where ``seq`` is a monotonically
increasing counter assigned by the scheduler, which makes execution order
fully deterministic even when many events share a timestamp.
"""

from __future__ import annotations

from typing import Any, Callable


class Event:
    """A scheduled callback.

    Events are created through :meth:`repro.sim.engine.Simulator.schedule`;
    user code normally only keeps the returned handle around to call
    :meth:`cancel`.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(self, time: int, seq: int,
                 callback: Callable[..., Any], args: tuple) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so the scheduler skips it when popped.

        Cancellation is O(1); the heap entry is lazily discarded.  Cancelling
        an already-executed or already-cancelled event is a no-op.
        """
        self.cancelled = True
        # Drop references early so cancelled events pinned in the heap do
        # not keep packet graphs alive.
        self.callback = _noop
        self.args = ()

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        return f"Event(t={self.time}, seq={self.seq}, {name}, {state})"


def _noop(*_args: Any) -> None:
    """Placeholder callback installed by :meth:`Event.cancel`."""
