"""Deprecated alias of :mod:`repro.obs.timeseries`.

The time-series primitives moved into the observability layer
(``repro.obs``) to resolve the long-standing ``sim/trace.py`` vs
``harness/tracer.py`` naming collision.  This module re-exports the
canonical types and will be removed in a future release.
"""

import warnings

from repro.obs.timeseries import (RateMeter, TimeSeries,  # noqa: F401
                                  WindowedCounter, summarize)

warnings.warn(
    "repro.sim.trace is deprecated; import TimeSeries/WindowedCounter/"
    "RateMeter/summarize from repro.obs (repro.obs.timeseries) instead",
    DeprecationWarning, stacklevel=2)

__all__ = ["TimeSeries", "WindowedCounter", "RateMeter", "summarize"]
