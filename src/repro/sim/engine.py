"""Discrete-event simulation engine.

The engine is a classic calendar-queue simulator: a binary heap of
:class:`~repro.sim.events.Event` objects ordered by ``(time, seq)``.  All
simulation time is expressed in **integer nanoseconds** — the module-level
constants :data:`NS`, :data:`US`, :data:`MS` and :data:`SEC` convert other
units into nanoseconds so call sites read naturally::

    sim.schedule(5 * US, port.dequeue)

Determinism contract
--------------------
Two runs with identical inputs and seeds execute the exact same event
sequence.  This requires (a) the ``seq`` tie-break, and (b) all randomness
flowing through :class:`repro.sim.rng.SimRng`.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from repro.sim.events import Event

#: One nanosecond (the base time unit).
NS = 1
#: Nanoseconds per microsecond.
US = 1_000
#: Nanoseconds per millisecond.
MS = 1_000_000
#: Nanoseconds per second.
SEC = 1_000_000_000


class SimulationError(RuntimeError):
    """Raised on scheduler misuse (e.g. scheduling in the past)."""


class Simulator:
    """Event scheduler and simulation clock.

    Parameters
    ----------
    end_time:
        Optional hard stop; events scheduled past it are still accepted but
        :meth:`run` will not execute them.
    """

    def __init__(self, end_time: Optional[int] = None) -> None:
        self.now: int = 0
        self.end_time = end_time
        self._heap: list[Event] = []
        self._seq = 0
        self._executed = 0
        self._running = False

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: int, callback: Callable[..., Any],
                 *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` ns from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.schedule_at(self.now + int(delay), callback, *args)

    def schedule_at(self, time: int, callback: Callable[..., Any],
                    *args: Any) -> Event:
        """Schedule ``callback(*args)`` at an absolute time."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time} before now={self.now}")
        event = Event(int(time), self._seq, callback, args)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the single next pending event.

        Returns ``True`` if an event ran, ``False`` if the queue is empty
        or the next event lies beyond ``end_time``.
        """
        while self._heap:
            event = self._heap[0]
            if event.cancelled:
                heapq.heappop(self._heap)
                continue
            if self.end_time is not None and event.time > self.end_time:
                return False
            heapq.heappop(self._heap)
            self.now = event.time
            event.callback(*event.args)
            self._executed += 1
            return True
        return False

    def run(self, until: Optional[int] = None) -> int:
        """Run events until the queue drains or ``until`` (absolute ns).

        Returns the number of events executed by this call.
        """
        if self._running:
            raise SimulationError("Simulator.run is not reentrant")
        self._running = True
        executed = 0
        try:
            while self._heap:
                event = self._heap[0]
                if event.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and event.time > until:
                    self.now = until
                    break
                if self.end_time is not None and event.time > self.end_time:
                    break
                heapq.heappop(self._heap)
                self.now = event.time
                event.callback(*event.args)
                executed += 1
        finally:
            self._running = False
        self._executed += executed
        return executed

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of heap entries (including lazily-cancelled ones)."""
        return len(self._heap)

    @property
    def executed(self) -> int:
        """Total events executed since construction."""
        return self._executed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Simulator(now={self.now}ns, pending={self.pending}, "
                f"executed={self.executed})")
