"""Discrete-event simulation engine.

Two engines share one API and one determinism contract:

* :class:`Simulator` — the default **hybrid bucketed calendar queue**.
  Near-future events land in a ring of fixed-width time buckets sized to
  the dominant serialization/propagation deltas; far-future events
  (retransmission timeouts, DCQCN timers, end-of-run guards) overflow into
  a binary heap.  Queue entries are plain ``(time, seq, event)`` tuples so
  every ordering comparison happens in C instead of calling
  ``Event.__lt__``, and executed :class:`~repro.sim.events.Event` objects
  are recycled through a free list.  Cancelled overflow entries are
  compacted away once they outnumber the live ones (lazy-cancel
  compaction), so timer churn cannot grow the heap without bound.
* :class:`HeapSimulator` — the original single binary-heap engine, kept as
  the executable reference implementation.  The golden determinism test
  (``tests/sim/test_engine_determinism.py``) runs full workloads on both
  engines and asserts bit-identical ``(time, seq)`` execution order.

All simulation time is expressed in **integer nanoseconds** — the
module-level constants :data:`NS`, :data:`US`, :data:`MS` and :data:`SEC`
convert other units into nanoseconds so call sites read naturally::

    sim.schedule(5 * US, port.dequeue)

Determinism contract
--------------------
Two runs with identical inputs and seeds execute the exact same event
sequence.  This requires (a) the ``seq`` tie-break, and (b) all randomness
flowing through :class:`repro.sim.rng.SimRng`.  The calendar engine keeps
bucket windows disjoint and orders each bucket by ``(time, seq)``, so its
execution order equals the reference heap's.

Pooling invariant
-----------------
Executed events are returned to a free list and may be reused by a later
``schedule``.  A caller that keeps the returned handle must drop (or null
out) the reference once the callback has fired; calling
:meth:`Event.cancel` on a handle whose event already ran may cancel an
unrelated future event once the object has been recycled.  Every timer in
this codebase follows the pattern of clearing its stored handle in the
callback's first line.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from repro.sim.events import Event

#: One nanosecond (the base time unit).
NS = 1
#: Nanoseconds per microsecond.
US = 1_000
#: Nanoseconds per millisecond.
MS = 1_000_000
#: Nanoseconds per second.
SEC = 1_000_000_000

#: Default calendar-bucket width.  Dominant event deltas are packet
#: serialization times (31 ns for an MTU at 400 Gbps, ~500 ns at 25 Gbps)
#: and the ~1 us link propagation delay, so 64 ns buckets keep same-bucket
#: collisions low at high load without inflating the empty-bucket scan.
DEFAULT_BUCKET_NS = 64
#: Default bucket count; with 64 ns buckets the near-future window covers
#: ~262 us, which holds pacing gaps, delayed ACKs, and DCQCN increase
#: timers.  RTOs (400 us and up) intentionally overflow to the far heap.
DEFAULT_N_BUCKETS = 4096

#: Ceiling on the Event free list (objects, not bytes).
_EVENT_POOL_CAP = 8192
#: Overflow compaction never triggers below this heap size.
_MIN_COMPACT = 512
#: Sentinel "no bound" time, far beyond any simulated horizon (~146 y).
_FAR_FUTURE = 1 << 62

# Module-level aliases: the scheduling entry points run once or twice
# per simulated packet, where ``heapq.heappush`` would cost a global
# plus an attribute load per call.
_heappush = heapq.heappush


class SimulationError(RuntimeError):
    """Raised on scheduler misuse (e.g. scheduling in the past)."""


#: Per-geometry cache of single-bit masks for the occupancy bitmap, so
#: every Simulator instance shares one list of 4096 big ints.
_BIT_MASKS: dict[int, list[int]] = {}


def _bit_masks(n_buckets: int) -> list[int]:
    masks = _BIT_MASKS.get(n_buckets)
    if masks is None:
        masks = [1 << i for i in range(n_buckets)]
        _BIT_MASKS[n_buckets] = masks
    return masks


class Simulator:
    """Event scheduler and simulation clock (bucketed calendar queue).

    Parameters
    ----------
    end_time:
        Optional hard stop; events scheduled past it are still accepted but
        :meth:`run` will not execute them.
    bucket_ns:
        Width of one calendar bucket in nanoseconds (rounded up to a power
        of two so bucket indexing is a shift+mask).
    n_buckets:
        Number of buckets in the near-future ring (rounded up to a power
        of two).  ``bucket_ns * n_buckets`` is the calendar horizon;
        events farther out go to the overflow heap.

    Internal geometry invariants:

    * the cursor bucket covers ``[_cur_end - _width, _cur_end)`` and is
      kept as a heap (entries may arrive while it drains);
    * every other calendar entry lies in ``[_cur_end, _win_end)`` and sits
      unsorted in its bucket, heapified when the cursor arrives;
    * overflow entries all lie at ``time >= _win_end``.

    A late insert below ``_cur_end`` (clock still sitting before a window
    jump) goes into the cursor bucket, whose heap order still executes it
    before everything else — ordering is preserved without special cases.
    """

    __slots__ = (
        "now", "end_time", "trace", "_shift", "_width", "_mask",
        "_horizon", "_buckets", "_occ", "_bit", "_cur_index",
        "_cur_end", "_win_end", "_overflow", "_compact_at", "_event_pool",
        "_seq", "_executed", "_running", "batches",
    )

    def __init__(self, end_time: Optional[int] = None, *,
                 bucket_ns: int = DEFAULT_BUCKET_NS,
                 n_buckets: int = DEFAULT_N_BUCKETS) -> None:
        self.now: int = 0
        self.end_time = end_time
        #: Optional per-event hook ``trace(time, seq, callback)`` invoked
        #: before each executed callback; used by the determinism tests.
        self.trace: Optional[Callable[[int, int, Callable], None]] = None

        self._shift = max(0, int(bucket_ns) - 1).bit_length()
        self._width = 1 << self._shift
        nb = 1 << max(1, int(n_buckets) - 1).bit_length()
        self._mask = nb - 1
        self._horizon = self._width * nb

        self._buckets: list[list] = [[] for _ in range(nb)]
        #: Occupancy bitmap: bit ``i`` set => bucket ``i`` may be
        #: non-empty.  Buckets drain only at the cursor, so at most the
        #: cursor's own bit can be stale; :meth:`_advance_cursor` clears
        #: it and then finds the next occupied bucket with integer bit
        #: tricks instead of walking empty buckets one by one.
        self._occ = 0
        self._bit = _bit_masks(nb)
        self._cur_index = 0            # ring position of the cursor bucket
        self._cur_end = self._width    # absolute end of the cursor bucket
        self._win_end = self._horizon  # absolute end of the calendar window

        self._overflow: list = []      # far-future (time, seq, event) heap
        self._compact_at = _MIN_COMPACT

        self._event_pool: list[Event] = []
        self._seq = 0
        self._executed = 0
        self._running = False
        #: Calendar buckets claimed by :meth:`run_batched` — the unit of
        #: per-batch overhead (claim + sort + bound hoisting).  The
        #: bench cost model reads this to price batch-sparse workloads.
        self.batches = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: int, callback: Callable[..., Any],
                 *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` ns from now.

        This is the hottest scheduler entry point, so :meth:`_push` is
        inlined here; keep the two bodies in sync.
        """
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        time = self.now + int(delay)
        seq = self._seq
        self._seq = seq + 1
        pool = self._event_pool
        if pool:
            event = pool.pop()
            event.time = time
            event.seq = seq
            event.callback = callback
            event.args = args
            event.cancelled = False
        else:
            event = Event(time, seq, callback, args)
        entry = (time, seq, event)
        if time < self._win_end:
            if time < self._cur_end:
                _heappush(self._buckets[self._cur_index], entry)
            else:
                index = (time >> self._shift) & self._mask
                bucket = self._buckets[index]
                if not bucket:
                    self._occ |= self._bit[index]
                bucket.append(entry)
        else:
            overflow = self._overflow
            _heappush(overflow, entry)
            if len(overflow) > self._compact_at:
                self._compact_overflow()
        return event

    def fire(self, delay: int, callback: Callable[[Any], Any],
             arg: Any = None) -> None:
        """Fire-and-forget schedule: no :class:`Event`, no handle.

        The entry is a bare ``(time, seq, callback, arg)`` tuple and the
        callback runs as ``callback(arg)``; it cannot be cancelled.  This
        is the per-packet hot path (serializer boundary wake-ups alone
        are ~40%% of all events in a busy fabric), where skipping the
        Event pool round-trip is worth a branch in the run loop.

        Caller contract: ``delay`` must be a non-negative **integer**
        (no ``int()`` coercion here — a float would silently break
        bucket indexing, so the sub-ns case raises instead).
        """
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        time = self.now + delay
        seq = self._seq
        self._seq = seq + 1
        entry = (time, seq, callback, arg)
        if time < self._win_end:
            if time < self._cur_end:
                _heappush(self._buckets[self._cur_index], entry)
            else:
                index = (time >> self._shift) & self._mask
                bucket = self._buckets[index]
                if not bucket:
                    self._occ |= self._bit[index]
                bucket.append(entry)
        else:
            overflow = self._overflow
            _heappush(overflow, entry)
            if len(overflow) > self._compact_at:
                self._compact_overflow()

    def fire2(self, delay: int, callback: Callable[[Any, Any], Any],
              arg1: Any, arg2: Any) -> None:
        """Two-argument :meth:`fire`: ``callback(arg1, arg2)``, no handle.

        Exists so packet delivery can dispatch straight into the peer
        device's ``receive(packet, port)`` without a per-packet bound
        trampoline in between — the entry is ``(time, seq, callback,
        arg1, arg2)`` and consumes one ``seq`` exactly like :meth:`fire`,
        so engines that use it stay in event-order lockstep with engines
        that do not.  Same caller contract as :meth:`fire`.
        """
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        time = self.now + delay
        seq = self._seq
        self._seq = seq + 1
        entry = (time, seq, callback, arg1, arg2)
        if time < self._win_end:
            if time < self._cur_end:
                _heappush(self._buckets[self._cur_index], entry)
            else:
                index = (time >> self._shift) & self._mask
                bucket = self._buckets[index]
                if not bucket:
                    self._occ |= self._bit[index]
                bucket.append(entry)
        else:
            overflow = self._overflow
            _heappush(overflow, entry)
            if len(overflow) > self._compact_at:
                self._compact_overflow()

    def schedule_at(self, time: int, callback: Callable[..., Any],
                    *args: Any) -> Event:
        """Schedule ``callback(*args)`` at an absolute time."""
        time = int(time)
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time} before now={self.now}")
        return self._push(time, callback, args)

    def _push(self, time: int, callback: Callable[..., Any],
              args: tuple) -> Event:
        seq = self._seq
        self._seq = seq + 1
        pool = self._event_pool
        if pool:
            event = pool.pop()
            event.time = time
            event.seq = seq
            event.callback = callback
            event.args = args
            event.cancelled = False
        else:
            event = Event(time, seq, callback, args)
        entry = (time, seq, event)
        if time < self._win_end:
            if time < self._cur_end:
                # The cursor bucket is kept heap-ordered while draining.
                # Its occupancy bit is irrelevant: the run loop always
                # drains the cursor before consulting the bitmap.
                _heappush(self._buckets[self._cur_index], entry)
            else:
                index = (time >> self._shift) & self._mask
                bucket = self._buckets[index]
                if not bucket:
                    self._occ |= self._bit[index]
                bucket.append(entry)
        else:
            overflow = self._overflow
            _heappush(overflow, entry)
            if len(overflow) > self._compact_at:
                self._compact_overflow()
        return event

    def _compact_overflow(self) -> None:
        """Drop lazily-cancelled entries and re-heapify (amortized O(1)).

        Retransmission timers are re-armed on every cumulative-ACK
        advance, each re-arm cancelling a far-future entry; without
        compaction those tombstones would accumulate for the whole run.
        """
        live = [e for e in self._overflow
                if len(e) != 3 or not e[2].cancelled]
        heapq.heapify(live)
        self._overflow = live
        self._compact_at = max(_MIN_COMPACT, 2 * len(live))

    # ------------------------------------------------------------------
    # Cursor movement (cold path: runs only when a bucket drains)
    # ------------------------------------------------------------------
    def _advance_cursor(self, heapify: bool = True) -> Optional[list]:
        """Move the cursor to the next non-empty bucket.

        Returns that bucket (heapified, ready to drain — or raw when
        ``heapify=False``, for the batched drain which sorts the whole
        bucket at once), or ``None`` when nothing is pending anywhere.
        The next occupied bucket comes from
        the occupancy bitmap — a shift plus count-trailing-zeros on one
        big int, all C-level — so a sparse calendar (idle timers tens of
        microseconds apart) costs the same as a dense one.  When the
        calendar is empty the cursor jumps straight to the overflow front.

        Overflow migration can happen *after* the jump target is chosen:
        every overflow entry has ``time >= _win_end``, which is later than
        any bucket in the current lap, so migrated entries always land in
        the lap's tail (ring slots behind the new cursor), never ahead of
        the target.
        """
        buckets = self._buckets
        overflow = self._overflow
        mask = self._mask
        shift = self._shift
        heappop = heapq.heappop
        bit = self._bit
        index = self._cur_index
        # The vacated cursor bucket is the only possibly-stale bit, so the
        # masked bitmap alone answers "is the calendar empty?" — no
        # separate entry counter is maintained anywhere in the engine.
        occ = self._occ & ~bit[index]
        if occ:
            # Next occupied ring slot strictly after the cursor: first try
            # the bits above the cursor, then wrap to the bits below it.
            hi = occ >> (index + 1)
            if hi:
                steps = 1 + ((hi & -hi).bit_length() - 1)
            else:
                low = occ & (bit[index] - 1)
                # occ != 0 guarantees some bucket is occupied.
                steps = (mask + 1 - index) + ((low & -low).bit_length() - 1)
            index = (index + steps) & mask
            width = self._width
            self._cur_index = index
            self._cur_end += steps * width
            win_end = self._win_end + steps * width
            self._win_end = win_end
            while overflow and overflow[0][0] < win_end:
                entry = heappop(overflow)
                slot = (entry[0] >> shift) & mask
                b = buckets[slot]
                if not b:
                    occ |= bit[slot]
                b.append(entry)
            self._occ = occ
            bucket = buckets[index]
            if heapify:
                heapq.heapify(bucket)
            return bucket
        if not overflow:
            self._occ = 0
            return None
        # Calendar empty: jump the window to the overflow front.
        time = overflow[0][0]
        start = (time >> shift) << shift
        index = (time >> shift) & mask
        self._cur_index = index
        self._cur_end = start + self._width
        win_end = start + self._horizon
        self._win_end = win_end
        occ = 0
        while overflow and overflow[0][0] < win_end:
            entry = heappop(overflow)
            slot = (entry[0] >> shift) & mask
            b = buckets[slot]
            if not b:
                occ |= bit[slot]
            b.append(entry)
        self._occ = occ
        bucket = buckets[index]
        if heapify:
            heapq.heapify(bucket)
        return bucket

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the single next pending event.

        Returns ``True`` if an event ran, ``False`` if the queue is empty
        or the next event lies beyond ``end_time``.
        """
        while True:
            bucket = self._buckets[self._cur_index]
            if not bucket:
                bucket = self._advance_cursor()
                if bucket is None:
                    return False
            entry = heapq.heappop(bucket)
            if len(entry) != 3:               # fire()/fire2() fast path
                if self.end_time is not None and entry[0] > self.end_time:
                    heapq.heappush(bucket, entry)
                    return False
                self.now = entry[0]
                if len(entry) == 4:
                    entry[2](entry[3])
                else:
                    entry[2](entry[3], entry[4])
                self._executed += 1
                return True
            event = entry[2]
            if event.cancelled:
                self._recycle(event)
                continue
            if self.end_time is not None and entry[0] > self.end_time:
                heapq.heappush(bucket, entry)
                return False
            self.now = entry[0]
            event.callback(*event.args)
            self._executed += 1
            self._recycle(event)
            return True

    def _recycle(self, event: Event) -> None:
        # Drop references so a pooled event never pins packet graphs.
        event.callback = None
        event.args = ()
        pool = self._event_pool
        if len(pool) < _EVENT_POOL_CAP:
            pool.append(event)

    def run(self, until: Optional[int] = None) -> int:
        """Run events until the queue drains or ``until`` (absolute ns).

        Returns the number of events executed by this call.  When the
        queue drains before ``until``, the clock still advances to
        ``until``, matching the early-break case — either way the caller
        observes ``now == until``.  Delegates to :meth:`run_batched`,
        the bucket-at-a-time drain (golden-tested bit-identical to the
        historical one-event-at-a-time loop and to the heap reference).
        """
        return self.run_batched(until)

    def run_batched(self, until: Optional[int] = None) -> int:
        """Batched drain: claim whole calendar buckets, sort once, then
        dispatch the batch in a tight loop.

        Per-event cost drops three ways versus the classic loop:

        * one C-level ``list.sort`` per bucket replaces a ``heappop``
          (log-n sifts) per event;
        * the stop-bound comparison is hoisted to once per bucket — a
          bucket whose window ends at or before the bound can never
          contain a late event, which is every bucket except possibly
          the final one of a bounded run;
        * same-timestamp chains (port→switch→port hops of one packet
          wave) run back-to-back out of the sorted batch with no queue
          maintenance between them.

        Events scheduled *into* the claimed window while it drains (a
        serializer boundary wake-up shorter than the remaining bucket,
        a zero-delay completion) land in a fresh ``live`` heap that the
        drain merges in ``(time, seq)`` order, so execution order is
        bit-identical to the reference engines.
        """
        if self._running:
            raise SimulationError("Simulator.run is not reentrant")
        self._running = True
        executed = 0
        # Local aliases for the per-event hot loop.
        heappop = heapq.heappop
        heappush = heapq.heappush
        trace = self.trace
        pool = self._event_pool
        pool_append = pool.append
        advance = self._advance_cursor
        buckets = self._buckets
        # Fold ``until`` and ``end_time`` into one numeric stop bound;
        # which bound fired decides below whether the clock jumps to
        # ``until``.
        bound = until if until is not None else _FAR_FUTURE
        if self.end_time is not None and self.end_time < bound:
            bound = self.end_time
        try:
            while True:
                index = self._cur_index
                batch = buckets[index]
                if not batch:
                    batch = advance(heapify=False)
                    if batch is None:
                        # Queue drained before the bound: leave now ==
                        # until, same as the bounded-break case below.
                        if until is not None and until > self.now:
                            self.now = until
                        break
                    index = self._cur_index
                if self._cur_end > bound + 1:
                    # The cursor window straddles the stop bound (at most
                    # once per call): fall back to the careful per-event
                    # drain for this bucket, then stop — every other
                    # pending entry lies at >= _cur_end > bound.
                    heapq.heapify(batch)
                    while batch:
                        entry = heappop(batch)
                        time = entry[0]
                        if time > bound:
                            heappush(batch, entry)
                            break
                        ln = len(entry)
                        if ln != 3:
                            self.now = time
                            if trace is not None:
                                trace(time, entry[1], entry[2])
                            if ln == 4:
                                entry[2](entry[3])
                            else:
                                entry[2](entry[3], entry[4])
                            executed += 1
                            continue
                        event = entry[2]
                        if event.cancelled:
                            event.args = ()
                            if len(pool) < _EVENT_POOL_CAP:
                                pool_append(event)
                            continue
                        self.now = time
                        if trace is not None:
                            trace(time, entry[1], event.callback)
                        event.callback(*event.args)
                        executed += 1
                        event.callback = None
                        event.args = ()
                        if len(pool) < _EVENT_POOL_CAP:
                            pool_append(event)
                    if bound == until and until > self.now:
                        self.now = until
                    break
                # Claim the bucket: late inserts into the still-open
                # cursor window go to a fresh heap we merge from.
                live: list = []
                buckets[index] = live
                batch.sort()
                self.batches += 1
                pos = 0
                n = len(batch)
                merged = 0   # late inserts drained from ``live``
                skipped = 0  # lazily-cancelled Event entries
                try:
                    while pos < n:
                        entry = batch[pos]
                        if live and live[0] < entry:
                            entry = heappop(live)
                            merged += 1
                        else:
                            pos += 1
                        ln = len(entry)
                        if ln == 5:           # fire2() delivery entry
                            self.now = entry[0]
                            if trace is not None:
                                trace(entry[0], entry[1], entry[2])
                            entry[2](entry[3], entry[4])
                        elif ln == 4:         # fire() wake-up entry
                            self.now = entry[0]
                            if trace is not None:
                                trace(entry[0], entry[1], entry[2])
                            entry[2](entry[3])
                        else:                 # full Event entry
                            event = entry[2]
                            if event.cancelled:
                                skipped += 1
                                event.args = ()
                                if len(pool) < _EVENT_POOL_CAP:
                                    pool_append(event)
                                continue
                            self.now = entry[0]
                            if trace is not None:
                                trace(entry[0], entry[1], event.callback)
                            event.callback(*event.args)
                            event.callback = None
                            event.args = ()
                            if len(pool) < _EVENT_POOL_CAP:
                                pool_append(event)
                    # Counting once per batch beats one increment per
                    # event: everything consumed ran except cancellations.
                    executed += n + merged - skipped
                except BaseException:
                    # Restore the unexecuted tail so a callback raising
                    # mid-batch leaves the queue intact for post-mortems.
                    # The entry that raised was consumed but (matching the
                    # classic loop) does not count as executed.
                    executed += pos + merged - skipped - 1
                    live.extend(batch[pos:])
                    heapq.heapify(live)
                    raise
                # Batch done; any remaining late inserts (now in the
                # bucket) are re-claimed by the next outer iteration.
        finally:
            self._running = False
        self._executed += executed
        return executed

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of queued entries (including lazily-cancelled ones).

        Computed lazily — the hot path maintains no entry counter (the
        occupancy bitmap already encodes calendar emptiness).
        """
        return (sum(len(b) for b in self._buckets)
                + len(self._overflow))

    @property
    def executed(self) -> int:
        """Total events executed since construction."""
        return self._executed

    @property
    def pooled_events(self) -> int:
        """Current size of the Event free list (introspection/tests)."""
        return len(self._event_pool)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Simulator(now={self.now}ns, pending={self.pending}, "
                f"executed={self.executed})")


class HeapSimulator:
    """Reference engine: one binary heap ordered by ``(time, seq)``.

    The original implementation, kept (plus the drain-to-``until`` fix) so
    the calendar engine's execution order can be A/B-checked against it.
    Prefer :class:`Simulator` everywhere else; this one allocates a fresh
    :class:`Event` per schedule and pays a Python-level ``__lt__`` call
    for every heap comparison.  Deliberately *not* micro-optimised (no
    ``__slots__``, no inlining): it is the measurement baseline.
    """

    def __init__(self, end_time: Optional[int] = None) -> None:
        self.now: int = 0
        self.end_time = end_time
        self.trace: Optional[Callable[[int, int, Callable], None]] = None
        self._heap: list[Event] = []
        self._seq = 0
        self._executed = 0
        self._running = False
        self.batches = 0  # API parity; the heap engine never batches

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: int, callback: Callable[..., Any],
                 *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` ns from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.schedule_at(self.now + int(delay), callback, *args)

    def fire(self, delay: int, callback: Callable[[Any], Any],
             arg: Any = None) -> None:
        """Fire-and-forget schedule (API parity with :class:`Simulator`).

        The seed engine has only Events, so this simply schedules one;
        the ``seq`` consumed here keeps both engines' sequence counters
        in lockstep, which the golden determinism test relies on.
        """
        self.schedule(delay, callback, arg)

    def fire2(self, delay: int, callback: Callable[[Any, Any], Any],
              arg1: Any, arg2: Any) -> None:
        """Two-argument fire (API parity with :class:`Simulator`)."""
        self.schedule(delay, callback, arg1, arg2)

    def schedule_at(self, time: int, callback: Callable[..., Any],
                    *args: Any) -> Event:
        """Schedule ``callback(*args)`` at an absolute time."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time} before now={self.now}")
        event = Event(int(time), self._seq, callback, args)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the single next pending event."""
        while self._heap:
            event = self._heap[0]
            if event.cancelled:
                heapq.heappop(self._heap)
                continue
            if self.end_time is not None and event.time > self.end_time:
                return False
            heapq.heappop(self._heap)
            self.now = event.time
            event.callback(*event.args)
            self._executed += 1
            return True
        return False

    def run(self, until: Optional[int] = None) -> int:
        """Run events until the queue drains or ``until`` (absolute ns)."""
        if self._running:
            raise SimulationError("Simulator.run is not reentrant")
        self._running = True
        executed = 0
        try:
            while self._heap:
                event = self._heap[0]
                if event.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and event.time > until:
                    if until > self.now:
                        self.now = until
                    break
                if self.end_time is not None \
                        and event.time > self.end_time:
                    break
                heapq.heappop(self._heap)
                self.now = event.time
                if self.trace is not None:
                    self.trace(event.time, event.seq, event.callback)
                event.callback(*event.args)
                executed += 1
            if not self._heap and until is not None and until > self.now:
                self.now = until
        finally:
            self._running = False
        self._executed += executed
        return executed

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of heap entries (including lazily-cancelled ones)."""
        return len(self._heap)

    @property
    def executed(self) -> int:
        """Total events executed since construction."""
        return self._executed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"HeapSimulator(now={self.now}ns, pending={self.pending}, "
                f"executed={self.executed})")
