"""repro — Themis: packet spraying over commodity RNICs, reproduced.

A packet-level discrete-event simulation of the full system described in
"Enabling Packet Spraying over Commodity RNICs with In-Network Support":
the commodity RNIC model (NIC-SR / Go-Back-N reliable transports, DCQCN),
a Clos fabric with pluggable load balancing, and the Themis ToR middleware
(PSN-based spraying, NACK validation, NACK compensation).

Quickstart::

    from repro import Network, NetworkConfig, TopologySpec

    config = NetworkConfig(
        topology=TopologySpec(num_tors=4, num_spines=4, nics_per_tor=2),
        scheme="themis")
    net = Network(config)
    net.post_message(src=0, dst=2, nbytes=1_000_000)
    net.run()
    print(net.metrics.summary())
"""

from repro.cc import Dcqcn, DcqcnConfig, FixedRate
from repro.collectives import (AllToAll, HalvingDoublingAllreduce,
                               RingAllgather, RingAllreduce,
                               RingReduceScatter, TrainingJob,
                               cross_rack_groups, interleaved_ring_groups)
from repro.harness import (DCQCN_SWEEP, CollectiveRunResult, EvalScale,
                           Metrics, MotivationResult, Network,
                           NetworkConfig, SweepResult, TopologySpec,
                           fig5_config, motivation_config, run_collective,
                           run_fig1d_comparison, run_fig5_sweep,
                           run_motivation)
from repro.net import FlowKey, Packet, PacketType
from repro.rnic import Rnic, RnicConfig
from repro.switch import EcnConfig
from repro.themis import (MemoryParams, ThemisConfig, memory_overhead,
                          build_pathmap)

__version__ = "1.0.0"

__all__ = [
    "Network", "NetworkConfig", "TopologySpec", "Metrics",
    "ThemisConfig", "memory_overhead", "MemoryParams", "build_pathmap",
    "Dcqcn", "DcqcnConfig", "FixedRate", "EcnConfig",
    "Rnic", "RnicConfig", "FlowKey", "Packet", "PacketType",
    "RingAllreduce", "RingAllgather", "RingReduceScatter", "AllToAll",
    "HalvingDoublingAllreduce", "TrainingJob",
    "cross_rack_groups", "interleaved_ring_groups",
    "run_motivation", "motivation_config", "run_fig1d_comparison",
    "MotivationResult", "run_collective", "CollectiveRunResult",
    "fig5_config", "EvalScale", "run_fig5_sweep", "SweepResult",
    "DCQCN_SWEEP",
    "__version__",
]
