"""Perf-benchmark harness: ``python -m repro bench``.

Runs three canonical scenarios on the calendar-queue engine and reports
events/sec and wall time, writing the results to ``BENCH_engine.json`` at
the repo root so the perf trajectory is tracked across PRs:

* ``incast``   — 15-to-1 congestion onto one receiver (deep queues, ECN
  marking, CNP feedback; stresses buffer/marking hot paths).
* ``alltoall`` — all-to-all spray across a 32-node leaf-spine fabric
  (16 ToRs x 8 spines, the Fig. 5 regime; stresses the spraying +
  reordering hot path and is the scenario the engine-speedup acceptance
  gate is measured on).
* ``lossy``    — recovery on a lossy uplink (NACK/RTO churn; stresses
  timer cancellation and the overflow tier).

The ``alltoall`` scenario is additionally re-run on
:class:`repro.sim.engine.HeapSimulator` — the seed heapq engine kept
verbatim as the reference implementation — and the events/sec ratio is
reported as ``speedup_vs_heap``.  Event counts of the two runs must match
exactly (same workload, same determinism contract); the harness asserts
this, making every benchmark run double as an engine A/B sanity check.

Measurement methodology
-----------------------
Wall-clock timing of a Python event loop is noisy in ways that bias an
A/B comparison if ignored:

* **Allocator warm-up.**  Repeated runs inside one process drift — the
  second engine measured benefits from arenas the first one paid to map.
  Each measurement therefore runs in a **fresh spawned process** (pyperf
  style); the parent only collects the numbers.
* **GC pauses.**  The engines allocate at very different rates, so cyclic
  GC fires at different points.  The timed region runs with the collector
  disabled (after an explicit ``gc.collect()``); pooling keeps real
  garbage negligible for the run lengths measured here.
* **Scheduling noise.**  Each (scenario, engine) pair is measured
  ``repeats`` times and the **minimum** wall time is reported — the
  standard best-of-N estimator for "how fast can this code run".

``--quick`` shrinks message sizes ~8x, uses one repeat, and skips process
isolation, for CI smoke runs where only "does it run" matters.
"""

from __future__ import annotations

import gc
import json
import sys
import time
from dataclasses import asdict, dataclass
from typing import Callable, Optional

from repro.harness.network import Network, NetworkConfig, TopologySpec
from repro.sim.engine import (DEFAULT_BUCKET_NS, DEFAULT_N_BUCKETS,
                              HeapSimulator, MS, US)

#: Output file tracked at the repo root.
DEFAULT_OUT = "BENCH_engine.json"
#: Scenario names in run order.
SCENARIOS = ("incast", "alltoall", "lossy")
#: Hard simulated-time deadline so a regression can't hang the harness.
DEADLINE_NS = 800 * MS
#: Default best-of-N repeats for a full (non-quick) run.
DEFAULT_REPEATS = 3


@dataclass
class ScenarioResult:
    """One scenario's measurement."""

    scenario: str
    engine: str
    events: int
    wall_s: float
    events_per_sec: float
    sim_time_ns: int
    completed: bool


def _scale(quick: bool, full: int) -> int:
    """Quick mode shrinks message sizes ~8x for CI smoke runs."""
    return full // 8 if quick else full


def _stop_when_done(net: Network, total: int) -> Callable[[], None]:
    """Per-message completion callback: once every receiver is done, tear
    the NIC timers down so the event queue drains and :meth:`Network.run`
    returns — the benchmark then measures the traffic regime, not an
    arbitrarily long tail of idle DCQCN timer ticks."""
    state = {"left": total}

    def one_done() -> None:
        state["left"] -= 1
        if state["left"] == 0:
            # Remember when traffic actually finished: after stop() the
            # drain semantics of run(until=...) advance the clock to the
            # deadline, so net.now_ns alone no longer tells us.
            net.bench_done_ns = net.now_ns
            net.stop()

    return one_done


def _build_incast(quick: bool, sim, recorder=None) -> Network:
    topo = TopologySpec(kind="leaf_spine", num_tors=2, num_spines=2,
                        nics_per_tor=8, link_bandwidth_bps=100e9,
                        link_delay_ns=US)
    net = Network(NetworkConfig(topology=topo, scheme="rps",
                                transport="nic_sr", seed=7), sim=sim,
                  recorder=recorder)
    # Sized so the full-mode run takes >0.5 s of wall time — short runs
    # were dominated by per-run constant costs and timer jitter, making
    # the regression gate noisy (~20k events measured in ~60 ms).
    nbytes = _scale(quick, 2_000_000)
    done = _stop_when_done(net, 15)
    for src in range(1, 16):
        net.post_message(src, 0, nbytes, on_receiver_done=done)
    return net


def _build_alltoall(quick: bool, sim, recorder=None) -> Network:
    # Wide fabric: 8-way spray at every source ToR, 992 concurrent flows.
    # This is the geometry the >=2x engine acceptance gate is measured on.
    topo = TopologySpec(kind="leaf_spine", num_tors=16, num_spines=8,
                        nics_per_tor=2, link_bandwidth_bps=100e9,
                        link_delay_ns=US)
    net = Network(NetworkConfig(topology=topo, scheme="rps",
                                transport="nic_sr", seed=7), sim=sim,
                  recorder=recorder)
    nbytes = _scale(quick, 120_000)
    nodes = 32
    done = _stop_when_done(net, nodes * (nodes - 1))
    for src in range(nodes):
        for dst in range(nodes):
            if src != dst:
                net.post_message(src, dst, nbytes, on_receiver_done=done)
    return net


def _build_lossy(quick: bool, sim, recorder=None) -> Network:
    topo = TopologySpec(kind="leaf_spine", num_tors=2, num_spines=2,
                        nics_per_tor=2, link_bandwidth_bps=100e9,
                        link_delay_ns=US)
    net = Network(NetworkConfig(topology=topo, scheme="rps",
                                transport="nic_sr", seed=7), sim=sim,
                  recorder=recorder)
    # 1% loss on every uplink of tor0: spraying keeps hitting the lossy
    # paths, so recovery (NACKs, RTO re-arms) dominates the event mix.
    loss_rng = net.rng.fork("bench-loss")
    from repro.switch.switch import Switch
    for port in net.topology.tors[0].ports:
        if isinstance(port.peer, Switch):
            port.set_loss(0.01, loss_rng)
    # Sized so the full-mode run takes >0.5 s of wall time (the seed ran
    # ~4.3k events in ~11 ms — far too short to time reliably).
    nbytes = _scale(quick, 8_000_000)
    pairs = ((0, 2), (1, 3), (2, 0), (3, 1))
    done = _stop_when_done(net, len(pairs))
    for src, dst in pairs:
        net.post_message(src, dst, nbytes, on_receiver_done=done)
    return net


BUILDERS: dict[str, Callable[..., Network]] = {
    "incast": _build_incast,
    "alltoall": _build_alltoall,
    "lossy": _build_lossy,
}


def run_scenario(name: str, *, quick: bool = False,
                 engine: str = "calendar",
                 traced: bool = False) -> ScenarioResult:
    """Build and run one scenario, timing the event loop only.

    The timed region excludes topology construction and runs with the
    cyclic GC disabled (see the module docstring); the collector state is
    restored afterwards.

    ``traced=True`` wires an all-category flight recorder (ring only, no
    retained lists) through the run — the configuration every traced sim
    pays for — so ``run_bench`` can price the tracing overhead.
    """
    recorder = None
    if traced:
        from repro.obs.record import Recorder
        recorder = Recorder()
    sim = HeapSimulator() if engine == "heap" else None
    net = BUILDERS[name](quick, sim, recorder)
    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        start = time.perf_counter()
        net.run(until_ns=DEADLINE_NS)
        wall = time.perf_counter() - start
    finally:
        if gc_was_enabled:
            gc.enable()
    completed = net.metrics.all_flows_done()
    events = net.sim.executed
    net.stop()
    return ScenarioResult(
        scenario=name, engine=engine, events=events, wall_s=round(wall, 4),
        events_per_sec=round(events / wall) if wall > 0 else 0,
        sim_time_ns=getattr(net, "bench_done_ns", net.now_ns),
        completed=completed)


# ----------------------------------------------------------------------
# Process isolation (via the experiment job runner)
# ----------------------------------------------------------------------
def _measure(name: str, *, quick: bool, engine: str,
             fresh_process: bool, traced: bool = False) -> ScenarioResult:
    """One measurement as a job-runner job.

    Full mode uses a fresh **spawned** subprocess per measurement (the
    pyperf-style cold process of the methodology above — ``fork`` would
    inherit the parent's warmed allocator arenas).  The runner degrades
    to an in-process run if spawning fails (restricted environments);
    the numbers are then subject to warm-up drift but the harness still
    works everywhere.
    """
    from repro.harness.jobs import JobRunner, JobSpec

    spec = JobSpec(kind="bench", seed=0,
                   params={"scenario": name, "quick": quick,
                           "engine": engine, "traced": traced},
                   label=f"bench/{name}/{engine}"
                         + ("/traced" if traced else ""))
    runner = JobRunner(workers=1,
                       isolation="subprocess" if fresh_process
                       else "inproc",
                       retries=1, mp_method="spawn")
    outcome = runner.run_one(spec)
    if not outcome.ok:
        raise RuntimeError(f"bench measurement {name}/{engine} failed: "
                           f"{outcome.error}")
    return ScenarioResult(**outcome.result)


def _best_of(name: str, *, quick: bool, engine: str, repeats: int,
             fresh_process: bool, traced: bool = False) -> ScenarioResult:
    """Best-of-N wall time; asserts the runs executed identical events."""
    results = [_measure(name, quick=quick, engine=engine,
                        fresh_process=fresh_process, traced=traced)
               for _ in range(max(1, repeats))]
    events = {r.events for r in results}
    if len(events) != 1:
        raise AssertionError(
            f"{name}/{engine}: repeated runs executed different event "
            f"counts {sorted(events)} — nondeterminism detected")
    return min(results, key=lambda r: r.wall_s)


def run_bench(*, quick: bool = False, compare: bool = True,
              repeats: Optional[int] = None,
              out: Optional[str] = DEFAULT_OUT,
              echo: Callable[[str], None] = print) -> dict:
    """Run all scenarios (plus the heap A/B) and write ``out``.

    Returns the result document (also what lands in the JSON file).
    """
    if repeats is None:
        repeats = 1 if quick else DEFAULT_REPEATS
    fresh_process = not quick
    doc: dict = {
        "schema_version": 3,
        "generated_by": "python -m repro bench" + (" --quick" if quick else ""),
        "quick": quick,
        "python": ".".join(map(str, sys.version_info[:3])),
        "engine": {"kind": "calendar",
                   "bucket_ns": DEFAULT_BUCKET_NS,
                   "n_buckets": DEFAULT_N_BUCKETS},
        "measurement": {"repeats": repeats,
                        "estimator": "min wall time",
                        "fresh_process": fresh_process,
                        "gc_disabled": True},
        "scenarios": {},
    }
    if not fresh_process:
        # In-proc mode: warm the interpreter (allocator arenas, lazily
        # imported modules, type caches) before the first measurement,
        # or the first scenario measured pays the cold-start alone and
        # skews every cross-scenario comparison.
        run_scenario("incast", quick=quick)
    for name in SCENARIOS:
        res = _best_of(name, quick=quick, engine="calendar",
                       repeats=repeats, fresh_process=fresh_process)
        doc["scenarios"][name] = asdict(res)
        echo(f"{name:<10} {res.events:>9} events  {res.wall_s:>7.3f} s  "
             f"{res.events_per_sec:>9,} ev/s  "
             f"(sim {res.sim_time_ns / 1000:.0f} us, "
             f"completed={res.completed})")

    if compare:
        heap = _best_of("alltoall", quick=quick, engine="heap",
                        repeats=repeats, fresh_process=fresh_process)
        cal = doc["scenarios"]["alltoall"]
        if heap.events != cal["events"]:
            raise AssertionError(
                "engine A/B mismatch: calendar executed "
                f"{cal['events']} events, heap {heap.events} — "
                "determinism contract violated")
        speedup = (cal["events_per_sec"] / heap.events_per_sec
                   if heap.events_per_sec else 0.0)
        doc["heap_baseline"] = asdict(heap)
        doc["speedup_vs_heap"] = round(speedup, 2)
        echo(f"{'heap ref':<10} {heap.events:>9} events  "
             f"{heap.wall_s:>7.3f} s  {heap.events_per_sec:>9,} ev/s")
        echo(f"speedup vs seed heapq engine (alltoall): {speedup:.2f}x")

    # Price the observability layer: one traced alltoall run against the
    # untraced number above.  check_regression() only reads
    # doc["scenarios"], so this extra key never trips the CI gate — it is
    # a tracked trend line for the recorder's hot-path cost.
    traced = _best_of("alltoall", quick=quick, engine="calendar",
                      repeats=repeats, fresh_process=fresh_process,
                      traced=True)
    cal = doc["scenarios"]["alltoall"]
    if traced.events != cal["events"]:
        raise AssertionError(
            "tracing changed the simulation: traced alltoall executed "
            f"{traced.events} events vs {cal['events']} untraced — the "
            "recorder must be observation-only")
    overhead = (cal["events_per_sec"] / traced.events_per_sec
                if traced.events_per_sec else 0.0)
    doc["tracing"] = {"scenario": "alltoall",
                      "events": traced.events,
                      "wall_s": traced.wall_s,
                      "events_per_sec": traced.events_per_sec,
                      "overhead_ratio": round(overhead, 3)}
    echo(f"{'traced':<10} {traced.events:>9} events  "
         f"{traced.wall_s:>7.3f} s  {traced.events_per_sec:>9,} ev/s")
    echo(f"full-tracing overhead (alltoall): {overhead:.2f}x untraced")

    # Fit the predictive cost model: per-event-class costs from one
    # timed calibration run, then predict every scenario from its event
    # mix alone.  The residuals are tracked in the output document and
    # gated in CI, so an aggregate regression localizes to the event
    # class whose fitted cost moved.
    from repro.harness.costmodel import (CALIBRATION_SCENARIOS, calibrate,
                                         measure_mix, validate)
    echo("fitting cost model (timed calibration runs)...")
    infos = {name: measure_mix(name, quick=quick) for name in SCENARIOS}
    anchors = [(doc["scenarios"][name]["wall_s"], infos[name][0],
                infos[name][2], infos[name][3])
               for name in ("incast", "lossy")]
    model = calibrate(
        CALIBRATION_SCENARIOS, quick=quick,
        untraced_walls={name: doc["scenarios"][name]["wall_s"]
                        for name in CALIBRATION_SCENARIOS},
        anchors=anchors)
    predictions = validate(model, doc["scenarios"], quick=quick,
                           infos=infos)
    doc["cost_model"] = dict(model.to_json(), predictions=predictions)
    for row in predictions:
        mark = "ok" if row["ok"] else "OUT OF TOLERANCE"
        echo(f"cost model: {row['scenario']:<10} predicted "
             f"{row['predicted_events_per_sec']:>9,} ev/s  actual "
             f"{row['actual_events_per_sec']:>9,} ev/s  "
             f"({row['error_pct']:+.1f}%, {mark})")

    if out:
        with open(out, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=False)
            fh.write("\n")
        echo(f"wrote {out}")
    return doc


# ----------------------------------------------------------------------
# Regression gate (CI)
# ----------------------------------------------------------------------
def check_regression(doc: dict, baseline_path: str, *,
                     max_regression: float = 0.30,
                     max_tracing_regression: float = 0.15,
                     echo: Callable[[str], None] = print) -> list[str]:
    """Compare a bench document against a tracked baseline file.

    Returns the list of regressions: scenarios whose ``events_per_sec``
    fell more than ``max_regression`` (fraction) below the baseline,
    plus a tracing regression if the traced-run ``overhead_ratio`` grew
    more than ``max_tracing_regression`` above the baseline's.  The
    overhead ratio is a same-machine quotient, so its gate is much
    tighter than the raw-throughput one.  Scenarios present on only one
    side are compared on the intersection; absolute throughput differs
    across machines, so the gate is a catch-big-regressions tripwire,
    not a precision benchmark.
    """
    with open(baseline_path) as fh:
        baseline = json.load(fh)
    regressions: list[str] = []
    base_scenarios = baseline.get("scenarios", {})
    for name, current in doc.get("scenarios", {}).items():
        base = base_scenarios.get(name)
        if not base or not base.get("events_per_sec"):
            continue
        ratio = current["events_per_sec"] / base["events_per_sec"]
        verdict = "ok"
        if ratio < 1.0 - max_regression:
            verdict = "REGRESSION"
            regressions.append(
                f"{name}: {current['events_per_sec']:,} ev/s vs baseline "
                f"{base['events_per_sec']:,} ev/s ({ratio:.2f}x, "
                f"gate {1.0 - max_regression:.2f}x)")
        echo(f"regression gate: {name:<10} {ratio:5.2f}x baseline "
             f"({verdict})")
    base_tr = baseline.get("tracing", {}).get("overhead_ratio")
    cur_tr = doc.get("tracing", {}).get("overhead_ratio")
    if base_tr and cur_tr:
        growth = cur_tr / base_tr
        verdict = "ok"
        if growth > 1.0 + max_tracing_regression:
            verdict = "REGRESSION"
            regressions.append(
                f"tracing: overhead {cur_tr:.2f}x untraced vs baseline "
                f"{base_tr:.2f}x ({growth:.2f}x worse, gate "
                f"{1.0 + max_tracing_regression:.2f}x)")
        echo(f"regression gate: {'tracing':<10} {growth:5.2f}x baseline "
             f"overhead ({verdict})")
    return regressions
