"""Fig. 1 motivation study.

Reproduces §2.2's experiment: a leaf-spine fabric with eight nodes in two
interleaved groups ({0,2,4,6} and {1,3,5,7}), each node streaming one
large message to the next node of its group (a ring per group), random
packet spraying as the load balancer, 100 Gbps links.

Measured outputs mirror the figure panels:

* **1b** — retransmission ratio over time for a chosen flow (0 -> 2) and
  the average spurious-retransmission ratio over all flows,
* **1c** — the DCQCN sending rate of that flow over time and its
  time-weighted average vs line rate,
* **1d** — mean per-flow goodput, compared across transports
  (``nic_sr`` vs ``ideal``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cc.dcqcn import DcqcnConfig
from repro.collectives.group import interleaved_ring_groups
from repro.harness.network import Network, NetworkConfig, TopologySpec
from repro.net.packet import FlowKey
from repro.sim.engine import SEC, US

#: Paper value: 100 MB per flow at 100 Gbps.  Pure-Python default is
#: size-scaled (see DESIGN.md §3); pass ``flow_bytes`` to raise it.
DEFAULT_FLOW_BYTES = 4_000_000
DEFAULT_DEADLINE_NS = 2 * SEC


def motivation_config(scheme: str = "rps", transport: str = "nic_sr",
                      seed: int = 1, **overrides) -> NetworkConfig:
    """The Fig. 1a fabric: 4 racks x 2 NICs, 1:1 subscribed, 100 Gbps.

    Two spines give each rack exactly as much uplink as host capacity, so
    when both groups stream at line rate the core runs fully loaded and
    multi-path delay variation is persistent — the regime §2.2 studies.
    The DCQCN timers follow the NIC-default style recovery (TI = 55 us)
    with a rate-decrease interval of 300 us, which reproduces Fig. 1c's
    sparse NACK-triggered dips; Fig. 5 sweeps (TI, TD) explicitly.
    """
    topo = TopologySpec(kind="leaf_spine", num_tors=4, num_spines=2,
                        nics_per_tor=2, link_bandwidth_bps=100e9,
                        link_delay_ns=US)
    overrides.setdefault("dcqcn", DcqcnConfig().with_timers(55, 300))
    return NetworkConfig(topology=topo, scheme=scheme, transport=transport,
                         seed=seed, **overrides)


@dataclass
class MotivationResult:
    """Everything Fig. 1's panels are drawn from."""

    scheme: str
    transport: str
    flow_bytes: int
    watched_flow: FlowKey
    duration_ns: int
    completed: bool
    # Fig. 1b
    retx_ratio_series: list[tuple[int, float]] = field(default_factory=list)
    avg_retx_ratio: float = 0.0
    # Fig. 1c
    rate_series_gbps: list[tuple[int, float]] = field(default_factory=list)
    avg_rate_gbps: float = 0.0
    line_rate_gbps: float = 100.0
    # Fig. 1d
    mean_goodput_gbps: float = 0.0
    # Context
    drops: int = 0
    nacks: int = 0
    summary: dict = field(default_factory=dict)

    @property
    def avg_rate_fraction(self) -> float:
        return self.avg_rate_gbps / self.line_rate_gbps


def run_motivation(config: Optional[NetworkConfig] = None, *,
                   flow_bytes: int = DEFAULT_FLOW_BYTES,
                   watch: tuple[int, int] = (0, 2),
                   deadline_ns: int = DEFAULT_DEADLINE_NS
                   ) -> MotivationResult:
    """Run the two-ring workload and collect the Fig. 1 measurements."""
    if config is None:
        config = motivation_config()
    net = Network(config)
    num_nodes = (config.topology.num_tors
                 * config.topology.nics_per_tor)
    watched = net.watch_flow(*watch)

    groups = interleaved_ring_groups(num_nodes, 2)
    for members in groups:
        for position, node in enumerate(members):
            nxt = members[(position + 1) % len(members)]
            net.post_message(node, nxt, flow_bytes)

    net.run(until_ns=deadline_ns)
    completed = net.metrics.all_flows_done()
    net.stop()

    metrics = net.metrics
    done_times = [f.receiver_done_ns for f in metrics.flows.values()
                  if f.receiver_done_ns is not None]
    duration = max(done_times) if completed and done_times else net.now_ns
    line_gbps = config.topology.link_bandwidth_bps / 1e9
    result = MotivationResult(
        scheme=config.scheme, transport=config.transport,
        flow_bytes=flow_bytes, watched_flow=watched,
        duration_ns=duration, completed=completed,
        line_rate_gbps=line_gbps,
        drops=metrics.drops, nacks=metrics.nacks_generated,
        summary=metrics.summary())

    sent = metrics.sent_counters[watched]
    retx = metrics.retx_counters[watched]
    result.retx_ratio_series = type(sent).ratio_series(retx, sent)
    result.avg_retx_ratio = metrics.spurious_ratio

    trace = metrics.rate_traces[watched]
    result.rate_series_gbps = [(t, v / 1e9) for t, v in trace.samples]
    stats = metrics.flows.get(watched)
    if trace.samples and stats is not None:
        end = stats.sender_done_ns or net.now_ns
        # Time-weighted mean rate from flow start to completion, seeding
        # the series with the initial line rate before the first change.
        samples = [(stats.start_ns, config.topology.link_bandwidth_bps)]
        samples += [s for s in trace.samples if s[0] <= end]
        samples.append((end, samples[-1][1]))
        total = sum(v * (t1 - t0) for (t0, v), (t1, _)
                    in zip(samples, samples[1:]))
        span = end - stats.start_ns
        result.avg_rate_gbps = (total / span / 1e9) if span else line_gbps
    else:
        result.avg_rate_gbps = line_gbps

    result.mean_goodput_gbps = metrics.mean_goodput_gbps()
    return result


def run_fig1d_comparison(*, flow_bytes: int = DEFAULT_FLOW_BYTES,
                         seed: int = 1) -> dict[str, MotivationResult]:
    """NIC-SR vs Ideal average throughput under random spraying."""
    return {
        "nic_sr": run_motivation(
            motivation_config(transport="nic_sr", seed=seed),
            flow_bytes=flow_bytes),
        "ideal": run_motivation(
            motivation_config(transport="ideal", seed=seed),
            flow_bytes=flow_bytes),
    }
