"""Multi-seed replication utilities.

Single-seed results of a packet simulator can hinge on hash luck (one
ECMP collision more or less).  :func:`replicate` runs a metric extractor
across seeds and reports distribution statistics, so benchmarks and tests
can assert on means instead of single draws.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional, Sequence


@dataclass(frozen=True)
class ReplicatedStat:
    """Summary of one metric across replicated runs."""

    name: str
    values: tuple[float, ...]

    @property
    def n(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        return sum(self.values) / self.n

    @property
    def std(self) -> float:
        """Sample standard deviation (0.0 for n < 2)."""
        if self.n < 2:
            return 0.0
        mean = self.mean
        return math.sqrt(sum((v - mean) ** 2 for v in self.values)
                         / (self.n - 1))

    @property
    def min(self) -> float:
        return min(self.values)

    @property
    def max(self) -> float:
        return max(self.values)

    def ci95_halfwidth(self) -> float:
        """~95% normal-approximation confidence half-width."""
        if self.n < 2:
            return 0.0
        return 1.96 * self.std / math.sqrt(self.n)

    def __str__(self) -> str:
        return (f"{self.name}: {self.mean:.4g} ± "
                f"{self.ci95_halfwidth():.2g} "
                f"[{self.min:.4g}, {self.max:.4g}] (n={self.n})")


def _evaluate_seeds(extractor: Callable[[int], object],
                    seeds: Sequence[int], *, workers: int,
                    timeout_s: Optional[float],
                    checkpoint: Optional[str]) -> list:
    """One ``extractor(seed)`` evaluation per seed, in seed order.

    With ``workers>1`` the per-seed runs fan out across the job runner
    (per-seed subprocess isolation, timeout, crash retry, optional
    checkpoint/resume) — provided the extractor is importable from a
    worker (a module-level function).  Lambdas and closures cannot cross
    a process boundary, so they fall back to the serial path.
    """
    from repro.harness.jobs import (JobRunner, JobSpec, callable_target,
                                    raise_on_failures)

    target = callable_target(extractor) if workers > 1 else None
    if target is None:
        return [extractor(s) for s in seeds]
    specs = [JobSpec(kind="callable", seed=s,
                     params={"target": target},
                     label=f"{target} seed={s}") for s in seeds]
    runner = JobRunner(workers=workers, timeout_s=timeout_s,
                       checkpoint=checkpoint)
    outcomes = runner.run(specs)
    raise_on_failures(outcomes)
    return [outcomes[spec.spec_hash].result["value"] for spec in specs]


def replicate(metric: Callable[[int], float], *,
              seeds: Sequence[int] = (1, 2, 3, 4, 5),
              name: str = "metric", workers: int = 1,
              timeout_s: Optional[float] = None,
              checkpoint: Optional[str] = None) -> ReplicatedStat:
    """Evaluate ``metric(seed)`` across seeds."""
    if not seeds:
        raise ValueError("need at least one seed")
    values = _evaluate_seeds(metric, seeds, workers=workers,
                             timeout_s=timeout_s, checkpoint=checkpoint)
    return ReplicatedStat(name, tuple(float(v) for v in values))


def replicate_many(metrics: Callable[[int], dict], *,
                   seeds: Sequence[int] = (1, 2, 3, 4, 5),
                   workers: int = 1,
                   timeout_s: Optional[float] = None,
                   checkpoint: Optional[str] = None
                   ) -> dict[str, ReplicatedStat]:
    """Evaluate a dict-returning extractor across seeds.

    One simulation per seed; every key of the returned dict becomes a
    :class:`ReplicatedStat`.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    rows = _evaluate_seeds(metrics, seeds, workers=workers,
                           timeout_s=timeout_s, checkpoint=checkpoint)
    keys = rows[0].keys()
    for row in rows[1:]:
        if row.keys() != keys:
            raise ValueError("metric keys differ across seeds")
    return {key: ReplicatedStat(key, tuple(float(r[key]) for r in rows))
            for key in keys}
