"""Experiment assembly: configuration -> a fully wired simulated fabric.

:class:`Network` is the public entry point most examples use: it builds
the topology, instantiates RNICs, installs the chosen load-balancing
scheme (plus the Themis middleware when requested), and exposes
``post_message`` / ``run``.

Supported schemes (``NetworkConfig.scheme``):

========================  ====================================================
``ecmp``                  flow-hash ECMP everywhere (baseline #1)
``rps``                   uniform random packet spraying
``ar``                    per-packet adaptive routing (baseline #2 in Fig. 5)
``themis``                PSN spraying + NACK validation + compensation
``themis_noval``          Themis-S spraying only (ablation: commodity NACKs)
``themis_nocomp``         validation without compensation (ablation)
``reps``                  recycled-entropy spraying (baseline zoo)
``prime``                 multi-part entropy selection (baseline zoo)
``spritz``                path-aware spraying (baseline zoo)
``sprinklers``            variable-size striping (baseline zoo)
========================  ====================================================

``NetworkConfig.themis_overlay`` composes the Themis-D NACK-validation
middleware with *any* non-Themis LB scheme — the arena's "themis"
transport axis, measuring what in-network NACK filtering buys each
spraying policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Optional

from repro.cc.base import CongestionControl, FixedRate
from repro.cc.dcqcn import Dcqcn, DcqcnConfig
from repro.conweave.config import ConweaveConfig
from repro.conweave.dest import InOrderDest
from repro.conweave.source import RerouteSource
from repro.harness.metrics import Metrics
from repro.net.packet import FlowKey, Packet
from repro.obs import record as obs_record
from repro.obs.record import Recorder
from repro.net.topology import Topology, dragonfly, fat_tree, leaf_spine
from repro.rnic.config import RnicConfig
from repro.rnic.nic import Rnic
from repro.sim.engine import US, Simulator
from repro.sim.rng import SimRng
from repro.switch.buffer import SharedBuffer
from repro.switch.ecn import EcnConfig, EcnMarker
from repro.switch.lb import (AdaptiveRoutingLB, EcmpLB, FlowletLB,
                             PrimeLB, RandomSprayLB, RepsLB,
                             SprinklersLB, SpritzLB)
from repro.switch.pfc import PfcConfig, PfcController
from repro.switch.switch import Switch
from repro.themis.config import ThemisConfig
from repro.themis.dest import ThemisDest
from repro.themis.pathmap import build_pathmap
from repro.themis.source import ThemisSource

SCHEMES = ("ecmp", "rps", "ar", "flowlet", "themis", "themis_noval",
           "themis_nocomp", "conweave", "conweave_spray",
           "reps", "prime", "spritz", "sprinklers")
TRANSPORTS = ("nic_sr", "gbn", "ideal", "mp_rdma")

#: Delay before the Ideal transport's oracle notifies the sender of a drop
#: (stands in for one fabric RTT of detection latency).
ORACLE_NOTIFY_NS = 10 * US


@dataclass(frozen=True)
class TopologySpec:
    """Declarative topology selection."""

    kind: str = "leaf_spine"            # or "fat_tree" / "dragonfly"
    num_tors: int = 4
    num_spines: int = 4
    nics_per_tor: int = 2
    fat_tree_k: int = 4
    # Dragonfly dimensions (kind="dragonfly"); defaults give an 8-NIC
    # fabric that satisfies groups-1 <= routers * global_links.
    df_groups: int = 4
    df_routers: int = 2
    df_hosts: int = 1
    df_global_links: int = 2
    link_bandwidth_bps: float = 100e9
    link_delay_ns: int = US

    def __post_init__(self) -> None:
        if self.kind not in ("leaf_spine", "fat_tree", "dragonfly"):
            raise ValueError(f"unknown topology kind {self.kind!r}")


@dataclass(frozen=True)
class NetworkConfig:
    """Everything needed to reproduce one experimental condition."""

    topology: TopologySpec = TopologySpec()
    scheme: str = "ecmp"
    transport: str = "nic_sr"
    dcqcn: Optional[DcqcnConfig] = field(default_factory=DcqcnConfig)
    rnic: RnicConfig = field(default_factory=RnicConfig)
    themis: ThemisConfig = field(default_factory=ThemisConfig)
    ecn: EcnConfig = field(default_factory=EcnConfig)
    buffer_bytes: int = 64 * 1024 * 1024
    #: None (default) runs the paper's lossy-with-ECN setting; a
    #: PfcConfig makes the data class lossless hop by hop.
    pfc: Optional[PfcConfig] = None
    #: Flowlet inactivity gap for scheme="flowlet" (§2.3 baseline).
    flowlet_gap_ns: int = 50 * US
    #: Install the Themis-D NACK-validation middleware on every ToR even
    #: for non-Themis schemes (no PSN spraying at the source) — the
    #: arena's "themis transport" axis.  Ignored for themis*/conweave*.
    themis_overlay: bool = False
    #: Settings for the conweave / conweave_spray baselines (§2.3).
    conweave: ConweaveConfig = field(default_factory=ConweaveConfig)
    seed: int = 1

    def __post_init__(self) -> None:
        if self.scheme not in SCHEMES:
            raise ValueError(f"unknown scheme {self.scheme!r}")
        if self.transport not in TRANSPORTS:
            raise ValueError(f"unknown transport {self.transport!r}")

    def variant(self, **changes) -> "NetworkConfig":
        """Derived config (e.g. same workload, different scheme)."""
        return replace(self, **changes)


class Network:
    """A wired-up fabric ready to carry workloads."""

    def __init__(self, config: NetworkConfig, *,
                 sim: Optional[Simulator] = None,
                 recorder: Optional[Recorder] = None) -> None:
        self.config = config
        #: Injectable engine: the perf benchmark and the golden
        #: determinism test run the same fabric on ``HeapSimulator``
        #: (the reference engine) to A/B against the calendar queue.
        self.sim = sim if sim is not None else Simulator()
        #: Observability recorder (repro.obs); channels are threaded to
        #: every component in _wire_recorder().  None = tracing off.
        self.recorder = recorder
        self.rng = SimRng(config.seed)
        self.metrics = Metrics(self.sim)
        #: Every RepsLB instance built by _make_lb (populated during
        #: topology construction, so it must exist before it).
        self._reps_lbs: list[RepsLB] = []
        self.topology = self._build_topology()
        self.nics = self._build_nics()
        self.topology.build_routes()
        if config.scheme.startswith("themis"):
            self._install_themis()
        elif config.scheme.startswith("conweave"):
            self._install_conweave()
        elif config.themis_overlay:
            self._install_themis_overlay()
        if self._reps_lbs:
            self.metrics.ack_listeners.append(self._reps_recycle)
        if config.transport == "ideal":
            self.metrics.drop_listeners.append(self._oracle_drop)
        elif config.transport == "mp_rdma":
            # MPRDMA-style senders know the fabric's path counts (their
            # transport owns path selection in the real proposal).
            for nic in self.nics:
                nic.nack_filter_paths = (
                    lambda flow: self.topology.equal_paths(flow.src,
                                                           flow.dst))
        if recorder is not None:
            self._wire_recorder(recorder)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _make_lb(self, name: str):
        scheme = self.config.scheme
        if scheme in ("rps", "conweave_spray"):
            return RandomSprayLB(self.rng.fork(f"lb-{name}"))
        if scheme == "ar":
            return AdaptiveRoutingLB(self.rng.fork(f"ar-{name}"))
        if scheme == "flowlet":
            return FlowletLB(self.rng.fork(f"fl-{name}"),
                             gap_ns=self.config.flowlet_gap_ns)
        if scheme == "reps":
            lb = RepsLB(self.rng.fork(f"reps-{name}"))
            self._reps_lbs.append(lb)
            return lb
        if scheme == "prime":
            return PrimeLB()
        if scheme == "spritz":
            return SpritzLB(self.rng.fork(f"spz-{name}"),
                            mtu_bytes=self.config.rnic.mtu_bytes)
        if scheme == "sprinklers":
            return SprinklersLB()
        # ECMP for both the ecmp scheme and as the non-sprayed fallback in
        # themis modes (Themis-S overrides selection where it applies).
        return EcmpLB()

    def _switch_factory(self, name: str) -> Switch:
        switch = Switch(
            self.sim, name,
            lb=self._make_lb(name),
            buffer=SharedBuffer(self.config.buffer_bytes),
            ecn_marker=EcnMarker(self.config.ecn,
                                 self.rng.fork(f"ecn-{name}")),
            metrics=self.metrics)
        if self.config.pfc is not None:
            switch.pfc = PfcController(self.sim, switch, self.config.pfc)
        return switch

    def _build_topology(self) -> Topology:
        spec = self.config.topology
        if spec.kind == "leaf_spine":
            return leaf_spine(
                self.sim, self._switch_factory,
                num_tors=spec.num_tors, num_spines=spec.num_spines,
                nics_per_tor=spec.nics_per_tor,
                link_bandwidth_bps=spec.link_bandwidth_bps,
                link_delay_ns=spec.link_delay_ns)
        if spec.kind == "dragonfly":
            return dragonfly(
                self.sim, self._switch_factory,
                groups=spec.df_groups,
                routers_per_group=spec.df_routers,
                hosts_per_router=spec.df_hosts,
                global_links_per_router=spec.df_global_links,
                link_bandwidth_bps=spec.link_bandwidth_bps,
                link_delay_ns=spec.link_delay_ns)
        return fat_tree(self.sim, self._switch_factory, k=spec.fat_tree_k,
                        link_bandwidth_bps=spec.link_bandwidth_bps,
                        link_delay_ns=spec.link_delay_ns)

    def _cc_factory_for(self, line_rate_bps: float
                        ) -> Callable[[FlowKey], CongestionControl]:
        def factory(flow: FlowKey) -> CongestionControl:
            if self.config.dcqcn is None or self.config.transport == "ideal":
                return FixedRate(self.sim, line_rate_bps)
            cc = Dcqcn(self.sim, line_rate_bps, self.config.dcqcn,
                       rate_trace=self.metrics.rate_trace_for(flow))
            if self.recorder is not None:
                cc.rec = self.recorder.channel(obs_record.CC)
                # Only pay the label f-string when the CC category is on.
                if cc.rec is not None:
                    cc.rec_loc = f"cc:{flow}"
            return cc
        return factory

    def _build_nics(self) -> list[Rnic]:
        nics = []
        line_rate = self.config.topology.link_bandwidth_bps
        for nic_id in range(self.topology.num_nics):
            nic = Rnic(self.sim, nic_id,
                       config=self.config.rnic, metrics=self.metrics,
                       rng=self.rng.fork(f"nic{nic_id}"),
                       cc_factory=self._cc_factory_for(line_rate),
                       transport=self.config.transport)
            nic.uplink = self.topology.attach_nic(nic_id, nic)
            nics.append(nic)
        return nics

    # ------------------------------------------------------------------
    # Themis installation
    # ------------------------------------------------------------------
    def _themis_config(self) -> ThemisConfig:
        cfg = self.config.themis
        scheme = self.config.scheme
        if scheme == "themis_noval":
            cfg = replace(cfg, enable_validation=False,
                          enable_compensation=False)
        elif scheme == "themis_nocomp":
            cfg = replace(cfg, enable_compensation=False)
        if (self.config.topology.kind == "fat_tree"
                and cfg.spray_mode == "direct"):
            cfg = replace(cfg, spray_mode="pathmap")
        return cfg

    def _n_paths_for(self, flow: FlowKey) -> int:
        if self._themis_cfg.spray_mode == "pathmap":
            return self.topology.path_count(flow.src, flow.dst)
        return self.topology.equal_paths(flow.src, flow.dst)

    def _queue_capacity_for(self, flow: FlowKey) -> int:
        """Ring-queue sizing (§4), with the last-hop RTT taken as
        propagation plus the ECN-bounded worst-case queueing delay at the
        ToR down port — in deployment this is the measured RTT_last."""
        spec = self.config.topology
        bandwidth = spec.link_bandwidth_bps
        queueing_ns = int(self.config.ecn.kmax_bytes * 8 * 1e9 / bandwidth)
        rtt_ns = 2 * spec.link_delay_ns + queueing_ns
        return self._themis_cfg.queue_entries(
            bandwidth, rtt_ns, self.config.rnic.mtu_bytes)

    def _install_themis(self) -> None:
        self._themis_cfg = self._themis_config()
        provider = None
        if self._themis_cfg.spray_mode == "pathmap":
            def provider(flow: FlowKey, sport: int) -> list[int]:
                return build_pathmap(self.topology, flow, sport,
                                     self._n_paths_for(flow))
        for tor in self.topology.tors:
            tor.add_middleware(ThemisDest(
                self._themis_cfg, self.metrics,
                n_paths_for=self._n_paths_for,
                queue_capacity_for=self._queue_capacity_for))
            tor.add_middleware(ThemisSource(
                self._themis_cfg, self.metrics,
                pathmap_provider=provider))

    def _install_themis_overlay(self) -> None:
        """Themis-D validation over a non-Themis LB scheme.

        No source-side PSN spraying is installed, so Eq. 1's path
        inference runs against whatever reordering the configured LB
        produces — the arena's "themis transport" axis.
        """
        self._themis_cfg = self.config.themis
        for tor in self.topology.tors:
            tor.add_middleware(ThemisDest(
                self._themis_cfg, self.metrics,
                n_paths_for=self._n_paths_for,
                queue_capacity_for=self._queue_capacity_for))

    def _reps_recycle(self, flow: FlowKey, epsn: int) -> None:
        """Metrics ack_listeners hook: fan one cumulative ACK out to
        every REPS instance (each keeps only state for flows it saw)."""
        for lb in self._reps_lbs:
            lb.on_ack(flow, epsn)

    def _install_conweave(self) -> None:
        """§2.3 baseline: in-order delivery enforced at the dst ToR.

        ``conweave`` pairs the reorder buffer with flow-level rerouting
        (the system it models); ``conweave_spray`` pairs it with random
        packet spraying to measure what full packet-level LB would
        demand of the reordering resources.
        """
        self.conweave_dests: list[InOrderDest] = []
        for tor in self.topology.tors:
            dest = InOrderDest(self.config.conweave)
            tor.add_middleware(dest)
            self.conweave_dests.append(dest)
            if self.config.scheme == "conweave":
                tor.add_middleware(RerouteSource(self.config.conweave))

    # ------------------------------------------------------------------
    # Link failure handling (§6)
    # ------------------------------------------------------------------
    def find_link(self, name: str):
        """Cable lookup by ``"a:b"`` name (either ordering)."""
        return self.topology.link(name)

    def fail_link(self, switch_a: str, switch_b: str) -> None:
        """Fail the inter-switch link between two named switches.

        Models the paper's §6 failure story end to end: both directions
        of the cable go down, routing converges (the dead ports leave
        every equal-cost candidate set), and — because PSN-based spraying
        can no longer keep Eq. 1's path mapping consistent — every ToR
        disables Themis and reverts to plain ECMP.
        """
        by_name = {s.name: s for s in self.topology.switches}
        for name in (switch_a, switch_b):
            if name not in by_name:
                raise LookupError(f"unknown switch {name!r}")
        try:
            link = self.topology.link(f"{switch_a}:{switch_b}")
        except LookupError:
            link = None
        if link is None or not link.up:
            raise LookupError(f"no live link {switch_a} <-> {switch_b}")
        link.set_up(False)
        self.reconverge_routes(require_connected=True)
        self._set_themis_enabled(False)

    def heal_links(self) -> None:
        """Bring every failed link back and re-enable Themis."""
        for link in self.topology.links:
            link.restore()
        for switch in self.topology.switches:
            switch.set_active(True)
        self.topology.build_routes()
        self._set_themis_enabled(True)

    def reconverge_routes(self, *, require_connected: bool = False) -> None:
        """Rebuild equal-cost routes over the live graph.

        With ``require_connected`` the rebuild raises ``RuntimeError``
        when any ToR has lost every route to some NIC (the fabric is
        partitioned) — the behaviour :meth:`fail_link` has always had.
        Scheduled fault events reconverge without the check: a transient
        partition mid-scenario is legitimate, and traffic through it
        surfaces as accounted drops, not as a harness error.
        """
        self.topology.build_routes()
        # REPS failure handling: reconvergence is the moment cached
        # entropies pointing at dead egresses get purged (§ REPS;
        # FaultInjector calls this on every link/switch transition).
        for lb in self._reps_lbs:
            lb.evict_dead()
        if not require_connected:
            return
        for tor in self.topology.tors:
            for nic_id in range(self.topology.num_nics):
                if nic_id not in tor.routes:
                    raise RuntimeError(
                        f"{tor.name} lost all routes to NIC {nic_id}")

    def fabric_intact(self) -> bool:
        """Is every cable healthy and every switch forwarding?"""
        return (all(link.up for link in self.topology.links)
                and all(s.active for s in self.topology.switches))

    def _set_themis_enabled(self, enabled: bool) -> None:
        for tor in self.topology.tors:
            for mw in tor.middleware:
                if enabled:
                    mw.enable()
                else:
                    mw.disable()

    # ------------------------------------------------------------------
    # Observability wiring
    # ------------------------------------------------------------------
    def _wire_recorder(self, rec: Recorder) -> None:
        """Hand every component its pre-resolved category channel.

        A channel is ``None`` when the category is disabled, so hot
        paths pay a single attribute test per packet.  Runs after all
        construction: switches, ports, PFC, and Themis middleware exist;
        QPs and CC instances are created lazily and resolve their
        channels from ``nic.recorder`` / the cc factory at that point.
        """
        pkt = rec.channel(obs_record.PACKET)
        queue = rec.channel(obs_record.QUEUE)
        ecn = rec.channel(obs_record.ECN)
        drop = rec.channel(obs_record.DROP)
        nack = rec.channel(obs_record.NACK)
        pfc = rec.channel(obs_record.PFC)
        # The two per-packet-rate channels get specialized emitter
        # closures instead of the recorder itself (Recorder.hop_emitter
        # / queue_emitters) — one plain call per event, no attribute
        # loads.
        hop = pkt.hop_emitter() if pkt is not None else None
        enq, deq = (queue.queue_emitters() if queue is not None
                    else (None, None))
        for switch in self.topology.switches:
            switch.rec = hop
            switch._policy.rec_ecn = ecn
            if switch.pfc is not None:
                switch.pfc.rec = pfc
            for port in switch.ports:
                port._rec_enq = enq
                port._rec_deq = deq
                port._rec_drop = drop
            for mw in switch.middleware:
                if isinstance(mw, ThemisDest):
                    mw.rec = nack
        for nic in self.nics:
            nic.recorder = rec
            for port in nic.ports:
                port._rec_enq = enq
                port._rec_deq = deq
                port._rec_drop = drop
        self.metrics.recorder = rec
        obs_record.set_active(rec)

    # ------------------------------------------------------------------
    # Ideal-transport oracle
    # ------------------------------------------------------------------
    def _oracle_drop(self, packet: Packet) -> None:
        if not packet.is_data:
            return
        sender = self.nics[packet.flow.src].senders.get(packet.flow)
        if sender is not None:
            self.sim.schedule(ORACLE_NOTIFY_NS, sender.force_retransmit,
                              packet.psn)

    # ------------------------------------------------------------------
    # Workload API
    # ------------------------------------------------------------------
    def post_message(self, src: int, dst: int, nbytes: int, *, qp: int = 0,
                     on_sender_done: Optional[Callable[[], None]] = None,
                     on_receiver_done: Optional[Callable[[], None]] = None
                     ) -> FlowKey:
        """Post a message on the (src, dst, qp) QP and pre-post the
        matching receive.  Returns the flow key."""
        flow = self.nics[src].post_send(dst, nbytes, qp=qp,
                                        on_done=on_sender_done)
        self.nics[dst].expect_message(src, nbytes, qp=qp,
                                      on_done=on_receiver_done)
        return flow

    def watch_flow(self, src: int, dst: int, qp: int = 0) -> FlowKey:
        """Enable traces for a flow.  Call before posting messages."""
        flow = FlowKey(src, dst, qp)
        self.metrics.watch_flow(flow)
        return flow

    def run(self, until_ns: Optional[int] = None) -> int:
        """Run to quiescence (or ``until_ns``); returns events executed.

        When a recorder is attached and the simulation raises, the
        flight-recorder ring is dumped (best-effort) before the error
        propagates, so post-mortems always have the last N events.
        """
        try:
            return self.sim.run(until=until_ns)
        except BaseException:
            if self.recorder is not None:
                try:
                    self.recorder.dump_flight(reason="sim-exception")
                except Exception:  # pragma: no cover - dump best-effort
                    pass
            raise

    def stop(self) -> None:
        """Cancel all NIC timers so the event queue can drain."""
        for nic in self.nics:
            nic.stop()

    @property
    def now_ns(self) -> int:
        return self.sim.now
