"""Command-line interface: ``python -m repro <command>``.

Subcommands mirror the paper's experiments:

* ``memory``      — Table 1 / §4 memory budget (instant).
* ``motivation``  — the Fig. 1 study on one scheme/transport.
* ``collective``  — one collective under one scheme + DCQCN config.
* ``sweep``       — a full Fig. 5 panel (``--workers/--resume/--timeout``
  for parallel, checkpointed execution).
* ``jobs``        — status of a sweep checkpoint file.
* ``bench``       — engine perf benchmark (``--baseline`` gates CI).
* ``pathmap``     — build and print a PathMap on a fat-tree (Fig. 3).
* ``trace``       — traced lossy alltoall + NACK-decision causality audit
  (``--perfetto`` exports a Chrome/Perfetto trace).
* ``profile``     — wall-time histogram per event-handler type.
* ``arena``       — LB-policy head-to-head ranking across workloads,
  topologies, and transports (``--quick`` = the CI smoke grid).
* ``results``     — the spec-hash results store: ingest arena/faults/
  bench documents into a queryable sqlite file, list and re-emit runs.
* ``serve``       — zero-dependency live dashboard over a results store
  (``--check`` renders every page headlessly for CI).

``sweep``, ``arena``, and ``faults run`` accept ``--cache PATH``: a
results store used as a read-through run cache — any cell whose
spec-hash already has a stored result is not executed, and the re-run
reconstructs a byte-identical output document.

Global output flags: ``--quiet`` suppresses progress/info chatter and
``--json`` replaces the human-readable output with one machine-readable
JSON document on stdout.  Both are accepted before the subcommand and
(except ``collective``, whose ``--json PATH`` predates the global flag)
after it.  All output goes through :class:`repro.obs.console.Console`.

Installed as the ``repro`` console script, so ``repro sweep`` works
without ``python -m``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.harness.collective_runner import (EvalScale, fig5_config,
                                             run_collective)
from repro.harness.motivation import motivation_config, run_motivation
from repro.harness.network import SCHEMES, TRANSPORTS
from repro.harness.report import format_table, percent, sparkline
from repro.harness.sweep import DCQCN_SWEEP, run_fig5_sweep
from repro.obs.console import Console
from repro.themis.memory import (MemoryParams, TOFINO_SRAM_BYTES,
                                 memory_overhead)


def _output_flag_parent(*, with_json: bool) -> argparse.ArgumentParser:
    """Parent parser re-declaring the global output flags per subcommand.

    ``default=SUPPRESS`` means a flag given *before* the subcommand is
    not clobbered by the subparser's default — argparse parses the main
    namespace first, then lets the subparser overwrite it.
    """
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--quiet", action="store_true",
                        default=argparse.SUPPRESS,
                        help="suppress progress/info output")
    if with_json:
        parent.add_argument("--json", dest="json_mode", action="store_true",
                            default=argparse.SUPPRESS,
                            help="machine-readable JSON on stdout")
    return parent


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Themis packet-spraying reproduction experiments")
    parser.add_argument("--quiet", action="store_true", default=False,
                        help="suppress progress/info output")
    parser.add_argument("--json", dest="json_mode", action="store_true",
                        default=False,
                        help="machine-readable JSON on stdout")
    out_flags = _output_flag_parent(with_json=True)
    # ``collective --json PATH`` predates the global flag and keeps its
    # meaning; use ``repro --json collective`` for machine output there.
    quiet_only = _output_flag_parent(with_json=False)
    sub = parser.add_subparsers(dest="command", required=True)

    mem = sub.add_parser("memory", parents=[out_flags],
                         help="Table 1 / §4 memory budget")
    mem.add_argument("--n-paths", type=int, default=256)
    mem.add_argument("--bandwidth-gbps", type=float, default=400.0)
    mem.add_argument("--rtt-us", type=float, default=2.0)
    mem.add_argument("--n-nic", type=int, default=16)
    mem.add_argument("--n-qp", type=int, default=100)
    mem.add_argument("--mtu", type=int, default=1500)
    mem.add_argument("--factor", type=float, default=1.5)

    mot = sub.add_parser("motivation", parents=[out_flags],
                         help="Fig. 1 motivation study")
    mot.add_argument("--scheme", choices=SCHEMES, default="rps")
    mot.add_argument("--transport", choices=TRANSPORTS, default="nic_sr")
    mot.add_argument("--flow-bytes", type=int, default=4_000_000)
    mot.add_argument("--seed", type=int, default=1)

    col = sub.add_parser("collective", parents=[quiet_only],
                         help="one §5 collective run")
    col.add_argument("--collective", default="allreduce",
                     choices=("allreduce", "allgather", "reducescatter",
                              "alltoall", "hd_allreduce"))
    col.add_argument("--scheme", choices=SCHEMES, default="themis")
    col.add_argument("--ti-us", type=float, default=900.0)
    col.add_argument("--td-us", type=float, default=4.0)
    col.add_argument("--seed", type=int, default=1)
    col.add_argument("--json", metavar="PATH", default=None,
                     help="write the run summary as JSON")

    swp = sub.add_parser("sweep", parents=[out_flags],
                         help="a full Fig. 5 panel")
    swp.add_argument("--collective", default="allreduce",
                     choices=("allreduce", "alltoall"))
    swp.add_argument("--schemes", default="ecmp,ar,themis")
    swp.add_argument("--seed", type=int, default=1)
    swp.add_argument("--workers", type=int, default=1,
                     help="parallel worker subprocesses (1 = serial)")
    swp.add_argument("--resume", metavar="PATH", default=None,
                     help="JSONL checkpoint: completed cells stream "
                          "here and are skipped on re-run")
    swp.add_argument("--timeout", type=float, default=None, metavar="S",
                     help="per-job wall-clock timeout in seconds "
                          "(workers > 1 only)")
    swp.add_argument("--retries", type=int, default=2,
                     help="retries per job on worker crash/timeout")
    swp.add_argument("--cache", metavar="DB", default=None,
                     help="results store used as a read-through run "
                          "cache (cells with stored results skip "
                          "execution)")
    swp.add_argument("--progress", action="store_true",
                     help="print per-job progress lines")

    job = sub.add_parser("jobs", parents=[out_flags],
                         help="status of a job checkpoint file")
    job.add_argument("--checkpoint", required=True, metavar="PATH",
                     help="JSONL checkpoint written by sweep --resume")

    ben = sub.add_parser("bench", parents=[out_flags],
                         help="engine perf benchmark "
                              "(writes BENCH_engine.json)")
    ben.add_argument("--quick", action="store_true",
                     help="~8x smaller messages; CI smoke mode")
    ben.add_argument("--no-compare", action="store_true",
                     help="skip the heapq reference-engine A/B run")
    ben.add_argument("--repeats", type=int, default=None,
                     help="best-of-N repeats per measurement "
                          "(default: 3 full, 1 quick)")
    ben.add_argument("--out", default="BENCH_engine.json",
                     help="result file (empty string to skip writing)")
    ben.add_argument("--baseline", metavar="PATH", default=None,
                     help="tracked bench JSON to gate against; exits "
                          "non-zero on regression")
    ben.add_argument("--max-regression", type=float, default=0.30,
                     metavar="FRAC",
                     help="allowed events/sec drop vs --baseline "
                          "(default 0.30 = 30%%)")
    ben.add_argument("--max-tracing-regression", type=float, default=0.15,
                     metavar="FRAC",
                     help="allowed growth of the tracing overhead_ratio "
                          "vs --baseline (default 0.15 = 15%%)")
    ben.add_argument("--cost-model-out", metavar="PATH", default=None,
                     help="also write the fitted per-event-class cost "
                          "model to this JSON file (CI artifact)")

    pmap = sub.add_parser("pathmap", parents=[out_flags],
                          help="Fig. 3 PathMap on a fat-tree")
    pmap.add_argument("--k", type=int, default=4)
    pmap.add_argument("--src", type=int, default=0)
    pmap.add_argument("--dst", type=int, default=15)
    pmap.add_argument("--sport", type=int, default=4242)

    trc = sub.add_parser("trace", parents=[out_flags],
                         help="traced lossy alltoall + NACK causality "
                              "audit / Perfetto export")
    trc.add_argument("report", nargs="?", default="nacks",
                     choices=("nacks",),
                     help="which report to print (default: nacks)")
    trc.add_argument("--nodes", type=int, default=32,
                     help="fabric size (even, >= 4; default 32)")
    trc.add_argument("--loss", type=float, default=0.01,
                     help="uplink loss probability (default 0.01)")
    trc.add_argument("--seed", type=int, default=7)
    trc.add_argument("--bytes", type=int, default=20_000,
                     help="message size per alltoall pair")
    trc.add_argument("--scheme", choices=SCHEMES, default="themis")
    trc.add_argument("--limit", type=int, default=50,
                     help="max decisions printed in the report")
    trc.add_argument("--perfetto", metavar="PATH", default=None,
                     help="write a Chrome/Perfetto trace JSON "
                          "(open at ui.perfetto.dev)")
    trc.add_argument("--dump", metavar="PATH", default=None,
                     help="also write the flight ring as JSONL")
    trc.add_argument("--fault-link", metavar="A:B", default=None,
                     help="flap this cable mid-flight (link-down "
                          "resilience audit; e.g. tor0:spine0)")
    trc.add_argument("--fault-at-us", type=float, default=40.0,
                     help="when the --fault-link cable goes down")
    trc.add_argument("--fault-down-us", type=float, default=80.0,
                     help="how long the --fault-link cable stays down")

    flt = sub.add_parser("faults", parents=[out_flags],
                         help="fault-injection campaigns "
                              "(repro.faults scenarios)")
    flt_sub = flt.add_subparsers(dest="faults_command", required=True)
    flt_run = flt_sub.add_parser("run", parents=[out_flags],
                                 help="run a campaign on the job runner")
    spec_src = flt_run.add_mutually_exclusive_group(required=True)
    spec_src.add_argument("--spec", metavar="PATH",
                          help="declarative scenario JSON file")
    spec_src.add_argument("--name", metavar="SCENARIO",
                          help="builtin scenario name "
                               "(see 'repro faults list')")
    flt_run.add_argument("--seeds", type=int, default=3,
                         help="number of seeds (cells) to run")
    flt_run.add_argument("--seed-base", type=int, default=1,
                         help="first seed value")
    flt_run.add_argument("--workers", type=int, default=1,
                         help="parallel worker subprocesses")
    flt_run.add_argument("--timeout", type=float, default=None,
                         metavar="S", help="per-cell wall timeout")
    flt_run.add_argument("--retries", type=int, default=2,
                         help="retries per cell on crash/timeout")
    flt_run.add_argument("--resume", metavar="PATH", default=None,
                         help="JSONL checkpoint for resume")
    flt_run.add_argument("--cache", metavar="DB", default=None,
                         help="results store used as a read-through "
                              "run cache")
    flt_run.add_argument("--out", metavar="PATH", default=None,
                         help="write the repro-faults-v1 campaign "
                              "document as JSON")
    flt_run.add_argument("--progress", action="store_true",
                         help="print per-cell progress lines")
    flt_sub.add_parser("list", parents=[out_flags],
                       help="list builtin scenarios")
    flt_show = flt_sub.add_parser("show", parents=[out_flags],
                                  help="print a compiled scenario spec")
    show_src = flt_show.add_mutually_exclusive_group(required=True)
    show_src.add_argument("--spec", metavar="PATH",
                          help="declarative scenario JSON file")
    show_src.add_argument("--name", metavar="SCENARIO",
                          help="builtin scenario name")

    arn = sub.add_parser("arena", parents=[out_flags],
                         help="LB policy head-to-head ranking "
                              "(baseline zoo arena)")
    arn.add_argument("--quick", action="store_true",
                     help="8-NIC fabrics, small messages; CI smoke mode")
    arn.add_argument("--lbs", default=None,
                     help="comma-separated LB policies "
                          "(default: the full zoo)")
    arn.add_argument("--transports", default=None,
                     help="comma-separated arena transports "
                          "(commodity,themis)")
    arn.add_argument("--ccs", default=None,
                     help="comma-separated CC settings (dcqcn,fixed; "
                          "default dcqcn)")
    arn.add_argument("--workloads", default=None,
                     help="comma-separated workloads "
                          "(alltoall,incast,allreduce)")
    arn.add_argument("--topos", default=None,
                     help="comma-separated topology presets "
                          "(leaf_spine,fat_tree,dragonfly)")
    arn.add_argument("--seeds", type=int, default=1,
                     help="number of seeds per cell")
    arn.add_argument("--seed-base", type=int, default=1,
                     help="first seed value")
    arn.add_argument("--bytes", type=int, default=None,
                     help="message bytes per workload (default: preset)")
    arn.add_argument("--deadline-us", type=float, default=None,
                     help="per-cell sim-time budget (default: preset)")
    arn.add_argument("--workers", type=int, default=1,
                     help="parallel worker subprocesses (1 = serial)")
    arn.add_argument("--timeout", type=float, default=None, metavar="S",
                     help="per-cell wall timeout (workers > 1 only)")
    arn.add_argument("--retries", type=int, default=2,
                     help="retries per cell on crash/timeout")
    arn.add_argument("--resume", metavar="PATH", default=None,
                     help="JSONL checkpoint for resume")
    arn.add_argument("--cache", metavar="DB", default=None,
                     help="results store used as a read-through run "
                          "cache")
    arn.add_argument("--out", metavar="PATH", default=None,
                     help="write the arena document as JSON")
    arn.add_argument("--progress", action="store_true",
                     help="print per-cell progress lines")

    prof = sub.add_parser("profile", parents=[out_flags],
                          help="wall-time histogram per event-handler "
                               "type on a small traced scenario")
    prof.add_argument("--nodes", type=int, default=8,
                      help="fabric size (even, >= 4; default 8)")
    prof.add_argument("--loss", type=float, default=0.01)
    prof.add_argument("--seed", type=int, default=7)
    prof.add_argument("--bytes", type=int, default=20_000)
    prof.add_argument("--scheme", choices=SCHEMES, default="themis")
    prof.add_argument("--top", type=int, default=None,
                      help="only print the N most expensive handlers")
    prof.add_argument("--out", metavar="PATH", default=None,
                      help="write the profile report as JSON")

    res = sub.add_parser("results", parents=[out_flags],
                         help="spec-hash results store "
                              "(ingest / list / show)")
    res_sub = res.add_subparsers(dest="results_command", required=True)
    res_ing = res_sub.add_parser("ingest", parents=[out_flags],
                                 help="ingest result documents into "
                                      "the store")
    res_ing.add_argument("paths", nargs="+", metavar="DOC",
                         help="repro-arena-v1 / repro-faults-v1 / "
                              "BENCH_engine.json files")
    res_ing.add_argument("--db", default="results.sqlite",
                         help="results store file "
                              "(default results.sqlite)")
    res_lst = res_sub.add_parser("list", parents=[out_flags],
                                 help="list ingested runs + store "
                                      "counts")
    res_lst.add_argument("--db", default="results.sqlite")
    res_shw = res_sub.add_parser("show", parents=[out_flags],
                                 help="re-emit one ingested run as its "
                                      "original document")
    res_shw.add_argument("run_id", type=int)
    res_shw.add_argument("--db", default="results.sqlite")
    res_shw.add_argument("--out", metavar="PATH", default=None,
                         help="write the re-emitted document to a file "
                              "instead of stdout")

    srv = sub.add_parser("serve", parents=[out_flags],
                         help="live results dashboard "
                              "(stdlib http.server)")
    srv.add_argument("--db", default="results.sqlite",
                     help="results store file (default results.sqlite)")
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument("--port", type=int, default=8000)
    srv.add_argument("--traces", metavar="DIR", default=None,
                     help="directory of exported Perfetto traces "
                          "(served at /traces/, deep-linked per cell)")
    srv.add_argument("--check", action="store_true",
                     help="render every page headlessly and exit "
                          "(CI gate; no socket is opened)")
    return parser


def cmd_memory(args: argparse.Namespace, console: Console) -> int:
    params = MemoryParams(
        n_paths=args.n_paths, bandwidth_bps=args.bandwidth_gbps * 1e9,
        rtt_last_s=args.rtt_us * 1e-6, n_nic=args.n_nic, n_qp=args.n_qp,
        mtu_bytes=args.mtu, expansion_factor=args.factor)
    breakdown = memory_overhead(params)
    console.out(format_table(["component", "value"], [
        ("PathMap bytes", breakdown.pathmap_bytes),
        ("queue entries / QP", breakdown.queue_entries),
        ("bytes / QP", breakdown.per_qp_bytes),
        ("total bytes", breakdown.total_bytes),
        ("total KB", f"{breakdown.total_kb():.1f}"),
        ("fraction of 64MB SRAM",
         percent(breakdown.sram_fraction(TOFINO_SRAM_BYTES))),
    ]))
    console.result({
        "pathmap_bytes": breakdown.pathmap_bytes,
        "queue_entries_per_qp": breakdown.queue_entries,
        "per_qp_bytes": breakdown.per_qp_bytes,
        "total_bytes": breakdown.total_bytes,
        "total_kb": round(breakdown.total_kb(), 1),
        "sram_fraction": breakdown.sram_fraction(TOFINO_SRAM_BYTES),
    })
    return 0


def cmd_motivation(args: argparse.Namespace, console: Console) -> int:
    config = motivation_config(scheme=args.scheme,
                               transport=args.transport, seed=args.seed)
    result = run_motivation(config, flow_bytes=args.flow_bytes)
    console.out(f"completed={result.completed}  "
                f"duration={result.duration_ns / 1000:.0f} us")
    console.out(f"spurious retx ratio: {percent(result.avg_retx_ratio)}")
    console.out(f"avg rate: {result.avg_rate_gbps:.1f} Gbps "
                f"({percent(result.avg_rate_fraction)} of line)")
    if result.rate_series_gbps:
        console.out("rate: " + sparkline([v for _, v in
                                          result.rate_series_gbps]))
    console.out(f"mean goodput: {result.mean_goodput_gbps:.2f} Gbps")
    console.out(f"NACKs={result.nacks}  drops={result.drops}  "
                f"blocked={result.summary['themis_blocked']}  "
                f"compensated={result.summary['themis_compensated']}")
    console.result({
        "scheme": args.scheme, "transport": args.transport,
        "completed": result.completed,
        "duration_ns": result.duration_ns,
        "avg_retx_ratio": result.avg_retx_ratio,
        "avg_rate_gbps": result.avg_rate_gbps,
        "mean_goodput_gbps": result.mean_goodput_gbps,
        "nacks": result.nacks, "drops": result.drops,
        "summary": result.summary,
    })
    return 0 if result.completed else 1


def cmd_collective(args: argparse.Namespace, console: Console) -> int:
    scale = EvalScale.from_env()
    config = fig5_config(args.scheme, args.ti_us, args.td_us,
                         scale=scale, seed=args.seed)
    result = run_collective(config, args.collective, scale=scale)
    console.out(f"{args.collective} / {args.scheme} "
                f"(TI={args.ti_us:.0f} us, TD={args.td_us:.0f} us)")
    console.out(f"tail completion: {result.tail_completion_ms:.3f} ms "
                f"(completed={result.completed})")
    for key, value in result.summary.items():
        console.out(f"  {key}: {value}")
    doc = {
        "collective": result.collective,
        "scheme": result.scheme,
        "ti_us": args.ti_us, "td_us": args.td_us,
        "seed": args.seed,
        "tail_completion_ms": result.tail_completion_ms,
        "group_completion_ns": result.group_completion_ns,
        "completed": result.completed,
        "summary": result.summary,
    }
    if args.json:
        from repro.harness.report import write_json
        path = write_json(args.json, doc)
        console.out(f"wrote {path}")
    console.result(doc)
    return 0 if result.completed else 1


def cmd_sweep(args: argparse.Namespace, console: Console) -> int:
    from repro.harness.metrics import JobCounters
    schemes = tuple(s.strip() for s in args.schemes.split(",") if s.strip())
    counters = JobCounters()
    result = run_fig5_sweep(args.collective, schemes=schemes,
                            seed=args.seed, workers=args.workers,
                            timeout_s=args.timeout, retries=args.retries,
                            checkpoint=args.resume, cache=args.cache,
                            counters=counters,
                            progress=console.progress_printer()
                            if args.progress else None)
    rows = []
    cells = {}
    for cond in DCQCN_SWEEP:
        row = [f"({cond[0]:.0f}, {cond[1]:.0f})"]
        row += [f"{result.runs[cond][s].tail_completion_ms:.3f}"
                for s in schemes]
        rows.append(row)
        cells[f"ti{cond[0]:.0f}_td{cond[1]:.0f}"] = {
            s: result.runs[cond][s].tail_completion_ms for s in schemes}
    console.out(format_table(["(TI, TD) us"] + [f"{s} ms" for s in schemes],
                             rows))
    doc = {"collective": args.collective, "schemes": list(schemes),
           "seed": args.seed, "cells": cells,
           "jobs": counters.summary()}
    if "ar" in schemes and "themis" in schemes:
        lo, hi = result.improvement_range("ar", "themis")
        console.out(f"Themis vs AR: {percent(lo)} .. {percent(hi)} lower")
        doc["themis_vs_ar"] = {"low": lo, "high": hi}
    console.out(f"jobs: {counters}")
    console.result(doc)
    return 0


def cmd_jobs(args: argparse.Namespace, console: Console) -> int:
    from repro.harness.jobs import checkpoint_status
    status = checkpoint_status(args.checkpoint)
    console.out(format_table(["field", "value"], [
        ("checkpoint", status["path"]),
        ("records", status["records"]),
        ("jobs", status["jobs"]),
        ("done", status["done"]),
        ("failed", status["failed"]),
        ("retried", status["retried"]),
        ("kinds", ", ".join(f"{k}={n}" for k, n
                            in sorted(status["kinds"].items())) or "-"),
        ("worker time (s)", status["elapsed_s"]),
    ]))
    for failure in status["failures"]:
        console.out(f"FAILED {failure['spec_hash']} "
                    f"{failure['label'] or '(unlabelled)'}: "
                    f"{failure['error']}")
    console.result(status)
    return 0 if not status["failures"] else 1


def cmd_pathmap(args: argparse.Namespace, console: Console) -> int:
    from repro.harness.network import Network, NetworkConfig, TopologySpec
    from repro.net.packet import FlowKey
    from repro.themis.pathmap import build_pathmap, trace_path

    net = Network(NetworkConfig(
        topology=TopologySpec(kind="fat_tree", fat_tree_k=args.k,
                              link_bandwidth_bps=25e9), scheme="ecmp"))
    flow = FlowKey(args.src, args.dst)
    n = net.topology.path_count(args.src, args.dst)
    deltas = build_pathmap(net.topology, flow, args.sport, n)
    rows = [[r, f"0x{d:04x}",
             " -> ".join(trace_path(net.topology, flow,
                                    args.sport ^ d))]
            for r, d in enumerate(deltas)]
    console.out(format_table(["PSN mod N", "delta", "path"], rows))
    console.result({"k": args.k, "src": args.src, "dst": args.dst,
                    "sport": args.sport, "n_paths": n,
                    "deltas": list(deltas)})
    return 0


def cmd_bench(args: argparse.Namespace, console: Console) -> int:
    import json as _json

    from repro.harness.bench import check_regression, run_bench
    doc = run_bench(quick=args.quick, compare=not args.no_compare,
                    repeats=args.repeats, out=args.out or None,
                    echo=console.info)
    if args.cost_model_out and doc.get("cost_model"):
        with open(args.cost_model_out, "w") as fh:
            _json.dump(doc["cost_model"], fh, indent=2)
            fh.write("\n")
        console.info(f"wrote {args.cost_model_out}")
    rc = 0
    if args.baseline:
        regressions = check_regression(
            doc, args.baseline, max_regression=args.max_regression,
            max_tracing_regression=args.max_tracing_regression,
            echo=console.info)
        # The cost model's own gate: every scenario prediction must stay
        # within the fitted tolerance, otherwise the event-cost structure
        # shifted (some class got slower) even if aggregates pass.
        for row in doc.get("cost_model", {}).get("predictions", []):
            if not row["ok"]:
                regressions.append(
                    f"cost model: {row['scenario']} prediction off by "
                    f"{row['error_pct']:+.1f}% (tolerance "
                    f"{100 * doc['cost_model']['tolerance']:.0f}%)")
        for line in regressions:
            console.out(f"REGRESSION: {line}")
        if regressions:
            # Attribute the regression: compare fitted per-class costs
            # against the baseline's to name the class that got slower.
            from repro.harness.costmodel import residual_table
            try:
                with open(args.baseline) as fh:
                    base_doc = _json.load(fh)
            except OSError:
                base_doc = {}
            if doc.get("cost_model") and base_doc.get("cost_model"):
                for line in residual_table(doc["cost_model"],
                                           base_doc["cost_model"]):
                    console.out(line)
        doc = dict(doc)
        doc["regressions"] = regressions
        rc = 1 if regressions else 0
    console.result(doc)
    return rc


def cmd_trace(args: argparse.Namespace, console: Console) -> int:
    from repro.harness.tracing import run_traced_alltoall
    from repro.obs.nacks import build_audit, format_report
    from repro.obs.record import NACK

    faults = None
    if args.fault_link:
        from repro.faults.spec import LinkFlap, Scenario
        faults = Scenario("trace-link-flap").add(LinkFlap(
            link=args.fault_link, at_us=args.fault_at_us,
            down_us=args.fault_down_us)).compile()
        console.info(f"fault: {args.fault_link} down at "
                     f"{args.fault_at_us:.0f} us for "
                     f"{args.fault_down_us:.0f} us")
    console.info(f"running traced {args.nodes}-node alltoall "
                 f"(scheme={args.scheme}, loss={args.loss:.3f}, "
                 f"seed={args.seed}) ...")
    net, recorder = run_traced_alltoall(
        nodes=args.nodes, loss=args.loss, seed=args.seed,
        message_bytes=args.bytes, scheme=args.scheme,
        retain_all=args.perfetto is not None, faults=faults)
    console.info(f"{recorder.total_events()} trace events recorded, "
                 f"{net.sim.executed} sim events executed")
    audit = build_audit(recorder.records(NACK))
    console.out(format_report(audit, limit=args.limit))
    if args.perfetto:
        from repro.obs.perfetto import write_chrome_trace
        # All categories were retained, so export the full run, not just
        # the last-N flight ring.
        events: list = []
        for cat in sorted(recorder.retain):
            events.extend(recorder.records(cat))
        events.sort(key=lambda r: r[0])
        write_chrome_trace(events,
                           args.perfetto,
                           label=f"trace-alltoall-{args.nodes}")
        console.out(f"wrote Perfetto trace {args.perfetto} "
                    "(open at https://ui.perfetto.dev)")
    if args.dump:
        path = recorder.dump_flight(args.dump, reason="cli")
        console.out(f"wrote flight dump {path}")
    summary = audit.summary()
    doc = {
        "report": "nacks",
        "params": {"nodes": args.nodes, "loss": args.loss,
                   "seed": args.seed, "bytes": args.bytes,
                   "scheme": args.scheme},
        "metrics": net.metrics.summary(),
        "audit": summary,
    }
    if faults is not None:
        from repro.obs.record import FAULT
        injector = net.fault_injector
        doc["faults"] = {
            "spec": faults["name"],
            "scheduled": len(faults["events"]),
            "applied": len(injector.applied) if injector else 0,
            "recorded": len(recorder.records(FAULT)),
        }
    console.result(doc)
    return 0 if summary["unexplained"] == 0 else 1


def cmd_profile(args: argparse.Namespace, console: Console) -> int:
    from repro.harness.tracing import TRACE_DEADLINE_NS, \
        build_traced_alltoall
    from repro.obs.profile import Profiler
    from repro.obs.record import Recorder

    console.info(f"profiling {args.nodes}-node alltoall "
                 f"(scheme={args.scheme}, loss={args.loss:.3f}) ...")
    # Empty-category recorder: the wiring paths stay exercised but no
    # emits fire, so the histogram reflects the engine, not the tracer.
    net, _ = build_traced_alltoall(
        nodes=args.nodes, loss=args.loss, seed=args.seed,
        message_bytes=args.bytes, scheme=args.scheme,
        recorder=Recorder(categories=()))
    with Profiler(net.sim) as prof:
        net.run(until_ns=TRACE_DEADLINE_NS)
    net.stop()
    report = prof.report()
    table = prof.format_table()
    if args.top is not None:
        lines = table.splitlines()
        if len(lines) > args.top + 2:  # header + N rows + total line
            table = "\n".join(lines[:1 + args.top] + [lines[-1]])
        report = dict(report)
        report["handlers"] = report["handlers"][:args.top]
    console.out(table)
    doc = {"params": {"nodes": args.nodes, "loss": args.loss,
                      "seed": args.seed, "bytes": args.bytes,
                      "scheme": args.scheme},
           "sim_events": net.sim.executed, **report}
    if args.out:
        from repro.harness.report import write_json
        path = write_json(args.out, doc)
        console.out(f"wrote {path}")
    console.result(doc)
    return 0


def _faults_spec_from_args(args: argparse.Namespace) -> dict:
    from repro.faults.spec import compiled_spec, load_scenario
    if args.spec:
        return compiled_spec(load_scenario(args.spec))
    from repro.faults.scenarios import builtin
    return compiled_spec(builtin(args.name))


def cmd_faults(args: argparse.Namespace, console: Console) -> int:
    from repro.faults.spec import ScenarioError

    if args.faults_command == "list":
        from repro.faults.scenarios import BUILTIN_SCENARIOS
        rows = []
        for name in sorted(BUILTIN_SCENARIOS):
            spec = BUILTIN_SCENARIOS[name]().compile()
            rows.append((name, len(spec["events"]),
                         f"{max((e['at_us'] for e in spec['events']), default=0):.0f}"))
        console.out(format_table(["scenario", "events", "span (us)"],
                                 rows))
        console.result({"scenarios": sorted(BUILTIN_SCENARIOS)})
        return 0

    try:
        spec = _faults_spec_from_args(args)
    except (ScenarioError, LookupError) as exc:
        console.out(f"error: {exc}")
        console.result({"error": str(exc)})
        return 2

    if args.faults_command == "show":
        import json as _json
        console.out(_json.dumps(spec, indent=2))
        console.result(spec)
        return 0

    # run
    from repro.faults.campaign import build_faults_doc, run_campaign
    seeds = list(range(args.seed_base, args.seed_base + args.seeds))
    console.info(f"campaign {spec['name']!r}: {len(spec['events'])} "
                 f"fault events x {len(seeds)} seeds "
                 f"(workers={args.workers})")
    summary = run_campaign(spec, seeds, workers=args.workers,
                           timeout_s=args.timeout, retries=args.retries,
                           checkpoint=args.resume, cache=args.cache,
                           progress=console.progress_printer()
                           if args.progress else None)
    rows = []
    for cell in summary["cells"]:
        goodput = cell["goodput"]
        rows.append((
            cell["seed"],
            "yes" if cell["completed"] else "NO",
            cell["tail_stretch"] if cell["tail_stretch"] is not None
            else "-",
            goodput["dip_frac"] if goodput["dip_frac"] is not None
            else "-",
            goodput["recovery_ns"] if goodput["recovery_ns"] is not None
            else "-",
            cell["nacks"]["unexplained"],
        ))
    console.out(format_table(
        ["seed", "done", "stretch", "dip", "recovery_ns",
         "unexplained"], rows))
    for failure in summary["failures"]:
        console.out(f"FAILED seed {failure['seed']}: {failure['error']}")
    for problem in summary["validation_problems"]:
        console.out(f"INVALID: {problem}")
    if "aggregate" in summary:
        agg = summary["aggregate"]
        console.out(f"{agg['completed']}/{agg['cells']} cells completed; "
                    f"unexplained NACK decisions: "
                    f"{agg['unexplained_nacks']}")
    if args.out:
        from repro.harness.report import write_json
        # The versioned ingest document: the summary minus the job
        # counters, so a cache-warm re-run writes identical bytes.
        path = write_json(args.out, build_faults_doc(summary))
        console.out(f"wrote {path}")
    console.result(summary)
    ok = (not summary["failures"]
          and not summary["validation_problems"])
    return 0 if ok else 1


def cmd_arena(args: argparse.Namespace, console: Console) -> int:
    from repro.harness import arena
    from repro.harness.metrics import JobCounters

    def csv(value: Optional[str], default: Sequence[str]) -> tuple:
        if value is None:
            return tuple(default)
        return tuple(v.strip() for v in value.split(",") if v.strip())

    lbs = csv(args.lbs, arena.LB_POLICIES)
    transports = csv(args.transports, arena.ARENA_TRANSPORTS)
    ccs = csv(args.ccs, ("dcqcn",))
    workloads = csv(args.workloads, arena.WORKLOADS)
    presets = (arena.QUICK_TOPOLOGIES if args.quick
               else arena.FULL_TOPOLOGIES)
    topo_names = csv(args.topos, tuple(presets))
    unknown = [t for t in topo_names if t not in presets]
    if unknown:
        console.out(f"error: unknown topology preset(s) {unknown}; "
                    f"known: {sorted(presets)}")
        return 2
    topologies = {name: presets[name] for name in topo_names}
    seeds = tuple(range(args.seed_base, args.seed_base + args.seeds))
    counters = JobCounters()
    n_cells = (len(lbs) * len(transports) * len(ccs) * len(workloads)
               * len(topologies) * len(seeds))
    console.info(f"arena: {len(lbs)} LBs x {len(transports)} transports "
                 f"x {len(ccs)} cc x {len(workloads)} workloads x "
                 f"{len(topologies)} topologies x {len(seeds)} seeds "
                 f"= {n_cells} cells (workers={args.workers})")
    doc = arena.run_arena(
        workers=args.workers, timeout_s=args.timeout,
        retries=args.retries, checkpoint=args.resume, cache=args.cache,
        counters=counters,
        progress=console.progress_printer() if args.progress else None,
        lbs=lbs, transports=transports, ccs=ccs, workloads=workloads,
        topologies=topologies, seeds=seeds, quick=args.quick,
        message_bytes=args.bytes, deadline_us=args.deadline_us)
    console.out(arena.render_arena_table(doc))
    incomplete = [c for c in doc["cells"] if not c["completed"]]
    if incomplete:
        console.out(f"{len(incomplete)}/{len(doc['cells'])} cells "
                    f"did not complete before the deadline")
    console.info(f"jobs: {counters}")
    if args.out:
        from repro.harness.report import write_json
        path = write_json(args.out, doc)
        console.out(f"wrote {path}")
    console.result(doc)
    return 0 if not incomplete else 1


def cmd_results(args: argparse.Namespace, console: Console) -> int:
    import json as _json

    from repro.results import (IngestError, ResultsStore, emit_arena_doc,
                               emit_faults_doc, ingest_file)

    if args.results_command == "ingest":
        receipts, problems = [], []
        with ResultsStore(args.db) as store:
            for path in args.paths:
                try:
                    receipt = ingest_file(store, path)
                except (IngestError, OSError) as exc:
                    problems.append(f"{path}: {exc}")
                    continue
                receipts.append({"path": path, **receipt})
                console.out(f"ingested {path} as run "
                            f"{receipt['run_id']} ({receipt['kind']})")
        for problem in problems:
            console.out(f"error: {problem}")
        console.result({"db": args.db, "ingested": receipts,
                        "errors": problems})
        return 0 if not problems else 1

    if args.results_command == "list":
        from repro.results.query import list_runs
        with ResultsStore(args.db) as store:
            counts = store.counts()
            runs = list_runs(store.conn)
        rows = [(r["run_id"], r["schema"], r["name"], r["source"])
                for r in runs]
        console.out(format_table(["run", "schema", "name", "source"],
                                 rows))
        console.out(f"{counts['job_results']} cached job result(s), "
                    f"{counts['runs']} ingested run(s)")
        console.result({**counts, "runs": runs})
        return 0

    # show: re-emit one run as its original document
    with ResultsStore(args.db) as store:
        run = store.run_row(args.run_id)
        if run is None:
            console.out(f"error: no run {args.run_id} in {args.db}")
            console.result({"error": f"no run {args.run_id}"})
            return 2
        try:
            if run["schema"].startswith("repro-arena-"):
                doc = emit_arena_doc(store, args.run_id)
            elif run["schema"].startswith("repro-faults-"):
                doc = emit_faults_doc(store, args.run_id)
            else:
                console.out(f"error: run {args.run_id} has schema "
                            f"{run['schema']!r}; only arena/faults runs "
                            "re-emit losslessly")
                console.result({"error": "not re-emittable",
                                "schema": run["schema"]})
                return 2
        except IngestError as exc:
            console.out(f"error: {exc}")
            console.result({"error": str(exc)})
            return 2
    if args.out:
        from repro.harness.report import write_json
        path = write_json(args.out, doc)
        console.out(f"wrote {path}")
    else:
        console.out(_json.dumps(doc, indent=2))
    console.result(doc)
    return 0


def cmd_serve(args: argparse.Namespace, console: Console) -> int:
    import os as _os

    if not _os.path.exists(args.db):
        console.out(f"error: results store not found: {args.db} "
                    "(create one with 'repro results ingest')")
        console.result({"error": f"no store at {args.db}"})
        return 2
    if args.check:
        from repro.results.server import check_pages
        problems = check_pages(args.db, traces_dir=args.traces)
        for problem in problems:
            console.out(f"PAGE ERROR: {problem}")
        console.out(f"checked dashboard pages against {args.db}: "
                    f"{len(problems)} problem(s)")
        console.result({"db": args.db, "problems": problems})
        return 0 if not problems else 1
    from repro.results.server import make_server
    server = make_server(args.db, host=args.host, port=args.port,
                         traces_dir=args.traces,
                         quiet=getattr(args, "quiet", False))
    host, port = server.server_address[:2]
    console.info(f"serving {args.db} at http://{host}:{port}/ "
                 "(Ctrl-C to stop)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        console.info("stopped")
    finally:
        server.server_close()
    return 0


COMMANDS = {
    "memory": cmd_memory,
    "bench": cmd_bench,
    "motivation": cmd_motivation,
    "collective": cmd_collective,
    "sweep": cmd_sweep,
    "jobs": cmd_jobs,
    "pathmap": cmd_pathmap,
    "trace": cmd_trace,
    "profile": cmd_profile,
    "faults": cmd_faults,
    "arena": cmd_arena,
    "results": cmd_results,
    "serve": cmd_serve,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    console = Console(quiet=getattr(args, "quiet", False),
                      json_mode=getattr(args, "json_mode", False))
    return COMMANDS[args.command](args, console)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
