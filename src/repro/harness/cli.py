"""Command-line interface: ``python -m repro <command>``.

Subcommands mirror the paper's experiments:

* ``memory``      — Table 1 / §4 memory budget (instant).
* ``motivation``  — the Fig. 1 study on one scheme/transport.
* ``collective``  — one collective under one scheme + DCQCN config.
* ``sweep``       — a full Fig. 5 panel (``--workers/--resume/--timeout``
  for parallel, checkpointed execution).
* ``jobs``        — status of a sweep checkpoint file.
* ``bench``       — engine perf benchmark (``--baseline`` gates CI).
* ``pathmap``     — build and print a PathMap on a fat-tree (Fig. 3).

Installed as the ``repro`` console script, so ``repro sweep`` works
without ``python -m``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.harness.collective_runner import (EvalScale, fig5_config,
                                             run_collective)
from repro.harness.motivation import motivation_config, run_motivation
from repro.harness.network import SCHEMES, TRANSPORTS
from repro.harness.report import format_table, percent, sparkline
from repro.harness.sweep import DCQCN_SWEEP, run_fig5_sweep
from repro.themis.memory import (MemoryParams, TOFINO_SRAM_BYTES,
                                 memory_overhead)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Themis packet-spraying reproduction experiments")
    sub = parser.add_subparsers(dest="command", required=True)

    mem = sub.add_parser("memory", help="Table 1 / §4 memory budget")
    mem.add_argument("--n-paths", type=int, default=256)
    mem.add_argument("--bandwidth-gbps", type=float, default=400.0)
    mem.add_argument("--rtt-us", type=float, default=2.0)
    mem.add_argument("--n-nic", type=int, default=16)
    mem.add_argument("--n-qp", type=int, default=100)
    mem.add_argument("--mtu", type=int, default=1500)
    mem.add_argument("--factor", type=float, default=1.5)

    mot = sub.add_parser("motivation", help="Fig. 1 motivation study")
    mot.add_argument("--scheme", choices=SCHEMES, default="rps")
    mot.add_argument("--transport", choices=TRANSPORTS, default="nic_sr")
    mot.add_argument("--flow-bytes", type=int, default=4_000_000)
    mot.add_argument("--seed", type=int, default=1)

    col = sub.add_parser("collective", help="one §5 collective run")
    col.add_argument("--collective", default="allreduce",
                     choices=("allreduce", "allgather", "reducescatter",
                              "alltoall", "hd_allreduce"))
    col.add_argument("--scheme", choices=SCHEMES, default="themis")
    col.add_argument("--ti-us", type=float, default=900.0)
    col.add_argument("--td-us", type=float, default=4.0)
    col.add_argument("--seed", type=int, default=1)
    col.add_argument("--json", metavar="PATH", default=None,
                     help="write the run summary as JSON")

    swp = sub.add_parser("sweep", help="a full Fig. 5 panel")
    swp.add_argument("--collective", default="allreduce",
                     choices=("allreduce", "alltoall"))
    swp.add_argument("--schemes", default="ecmp,ar,themis")
    swp.add_argument("--seed", type=int, default=1)
    swp.add_argument("--workers", type=int, default=1,
                     help="parallel worker subprocesses (1 = serial)")
    swp.add_argument("--resume", metavar="PATH", default=None,
                     help="JSONL checkpoint: completed cells stream "
                          "here and are skipped on re-run")
    swp.add_argument("--timeout", type=float, default=None, metavar="S",
                     help="per-job wall-clock timeout in seconds "
                          "(workers > 1 only)")
    swp.add_argument("--retries", type=int, default=2,
                     help="retries per job on worker crash/timeout")
    swp.add_argument("--progress", action="store_true",
                     help="print per-job progress lines")

    job = sub.add_parser("jobs", help="status of a job checkpoint file")
    job.add_argument("--checkpoint", required=True, metavar="PATH",
                     help="JSONL checkpoint written by sweep --resume")

    ben = sub.add_parser("bench", help="engine perf benchmark "
                                       "(writes BENCH_engine.json)")
    ben.add_argument("--quick", action="store_true",
                     help="~8x smaller messages; CI smoke mode")
    ben.add_argument("--no-compare", action="store_true",
                     help="skip the heapq reference-engine A/B run")
    ben.add_argument("--repeats", type=int, default=None,
                     help="best-of-N repeats per measurement "
                          "(default: 3 full, 1 quick)")
    ben.add_argument("--out", default="BENCH_engine.json",
                     help="result file (empty string to skip writing)")
    ben.add_argument("--baseline", metavar="PATH", default=None,
                     help="tracked bench JSON to gate against; exits "
                          "non-zero on regression")
    ben.add_argument("--max-regression", type=float, default=0.30,
                     metavar="FRAC",
                     help="allowed events/sec drop vs --baseline "
                          "(default 0.30 = 30%%)")

    pmap = sub.add_parser("pathmap", help="Fig. 3 PathMap on a fat-tree")
    pmap.add_argument("--k", type=int, default=4)
    pmap.add_argument("--src", type=int, default=0)
    pmap.add_argument("--dst", type=int, default=15)
    pmap.add_argument("--sport", type=int, default=4242)
    return parser


def cmd_memory(args: argparse.Namespace) -> int:
    params = MemoryParams(
        n_paths=args.n_paths, bandwidth_bps=args.bandwidth_gbps * 1e9,
        rtt_last_s=args.rtt_us * 1e-6, n_nic=args.n_nic, n_qp=args.n_qp,
        mtu_bytes=args.mtu, expansion_factor=args.factor)
    breakdown = memory_overhead(params)
    print(format_table(["component", "value"], [
        ("PathMap bytes", breakdown.pathmap_bytes),
        ("queue entries / QP", breakdown.queue_entries),
        ("bytes / QP", breakdown.per_qp_bytes),
        ("total bytes", breakdown.total_bytes),
        ("total KB", f"{breakdown.total_kb():.1f}"),
        ("fraction of 64MB SRAM",
         percent(breakdown.sram_fraction(TOFINO_SRAM_BYTES))),
    ]))
    return 0


def cmd_motivation(args: argparse.Namespace) -> int:
    config = motivation_config(scheme=args.scheme,
                               transport=args.transport, seed=args.seed)
    result = run_motivation(config, flow_bytes=args.flow_bytes)
    print(f"completed={result.completed}  "
          f"duration={result.duration_ns / 1000:.0f} us")
    print(f"spurious retx ratio: {percent(result.avg_retx_ratio)}")
    print(f"avg rate: {result.avg_rate_gbps:.1f} Gbps "
          f"({percent(result.avg_rate_fraction)} of line)")
    if result.rate_series_gbps:
        print("rate: " + sparkline([v for _, v in
                                    result.rate_series_gbps]))
    print(f"mean goodput: {result.mean_goodput_gbps:.2f} Gbps")
    print(f"NACKs={result.nacks}  drops={result.drops}  "
          f"blocked={result.summary['themis_blocked']}  "
          f"compensated={result.summary['themis_compensated']}")
    return 0 if result.completed else 1


def cmd_collective(args: argparse.Namespace) -> int:
    scale = EvalScale.from_env()
    config = fig5_config(args.scheme, args.ti_us, args.td_us,
                         scale=scale, seed=args.seed)
    result = run_collective(config, args.collective, scale=scale)
    print(f"{args.collective} / {args.scheme} "
          f"(TI={args.ti_us:.0f} us, TD={args.td_us:.0f} us)")
    print(f"tail completion: {result.tail_completion_ms:.3f} ms "
          f"(completed={result.completed})")
    for key, value in result.summary.items():
        print(f"  {key}: {value}")
    if args.json:
        from repro.harness.report import write_json
        path = write_json(args.json, {
            "collective": result.collective,
            "scheme": result.scheme,
            "ti_us": args.ti_us, "td_us": args.td_us,
            "seed": args.seed,
            "tail_completion_ms": result.tail_completion_ms,
            "group_completion_ns": result.group_completion_ns,
            "completed": result.completed,
            "summary": result.summary,
        })
        print(f"wrote {path}")
    return 0 if result.completed else 1


def cmd_sweep(args: argparse.Namespace) -> int:
    from repro.harness.metrics import JobCounters
    schemes = tuple(s.strip() for s in args.schemes.split(",") if s.strip())
    counters = JobCounters()
    result = run_fig5_sweep(args.collective, schemes=schemes,
                            seed=args.seed, workers=args.workers,
                            timeout_s=args.timeout, retries=args.retries,
                            checkpoint=args.resume, counters=counters,
                            progress=print if args.progress else None)
    rows = []
    for cond in DCQCN_SWEEP:
        row = [f"({cond[0]:.0f}, {cond[1]:.0f})"]
        row += [f"{result.runs[cond][s].tail_completion_ms:.3f}"
                for s in schemes]
        rows.append(row)
    print(format_table(["(TI, TD) us"] + [f"{s} ms" for s in schemes],
                       rows))
    if "ar" in schemes and "themis" in schemes:
        lo, hi = result.improvement_range("ar", "themis")
        print(f"Themis vs AR: {percent(lo)} .. {percent(hi)} lower")
    print(f"jobs: {counters}")
    return 0


def cmd_jobs(args: argparse.Namespace) -> int:
    from repro.harness.jobs import checkpoint_status
    status = checkpoint_status(args.checkpoint)
    print(format_table(["field", "value"], [
        ("checkpoint", status["path"]),
        ("records", status["records"]),
        ("jobs", status["jobs"]),
        ("done", status["done"]),
        ("failed", status["failed"]),
        ("retried", status["retried"]),
        ("kinds", ", ".join(f"{k}={n}" for k, n
                            in sorted(status["kinds"].items())) or "-"),
        ("worker time (s)", status["elapsed_s"]),
    ]))
    for failure in status["failures"]:
        print(f"FAILED {failure['spec_hash']} "
              f"{failure['label'] or '(unlabelled)'}: {failure['error']}")
    return 0 if not status["failures"] else 1


def cmd_pathmap(args: argparse.Namespace) -> int:
    from repro.harness.network import Network, NetworkConfig, TopologySpec
    from repro.net.packet import FlowKey
    from repro.themis.pathmap import build_pathmap, trace_path

    net = Network(NetworkConfig(
        topology=TopologySpec(kind="fat_tree", fat_tree_k=args.k,
                              link_bandwidth_bps=25e9), scheme="ecmp"))
    flow = FlowKey(args.src, args.dst)
    n = net.topology.path_count(args.src, args.dst)
    deltas = build_pathmap(net.topology, flow, args.sport, n)
    rows = [[r, f"0x{d:04x}",
             " -> ".join(trace_path(net.topology, flow,
                                    args.sport ^ d))]
            for r, d in enumerate(deltas)]
    print(format_table(["PSN mod N", "delta", "path"], rows))
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.harness.bench import check_regression, run_bench
    doc = run_bench(quick=args.quick, compare=not args.no_compare,
                    repeats=args.repeats, out=args.out or None)
    if args.baseline:
        regressions = check_regression(
            doc, args.baseline, max_regression=args.max_regression)
        for line in regressions:
            print(f"REGRESSION: {line}")
        return 1 if regressions else 0
    return 0


COMMANDS = {
    "memory": cmd_memory,
    "bench": cmd_bench,
    "motivation": cmd_motivation,
    "collective": cmd_collective,
    "sweep": cmd_sweep,
    "jobs": cmd_jobs,
    "pathmap": cmd_pathmap,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
