"""Collective-communication experiment runner (§5 / Fig. 5 machinery).

Builds the evaluation fabric, starts the same collective in every
communication group simultaneously, and reports the *slowest group's*
completion time — the paper's metric for a training job's communication
bottleneck.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional

from repro.cc.dcqcn import DcqcnConfig
from repro.collectives import COLLECTIVE_CLASSES
from repro.collectives.group import cross_rack_groups
from repro.harness.network import Network, NetworkConfig, TopologySpec
from repro.sim.engine import MS, SEC, US
from repro.switch.ecn import EcnConfig

DEFAULT_DEADLINE_NS = 60 * SEC


@dataclass(frozen=True)
class EvalScale:
    """Size of the §5 evaluation.

    The default is a *rate-scaled* fabric: the paper runs 300 MB
    collectives over 400 Gbps links (a ~6 ms transfer, amortizing the
    900 us DCQCN recovery cycles it sweeps).  A pure-Python packet
    simulation cannot push 10^8 packets, so the default shrinks the
    message to 4 MB *and* the line rate to 25 Gbps together — keeping the
    transfer-time : DCQCN-timer ratio (the quantity the Fig. 5 sweep
    actually probes) in the paper's regime while staying at ~10^5 packets
    per run.  ECN thresholds and switch buffers scale with line rate.
    Export ``REPRO_EVAL_SCALE=paper`` for the full-size configuration.
    """

    num_tors: int = 4
    num_spines: int = 4
    nics_per_tor: int = 4
    collective_bytes: int = 4_000_000
    link_bandwidth_bps: float = 25e9
    ecn_kmin_bytes: int = 15_000
    ecn_kmax_bytes: int = 60_000
    buffer_bytes: int = 4_000_000

    @classmethod
    def from_env(cls) -> "EvalScale":
        """Paper-size fabric when REPRO_EVAL_SCALE=paper is exported."""
        if os.environ.get("REPRO_EVAL_SCALE", "").lower() == "paper":
            return cls(num_tors=16, num_spines=16, nics_per_tor=16,
                       collective_bytes=300_000_000,
                       link_bandwidth_bps=400e9,
                       ecn_kmin_bytes=100_000, ecn_kmax_bytes=400_000,
                       buffer_bytes=64 * 1024 * 1024)
        return cls()


def fig5_config(scheme: str, ti_us: float, td_us: float, *,
                scale: Optional[EvalScale] = None,
                seed: int = 1) -> NetworkConfig:
    """One Fig. 5 condition: 1:1 leaf-spine + DCQCN(TI, TD)."""
    scale = scale or EvalScale.from_env()
    topo = TopologySpec(kind="leaf_spine", num_tors=scale.num_tors,
                        num_spines=scale.num_spines,
                        nics_per_tor=scale.nics_per_tor,
                        link_bandwidth_bps=scale.link_bandwidth_bps,
                        link_delay_ns=US)
    dcqcn = DcqcnConfig().with_timers(ti_us, td_us)
    ecn = EcnConfig(kmin_bytes=scale.ecn_kmin_bytes,
                    kmax_bytes=scale.ecn_kmax_bytes, pmax=0.2)
    return NetworkConfig(topology=topo, scheme=scheme, transport="nic_sr",
                         dcqcn=dcqcn, ecn=ecn,
                         buffer_bytes=scale.buffer_bytes, seed=seed)


@dataclass
class CollectiveRunResult:
    """Outcome of one (scheme, collective, DCQCN config) condition."""

    scheme: str
    collective: str
    bytes_per_group: int
    tail_completion_ns: int
    group_completion_ns: list[int]
    completed: bool
    summary: dict = field(default_factory=dict)

    @property
    def tail_completion_ms(self) -> float:
        return self.tail_completion_ns / MS


def run_collective(config: NetworkConfig, collective: str, *,
                   bytes_per_group: Optional[int] = None,
                   scale: Optional[EvalScale] = None,
                   deadline_ns: int = DEFAULT_DEADLINE_NS
                   ) -> CollectiveRunResult:
    """Run ``collective`` in every cross-rack group simultaneously."""
    if collective not in COLLECTIVE_CLASSES:
        raise ValueError(f"unknown collective {collective!r}; "
                         f"expected one of {sorted(COLLECTIVE_CLASSES)}")
    scale = scale or EvalScale.from_env()
    nbytes = bytes_per_group or scale.collective_bytes
    net = Network(config)
    spec = config.topology
    groups = cross_rack_groups(spec.num_tors, spec.nics_per_tor)
    cls = COLLECTIVE_CLASSES[collective]
    collectives = [cls(net, members, nbytes) for members in groups]
    for coll in collectives:
        coll.start()
    net.run(until_ns=deadline_ns)
    completed = all(coll.complete for coll in collectives)
    net.stop()

    times = [coll.completion_time_ns() if coll.complete else deadline_ns
             for coll in collectives]
    return CollectiveRunResult(
        scheme=config.scheme, collective=collective,
        bytes_per_group=nbytes,
        tail_completion_ns=max(times),
        group_completion_ns=times, completed=completed,
        summary=net.metrics.summary())
