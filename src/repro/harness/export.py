"""Result export: per-flow CSV and experiment JSON payloads.

Downstream analysis (pandas, gnuplot, spreadsheets) wants flat files;
these helpers serialize a run's :class:`~repro.harness.metrics.Metrics`
without any third-party dependency.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.harness.metrics import Metrics

FLOW_FIELDS = (
    "src", "dst", "qp", "bytes_posted", "packets_sent",
    "retransmissions", "spurious_retransmissions", "nacks_received",
    "cnps_received", "timeouts", "receiver_duplicates", "receiver_ooo",
    "start_ns", "sender_done_ns", "receiver_done_ns", "goodput_gbps",
)


def flows_to_csv(metrics: "Metrics", path: str | Path) -> Path:
    """One row per flow (sender QP) with counters and timings."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(FLOW_FIELDS)
        for flow, stats in sorted(metrics.flows.items(),
                                  key=lambda kv: (kv[0].src, kv[0].dst,
                                                  kv[0].qp)):
            writer.writerow([
                flow.src, flow.dst, flow.qp, stats.bytes_posted,
                stats.packets_sent, stats.retransmissions,
                stats.spurious_retransmissions, stats.nacks_received,
                stats.cnps_received, stats.timeouts,
                stats.receiver_duplicates, stats.receiver_ooo,
                stats.start_ns, stats.sender_done_ns,
                stats.receiver_done_ns,
                round(stats.goodput_gbps(), 4),
            ])
    return path


def run_to_json(metrics: "Metrics", path: str | Path, *,
                extra: dict | None = None) -> Path:
    """Whole-run payload: global summary + Themis stats + per-flow."""
    payload = {
        "summary": metrics.summary(),
        "themis": {
            "nacks_inspected": metrics.themis.nacks_inspected,
            "nacks_blocked": metrics.themis.nacks_blocked,
            "nacks_forwarded": metrics.themis.nacks_forwarded,
            "nacks_compensated": metrics.themis.nacks_compensated,
            "compensation_cancelled":
                metrics.themis.compensation_cancelled,
            "tpsn_not_found": metrics.themis.tpsn_not_found,
            "queue_overflows": metrics.themis.queue_overflows,
        },
        "flows": [
            {
                "flow": str(flow),
                "bytes_posted": stats.bytes_posted,
                "packets_sent": stats.packets_sent,
                "retransmissions": stats.retransmissions,
                "goodput_gbps": round(stats.goodput_gbps(), 4),
                "receiver_done_ns": stats.receiver_done_ns,
            }
            for flow, stats in sorted(metrics.flows.items(),
                                      key=lambda kv: str(kv[0]))
        ],
    }
    if extra:
        payload["experiment"] = extra
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2))
    return path
