"""Experiment harness: network assembly, metrics, runners, reports."""

from repro.harness.collective_runner import (CollectiveRunResult, EvalScale,
                                             fig5_config, run_collective)
from repro.harness.metrics import FlowStats, Metrics, ThemisStats
from repro.harness.motivation import (MotivationResult, motivation_config,
                                      run_fig1d_comparison, run_motivation)
from repro.harness.analysis import (LinkUtilization, flow_fairness,
                                    jain_fairness, link_utilization,
                                    uplink_imbalance)
from repro.harness.network import (Network, NetworkConfig, TopologySpec,
                                   SCHEMES, TRANSPORTS)
from repro.harness.replication import (ReplicatedStat, replicate,
                                       replicate_many)
from repro.harness.sweep import (DCQCN_SWEEP, SweepResult, run_fig5_sweep)
from repro.obs.capture import PacketTracer, TraceEvent, attach_tracer

__all__ = [
    "Network", "NetworkConfig", "TopologySpec", "SCHEMES", "TRANSPORTS",
    "Metrics", "FlowStats", "ThemisStats",
    "MotivationResult", "motivation_config", "run_motivation",
    "run_fig1d_comparison",
    "CollectiveRunResult", "EvalScale", "fig5_config", "run_collective",
    "SweepResult", "DCQCN_SWEEP", "run_fig5_sweep",
    "ReplicatedStat", "replicate", "replicate_many",
    "PacketTracer", "TraceEvent", "attach_tracer",
    "LinkUtilization", "link_utilization", "uplink_imbalance",
    "jain_fairness", "flow_fairness",
]
