"""Fig. 5 parameter sweep: schemes x DCQCN (TI, TD) configurations.

Every (condition, scheme) cell is an independent simulation, so the
sweep expands into :class:`~repro.harness.jobs.JobSpec` units and runs
on the job runner: ``workers=1`` (the default) is the original serial
path, ``workers>1`` fans cells out across per-job subprocesses, and a
``checkpoint`` path makes an interrupted sweep resumable.  Aggregation
iterates the spec grid in deterministic (condition, scheme) order — not
completion order — so parallel results are bitwise-identical to serial.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Callable, Optional, Sequence

from repro.harness.collective_runner import CollectiveRunResult, EvalScale
from repro.harness.jobs import (JobRunner, JobSpec, raise_on_failures)
from repro.harness.metrics import JobCounters

#: The five (TI, TD) pairs of Fig. 5, in microseconds; (900, 4) is the
#: vendor-recommended configuration.
DCQCN_SWEEP: tuple[tuple[float, float], ...] = (
    (900, 4), (300, 4), (10, 4), (10, 50), (10, 200))

DEFAULT_SCHEMES = ("ecmp", "ar", "themis")


@dataclass
class SweepResult:
    """All conditions of one Fig. 5 panel."""

    collective: str
    #: (ti_us, td_us) -> scheme -> run result
    runs: dict[tuple[float, float], dict[str, CollectiveRunResult]] \
        = field(default_factory=dict)

    def tail_ms(self, ti_td: tuple[float, float], scheme: str) -> float:
        return self.runs[ti_td][scheme].tail_completion_ms

    def improvement_over(self, baseline: str, scheme: str,
                         ti_td: tuple[float, float]) -> float:
        """Relative completion-time reduction of ``scheme`` vs baseline
        (positive = faster), the paper's "X% lower" statistic."""
        base = self.tail_ms(ti_td, baseline)
        ours = self.tail_ms(ti_td, scheme)
        if base <= 0:
            return 0.0
        return 1.0 - ours / base

    def improvement_range(self, baseline: str = "ar",
                          scheme: str = "themis") -> tuple[float, float]:
        values = [self.improvement_over(baseline, scheme, cond)
                  for cond in self.runs]
        return (min(values), max(values))


def sweep_job_specs(collective: str = "allreduce", *,
                    schemes: Sequence[str] = DEFAULT_SCHEMES,
                    conditions: Sequence[tuple[float, float]] = DCQCN_SWEEP,
                    scale: Optional[EvalScale] = None,
                    bytes_per_group: Optional[int] = None,
                    seed: int = 1) -> list[JobSpec]:
    """Expand one Fig. 5 panel into self-describing job specs.

    The :class:`EvalScale` is resolved *here* (including the
    ``REPRO_EVAL_SCALE`` environment override) and baked into each spec,
    so workers never consult the environment and a checkpoint replays
    identically wherever it is resumed.
    """
    scale = scale or EvalScale.from_env()
    specs = []
    for ti_us, td_us in conditions:
        for scheme in schemes:
            specs.append(JobSpec(
                kind="collective", seed=seed,
                params={"scheme": scheme,
                        "ti_us": float(ti_us), "td_us": float(td_us),
                        "collective": collective,
                        "bytes_per_group": bytes_per_group,
                        "scale": asdict(scale)},
                label=(f"{collective}/{scheme} "
                       f"TI={ti_us:g}us TD={td_us:g}us seed={seed}")))
    return specs


def run_fig5_sweep(collective: str = "allreduce", *,
                   schemes: Sequence[str] = DEFAULT_SCHEMES,
                   conditions: Sequence[tuple[float, float]] = DCQCN_SWEEP,
                   scale: Optional[EvalScale] = None,
                   bytes_per_group: Optional[int] = None,
                   seed: int = 1,
                   workers: int = 1,
                   timeout_s: Optional[float] = None,
                   retries: int = 2,
                   checkpoint: Optional[str] = None,
                   cache=None,
                   counters: Optional[JobCounters] = None,
                   progress: Optional[Callable[[str], None]] = None
                   ) -> SweepResult:
    """Run every (condition, scheme) cell of one Fig. 5 panel."""
    specs = sweep_job_specs(collective, schemes=schemes,
                            conditions=conditions, scale=scale,
                            bytes_per_group=bytes_per_group, seed=seed)
    runner = JobRunner(workers=workers, timeout_s=timeout_s,
                       retries=retries, checkpoint=checkpoint,
                       cache=cache, counters=counters, progress=progress)
    outcomes = runner.run(specs)
    raise_on_failures(outcomes)

    result = SweepResult(collective)
    index = 0
    for ti_us, td_us in conditions:
        row: dict[str, CollectiveRunResult] = {}
        for scheme in schemes:
            payload = outcomes[specs[index].spec_hash].result
            row[scheme] = CollectiveRunResult(**payload)
            index += 1
        result.runs[(ti_us, td_us)] = row
    return result
