"""Fig. 5 parameter sweep: schemes x DCQCN (TI, TD) configurations."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.harness.collective_runner import (CollectiveRunResult,
                                             EvalScale, fig5_config,
                                             run_collective)

#: The five (TI, TD) pairs of Fig. 5, in microseconds; (900, 4) is the
#: vendor-recommended configuration.
DCQCN_SWEEP: tuple[tuple[float, float], ...] = (
    (900, 4), (300, 4), (10, 4), (10, 50), (10, 200))

DEFAULT_SCHEMES = ("ecmp", "ar", "themis")


@dataclass
class SweepResult:
    """All conditions of one Fig. 5 panel."""

    collective: str
    #: (ti_us, td_us) -> scheme -> run result
    runs: dict[tuple[float, float], dict[str, CollectiveRunResult]] \
        = field(default_factory=dict)

    def tail_ms(self, ti_td: tuple[float, float], scheme: str) -> float:
        return self.runs[ti_td][scheme].tail_completion_ms

    def improvement_over(self, baseline: str, scheme: str,
                         ti_td: tuple[float, float]) -> float:
        """Relative completion-time reduction of ``scheme`` vs baseline
        (positive = faster), the paper's "X% lower" statistic."""
        base = self.tail_ms(ti_td, baseline)
        ours = self.tail_ms(ti_td, scheme)
        if base <= 0:
            return 0.0
        return 1.0 - ours / base

    def improvement_range(self, baseline: str = "ar",
                          scheme: str = "themis") -> tuple[float, float]:
        values = [self.improvement_over(baseline, scheme, cond)
                  for cond in self.runs]
        return (min(values), max(values))


def run_fig5_sweep(collective: str = "allreduce", *,
                   schemes: Sequence[str] = DEFAULT_SCHEMES,
                   conditions: Sequence[tuple[float, float]] = DCQCN_SWEEP,
                   scale: Optional[EvalScale] = None,
                   bytes_per_group: Optional[int] = None,
                   seed: int = 1) -> SweepResult:
    """Run every (condition, scheme) cell of one Fig. 5 panel."""
    result = SweepResult(collective)
    for ti_us, td_us in conditions:
        row: dict[str, CollectiveRunResult] = {}
        for scheme in schemes:
            config = fig5_config(scheme, ti_us, td_us, scale=scale,
                                 seed=seed)
            row[scheme] = run_collective(config, collective,
                                         bytes_per_group=bytes_per_group,
                                         scale=scale)
        result.runs[(ti_us, td_us)] = row
    return result
