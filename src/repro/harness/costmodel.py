"""Analytical per-event-class cost model for the simulation engine.

The benchmark harness tracks *aggregate* events/sec per scenario, which
answers "did we get slower" but not "what got slower".  This module fits
a linear cost model

    wall_time  =  sum over event classes c of  (count_c * cost_c)

where an **event class** is the dispatched callback's qualname
(``Port._pump``, ``Switch.receive``, ``SenderQp._rto_fire``, ...) — the
natural unit of work in the engine, observable with zero intrusion via
the engines' ``trace`` hook.

Fitting (one calibration run)
-----------------------------
A calibration scenario runs once with a **timing trace**: the trace hook
timestamps every dispatch, so the gap between consecutive hook calls is
event *n*'s cost (dispatch + its slice of engine-loop bookkeeping).  The
instrumentation inflates every event by a near-constant amount, so the
per-class means are rescaled by ``alpha = untraced_wall / traced_wall``
measured on the same scenario — uniform inflation cancels in the ratio.

Prediction
----------
A scenario's **event mix** (class -> count) is measured with a cheap
counting trace; the model predicts its wall time and events/sec from the
mix alone.  Residuals on the non-calibration scenarios are the model's
honest generalization error — the bench harness records them in
``BENCH_engine.json`` and CI checks they stay within tolerance, so a
perf regression localizes to the event class whose fitted cost moved
instead of being one opaque aggregate number.
"""

from __future__ import annotations

import gc
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Optional

#: Scenarios the per-class costs are fitted on (pooled, count-weighted
#: when more than one).  alltoall exercises every hot class (spray,
#: reordering, delayed ACKs, CC timers) at the highest event *density*
#: (hundreds of events per claimed calendar bucket), so its per-class
#: means carry almost no per-batch overhead — the structural terms are
#: fitted separately from the sparse scenarios' walls.
CALIBRATION_SCENARIOS = ("alltoall",)
#: Kept for callers that fit on a single scenario.
CALIBRATION_SCENARIO = "alltoall"

#: Relative prediction error allowed per scenario (CI gate).
DEFAULT_TOLERANCE = 0.15


@dataclass
class CostModel:
    """Fitted per-event-class costs (nanoseconds of wall time each).

    Two *structural* terms cover engine work not proportional to any
    event count:

    * ``batch_cost_ns`` — wall ns per claimed calendar bucket (the
      batched drain's claim + sort + bound hoisting).  Dense scenarios
      amortize it over hundreds of events per bucket; sparse ones
      (incast's few events per 64 ns window) pay it per handful, which
      is exactly why a pure event-mix model over-predicts them.
    * ``time_cost`` — wall ns per *simulated* ns: cursor advances
      across empty buckets and overflow-heap refills during long idle
      spans (RTO waits in ``lossy``).
    """

    costs_ns: dict[str, float]
    #: Mean event cost — used for classes unseen during calibration.
    default_cost_ns: float
    calibration_scenario: str
    #: Instrumentation rescale applied to the raw timed means.
    alpha: float
    #: Wall ns per claimed calendar bucket (``Simulator.batches``).
    batch_cost_ns: float = 0.0
    #: Wall ns per simulated ns (engine time-advance overhead).
    time_cost: float = 0.0
    tolerance: float = DEFAULT_TOLERANCE

    def predict_wall_s(self, mix: dict[str, int],
                       sim_time_ns: int = 0, batches: int = 0) -> float:
        costs = self.costs_ns
        default = self.default_cost_ns
        total_ns = (self.batch_cost_ns * batches
                    + self.time_cost * sim_time_ns)
        for name, count in mix.items():
            total_ns += count * costs.get(name, default)
        return total_ns * 1e-9

    def predict_events_per_sec(self, mix: dict[str, int],
                               sim_time_ns: int = 0,
                               batches: int = 0) -> float:
        wall = self.predict_wall_s(mix, sim_time_ns, batches)
        events = sum(mix.values())
        return events / wall if wall > 0 else 0.0

    def to_json(self) -> dict:
        return {
            "calibration_scenario": self.calibration_scenario,
            "alpha": round(self.alpha, 4),
            "default_cost_ns": round(self.default_cost_ns, 1),
            "batch_cost_ns": round(self.batch_cost_ns, 1),
            "time_cost_wall_ns_per_sim_ns": round(self.time_cost, 6),
            "tolerance": self.tolerance,
            "costs_ns": {name: round(cost, 1) for name, cost
                         in sorted(self.costs_ns.items(),
                                   key=lambda kv: -kv[1])},
        }

    @classmethod
    def from_json(cls, doc: dict) -> "CostModel":
        return cls(costs_ns=dict(doc["costs_ns"]),
                   default_cost_ns=doc["default_cost_ns"],
                   calibration_scenario=doc["calibration_scenario"],
                   alpha=doc["alpha"],
                   batch_cost_ns=doc.get("batch_cost_ns", 0.0),
                   time_cost=doc.get("time_cost_wall_ns_per_sim_ns", 0.0),
                   tolerance=doc.get("tolerance", DEFAULT_TOLERANCE))


# ----------------------------------------------------------------------
# Measurement primitives (in-process; the ratio-based fit cancels the
# constant instrumentation overhead, so process isolation buys nothing)
# ----------------------------------------------------------------------
def measure_mix(scenario: str, *, quick: bool = False
                ) -> tuple[Counter, int, int, int]:
    """Count executed events per callback class (cheap counting trace).

    Returns ``(mix, executed_events, sim_time_ns, batches)`` —
    everything the model needs to predict the scenario.  All four are
    deterministic, so one counting run prices the scenario forever.
    """
    from repro.harness.bench import BUILDERS, DEADLINE_NS

    net = BUILDERS[scenario](quick, None)
    counts: Counter = Counter()

    def trace(t, seq, callback) -> None:
        counts[callback.__qualname__] += 1

    net.sim.trace = trace
    net.run(until_ns=DEADLINE_NS)
    executed = net.sim.executed
    sim_time_ns = getattr(net, "bench_done_ns", net.now_ns)
    batches = net.sim.batches
    net.stop()
    return counts, executed, sim_time_ns, batches


def _timed_run(scenario: str, *, quick: bool
               ) -> tuple[dict, Counter, float]:
    """Timing-trace run: per-class accumulated wall seconds + counts.

    The gap between consecutive trace callbacks is attributed to the
    earlier event, so the per-class sums add up to (nearly) the whole
    loop wall time, engine bookkeeping included.
    """
    from repro.harness.bench import BUILDERS, DEADLINE_NS

    net = BUILDERS[scenario](quick, None)
    acc: dict[str, float] = {}
    counts: Counter = Counter()
    perf = time.perf_counter
    state: list = [None, 0.0]

    def trace(t, seq, callback) -> None:
        now = perf()
        prev = state[0]
        name = callback.__qualname__
        if prev is not None:
            acc[prev] = acc.get(prev, 0.0) + (now - state[1])
        counts[name] += 1
        state[0] = name
        state[1] = now

    net.sim.trace = trace
    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        start = perf()
        net.run(until_ns=DEADLINE_NS)
        end = perf()
    finally:
        if gc_was_enabled:
            gc.enable()
    if state[0] is not None:  # close out the final event
        acc[state[0]] = acc.get(state[0], 0.0) + (end - state[1])
    net.stop()
    return acc, counts, end - start


def _untraced_wall(scenario: str, *, quick: bool) -> float:
    from repro.harness.bench import run_scenario

    return run_scenario(scenario, quick=quick).wall_s


def _fit_structural(gaps: list[tuple[float, int, int]]
                    ) -> tuple[float, float]:
    """Fit (batch_cost_ns, time_cost) from per-scenario residual gaps.

    ``gaps`` holds ``(gap_ns, batches, sim_time_ns)`` — the wall time a
    scenario's event mix alone fails to explain, with the two structural
    regressors.  Exact solve for two anchors, least squares otherwise;
    negative solutions are clamped by refitting with the other term
    alone (a cost below zero is noise, not physics).
    """
    sbb = sum(b * b for _, b, _ in gaps)
    stt = sum(t * t for _, _, t in gaps)
    sbt = sum(b * t for _, b, t in gaps)
    sgb = sum(g * b for g, b, _ in gaps)
    sgt = sum(g * t for g, _, t in gaps)
    det = sbb * stt - sbt * sbt
    if det > 0:
        batch_cost = (sgb * stt - sgt * sbt) / det
        time_cost = (sbb * sgt - sbt * sgb) / det
        if batch_cost >= 0 and time_cost >= 0:
            return batch_cost, time_cost
    batch_only = max(0.0, sgb / sbb) if sbb else 0.0
    time_only = max(0.0, sgt / stt) if stt else 0.0

    def sse(bc: float, tc: float) -> float:
        return sum((g - bc * b - tc * t) ** 2 for g, b, t in gaps)

    # Pick the single-term fit with the smaller squared residual.
    if sse(batch_only, 0.0) <= sse(0.0, time_only):
        return batch_only, 0.0
    return 0.0, time_only


def calibrate(scenarios=CALIBRATION_SCENARIOS, *,
              quick: bool = False,
              untraced_walls: Optional[dict] = None,
              anchors: Optional[list[tuple]] = None,
              anchor_scenarios: tuple = ("incast", "lossy"),
              tolerance: float = DEFAULT_TOLERANCE) -> CostModel:
    """Fit per-class costs from timed runs of *scenarios* (pooled).

    Each class's cost is its count-weighted mean over all calibration
    runs; the instrumentation rescale ``alpha`` is the pooled
    untraced/traced wall ratio.  ``untraced_walls`` maps scenario name
    to its wall time without any trace hook; scenarios missing from it
    are measured here (when the caller has already benchmarked them,
    passing the walls saves the runs).

    The structural terms (per-batch and per-sim-ns costs) are fitted
    from *anchor* scenarios whose wall time the event mix alone cannot
    explain — batch-sparse (incast) and time-sparse (lossy) ones.  Pass
    ``anchors`` as ``[(wall_s, mix, sim_time_ns, batches), ...]`` to
    reuse existing measurements, or let ``anchor_scenarios`` run them
    here (empty disables the terms).
    """
    if isinstance(scenarios, str):
        scenarios = (scenarios,)
    untraced_walls = dict(untraced_walls or {})
    acc: dict[str, float] = {}
    counts: Counter = Counter()
    traced_total = 0.0
    untraced_total = 0.0
    for scenario in scenarios:
        run_acc, run_counts, traced_wall = _timed_run(scenario,
                                                      quick=quick)
        for name, seconds in run_acc.items():
            acc[name] = acc.get(name, 0.0) + seconds
        counts.update(run_counts)
        traced_total += traced_wall
        wall = untraced_walls.get(scenario)
        if wall is None:
            wall = _untraced_wall(scenario, quick=quick)
        untraced_total += wall
    alpha = untraced_total / traced_total if traced_total > 0 else 1.0
    costs_ns = {name: alpha * seconds / counts[name] * 1e9
                for name, seconds in acc.items() if counts[name]}
    total_events = sum(counts.values())
    default = (alpha * traced_total / total_events * 1e9
               if total_events else 0.0)
    model = CostModel(costs_ns=costs_ns, default_cost_ns=default,
                      calibration_scenario="+".join(scenarios),
                      alpha=alpha, tolerance=tolerance)
    if anchors is None:
        from repro.harness.bench import run_scenario

        anchors = []
        for name in anchor_scenarios:
            anchor_run = run_scenario(name, quick=quick)
            mix, _, sim_ns, batches = measure_mix(name, quick=quick)
            anchors.append((anchor_run.wall_s, mix, sim_ns, batches))
    gaps = []
    for wall_s, mix, sim_time_ns, batches in anchors:
        gap_ns = (wall_s - model.predict_wall_s(mix)) * 1e9
        gaps.append((gap_ns, batches, sim_time_ns))
    if gaps:
        model.batch_cost_ns, model.time_cost = _fit_structural(gaps)
    return model


def validate(model: CostModel, actuals: dict[str, dict], *,
             quick: bool = False,
             infos: Optional[dict[str, tuple]] = None) -> list[dict]:
    """Predict each scenario in *actuals* and report the residuals.

    ``actuals`` maps scenario name to its benched result dict (needs
    ``events_per_sec``); ``infos`` maps it to a :func:`measure_mix`
    result (measured here when missing).  Returns one row per scenario
    with the prediction, the measurement, and whether the error is
    within the model's tolerance.
    """
    rows: list[dict] = []
    for name, result in actuals.items():
        info = infos.get(name) if infos else None
        if info is None:
            info = measure_mix(name, quick=quick)
        mix, _, sim_time_ns, batches = info
        predicted = model.predict_events_per_sec(mix, sim_time_ns,
                                                 batches)
        actual = result["events_per_sec"]
        error = predicted / actual - 1.0 if actual else 0.0
        rows.append({
            "scenario": name,
            "predicted_events_per_sec": round(predicted),
            "actual_events_per_sec": actual,
            "error_pct": round(100.0 * error, 1),
            "ok": abs(error) <= model.tolerance,
        })
    return rows


# ----------------------------------------------------------------------
# Regression attribution (CI)
# ----------------------------------------------------------------------
def residual_table(current: dict, baseline: dict, *,
                   top: int = 12) -> list[str]:
    """Per-class cost comparison: which event class got slower?

    Takes the ``cost_model`` JSON blocks of the current run and the
    tracked baseline.  Absolute costs differ across machines, so each
    class's cost ratio is normalized by the *median* ratio (the
    machine-speed factor); classes well above 1.0 after normalization
    are the ones that regressed.  Returns printable table lines, widest
    offenders first, limited to the *top* costliest classes.
    """
    cur_costs = current.get("costs_ns", {})
    base_costs = baseline.get("costs_ns", {})
    shared = sorted(set(cur_costs) & set(base_costs),
                    key=lambda n: -cur_costs[n])
    if not shared:
        return ["cost model: no shared event classes with baseline"]
    ratios = {name: cur_costs[name] / base_costs[name]
              for name in shared if base_costs[name] > 0}
    if not ratios:
        return ["cost model: baseline costs are all zero"]
    ordered = sorted(ratios.values())
    machine = ordered[len(ordered) // 2]  # median = machine-speed factor
    lines = [
        f"per-class cost residuals (machine factor {machine:.2f}x, "
        f"normalized out):",
        f"  {'event class':<36} {'base ns':>9} {'now ns':>9} "
        f"{'norm ratio':>10}",
    ]
    rows = [(name, base_costs[name], cur_costs[name],
             ratios[name] / machine if machine > 0 else 0.0)
            for name in shared[:top] if name in ratios]
    rows.sort(key=lambda r: -r[3])
    for name, base, cur, norm in rows:
        flag = "  <-- slower" if norm > 1.15 else ""
        lines.append(f"  {name:<36} {base:>9.0f} {cur:>9.0f} "
                     f"{norm:>9.2f}x{flag}")
    return lines
