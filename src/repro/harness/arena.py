"""The LB arena: head-to-head comparison of spraying policies.

ROADMAP item 3 ("baseline zoo + arena"): sweep every load-balancing
policy x transport (commodity RNIC vs. Themis-D NACK validation) x CC
setting across alltoall/incast/allreduce workloads on leaf-spine,
fat-tree, and dragonfly fabrics, and rank the (lb, transport) pairs by
mean FCT slowdown — the comparison table the paper's evaluation could
not produce because most of these competitors postdate it.

Every cell is a :class:`repro.harness.jobs.JobSpec` (kind
``"arena_cell"``) whose params fully describe the simulation, so the
sweep rides the parallel job runner with spec-hashed determinism: the
result document is bitwise-identical between ``--workers 1`` and
``--workers 4`` (cells are aggregated in spec order, never completion
order, and the document carries no wall-clock data).

The JSON document (schema ``repro-arena-v1``) is the ingest format for
the planned results service (ROADMAP item 5): ``cells`` is the raw
per-cell table, ``ranking`` the per-(lb, transport) aggregate.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.harness.jobs import (JobOutcome, JobRunner, JobSpec,
                                raise_on_failures)
from repro.harness.metrics import JobCounters
from repro.harness.report import format_table

ARENA_SCHEMA = "repro-arena-v1"

#: The zoo, in rank-table order.  Every entry is a NetworkConfig scheme.
LB_POLICIES = ("ecmp", "rps", "flowlet", "ar",
               "reps", "prime", "spritz", "sprinklers")
#: "commodity" = plain NIC-SR transport; "themis" = NIC-SR plus the
#: Themis-D NACK-validation overlay on every ToR (no PSN spraying).
ARENA_TRANSPORTS = ("commodity", "themis")
WORKLOADS = ("alltoall", "incast", "allreduce")
CC_SETTINGS = ("dcqcn", "fixed")

#: Topology presets (name -> TopologySpec kwargs).  Quick presets are
#: 8-NIC fabrics sized for the CI smoke gate; full presets match the
#: nightly sweep.  Dragonfly dimensions must satisfy
#: groups-1 <= routers * global_links (see repro.net.topology).
QUICK_TOPOLOGIES = {
    "leaf_spine": {"kind": "leaf_spine", "num_tors": 4, "num_spines": 2,
                   "nics_per_tor": 2, "link_bandwidth_bps": 25e9},
    "fat_tree": {"kind": "fat_tree", "fat_tree_k": 4,
                 "link_bandwidth_bps": 25e9},
    "dragonfly": {"kind": "dragonfly", "df_groups": 4, "df_routers": 2,
                  "df_hosts": 1, "df_global_links": 2,
                  "link_bandwidth_bps": 25e9},
}
FULL_TOPOLOGIES = {
    "leaf_spine": {"kind": "leaf_spine", "num_tors": 8, "num_spines": 4,
                   "nics_per_tor": 4, "link_bandwidth_bps": 100e9},
    "fat_tree": {"kind": "fat_tree", "fat_tree_k": 4,
                 "link_bandwidth_bps": 100e9},
    "dragonfly": {"kind": "dragonfly", "df_groups": 5, "df_routers": 2,
                  "df_hosts": 2, "df_global_links": 2,
                  "link_bandwidth_bps": 100e9},
}

QUICK_BYTES = 40_000
FULL_BYTES = 400_000
#: Sim-time budget per cell; a cell that has not drained by then reports
#: completed=False and censored FCTs (the deadline stands in for the
#: missing completion times, keeping the ranking deterministic).
QUICK_DEADLINE_US = 20_000.0
FULL_DEADLINE_US = 100_000.0


# ----------------------------------------------------------------------
# One cell
# ----------------------------------------------------------------------
def run_arena_cell(params: dict, seed: int) -> dict:
    """Execute one (lb, transport, cc, workload, topology) cell.

    Imported lazily by the job runner (``JOB_KINDS["arena_cell"]``);
    params carry the complete topology spec so subprocess workers never
    consult the environment.
    """
    from repro.harness.network import Network, NetworkConfig, TopologySpec

    topo_spec = TopologySpec(**params["topo"])
    transport = params["transport"]
    if transport not in ARENA_TRANSPORTS:
        raise ValueError(f"unknown arena transport {transport!r}")
    cc = params["cc"]
    if cc not in CC_SETTINGS:
        raise ValueError(f"unknown cc setting {cc!r}")
    config = NetworkConfig(
        topology=topo_spec,
        scheme=params["lb"],
        transport="nic_sr",
        themis_overlay=transport == "themis",
        dcqcn=None if cc == "fixed" else NetworkConfig().dcqcn,
        seed=seed)
    net = Network(config)
    deadline_ns = int(params["deadline_us"] * 1000)
    completed = _run_workload(net, params["workload"],
                              int(params["bytes"]), deadline_ns)
    net.stop()
    return _cell_metrics(net, completed, deadline_ns)


def _run_workload(net, workload: str, total_bytes: int,
                  deadline_ns: int) -> bool:
    from repro.collectives import AllToAll, RingAllreduce

    members = list(range(net.topology.num_nics))
    if workload == "alltoall":
        coll = AllToAll(net, members, total_bytes)
        coll.start()
        net.run(until_ns=deadline_ns)
        return coll.complete
    if workload == "allreduce":
        coll = RingAllreduce(net, members, total_bytes)
        coll.start()
        net.run(until_ns=deadline_ns)
        return coll.complete
    if workload == "incast":
        # Every NIC sends to NIC 0 simultaneously — the N:1 burst that
        # concentrates reordering and queue pressure on one ToR.
        senders = members[1:]
        per_sender = max(1, total_bytes // len(senders))
        remaining = [len(senders)]

        def on_done() -> None:
            remaining[0] -= 1

        for src in senders:
            net.post_message(src, 0, per_sender,
                             on_receiver_done=on_done)
        net.run(until_ns=deadline_ns)
        return remaining[0] == 0
    raise ValueError(f"unknown workload {workload!r}")


def _cell_metrics(net, completed: bool, deadline_ns: int) -> dict:
    """The four ranked metrics plus supporting counters for one cell."""
    metrics = net.metrics
    spec = net.config.topology
    bandwidth = spec.link_bandwidth_bps
    # Ideal FCT: serialization at line rate plus a constant fabric RTT
    # (4 store-and-forward hops of propagation, both directions).
    base_rtt_ns = 8 * spec.link_delay_ns
    slowdowns = []
    tail_ns = 0
    for stats in metrics.flows.values():
        if stats.bytes_posted <= 0:
            continue
        done_ns = stats.receiver_done_ns
        if done_ns is None:
            done_ns = deadline_ns  # censored: deadline as completion
        fct_ns = max(1, done_ns - stats.start_ns)
        tail_ns = max(tail_ns, fct_ns)
        ideal_ns = stats.bytes_posted * 8 * 1e9 / bandwidth + base_rtt_ns
        slowdowns.append(fct_ns / ideal_ns)
    mean_slowdown = (sum(slowdowns) / len(slowdowns)) if slowdowns else 0.0
    reorder_rate = (
        sum(f.receiver_ooo for f in metrics.flows.values())
        / max(1, metrics.data_packets_sent))
    # NACK validity: fraction of *delivered* NACKs justified by a real
    # loss.  Themis-D blocks spurious NACKs in-network, so they never
    # reach the sender and must not count against validity — that
    # subtraction is exactly the overlay's contribution showing up in
    # the ranking.  No delivered NACKs = vacuously valid; more than
    # drops = the excess is spurious (multi-path skew misread as loss).
    nacks = metrics.nacks_generated
    delivered = nacks - metrics.themis.nacks_blocked
    nack_validity = (1.0 if delivered <= 0
                     else min(1.0, metrics.drops / delivered))
    return {
        "completed": completed,
        "tail_ns": tail_ns,
        "mean_slowdown": round(mean_slowdown, 4),
        "goodput_gbps": round(metrics.mean_goodput_gbps(), 3),
        "reorder_rate": round(reorder_rate, 4),
        "nack_validity": round(nack_validity, 4),
        "nacks": nacks,
        "drops": metrics.drops,
        "nacks_blocked": metrics.themis.nacks_blocked,
        "retransmissions": metrics.retransmissions,
    }


# ----------------------------------------------------------------------
# The sweep
# ----------------------------------------------------------------------
def arena_job_specs(*, lbs: Sequence[str] = LB_POLICIES,
                    transports: Sequence[str] = ARENA_TRANSPORTS,
                    ccs: Sequence[str] = ("dcqcn",),
                    workloads: Sequence[str] = WORKLOADS,
                    topologies: Optional[dict] = None,
                    seeds: Sequence[int] = (1,),
                    quick: bool = True,
                    message_bytes: Optional[int] = None,
                    deadline_us: Optional[float] = None
                    ) -> list[JobSpec]:
    """The cell list, in the deterministic order aggregation relies on."""
    if topologies is None:
        topologies = QUICK_TOPOLOGIES if quick else FULL_TOPOLOGIES
    if message_bytes is None:
        message_bytes = QUICK_BYTES if quick else FULL_BYTES
    if deadline_us is None:
        deadline_us = QUICK_DEADLINE_US if quick else FULL_DEADLINE_US
    specs = []
    for lb in lbs:
        for transport in transports:
            for cc in ccs:
                for workload in workloads:
                    for topo_name, topo in topologies.items():
                        for seed in seeds:
                            specs.append(JobSpec(
                                kind="arena_cell", seed=seed,
                                params={"lb": lb,
                                        "transport": transport,
                                        "cc": cc,
                                        "workload": workload,
                                        "topology": topo_name,
                                        "topo": dict(topo),
                                        "bytes": message_bytes,
                                        "deadline_us": deadline_us},
                                label=f"{lb}/{transport}/{cc}/"
                                      f"{workload}/{topo_name}/s{seed}"))
    return specs


def run_arena(*, workers: int = 1, timeout_s: Optional[float] = None,
              retries: int = 2, checkpoint: Optional[str] = None,
              cache=None,
              counters: Optional[JobCounters] = None,
              progress: Optional[Callable[[str], None]] = None,
              **spec_kwargs) -> dict:
    """Run the sweep and build the ``repro-arena-v1`` document.

    Aggregation iterates ``specs`` in construction order and the
    document excludes wall-clock/job-counter data, so the output is
    bitwise-identical for any worker count — and, with ``cache`` (a
    results-store path), for a warm re-run that executes zero jobs.
    """
    specs = arena_job_specs(**spec_kwargs)
    runner = JobRunner(workers=workers, timeout_s=timeout_s,
                       retries=retries, checkpoint=checkpoint,
                       cache=cache, counters=counters, progress=progress)
    outcomes = runner.run(specs)
    raise_on_failures(outcomes)
    return build_arena_doc(specs, outcomes)


def build_arena_doc(specs: Sequence[JobSpec],
                    outcomes: dict[str, JobOutcome]) -> dict:
    cells = []
    for spec in specs:
        result = outcomes[spec.spec_hash].result
        cell = {"lb": spec.params["lb"],
                "transport": spec.params["transport"],
                "cc": spec.params["cc"],
                "workload": spec.params["workload"],
                "topology": spec.params["topology"],
                "seed": spec.seed,
                "spec_hash": spec.spec_hash}
        cell.update(result)
        cells.append(cell)

    def axis(key: str) -> list:
        values = []
        for cell in cells:
            if cell[key] not in values:
                values.append(cell[key])
        return values

    ranking = _rank(cells)
    return {
        "schema": ARENA_SCHEMA,
        "axes": {"lbs": axis("lb"), "transports": axis("transport"),
                 "ccs": axis("cc"), "workloads": axis("workload"),
                 "topologies": axis("topology"), "seeds": axis("seed")},
        "cells": cells,
        "ranking": ranking,
    }


def _rank(cells: Sequence[dict]) -> list[dict]:
    """Per-(lb, transport) aggregate, best (lowest slowdown) first."""
    groups: dict[tuple, list[dict]] = {}
    for cell in cells:
        groups.setdefault((cell["lb"], cell["transport"]),
                          []).append(cell)

    def mean(members: list[dict], key: str) -> float:
        return sum(c[key] for c in members) / len(members)

    rows = []
    for (lb, transport), members in groups.items():
        rows.append({
            "lb": lb,
            "transport": transport,
            "cells": len(members),
            "completed_cells": sum(1 for c in members if c["completed"]),
            "mean_slowdown": round(mean(members, "mean_slowdown"), 4),
            "mean_goodput_gbps": round(mean(members, "goodput_gbps"), 3),
            "mean_reorder_rate": round(mean(members, "reorder_rate"), 4),
            "mean_nack_validity": round(
                mean(members, "nack_validity"), 4),
        })
    rows.sort(key=lambda r: (r["mean_slowdown"],
                             -r["mean_goodput_gbps"],
                             r["lb"], r["transport"]))
    for rank, row in enumerate(rows, start=1):
        row["rank"] = rank
    return rows


# ----------------------------------------------------------------------
# Validation + rendering
# ----------------------------------------------------------------------
_CELL_FIELDS = ("lb", "transport", "cc", "workload", "topology", "seed",
                "spec_hash", "completed", "tail_ns", "mean_slowdown",
                "goodput_gbps", "reorder_rate", "nack_validity")
_RANK_FIELDS = ("rank", "lb", "transport", "cells", "completed_cells",
                "mean_slowdown", "mean_goodput_gbps",
                "mean_reorder_rate", "mean_nack_validity")


def validate_arena_doc(doc: dict) -> list[str]:
    """Schema check for a ``repro-arena-v1`` document; returns problems.

    Used inline by the CI smoke gate, so it needs no external schema
    library: the contract is small and explicit.
    """
    problems = []
    if doc.get("schema") != ARENA_SCHEMA:
        problems.append(f"schema is {doc.get('schema')!r}, "
                        f"expected {ARENA_SCHEMA!r}")
    axes = doc.get("axes")
    if not isinstance(axes, dict):
        problems.append("axes missing or not an object")
        axes = {}
    for key in ("lbs", "transports", "ccs", "workloads",
                "topologies", "seeds"):
        if not isinstance(axes.get(key), list) or not axes.get(key):
            problems.append(f"axes.{key} missing or empty")
    cells = doc.get("cells")
    if not isinstance(cells, list) or not cells:
        problems.append("cells missing or empty")
        cells = []
    for i, cell in enumerate(cells):
        missing = [f for f in _CELL_FIELDS if f not in cell]
        if missing:
            problems.append(f"cell[{i}] missing fields: {missing}")
            continue
        if not cell["completed"]:
            problems.append(f"cell[{i}] ({cell['lb']}/{cell['transport']}"
                            f"/{cell['workload']}/{cell['topology']}"
                            f"/s{cell['seed']}) did not complete")
    ranking = doc.get("ranking")
    if not isinstance(ranking, list) or not ranking:
        problems.append("ranking missing or empty")
        ranking = []
    for i, row in enumerate(ranking):
        missing = [f for f in _RANK_FIELDS if f not in row]
        if missing:
            problems.append(f"ranking[{i}] missing fields: {missing}")
    if ranking and [r.get("rank") for r in ranking] != \
            list(range(1, len(ranking) + 1)):
        problems.append("ranking.rank is not 1..N in order")
    slowdowns = [r["mean_slowdown"] for r in ranking
                 if "mean_slowdown" in r]
    if slowdowns != sorted(slowdowns):
        problems.append("ranking not sorted by mean_slowdown")
    return problems


def render_arena_table(doc: dict) -> str:
    """Human-readable ranking table (see docs/arena.md for reading it)."""
    rows = [(r["rank"], r["lb"], r["transport"],
             f"{r['mean_slowdown']:.3f}",
             f"{r['mean_goodput_gbps']:.3f}",
             f"{r['mean_reorder_rate']:.4f}",
             f"{r['mean_nack_validity']:.3f}",
             f"{r['completed_cells']}/{r['cells']}")
            for r in doc["ranking"]]
    return format_table(
        ["rank", "lb", "transport", "slowdown", "goodput Gbps",
         "reorder", "nack validity", "cells"], rows)
