"""Post-run analysis helpers: link utilization and fairness.

ECMP's failure mode is *imbalance*: hash collisions leave some uplinks
saturated while others idle.  :func:`link_utilization` exposes that
directly from port counters, and :func:`jain_fairness` summarizes how
evenly flows shared the fabric — packet spraying should push both toward
uniformity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.harness.network import Network


@dataclass(frozen=True)
class LinkUtilization:
    """One directed inter-switch link's activity over a run."""

    src: str
    dst: str
    bytes_sent: int
    busy_fraction: float


def link_utilization(network: "Network", *,
                     until_ns: int | None = None) -> list[LinkUtilization]:
    """Utilization of every switch-to-switch link.

    ``busy_fraction`` is serialization time over the observation window
    (defaults to the simulator's current time).
    """
    horizon = until_ns if until_ns is not None else network.now_ns
    horizon = max(horizon, 1)
    out = []
    for switch in network.topology.switches:
        for port in switch.ports:
            peer = port.peer
            if peer is None or not hasattr(peer, "routes"):
                continue  # host-facing port
            out.append(LinkUtilization(
                src=switch.name, dst=peer.name,
                bytes_sent=port.bytes_sent,
                busy_fraction=min(1.0, port.busy_ns / horizon)))
    return out


def uplink_imbalance(network: "Network", tor_name: str) -> float:
    """max/mean byte ratio across one ToR's uplinks (1.0 = perfectly
    balanced; ECMP collisions push it toward the uplink count)."""
    loads = [u.bytes_sent for u in link_utilization(network)
             if u.src == tor_name and u.dst.startswith(("spine", "agg"))]
    if not loads or sum(loads) == 0:
        return 1.0
    mean = sum(loads) / len(loads)
    return max(loads) / mean


def jain_fairness(values: Sequence[float]) -> float:
    """Jain's fairness index: 1.0 = perfectly fair, 1/n = one hog."""
    vals = [v for v in values if v >= 0]
    if not vals or sum(vals) == 0:
        return 1.0
    square_of_sum = sum(vals) ** 2
    sum_of_squares = sum(v * v for v in vals)
    return square_of_sum / (len(vals) * sum_of_squares)


def flow_fairness(network: "Network") -> float:
    """Jain index over per-flow goodputs."""
    return jain_fairness([f.goodput_gbps()
                          for f in network.metrics.flows.values()
                          if f.bytes_posted > 0])
