"""Deprecated alias of :mod:`repro.obs.capture`.

The per-hop packet capture middleware moved into the observability layer
(``repro.obs``) to resolve the ``sim/trace.py`` vs ``harness/tracer.py``
naming collision.  This module re-exports the canonical types and will
be removed in a future release.
"""

import warnings

from repro.obs.capture import (PacketTracer, TraceEvent,  # noqa: F401
                               attach_tracer)

warnings.warn(
    "repro.harness.tracer is deprecated; import PacketTracer/TraceEvent/"
    "attach_tracer from repro.obs (repro.obs.capture) instead",
    DeprecationWarning, stacklevel=2)

__all__ = ["PacketTracer", "TraceEvent", "attach_tracer"]
