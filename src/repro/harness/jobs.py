"""Deterministic, crash-resilient job runner for experiment sweeps.

The Fig. 5 sweep and the multi-seed replications are embarrassingly
parallel — every (condition, scheme, seed) cell is an independent
simulation — yet the seed harness ran them serially in one process.
This module turns each cell into a self-describing :class:`JobSpec` and
executes job lists on a bounded pool of **per-job subprocesses**, giving

* **parallelism** — up to ``workers`` jobs in flight at once;
* **isolation** — a crashing or leaking job takes down its own
  subprocess, never the sweep;
* **timeouts** — a wedged job is killed after ``timeout_s`` wall seconds;
* **bounded retry with backoff** — worker crashes and timeouts are
  retried up to ``retries`` times with exponential backoff (a job that
  raises an ordinary exception is *not* retried: it is deterministic and
  would fail again);
* **checkpoint/resume** — completed results stream to an append-only
  JSONL file keyed by spec-hash, so an interrupted sweep resumes where
  it left off instead of recomputing.

Determinism contract
--------------------
A job is identified by its **spec-hash**: the SHA-256 of the canonical
JSON encoding of ``(kind, seed, params)``.  Results travel as
JSON-normalised payloads on every path (in-process, subprocess pipe,
checkpoint resume), and callers aggregate by iterating *specs* in their
own deterministic order rather than completion order — so a parallel run
is bitwise-identical to a serial one, proven by the golden test in
``tests/harness/test_jobs.py``.

Job kinds
---------
``collective``
    One Fig. 5 cell: ``fig5_config(scheme, ti, td)`` +
    ``run_collective``.  Params capture the full :class:`EvalScale` so
    workers never consult the environment.
``callable``
    ``target(seed)`` for an importable ``"module:qualname"`` target —
    the replication harness's escape hatch for metric extractors.
``bench``
    One perf-benchmark measurement (``repro.harness.bench``), so the
    bench harness's fresh-process methodology rides the same machinery.
"""

from __future__ import annotations

import hashlib
import importlib
import json
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.harness.metrics import JobCounters

CHECKPOINT_VERSION = 1

#: Start method for worker subprocesses: ``fork`` where available (cheap,
#: inherits the warm interpreter), else ``spawn``.  Callers needing
#: pyperf-style cold processes (the bench harness) pass ``"spawn"``.
_DEFAULT_MP_METHOD = ("fork" if "fork" in multiprocessing.get_all_start_methods()
                      else "spawn")


# ----------------------------------------------------------------------
# Job specs
# ----------------------------------------------------------------------
def _canonical(obj: object) -> str:
    """Canonical JSON: sorted keys, no whitespace — stable hash input."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def _json_roundtrip(obj: object) -> object:
    """Normalise a payload through JSON so every execution path (serial,
    pipe, checkpoint) yields byte-identical structures.  JSON float
    round-trips are exact in Python 3, so no precision is lost."""
    return json.loads(_canonical(obj))


@dataclass(frozen=True)
class JobSpec:
    """One self-describing unit of work.

    ``params`` must be JSON-serialisable; together with ``kind`` and
    ``seed`` it fully determines the job (no hidden environment reads),
    which is what makes the spec-hash a safe resume key.
    """

    kind: str
    seed: int
    params: dict = field(default_factory=dict)
    #: Display-only; excluded from the hash.
    label: str = ""

    @property
    def spec_hash(self) -> str:
        digest = hashlib.sha256(_canonical(
            {"kind": self.kind, "seed": self.seed,
             "params": self.params}).encode()).hexdigest()
        return digest[:16]

    def to_dict(self) -> dict:
        return {"kind": self.kind, "seed": self.seed,
                "params": self.params, "label": self.label}

    @classmethod
    def from_dict(cls, doc: dict) -> "JobSpec":
        return cls(kind=doc["kind"], seed=doc["seed"],
                   params=doc.get("params", {}),
                   label=doc.get("label", ""))

    def describe(self) -> str:
        return self.label or f"{self.kind}#{self.spec_hash[:8]}"


# ----------------------------------------------------------------------
# Job kind executors (resolved lazily to avoid import cycles)
# ----------------------------------------------------------------------
def _exec_collective(params: dict, seed: int) -> dict:
    from repro.harness.collective_runner import (EvalScale, fig5_config,
                                                 run_collective)
    scale = EvalScale(**params["scale"])
    config = fig5_config(params["scheme"], params["ti_us"],
                         params["td_us"], scale=scale, seed=seed)
    result = run_collective(config, params["collective"],
                            bytes_per_group=params.get("bytes_per_group"),
                            scale=scale)
    return {
        "scheme": result.scheme,
        "collective": result.collective,
        "bytes_per_group": result.bytes_per_group,
        "tail_completion_ns": result.tail_completion_ns,
        "group_completion_ns": list(result.group_completion_ns),
        "completed": result.completed,
        "summary": result.summary,
    }


def resolve_target(target: str) -> Callable:
    """Resolve ``"module:qualname"`` to the callable it names."""
    module_name, _, qualname = target.partition(":")
    if not module_name or not qualname:
        raise ValueError(f"target must be 'module:qualname', got {target!r}")
    obj = importlib.import_module(module_name)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    return obj


def callable_target(fn: Callable) -> Optional[str]:
    """The ``"module:qualname"`` path of ``fn``, or ``None`` when it is
    not importable from a worker (lambda, closure, local function)."""
    module = getattr(fn, "__module__", None)
    qualname = getattr(fn, "__qualname__", "")
    if not module or not qualname or "<" in qualname:
        return None
    try:
        if resolve_target(f"{module}:{qualname}") is not fn:
            return None
    except Exception:
        return None
    return f"{module}:{qualname}"


def _exec_callable(params: dict, seed: int) -> dict:
    fn = resolve_target(params["target"])
    return {"value": fn(seed, **params.get("kwargs", {}))}


def _exec_bench(params: dict, seed: int) -> dict:
    from dataclasses import asdict

    from repro.harness.bench import run_scenario
    result = run_scenario(params["scenario"], quick=params["quick"],
                          engine=params["engine"],
                          traced=params.get("traced", False))
    return asdict(result)


def _exec_fault_cell(params: dict, seed: int) -> dict:
    from repro.faults.campaign import run_cell
    return run_cell(params, seed)


def _exec_arena_cell(params: dict, seed: int) -> dict:
    from repro.harness.arena import run_arena_cell
    return run_arena_cell(params, seed)


JOB_KINDS: dict[str, Callable[[dict, int], dict]] = {
    "collective": _exec_collective,
    "callable": _exec_callable,
    "bench": _exec_bench,
    "fault_cell": _exec_fault_cell,
    "arena_cell": _exec_arena_cell,
}


def execute_spec(spec: JobSpec) -> dict:
    """Run one job in the current process; returns the JSON payload."""
    try:
        executor = JOB_KINDS[spec.kind]
    except KeyError:
        raise ValueError(f"unknown job kind {spec.kind!r}; expected one "
                         f"of {sorted(JOB_KINDS)}") from None
    return _json_roundtrip(executor(spec.params, spec.seed))


def _dump_flight_on_crash(reason: str,
                          tag: Optional[str] = None) -> Optional[str]:
    """Best-effort flight-recorder dump for a crashing job.

    If the job ran a traced simulation, its recorder registered itself as
    the active one; dumping its ring here is the only chance to preserve
    the final events before the worker process dies.  ``tag`` (the job's
    spec-hash) lands in the dump filename, so concurrently-failing
    workers can never collide on a path.  Never raises — the original
    job error must win.
    """
    try:
        from repro.obs.record import dump_active_flight
        path = dump_active_flight(reason, tag=tag)
        return None if path is None else str(path)
    except Exception:
        return None


#: ``module:qualname`` of a deterministic worker fault hook.  When set,
#: every subprocess worker calls ``hook(spec_doc)`` before executing its
#: job — the hook simulating an infrastructure fault (``os._exit`` for a
#: crash, ``time.sleep`` for a hang) based solely on the spec, which is
#: how the retry-with-backoff path gets injected, reproducible coverage
#: instead of ad-hoc monkeypatching.
FAULT_HOOK_ENV = "REPRO_JOBS_FAULT_HOOK"


def _run_fault_hook(spec_doc: dict) -> None:
    hook = os.environ.get(FAULT_HOOK_ENV)
    if not hook:
        return
    resolve_target(hook)(spec_doc)


def _subprocess_entry(conn, spec_doc: dict) -> None:
    """Worker-side entry point: run the job, ship payload or error."""
    try:
        _run_fault_hook(spec_doc)
        payload = execute_spec(JobSpec.from_dict(spec_doc))
        conn.send({"ok": True, "result": payload})
    except BaseException as exc:  # noqa: BLE001 - must cross the pipe
        error = f"{type(exc).__name__}: {exc}"
        dump = _dump_flight_on_crash(
            "job-crash", tag=JobSpec.from_dict(spec_doc).spec_hash)
        if dump is not None:
            error += f" [flight recorder: {dump}]"
        try:
            conn.send({"ok": False, "error": error})
        except Exception:
            pass
    finally:
        conn.close()


# ----------------------------------------------------------------------
# Outcomes and checkpointing
# ----------------------------------------------------------------------
@dataclass
class JobOutcome:
    """Terminal state of one job."""

    spec: JobSpec
    status: str  # "done" | "failed"
    result: Optional[dict] = None
    error: Optional[str] = None
    attempts: int = 1
    elapsed_s: float = 0.0
    from_checkpoint: bool = False
    from_cache: bool = False

    @property
    def ok(self) -> bool:
        return self.status == "done"

    def to_record(self) -> dict:
        return {"v": CHECKPOINT_VERSION,
                "spec_hash": self.spec.spec_hash,
                "spec": self.spec.to_dict(),
                "status": self.status,
                "attempts": self.attempts,
                "elapsed_s": round(self.elapsed_s, 4),
                "error": self.error,
                "result": self.result}

    @classmethod
    def from_record(cls, record: dict) -> "JobOutcome":
        return cls(spec=JobSpec.from_dict(record["spec"]),
                   status=record["status"],
                   result=record.get("result"),
                   error=record.get("error"),
                   attempts=record.get("attempts", 1),
                   elapsed_s=record.get("elapsed_s", 0.0),
                   from_checkpoint=True)


def read_checkpoint(path: str) -> list[dict]:
    """All parseable records of a checkpoint file, oldest first.

    A truncated final line (interrupted mid-write) is skipped rather
    than treated as corruption — that is the expected crash artefact.
    """
    records = []
    if not path or not os.path.exists(path):
        return records
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(doc, dict) and "spec_hash" in doc:
                records.append(doc)
    return records


def load_completed(path: str) -> dict[str, JobOutcome]:
    """spec-hash -> outcome for every *successfully completed* job in a
    checkpoint (last record per hash wins; failures are re-run)."""
    latest: dict[str, dict] = {}
    for record in read_checkpoint(path):
        latest[record["spec_hash"]] = record
    return {h: JobOutcome.from_record(r) for h, r in latest.items()
            if r.get("status") == "done"}


def checkpoint_status(path: str) -> dict:
    """Summary counts for the ``repro jobs`` status subcommand."""
    records = read_checkpoint(path)
    latest: dict[str, dict] = {}
    for record in records:
        latest[record["spec_hash"]] = record
    done = [r for r in latest.values() if r.get("status") == "done"]
    failed = [r for r in latest.values() if r.get("status") != "done"]
    kinds: dict[str, int] = {}
    for r in latest.values():
        kind = r.get("spec", {}).get("kind", "?")
        kinds[kind] = kinds.get(kind, 0) + 1
    return {"path": path,
            "records": len(records),
            "jobs": len(latest),
            "done": len(done),
            "failed": len(failed),
            "retried": sum(1 for r in latest.values()
                           if r.get("attempts", 1) > 1),
            "kinds": kinds,
            "elapsed_s": round(sum(r.get("elapsed_s", 0.0)
                                   for r in done), 3),
            "failures": [{"spec_hash": r["spec_hash"],
                          "label": r.get("spec", {}).get("label", ""),
                          "error": r.get("error")} for r in failed]}


# ----------------------------------------------------------------------
# The runner
# ----------------------------------------------------------------------
@dataclass
class _Attempt:
    spec: JobSpec
    attempts: int = 0
    not_before: float = 0.0


class _Active:
    """One in-flight subprocess job."""

    __slots__ = ("attempt", "proc", "conn", "started", "deadline")

    def __init__(self, attempt: _Attempt, proc, conn, started: float,
                 deadline: Optional[float]) -> None:
        self.attempt = attempt
        self.proc = proc
        self.conn = conn
        self.started = started
        self.deadline = deadline


class JobRunner:
    """Execute :class:`JobSpec` lists with isolation, retry, and resume.

    ``workers=1`` with the default ``isolation="auto"`` runs jobs
    in-process — byte-identical to the pre-runner serial harness and
    convenient under debuggers.  Any ``workers>1`` (or
    ``isolation="subprocess"``) runs every job in its own subprocess.
    Timeouts are only enforceable with subprocess isolation.
    """

    def __init__(self, *, workers: int = 1,
                 timeout_s: Optional[float] = None,
                 retries: int = 2, backoff_s: float = 0.5,
                 checkpoint: Optional[str] = None,
                 cache=None,
                 isolation: str = "auto",
                 mp_method: Optional[str] = None,
                 counters: Optional[JobCounters] = None,
                 progress: Optional[Callable[[str], None]] = None) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if isolation not in ("auto", "inproc", "subprocess"):
            raise ValueError(f"unknown isolation {isolation!r}")
        self.workers = workers
        self.timeout_s = timeout_s
        self.retries = max(0, retries)
        self.backoff_s = backoff_s
        self.checkpoint = checkpoint
        #: Read-through run cache: a ``repro.results`` store path (str)
        #: or an open ``ResultsStore``.  Hits skip execution entirely;
        #: completed results are written back in the parent process only
        #: (the store's single-writer contract).
        self.cache = cache
        self._cache_store = None
        self.isolation = isolation
        self.mp_method = mp_method or _DEFAULT_MP_METHOD
        self.counters = counters if counters is not None else JobCounters()
        self.progress = progress

    # -- public API ----------------------------------------------------
    def run(self, specs: Sequence[JobSpec]) -> dict[str, JobOutcome]:
        """Run every spec; returns spec-hash -> :class:`JobOutcome`.

        Duplicate spec-hashes are executed once.  Jobs already completed
        in the checkpoint are skipped and surfaced with
        ``from_checkpoint=True``; jobs found in the results-store cache
        are skipped with ``from_cache=True`` (checkpoint wins when both
        hold a result — it is the more recent artefact of *this* sweep).
        """
        unique: dict[str, JobSpec] = {}
        for spec in specs:
            unique.setdefault(spec.spec_hash, spec)
        self.counters.submitted += len(unique)

        outcomes: dict[str, JobOutcome] = {}
        completed = (load_completed(self.checkpoint)
                     if self.checkpoint else {})
        store = self._cache_handle()
        pending: list[_Attempt] = []
        for spec_hash, spec in unique.items():
            prior = completed.get(spec_hash)
            if prior is not None:
                outcomes[spec_hash] = prior
                self.counters.skipped += 1
                self._emit(f"skip {spec.describe()} (checkpointed)")
                continue
            cached = (store.get_job_result(spec_hash)
                      if store is not None else None)
            if cached is not None:
                outcomes[spec_hash] = JobOutcome(
                    spec=spec, status="done", result=cached,
                    attempts=0, from_cache=True)
                self.counters.cache_hits += 1
                self._emit(f"skip {spec.describe()} (cached)")
            else:
                pending.append(_Attempt(spec))

        if self._inproc():
            for attempt in pending:
                outcome = self._run_inproc(attempt)
                self._record(outcomes, outcome)
        else:
            self._run_pool(pending, outcomes)
        return outcomes

    def run_one(self, spec: JobSpec) -> JobOutcome:
        """Convenience single-job entry point (used by the bench)."""
        return self.run([spec])[spec.spec_hash]

    # -- internals -----------------------------------------------------
    def _inproc(self) -> bool:
        if self.isolation == "inproc":
            return True
        if self.isolation == "subprocess":
            return False
        return self.workers == 1

    def _emit(self, message: str) -> None:
        if self.progress is not None:
            self.progress(message)

    def _cache_handle(self):
        """The open :class:`~repro.results.store.ResultsStore`, if any.

        Opened lazily (and imported lazily — ``repro.results`` imports
        back into harness modules) so runners without a cache never
        touch sqlite.
        """
        if self.cache is None:
            return None
        if self._cache_store is None:
            if hasattr(self.cache, "get_job_result"):
                self._cache_store = self.cache
            else:
                from repro.results.store import ResultsStore
                self._cache_store = ResultsStore(str(self.cache))
        return self._cache_store

    def _record(self, outcomes: dict[str, JobOutcome],
                outcome: JobOutcome) -> None:
        outcomes[outcome.spec.spec_hash] = outcome
        if outcome.ok:
            self.counters.completed += 1
            store = self._cache_handle()
            if store is not None:
                store.put_job_result(outcome.spec, outcome.result)
        else:
            self.counters.failed += 1
        self._checkpoint_write(outcome)
        self._emit(f"{outcome.status} {outcome.spec.describe()} "
                   f"({outcome.elapsed_s:.2f}s, "
                   f"attempt {outcome.attempts})")

    def _checkpoint_write(self, outcome: JobOutcome) -> None:
        if not self.checkpoint:
            return
        parent = os.path.dirname(self.checkpoint)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(self.checkpoint, "a") as fh:
            fh.write(_canonical(outcome.to_record()) + "\n")
            fh.flush()

    def _run_inproc(self, attempt: _Attempt) -> JobOutcome:
        """Serial execution; retries cover exceptions only (no process
        to crash, no timeout enforcement)."""
        start = time.perf_counter()
        while True:
            attempt.attempts += 1
            try:
                payload = execute_spec(attempt.spec)
            except Exception as exc:
                if attempt.attempts <= self.retries and self._retryable(exc):
                    self.counters.retries += 1
                    continue
                error = f"{type(exc).__name__}: {exc}"
                dump = _dump_flight_on_crash("job-failure",
                                             tag=attempt.spec.spec_hash)
                if dump is not None:
                    error += f" [flight recorder: {dump}]"
                return JobOutcome(
                    spec=attempt.spec, status="failed",
                    error=error,
                    attempts=attempt.attempts,
                    elapsed_s=time.perf_counter() - start)
            return JobOutcome(spec=attempt.spec, status="done",
                              result=payload, attempts=attempt.attempts,
                              elapsed_s=time.perf_counter() - start)

    @staticmethod
    def _retryable(exc: Exception) -> bool:
        """In-process retry policy: only infrastructure-ish errors.
        Deterministic job exceptions would fail identically again."""
        return isinstance(exc, (OSError, MemoryError))

    # -- subprocess pool -----------------------------------------------
    def _run_pool(self, pending: list[_Attempt],
                  outcomes: dict[str, JobOutcome]) -> None:
        ctx = multiprocessing.get_context(self.mp_method)
        active: list[_Active] = []
        try:
            while pending or active:
                self._launch_ready(ctx, pending, active, outcomes)
                if not active:
                    # Everything pending is backing off; sleep to the
                    # earliest retry time.
                    if pending:
                        delay = min(a.not_before for a in pending) \
                            - time.monotonic()
                        if delay > 0:
                            time.sleep(min(delay, 0.25))
                    continue
                self._reap(active, pending, outcomes)
        finally:
            for slot in active:  # interrupted: leave no orphans
                self._kill(slot)

    def _launch_ready(self, ctx, pending: list[_Attempt],
                      active: list[_Active],
                      outcomes: dict[str, JobOutcome]) -> None:
        now = time.monotonic()
        launchable = [a for a in pending if a.not_before <= now]
        for attempt in launchable:
            if len(active) >= self.workers:
                break
            pending.remove(attempt)
            attempt.attempts += 1
            try:
                parent_conn, child_conn = ctx.Pipe(duplex=False)
                proc = ctx.Process(target=_subprocess_entry,
                                   args=(child_conn,
                                         attempt.spec.to_dict()),
                                   daemon=True)
                proc.start()
                child_conn.close()
            except Exception:
                # Restricted environment: degrade to in-process for this
                # attempt so the sweep still completes.
                attempt.attempts -= 1
                outcome = self._run_inproc(attempt)
                self._record(outcomes, outcome)
                continue
            started = time.monotonic()
            deadline = (started + self.timeout_s
                        if self.timeout_s else None)
            active.append(_Active(attempt, proc, parent_conn, started,
                                  deadline))

    def _reap(self, active: list[_Active], pending: list[_Attempt],
              outcomes: dict[str, JobOutcome]) -> None:
        multiprocessing.connection.wait(
            [slot.conn for slot in active], timeout=0.05)
        now = time.monotonic()
        for slot in list(active):
            message = None
            if slot.conn.poll(0):
                try:
                    message = slot.conn.recv()
                except (EOFError, OSError):
                    message = None
            if message is not None:
                active.remove(slot)
                slot.proc.join()
                slot.conn.close()
                self._finish(slot, message, pending, outcomes)
            elif slot.deadline is not None and now > slot.deadline:
                active.remove(slot)
                self._kill(slot)
                self.counters.timeouts += 1
                self._retry_or_fail(
                    slot, pending, outcomes,
                    error=f"timeout after {self.timeout_s}s")
            elif not slot.proc.is_alive():
                active.remove(slot)
                slot.conn.close()
                self.counters.crashes += 1
                self._retry_or_fail(
                    slot, pending, outcomes,
                    error=f"worker crashed "
                          f"(exitcode {slot.proc.exitcode})")

    def _finish(self, slot: _Active, message: dict,
                pending: list[_Attempt],
                outcomes: dict[str, JobOutcome]) -> None:
        elapsed = time.monotonic() - slot.started
        if message.get("ok"):
            self._record(outcomes, JobOutcome(
                spec=slot.attempt.spec, status="done",
                result=message["result"],
                attempts=slot.attempt.attempts, elapsed_s=elapsed))
        else:
            # The job raised: deterministic, do not retry.
            self._record(outcomes, JobOutcome(
                spec=slot.attempt.spec, status="failed",
                error=message.get("error", "unknown job error"),
                attempts=slot.attempt.attempts, elapsed_s=elapsed))

    def _retry_or_fail(self, slot: _Active, pending: list[_Attempt],
                       outcomes: dict[str, JobOutcome],
                       error: str) -> None:
        attempt = slot.attempt
        if attempt.attempts <= self.retries:
            self.counters.retries += 1
            attempt.not_before = time.monotonic() + \
                self.backoff_s * (2 ** (attempt.attempts - 1))
            pending.append(attempt)
            self._emit(f"retry {attempt.spec.describe()} after {error} "
                       f"(attempt {attempt.attempts})")
        else:
            self._record(outcomes, JobOutcome(
                spec=attempt.spec, status="failed", error=error,
                attempts=attempt.attempts,
                elapsed_s=time.monotonic() - slot.started))

    @staticmethod
    def _kill(slot: _Active) -> None:
        try:
            slot.proc.terminate()
            slot.proc.join(1.0)
            if slot.proc.is_alive():
                slot.proc.kill()
                slot.proc.join(1.0)
        finally:
            try:
                slot.conn.close()
            except OSError:
                pass


def run_jobs(specs: Sequence[JobSpec], **kwargs) -> dict[str, JobOutcome]:
    """One-shot convenience wrapper around :class:`JobRunner`."""
    return JobRunner(**kwargs).run(specs)


def raise_on_failures(outcomes: dict[str, JobOutcome]) -> None:
    """Raise a summarising :class:`RuntimeError` if any job failed."""
    failures = [o for o in outcomes.values() if not o.ok]
    if failures:
        detail = "; ".join(
            f"{o.spec.describe()}: {o.error}" for o in failures[:5])
        more = f" (+{len(failures) - 5} more)" if len(failures) > 5 else ""
        raise RuntimeError(
            f"{len(failures)} job(s) failed: {detail}{more}")
