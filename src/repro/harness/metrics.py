"""Central measurement hub.

One :class:`Metrics` instance per experiment run.  Components push raw
events (packet sent, retransmission, drop, NACK blocked, ...) and the
harness reads aggregated counters, per-flow records, and time series out of
it to regenerate the paper's figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from repro.net.packet import FlowKey, Packet
from repro.sim.engine import US, Simulator
from repro.obs.timeseries import RateMeter, TimeSeries, WindowedCounter

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.port import Port
    from repro.switch.switch import Switch


@dataclass
class JobCounters:
    """Progress/failure counters for one experiment-runner invocation.

    Filled in by :class:`repro.harness.jobs.JobRunner`; lives here so the
    measurement hub owns every counter surface the harness reports on.
    """

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    retries: int = 0
    timeouts: int = 0
    crashes: int = 0
    #: Jobs satisfied from a resume checkpoint instead of recomputed.
    skipped: int = 0
    #: Jobs satisfied from the spec-hash results store (run cache).
    cache_hits: int = 0

    @property
    def executed(self) -> int:
        return self.completed + self.failed

    def summary(self) -> dict:
        return {"jobs_submitted": self.submitted,
                "jobs_completed": self.completed,
                "jobs_failed": self.failed,
                "jobs_retried": self.retries,
                "jobs_timed_out": self.timeouts,
                "worker_crashes": self.crashes,
                "jobs_skipped_from_checkpoint": self.skipped,
                "jobs_cache_hits": self.cache_hits}

    def __str__(self) -> str:
        parts = [f"{self.completed}/{self.submitted} done"]
        if self.skipped:
            parts.append(f"{self.skipped} resumed")
        if self.cache_hits:
            parts.append(f"{self.cache_hits} cached")
        if self.retries:
            parts.append(f"{self.retries} retried")
        if self.timeouts:
            parts.append(f"{self.timeouts} timed out")
        if self.crashes:
            parts.append(f"{self.crashes} crashed")
        if self.failed:
            parts.append(f"{self.failed} FAILED")
        return ", ".join(parts)


@dataclass
class FlowStats:
    """Per-flow (per sender QP) counters and timings."""

    flow: FlowKey
    start_ns: int = 0
    sender_done_ns: Optional[int] = None
    receiver_done_ns: Optional[int] = None
    bytes_posted: int = 0
    packets_sent: int = 0
    retransmissions: int = 0
    spurious_retransmissions: int = 0
    nacks_received: int = 0
    cnps_received: int = 0
    timeouts: int = 0
    receiver_duplicates: int = 0
    receiver_ooo: int = 0

    @property
    def retransmission_ratio(self) -> float:
        if self.packets_sent == 0:
            return 0.0
        return self.retransmissions / self.packets_sent

    def goodput_gbps(self) -> float:
        """Application goodput: posted bytes over sender completion time."""
        if self.sender_done_ns is None or self.sender_done_ns <= self.start_ns:
            return 0.0
        return self.bytes_posted * 8.0 / (self.sender_done_ns
                                          - self.start_ns)


@dataclass
class ThemisStats:
    """Counters for the in-network middleware."""

    nacks_inspected: int = 0
    nacks_blocked: int = 0
    nacks_forwarded: int = 0
    nacks_compensated: int = 0
    compensation_cancelled: int = 0
    tpsn_not_found: int = 0
    queue_overflows: int = 0

    @property
    def block_ratio(self) -> float:
        if self.nacks_inspected == 0:
            return 0.0
        return self.nacks_blocked / self.nacks_inspected


class Metrics:
    """Experiment-wide counters, per-flow stats, and optional traces."""

    def __init__(self, sim: Simulator,
                 trace_window_ns: int = 100 * US) -> None:
        self.sim = sim
        self.trace_window_ns = trace_window_ns

        # Global counters
        self.data_packets_sent = 0
        self.data_bytes_sent = 0
        self.retransmissions = 0
        self.drops = 0
        self.nacks_generated = 0
        self.acks_generated = 0
        self.cnps_generated = 0
        self.ecn_marks_seen = 0

        self.flows: dict[FlowKey, FlowStats] = {}
        self.themis = ThemisStats()

        # Time series used by the Fig. 1 motivation study; only populated
        # for flows registered via watch_flow().
        self._watched: set[FlowKey] = set()
        self.sent_counters: dict[FlowKey, WindowedCounter] = {}
        self.retx_counters: dict[FlowKey, WindowedCounter] = {}
        self.rate_traces: dict[FlowKey, TimeSeries] = {}
        self.throughput_meters: dict[FlowKey, RateMeter] = {}

        # Oracle hook used by the Ideal transport: called on every data
        # packet drop so the sender can schedule a clean retransmission.
        self.drop_listeners: list[Callable[[Packet], None]] = []

        # ACK-generation hook: called with (flow, cumulative epsn) every
        # time a receiver emits an ACK.  REPS entropy recycling rides
        # this (see repro.switch.lb.RepsLB); empty list = free.
        self.ack_listeners: list[Callable[[FlowKey, int], None]] = []

        # Observability recorder of the run, attached by Network when
        # tracing is on; summary() then surfaces its per-event counts.
        self.recorder = None

    # ------------------------------------------------------------------
    # Flow registration
    # ------------------------------------------------------------------
    def flow_stats(self, flow: FlowKey) -> FlowStats:
        stats = self.flows.get(flow)
        if stats is None:
            stats = FlowStats(flow, start_ns=self.sim.now)
            self.flows[flow] = stats
        return stats

    def watch_flow(self, flow: FlowKey) -> None:
        """Enable per-window traces for one flow (Fig. 1b/1c plumbing)."""
        self._watched.add(flow)
        self.sent_counters.setdefault(
            flow, WindowedCounter(self.trace_window_ns))
        self.retx_counters.setdefault(
            flow, WindowedCounter(self.trace_window_ns))
        self.rate_traces.setdefault(flow, TimeSeries(f"rate {flow}"))
        self.throughput_meters.setdefault(
            flow, RateMeter(self.trace_window_ns))

    def rate_trace_for(self, flow: FlowKey) -> Optional[TimeSeries]:
        return self.rate_traces.get(flow)

    # ------------------------------------------------------------------
    # Event sinks
    # ------------------------------------------------------------------
    def on_data_sent(self, flow: FlowKey, packet: Packet) -> None:
        self.data_packets_sent += 1
        self.data_bytes_sent += packet.payload_bytes
        stats = self.flow_stats(flow)
        stats.packets_sent += 1
        if packet.is_retx:
            self.retransmissions += 1
            stats.retransmissions += 1
        if flow in self._watched:
            now = self.sim.now
            self.sent_counters[flow].add(now)
            if packet.is_retx:
                self.retx_counters[flow].add(now)

    def on_delivered(self, flow: FlowKey, packet: Packet) -> None:
        """In-order delivery progress at the receiver (goodput)."""
        if flow in self._watched:
            self.throughput_meters[flow].add_bytes(self.sim.now,
                                                   packet.payload_bytes)

    def on_drop(self, packet: Packet, switch: "Switch",
                port: "Port") -> None:
        self.drops += 1
        for listener in self.drop_listeners:
            listener(packet)

    def on_nack_generated(self, flow: FlowKey) -> None:
        self.nacks_generated += 1

    def on_ack_generated(self, flow: FlowKey, epsn: int = 0) -> None:
        self.acks_generated += 1
        for listener in self.ack_listeners:
            listener(flow, epsn)

    def on_cnp_generated(self, flow: FlowKey) -> None:
        self.cnps_generated += 1

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    @property
    def spurious_ratio(self) -> float:
        """Fraction of all transmitted data packets that were
        retransmissions — the paper's Fig. 1b headline number."""
        if self.data_packets_sent == 0:
            return 0.0
        return self.retransmissions / self.data_packets_sent

    def all_flows_done(self) -> bool:
        return all(f.receiver_done_ns is not None
                   for f in self.flows.values())

    def mean_goodput_gbps(self) -> float:
        flows = [f for f in self.flows.values() if f.bytes_posted > 0]
        if not flows:
            return 0.0
        return sum(f.goodput_gbps() for f in flows) / len(flows)

    def summary(self) -> dict:
        """Flat dict of headline numbers (handy for reports/tests)."""
        doc = {
            "data_packets_sent": self.data_packets_sent,
            "retransmissions": self.retransmissions,
            "spurious_ratio": round(self.spurious_ratio, 4),
            "drops": self.drops,
            "nacks_generated": self.nacks_generated,
            "cnps_generated": self.cnps_generated,
            "themis_blocked": self.themis.nacks_blocked,
            "themis_forwarded": self.themis.nacks_forwarded,
            "themis_compensated": self.themis.nacks_compensated,
            "mean_goodput_gbps": round(self.mean_goodput_gbps(), 3),
        }
        # Telemetry keys appear only when a run traced, so untraced
        # summaries (golden comparisons) are byte-identical to before.
        if self.recorder is not None:
            doc["trace_events"] = self.recorder.total_events()
            doc["trace_counts"] = self.recorder.counts_summary()
        return doc
