"""ASCII figure renderers.

Terminal-friendly recreations of the paper's plots, built on the report
helpers: a horizontal bar chart for the Fig. 5 panels and a line panel
for the Fig. 1 time series.  They exist so `examples/` and `benchmarks/`
can show the *figure*, not just its numbers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.harness.motivation import MotivationResult
    from repro.harness.sweep import SweepResult

BAR_WIDTH = 48
FILL = "█"


def bar_chart(rows: Sequence[tuple[str, float]], *, unit: str = "",
              width: int = BAR_WIDTH) -> str:
    """Horizontal bar chart with value labels."""
    if not rows:
        return "(no data)"
    peak = max(value for _, value in rows) or 1.0
    label_width = max(len(label) for label, _ in rows)
    lines = []
    for label, value in rows:
        bar = FILL * max(1, round(value / peak * width))
        lines.append(f"{label.ljust(label_width)} |{bar} "
                     f"{value:.3f}{unit}")
    return "\n".join(lines)


def grouped_bar_chart(groups: Mapping[str, Mapping[str, float]], *,
                      unit: str = "", width: int = BAR_WIDTH) -> str:
    """One bar cluster per group (e.g. per DCQCN condition)."""
    lines = []
    peak = max((v for row in groups.values() for v in row.values()),
               default=1.0) or 1.0
    series = sorted({k for row in groups.values() for k in row})
    label_width = max((len(s) for s in series), default=0)
    for group, row in groups.items():
        lines.append(f"{group}:")
        for name in series:
            if name not in row:
                continue
            value = row[name]
            bar = FILL * max(1, round(value / peak * width))
            lines.append(f"  {name.ljust(label_width)} |{bar} "
                         f"{value:.3f}{unit}")
    return "\n".join(lines)


def line_panel(series: Sequence[tuple[int, float]], *, height: int = 10,
               width: int = 64, time_unit_ns: int = 1000,
               y_label: str = "") -> str:
    """Down-sampled scatter/line panel of a (time, value) series."""
    if not series:
        return "(empty series)"
    t0, t1 = series[0][0], series[-1][0]
    span_t = max(t1 - t0, 1)
    values = [v for _, v in series]
    lo, hi = min(values), max(values)
    span_v = (hi - lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for t, v in series:
        x = min(width - 1, int((t - t0) / span_t * (width - 1)))
        y = min(height - 1, int((hi - v) / span_v * (height - 1)))
        grid[y][x] = "·"
    lines = [f"{hi:>10.2f} ┤" + "".join(grid[0])]
    lines += ["           │" + "".join(row) for row in grid[1:-1]]
    lines.append(f"{lo:>10.2f} ┤" + "".join(grid[-1]))
    lines.append(" " * 11 + "└" + "─" * width)
    lines.append(f"{' ' * 12}{t0 / time_unit_ns:.0f} .. "
                 f"{t1 / time_unit_ns:.0f} us   {y_label}")
    return "\n".join(lines)


def render_fig1(result: "MotivationResult") -> str:
    """Three-panel text rendition of Figure 1 (b, c, d are per-run)."""
    parts = [
        f"Figure 1 panels — scheme={result.scheme} "
        f"transport={result.transport}",
        "",
        "(1b) retransmission ratio over time:",
        line_panel(result.retx_ratio_series, y_label="retx ratio"),
        f"     average: {result.avg_retx_ratio:.1%}",
        "",
        "(1c) sending rate over time (Gbps):",
        line_panel(result.rate_series_gbps, y_label="Gbps"),
        f"     average: {result.avg_rate_gbps:.1f} / "
        f"{result.line_rate_gbps:.0f} Gbps",
        "",
        f"(1d) mean goodput: {result.mean_goodput_gbps:.2f} Gbps",
    ]
    return "\n".join(parts)


def render_fig5(result: "SweepResult", *,
                schemes: Sequence[str] = ("ecmp", "ar", "themis")) -> str:
    """Grouped-bar rendition of one Figure 5 panel."""
    groups = {}
    for cond, row in result.runs.items():
        label = f"DCQCN (TI={cond[0]:.0f}us, TD={cond[1]:.0f}us)"
        groups[label] = {s: row[s].tail_completion_ms
                         for s in schemes if s in row}
    title = (f"Figure 5 — {result.collective} tail completion time "
             f"(ms, lower is better)")
    return title + "\n" + grouped_bar_chart(groups, unit=" ms")
