"""Plain-text reporting helpers for benchmark/example output.

The harness prints the same rows/series the paper's tables and figures
show; these helpers keep that formatting in one place.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Sequence


def format_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]]) -> str:
    """Fixed-width ASCII table."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i])
                         for i, cell in enumerate(cells))
    lines = [fmt(list(headers)), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in str_rows)
    return "\n".join(lines)


def format_series(series: Sequence[tuple[int, float]], *,
                  time_unit_ns: int = 1000, time_label: str = "us",
                  value_fmt: str = "{:.3f}", max_rows: int = 20) -> str:
    """Down-sampled (time, value) listing for figure-style series."""
    if not series:
        return "(empty series)"
    step = max(1, len(series) // max_rows)
    sampled = list(series[::step])
    if sampled[-1] != series[-1]:
        sampled.append(series[-1])
    lines = [f"{t / time_unit_ns:>12.1f} {time_label}  "
             + value_fmt.format(v) for t, v in sampled]
    return "\n".join(lines)


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """Unicode mini-chart, handy for eyeballing rate sawtooths."""
    if not values:
        return ""
    blocks = "▁▂▃▄▅▆▇█"
    step = max(1, len(values) // width)
    sampled = list(values[::step])
    low, high = min(sampled), max(sampled)
    span = (high - low) or 1.0
    return "".join(blocks[int((v - low) / span * (len(blocks) - 1))]
                   for v in sampled)


def percent(value: float) -> str:
    return f"{value * 100:.1f}%"


def write_json(path: str | Path, payload: dict) -> Path:
    """Persist a result payload next to the benchmarks."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, default=str))
    return path
