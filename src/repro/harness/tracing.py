"""Traced reference scenarios for ``repro trace`` and ``repro profile``.

One canonical workload — a lossy alltoall on a sprayed leaf-spine fabric
— sized by node count, with a :class:`repro.obs.record.Recorder` wired
through the whole stack.  The lossy uplinks plus per-packet spraying
produce the full NACK life cycle (skew-blocked, compensated, cancelled),
which is what the causality audit exists to explain.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.harness.network import Network, NetworkConfig, TopologySpec
from repro.obs.record import ALL_CATEGORIES, NACK, Recorder
from repro.sim.engine import MS, US
from repro.switch.switch import Switch

#: Simulated-time deadline: a wedged run must not hang the CLI.
TRACE_DEADLINE_NS = 800 * MS


def _stop_when_done(net: Network, total: int) -> Callable[[], None]:
    state = {"left": total}

    def one_done() -> None:
        state["left"] -= 1
        if state["left"] == 0:
            net.trace_done_ns = net.now_ns
            net.stop()

    return one_done


def build_traced_alltoall(*, nodes: int = 32, loss: float = 0.01,
                          seed: int = 7, message_bytes: int = 20_000,
                          scheme: str = "themis",
                          recorder: Optional[Recorder] = None,
                          faults: Optional[dict] = None,
                          watch_flows: bool = False,
                          trace_window_ns: Optional[int] = None,
                          ) -> tuple[Network, Recorder]:
    """A lossy alltoall fabric with a recorder threaded through it.

    ``nodes`` must be even and >= 4 (two NICs per ToR).  The default
    recorder keeps every category in the flight ring and retains the
    NACK category in full for the causality audit; pass your own to
    retain more (e.g. everything, for a Perfetto export).

    ``faults`` takes a compiled fault-scenario spec
    (:func:`repro.faults.spec.compiled_spec` output or anything it
    accepts); the installed :class:`~repro.faults.injector.FaultInjector`
    is exposed as ``net.fault_injector``.  ``watch_flows`` enables
    per-flow throughput meters on every alltoall pair — the campaign
    goodput-dip metric needs them.
    """
    if nodes < 4 or nodes % 2:
        raise ValueError("nodes must be even and >= 4")
    if recorder is None:
        recorder = Recorder(retain={NACK})
    num_tors = nodes // 2
    topo = TopologySpec(kind="leaf_spine", num_tors=num_tors,
                        num_spines=max(2, num_tors // 2),
                        nics_per_tor=2, link_bandwidth_bps=100e9,
                        link_delay_ns=US)
    net = Network(NetworkConfig(topology=topo, scheme=scheme,
                                transport="nic_sr", seed=seed),
                  recorder=recorder)
    if trace_window_ns is not None:
        net.metrics.trace_window_ns = trace_window_ns
    if loss > 0.0:
        loss_rng = net.rng.fork("trace-loss")
        for tor in net.topology.tors:
            for port in tor.ports:
                if isinstance(port.peer, Switch):
                    port.set_loss(loss, loss_rng)
    done = _stop_when_done(net, nodes * (nodes - 1))
    for src in range(nodes):
        for dst in range(nodes):
            if src != dst:
                if watch_flows:
                    net.watch_flow(src, dst)
                net.post_message(src, dst, message_bytes,
                                 on_receiver_done=done)
    net.fault_injector = None
    if faults is not None:
        from repro.faults.injector import FaultInjector
        injector = FaultInjector(net, faults)
        injector.install()
        net.fault_injector = injector
    return net, recorder


def run_traced_alltoall(*, nodes: int = 32, loss: float = 0.01,
                        seed: int = 7, message_bytes: int = 20_000,
                        scheme: str = "themis",
                        retain_all: bool = False,
                        ring_capacity: int = 4096,
                        faults: Optional[dict] = None,
                        ) -> tuple[Network, Recorder]:
    """Build and run the traced alltoall; returns (network, recorder)."""
    from repro.obs.record import FAULT
    retain = set(ALL_CATEGORIES) if retain_all else {NACK, FAULT}
    recorder = Recorder(ring_capacity=ring_capacity, retain=retain)
    net, recorder = build_traced_alltoall(
        nodes=nodes, loss=loss, seed=seed, message_bytes=message_bytes,
        scheme=scheme, recorder=recorder, faults=faults)
    net.run(until_ns=TRACE_DEADLINE_NS)
    net.stop()
    return net, recorder
