"""Topology construction and equal-cost route computation.

Builders create the switch graph (leaf-spine per §5's evaluation setup, or
a 3-tier fat-tree per the §4 memory example) and return a
:class:`Topology`.  NIC devices are attached afterwards — the topology only
reserves *slots* (which ToR a NIC id lives under) so the RNIC layer stays
decoupled from wiring.

Routes are computed by per-destination-rack BFS over the switch graph:
``switch.routes[dst_nic]`` holds every egress port that lies on a shortest
path, which is exactly the equal-cost candidate set ECMP/AR/spraying choose
from.  Builders wire inter-switch links in a fixed order so candidate list
index ``i`` is a stable *path index* (on a leaf-spine ToR, candidate ``i``
is the uplink to spine ``i``).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from repro.net.link import Link
from repro.net.node import Device
from repro.net.port import Port
from repro.sim.engine import Simulator, US
from repro.switch.switch import Switch

SwitchFactory = Callable[[str], Switch]


class Topology:
    """Switch graph + NIC attachment slots + route tables."""

    def __init__(self, sim: Simulator, name: str = "topo") -> None:
        self.sim = sim
        self.name = name
        self.switches: list[Switch] = []
        self.tors: list[Switch] = []
        #: nic id -> ToR switch it attaches under
        self.nic_tor: dict[int, Switch] = {}
        #: nic id -> (host link bandwidth, delay)
        self._nic_link: dict[int, tuple[float, int]] = {}
        #: nic id -> ToR's egress port toward that NIC (after attach)
        self.tor_down_port: dict[int, Port] = {}
        #: switch -> [(egress port, neighbor switch)]
        self._adjacency: dict[Switch, list[tuple[Port, Switch]]] = {}
        #: every cable in wiring order: fabric links then host links
        self.links: list[Link] = []
        self._link_by_name: dict[str, Link] = {}
        self._routes_built = False

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_switch(self, switch: Switch, is_tor: bool = False) -> Switch:
        self.switches.append(switch)
        self._adjacency[switch] = []
        if is_tor:
            self.tors.append(switch)
        return switch

    def connect_switches(self, a: Switch, b: Switch,
                         bandwidth_bps: float, delay_ns: int) -> None:
        """Create the bidirectional link ``a <-> b``."""
        port_ab = a.add_port(bandwidth_bps, delay_ns)
        port_ab.connect(b)
        port_ba = b.add_port(bandwidth_bps, delay_ns)
        port_ba.connect(a)
        self._adjacency[a].append((port_ab, b))
        self._adjacency[b].append((port_ba, a))
        self._register_link(Link(a.name, b.name, port_ab, port_ba,
                                 kind="fabric"))

    def register_nic_slot(self, nic_id: int, tor: Switch,
                          bandwidth_bps: float, delay_ns: int) -> None:
        if nic_id in self.nic_tor:
            raise ValueError(f"NIC {nic_id} already registered")
        self.nic_tor[nic_id] = tor
        self._nic_link[nic_id] = (bandwidth_bps, delay_ns)
        tor.down_nics.add(nic_id)

    @property
    def num_nics(self) -> int:
        return len(self.nic_tor)

    def attach_nic(self, nic_id: int, nic: Device) -> Port:
        """Wire a NIC device into its slot; returns the NIC's uplink port."""
        tor = self.nic_tor[nic_id]
        bandwidth, delay = self._nic_link[nic_id]
        down = tor.add_port(bandwidth, delay)
        down.connect(nic)
        self.tor_down_port[nic_id] = down
        up = Port(self.sim, nic, bandwidth_bps=bandwidth, delay_ns=delay)
        up.connect(tor)
        self._register_link(Link(tor.name, nic.name, down, up,
                                 kind="host"))
        return up

    def _register_link(self, link: Link) -> None:
        self.links.append(link)
        self._link_by_name[link.name] = link

    def link(self, name: str) -> Link:
        """Look up a cable by ``"a:b"`` name; either ordering works."""
        found = self._link_by_name.get(name)
        if found is None and ":" in name:
            a, b = name.split(":", 1)
            found = self._link_by_name.get(f"{b}:{a}")
        if found is None:
            raise LookupError(f"no link named {name!r} "
                              f"(known: {sorted(self._link_by_name)})")
        return found

    def links_of(self, device_name: str) -> list[Link]:
        """Every cable incident to the named device (switch or NIC)."""
        return [ln for ln in self.links
                if device_name in (ln.a_name, ln.b_name)]

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def build_routes(self) -> None:
        """Populate every switch's equal-cost route table.

        Must run after all NICs are attached (down ports must exist).
        Administratively-down links (``port.up == False``) are excluded,
        so re-running this after failures models routing convergence.
        """
        missing = set(self.nic_tor) - set(self.tor_down_port)
        if missing:
            raise RuntimeError(f"NICs not attached yet: {sorted(missing)}")
        nics_by_tor: dict[Switch, list[int]] = {}
        for nic_id, tor in self.nic_tor.items():
            nics_by_tor.setdefault(tor, []).append(nic_id)

        for switch in self.switches:
            switch.routes = {}
        for tor, nic_ids in nics_by_tor.items():
            dist = self._bfs_distances(tor)
            for switch in self.switches:
                if switch is tor:
                    for nic_id in nic_ids:
                        switch.routes[nic_id] = [self.tor_down_port[nic_id]]
                    continue
                if switch not in dist:
                    continue  # disconnected
                next_hops = [port for port, nbr in self._adjacency[switch]
                             if port.up
                             and dist.get(nbr, -1) == dist[switch] - 1]
                if not next_hops:
                    continue
                for nic_id in nic_ids:
                    switch.routes[nic_id] = next_hops
        self._routes_built = True

    def _bfs_distances(self, root: Switch) -> dict[Switch, int]:
        """Hop counts to ``root`` over *live* links.

        Distance is measured in the forwarding direction: an edge
        ``node -> root-side`` is usable only if the transmitting port
        (the one on ``nbr`` toward ``node``... forwarding goes node->nbr)
        is up.  Since links fail in both directions here, checking the
        reverse port is equivalent; we check the forwarding port at
        route-construction time instead.
        """
        dist = {root: 0}
        queue = deque([root])
        while queue:
            node = queue.popleft()
            for port, nbr in self._adjacency[node]:
                if not port.up:
                    continue
                if nbr not in dist:
                    dist[nbr] = dist[node] + 1
                    queue.append(nbr)
        return dist

    def path_count(self, src_nic: int, dst_nic: int) -> int:
        """Number of distinct shortest switch paths between two NICs.

        This is the ``N`` of Eq. 1: Themis's control plane configures each
        ToR with the equal-cost path count per destination rack.
        """
        src_tor = self.nic_tor[src_nic]
        dst_tor = self.nic_tor[dst_nic]
        if src_tor is dst_tor:
            return 1
        dist = self._bfs_distances(dst_tor)
        counts: dict[Switch, int] = {dst_tor: 1}

        def count(node: Switch) -> int:
            if node in counts:
                return counts[node]
            total = sum(count(nbr) for _, nbr in self._adjacency[node]
                        if dist.get(nbr, -1) == dist[node] - 1)
            counts[node] = total
            return total

        return count(src_tor)

    def equal_paths(self, src_nic: int, dst_nic: int) -> int:
        """Equal-cost *first-hop* fan-out at the source ToR.

        On a 2-tier leaf-spine this equals :meth:`path_count`; on deeper
        topologies it is the ToR's uplink count.
        """
        src_tor = self.nic_tor[src_nic]
        routes = src_tor.routes.get(dst_nic)
        if routes is None:
            raise LookupError(f"no route {src_nic}->{dst_nic}")
        return len(routes)


# ----------------------------------------------------------------------
# Builders
# ----------------------------------------------------------------------
def leaf_spine(sim: Simulator, switch_factory: SwitchFactory, *,
               num_tors: int, num_spines: int, nics_per_tor: int,
               link_bandwidth_bps: float, link_delay_ns: int = US,
               host_bandwidth_bps: Optional[float] = None,
               host_delay_ns: Optional[int] = None) -> Topology:
    """2-tier leaf-spine with 1:1 subscription by default.

    NIC ids are assigned ``tor_index * nics_per_tor + slot``; ToR uplink
    ``i`` goes to spine ``i`` on every ToR, so candidate index == spine
    index == path index fabric-wide.
    """
    if num_tors < 1 or num_spines < 1 or nics_per_tor < 1:
        raise ValueError("topology dimensions must be >= 1")
    host_bandwidth_bps = host_bandwidth_bps or link_bandwidth_bps
    host_delay_ns = host_delay_ns if host_delay_ns is not None else link_delay_ns

    topo = Topology(sim, "leaf-spine")
    tors = [topo.add_switch(switch_factory(f"tor{i}"), is_tor=True)
            for i in range(num_tors)]
    spines = [topo.add_switch(switch_factory(f"spine{i}"))
              for i in range(num_spines)]
    for tor in tors:
        for spine in spines:
            topo.connect_switches(tor, spine, link_bandwidth_bps,
                                  link_delay_ns)
    nic_id = 0
    for tor in tors:
        for _ in range(nics_per_tor):
            topo.register_nic_slot(nic_id, tor, host_bandwidth_bps,
                                   host_delay_ns)
            nic_id += 1
    return topo


def fat_tree(sim: Simulator, switch_factory: SwitchFactory, *, k: int,
             link_bandwidth_bps: float, link_delay_ns: int = US,
             nics_per_tor: Optional[int] = None) -> Topology:
    """3-tier fat-tree with parameter ``k`` (k pods, k^3/4 hosts max).

    ``nics_per_tor`` trims hosts per edge switch (defaults to k/2).
    """
    if k < 2 or k % 2:
        raise ValueError("fat-tree k must be even and >= 2")
    half = k // 2
    nics_per_tor = nics_per_tor if nics_per_tor is not None else half
    if nics_per_tor > half:
        raise ValueError(f"nics_per_tor must be <= k/2 = {half}")

    topo = Topology(sim, f"fat-tree-k{k}")
    cores = [[topo.add_switch(switch_factory(f"core{g}_{i}"))
              for i in range(half)] for g in range(half)]
    nic_id = 0
    for pod in range(k):
        aggs = [topo.add_switch(switch_factory(f"agg{pod}_{a}"))
                for a in range(half)]
        edges = [topo.add_switch(switch_factory(f"edge{pod}_{e}"),
                                 is_tor=True) for e in range(half)]
        for a, agg in enumerate(aggs):
            # Aggregation switch `a` of every pod connects to core group `a`.
            for core in cores[a]:
                topo.connect_switches(agg, core, link_bandwidth_bps,
                                      link_delay_ns)
            for edge in edges:
                topo.connect_switches(edge, agg, link_bandwidth_bps,
                                      link_delay_ns)
        for edge in edges:
            for _ in range(nics_per_tor):
                topo.register_nic_slot(nic_id, edge, link_bandwidth_bps,
                                       link_delay_ns)
                nic_id += 1
    return topo


def dragonfly(sim: Simulator, switch_factory: SwitchFactory, *,
              groups: int, routers_per_group: int, hosts_per_router: int,
              global_links_per_router: int = 1,
              link_bandwidth_bps: float, link_delay_ns: int = US,
              host_bandwidth_bps: Optional[float] = None,
              host_delay_ns: Optional[int] = None) -> Topology:
    """Canonical dragonfly: complete graph inside each group, one (or
    more) global links between every group pair.

    The low-diameter habitat path-aware LBs (Spritz) target: minimal
    routes often have *one* candidate per hop while non-minimal/valiant
    diversity hides behind unequal path quality, so the interesting LB
    decisions happen at the few multi-candidate hops (source router,
    group gateways) where backlog state matters more than uniformity.

    Every router is a ToR (hosts attach to all routers).  NIC ids are
    ``(group * routers_per_group + router) * hosts_per_router + slot``.
    Group pair ``x < y`` is wired from router ``(y-1) // g`` of group
    ``x`` to router ``x // g`` of group ``y`` (``g`` = global links per
    router) — the standard palmtree arrangement, which spreads the
    ``groups - 1`` global links of a group evenly across its routers.
    Requires ``groups - 1 <= routers_per_group * global_links_per_router``.
    """
    if groups < 2:
        raise ValueError("dragonfly needs >= 2 groups")
    if routers_per_group < 1 or hosts_per_router < 1 \
            or global_links_per_router < 1:
        raise ValueError("topology dimensions must be >= 1")
    if groups - 1 > routers_per_group * global_links_per_router:
        raise ValueError(
            f"{groups} groups need {groups - 1} global links per group "
            f"but only {routers_per_group} routers x "
            f"{global_links_per_router} global ports are available")
    host_bandwidth_bps = host_bandwidth_bps or link_bandwidth_bps
    host_delay_ns = host_delay_ns if host_delay_ns is not None else link_delay_ns

    topo = Topology(sim, f"dragonfly-g{groups}")
    routers = [[topo.add_switch(switch_factory(f"df{g}_{r}"), is_tor=True)
                for r in range(routers_per_group)] for g in range(groups)]
    # Intra-group: complete graph.
    for group in routers:
        for i in range(routers_per_group):
            for j in range(i + 1, routers_per_group):
                topo.connect_switches(group[i], group[j],
                                      link_bandwidth_bps, link_delay_ns)
    # Inter-group: palmtree global links.
    glpr = global_links_per_router
    for x in range(groups):
        for y in range(x + 1, groups):
            a = routers[x][((y - 1) // glpr) % routers_per_group]
            b = routers[y][(x // glpr) % routers_per_group]
            topo.connect_switches(a, b, link_bandwidth_bps, link_delay_ns)
    nic_id = 0
    for group in routers:
        for router in group:
            for _ in range(hosts_per_router):
                topo.register_nic_slot(nic_id, router, host_bandwidth_bps,
                                       host_delay_ns)
                nic_id += 1
    return topo
