"""Device base class.

Everything attached to the fabric — NICs and switches — is a
:class:`Device`: it owns egress :class:`~repro.net.port.Port` objects and
accepts packets via :meth:`receive`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sim.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.packet import Packet
    from repro.net.port import Port


class Device:
    """A node in the network graph (NIC or switch)."""

    def __init__(self, sim: Simulator, name: str) -> None:
        self.sim = sim
        self.name = name
        self.ports: list["Port"] = []

    def attach_port(self, port: "Port") -> None:
        port.index = len(self.ports)
        self.ports.append(port)

    def receive(self, packet: "Packet", in_port: "Port | None") -> None:
        """Handle a packet delivered by a link.  Subclasses override."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name})"
