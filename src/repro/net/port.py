"""Egress port: serialization, propagation, and priority queueing.

A :class:`Port` models one direction of a cable: the owning device enqueues
packets, the port serializes them at link bandwidth, and after the
propagation delay the peer device's :meth:`receive` runs.

Two strict-priority FIFOs are kept: control packets (ACK/NACK/CNP) always
transmit before data, mirroring the lossless high-priority control class
RDMA fabrics configure.  Data packets pass through an optional
:class:`QueuePolicy` that implements buffer admission (drops) and ECN
marking; control packets are never dropped or marked.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable, Optional

from repro.sim.engine import SEC, Simulator
from repro.net.packet import Packet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.node import Device


class QueuePolicy:
    """Admission/marking hooks applied to data packets at enqueue time.

    The default policy admits everything and never marks; switches install
    :class:`repro.switch.buffer.SharedBuffer` + :class:`repro.switch.ecn.EcnMarker`
    backed policies.
    """

    def admit(self, port: "Port", packet: Packet) -> bool:
        """Return ``False`` to drop ``packet`` instead of queueing it."""
        return True

    def on_enqueue(self, port: "Port", packet: Packet) -> None:
        """Called after a data packet is queued (ECN marking point)."""

    def on_dequeue(self, port: "Port", packet: Packet) -> None:
        """Called when a data packet starts transmission (buffer release)."""


class Port:
    """One egress port of a device, wired to a peer device."""

    def __init__(self, sim: Simulator, owner: "Device", *,
                 bandwidth_bps: float, delay_ns: int,
                 name: str = "") -> None:
        self.sim = sim
        self.owner = owner
        self.bandwidth_bps = float(bandwidth_bps)
        self.delay_ns = int(delay_ns)
        self.name = name or f"{owner.name}.p?"
        self.index = -1
        self.peer: Optional["Device"] = None

        self._control: deque[Packet] = deque()
        self._data: deque[Packet] = deque()
        self.queued_bytes = 0          # data bytes waiting (excl. in-flight)
        self._busy = False
        self._data_paused = False      # PFC: data class held, control flows
        self.policy: QueuePolicy = QueuePolicy()

        # Fault injection: probability of silently dropping a departing
        # data packet (models a lossy cable), and an administrative down
        # flag (models link failure).
        self.loss_rate = 0.0
        self.up = True
        self._loss_rng = None

        # Stats
        self.bytes_sent = 0
        self.packets_sent = 0
        self.packets_dropped = 0
        self.busy_ns = 0
        self.on_drop: Optional[Callable[[Packet, "Port"], None]] = None

        owner.attach_port(self)
        self.name = f"{owner.name}.p{self.index}"

    # ------------------------------------------------------------------
    def connect(self, peer: "Device") -> None:
        self.peer = peer

    def serialization_ns(self, packet: Packet) -> int:
        return max(1, int(packet.wire_bytes * 8 * SEC / self.bandwidth_bps))

    # ------------------------------------------------------------------
    def enqueue(self, packet: Packet) -> bool:
        """Queue a packet for transmission.

        Returns ``True`` if accepted, ``False`` if dropped by policy.
        """
        if packet.is_control:
            self._control.append(packet)
        else:
            if not self.policy.admit(self, packet):
                self._drop(packet)
                return False
            self._data.append(packet)
            self.queued_bytes += packet.wire_bytes
            self.policy.on_enqueue(self, packet)
        if not self._busy:
            self._start_transmission()
        return True

    # ------------------------------------------------------------------
    def _start_transmission(self) -> None:
        if self._control:
            packet = self._control.popleft()
        elif self._data and not self._data_paused:
            packet = self._data.popleft()
            self.queued_bytes -= packet.wire_bytes
            self.policy.on_dequeue(self, packet)
        else:
            return
        self._busy = True
        tx_ns = self.serialization_ns(packet)
        self.busy_ns += tx_ns
        self.sim.schedule(tx_ns, self._finish_transmission, packet)

    def _finish_transmission(self, packet: Packet) -> None:
        self._busy = False
        lost = not self.up
        if (not lost and packet.is_data and self.loss_rate > 0.0
                and self._loss_rng is not None
                and self._loss_rng.random() < self.loss_rate):
            lost = True
        if lost:
            self._drop(packet)
        else:
            self.bytes_sent += packet.wire_bytes
            self.packets_sent += 1
            packet.hops += 1
            self.sim.schedule(self.delay_ns, self._deliver, packet)
        if self._control or self._data:
            self._start_transmission()

    def _deliver(self, packet: Packet) -> None:
        assert self.peer is not None, f"{self.name} not connected"
        self.peer.receive(packet, self)

    def _drop(self, packet: Packet) -> None:
        self.packets_dropped += 1
        if self.on_drop is not None:
            self.on_drop(packet, self)

    # ------------------------------------------------------------------
    # PFC (802.1Qbb) hooks — driven by the downstream switch's
    # PfcController; only the lossy data class is held back.
    # ------------------------------------------------------------------
    def pause_data(self) -> None:
        self._data_paused = True

    def resume_data(self) -> None:
        self._data_paused = False
        if not self._busy:
            self._start_transmission()

    @property
    def data_paused(self) -> bool:
        return self._data_paused

    # ------------------------------------------------------------------
    def set_loss(self, rate: float, rng) -> None:
        """Enable random drops of departing data packets (fault injection)."""
        if not 0.0 <= rate <= 1.0:
            raise ValueError("loss rate must be in [0, 1]")
        self.loss_rate = rate
        self._loss_rng = rng

    @property
    def backlog_packets(self) -> int:
        return len(self._control) + len(self._data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        peer = self.peer.name if self.peer else "?"
        return f"Port({self.name}->{peer}, q={self.queued_bytes}B)"
