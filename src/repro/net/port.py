"""Egress port: serialization, propagation, and priority queueing.

A :class:`Port` models one direction of a cable: the owning device enqueues
packets, the port serializes them at link bandwidth, and after the
propagation delay the peer device's :meth:`receive` runs.

Two strict-priority FIFOs are kept: control packets (ACK/NACK/CNP) always
transmit before data, mirroring the lossless high-priority control class
RDMA fabrics configure.  Data packets pass through an optional
:class:`QueuePolicy` that implements buffer admission (drops) and ECN
marking; control packets are never dropped or marked.

Folded transmit path
--------------------
The hot path schedules **one** event per transmitted packet: when a packet
is popped from the FIFOs (:meth:`_pump`), its delivery at
``serialization + propagation`` is scheduled immediately, and the port
tracks serializer availability with the ``_free_at`` timestamp instead of
a separate serialization-done event.  A boundary wake-up (``_pump``
re-scheduled via the engine's lightweight ``fire`` path) is armed only
when a backlog is actually waiting at the end of the
current serialization — an idle or lightly-loaded port pays zero extra
events.  Drop decisions (link down, random loss) are made when the packet
starts serializing; the drop is accounted immediately rather than one
serialization time later, which shifts fault bookkeeping by at most one
packet time and schedules no event at all for lost packets.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable, Optional

from repro.sim.engine import SEC, Simulator
from repro.net.packet import Packet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.node import Device


class QueuePolicy:
    """Admission/marking hooks applied to data packets at enqueue time.

    The default policy admits everything and never marks; switches install
    :class:`repro.switch.buffer.SharedBuffer` + :class:`repro.switch.ecn.EcnMarker`
    backed policies.

    ``is_noop`` lets the port skip all three hook calls for the base
    policy (NIC uplinks): every subclass is assumed to do real work, so
    the flag flips automatically on subclassing.
    """

    is_noop = True

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        cls.is_noop = False

    def admit(self, port: "Port", packet: Packet) -> bool:
        """Return ``False`` to drop ``packet`` instead of queueing it."""
        return True

    def on_enqueue(self, port: "Port", packet: Packet) -> None:
        """Called after a data packet is queued (ECN marking point)."""

    def on_dequeue(self, port: "Port", packet: Packet) -> None:
        """Called when a data packet starts transmission (buffer release)."""


class Port:
    """One egress port of a device, wired to a peer device."""

    __slots__ = (
        "sim", "owner", "bandwidth_bps", "delay_ns", "_ns_per_byte",
        "nominal_bandwidth_bps", "nominal_delay_ns",
        "name", "index", "peer", "_peer_recv", "_fire", "_fire2",
        "_control", "_data", "queued_bytes",
        "_free_at", "_pump_armed", "_data_paused", "_pump_cb", "policy",
        "loss_rate",
        "up", "_loss_rng", "bytes_sent", "packets_sent", "packets_dropped",
        "busy_ns", "on_drop", "_rec_enq", "_rec_deq", "_rec_drop",
    )

    def __init__(self, sim: Simulator, owner: "Device", *,
                 bandwidth_bps: float, delay_ns: int,
                 name: str = "") -> None:
        self.sim = sim
        self.owner = owner
        self.bandwidth_bps = float(bandwidth_bps)
        self.delay_ns = int(delay_ns)
        # Healthy-link values, restored when an injected degradation or
        # latency shift is lifted.
        self.nominal_bandwidth_bps = self.bandwidth_bps
        self.nominal_delay_ns = self.delay_ns
        # Serialization cost per wire byte; folded into one multiply on
        # the hot path instead of per-packet float division.
        self._ns_per_byte = 8.0 * SEC / self.bandwidth_bps
        self.name = name or f"{owner.name}.p?"
        self.index = -1
        self.peer: Optional["Device"] = None
        self._peer_recv: Optional[Callable] = None
        # Bound engine entry points, looked up once per port instead of
        # twice per transmitted packet.
        self._fire = sim.fire
        self._fire2 = sim.fire2

        self._control: deque[Packet] = deque()
        self._data: deque[Packet] = deque()
        self.queued_bytes = 0          # data bytes waiting (excl. in-flight)
        self._free_at = 0              # ns when the serializer frees up
        self._pump_armed = False       # boundary wake-up pending?
        # Bound method cached once: ``self._pump`` at a call site builds
        # a fresh bound-method object per packet; this alias does not.
        self._pump_cb = self._pump
        self._data_paused = False      # PFC: data class held, control flows
        self.policy: QueuePolicy = QueuePolicy()

        # Fault injection: probability of silently dropping a departing
        # data packet (models a lossy cable), and an administrative down
        # flag (models link failure).
        self.loss_rate = 0.0
        self.up = True
        self._loss_rng = None

        # Stats
        self.bytes_sent = 0
        self.packets_sent = 0
        self.packets_dropped = 0
        self.busy_ns = 0
        self.on_drop: Optional[Callable[[Packet, "Port"], None]] = None

        # Observability channels (repro.obs): None when the category is
        # disabled, so the hot path pays one attribute test per packet.
        # enq/deq are specialized emitter callables
        # (``Recorder.queue_emitters()``), not the recorder itself.
        self._rec_enq = None
        self._rec_deq = None
        self._rec_drop = None

        owner.attach_port(self)
        self.name = f"{owner.name}.p{self.index}"

    # ------------------------------------------------------------------
    def connect(self, peer: "Device") -> None:
        self.peer = peer
        # Bound method cached once: deliveries fire straight into the
        # peer's receive() without a per-packet trampoline.
        self._peer_recv = peer.receive

    def serialization_ns(self, packet: Packet) -> int:
        ns = int(packet.wire_bytes * self._ns_per_byte)
        return ns if ns > 0 else 1

    # ------------------------------------------------------------------
    def enqueue(self, packet: Packet) -> bool:
        """Queue a packet for transmission.

        Returns ``True`` if accepted, ``False`` if dropped by policy.
        """
        if packet.is_control:
            self._control.append(packet)
        else:
            policy = self.policy
            if policy.is_noop:
                self._data.append(packet)
                self.queued_bytes += packet.wire_bytes
            else:
                if not policy.admit(self, packet):
                    self._drop(packet)
                    return False
                self._data.append(packet)
                self.queued_bytes += packet.wire_bytes
                policy.on_enqueue(self, packet)
            if self._rec_enq is not None:
                self._rec_enq(self.sim.now, self.name,
                              self.queued_bytes, len(self._data))
        if not self._pump_armed:
            now = self.sim.now
            if now >= self._free_at:
                self._pump()
            else:
                # Serializer mid-packet with no boundary wake-up pending
                # (its queues were empty when it last popped): arm one.
                self._pump_armed = True
                self._fire(self._free_at - now, self._pump_cb)
        return True

    # ------------------------------------------------------------------
    def _pump(self, _arg=None) -> None:
        """Pop the next eligible packet and fold its whole transmit into
        one scheduled delivery event.

        Doubles as the boundary wake-up callback (scheduled via
        ``sim.fire``), so its first action is to disarm the wake-up flag.
        """
        self._pump_armed = False
        control = self._control
        data = self._data
        if control:
            packet = control.popleft()
            wire = packet.wire_bytes
        elif data and not self._data_paused:
            packet = data.popleft()
            wire = packet.wire_bytes
            self.queued_bytes -= wire
            policy = self.policy
            if not policy.is_noop:
                policy.on_dequeue(self, packet)
            if self._rec_deq is not None:
                self._rec_deq(self.sim.now, self.name,
                              self.queued_bytes, len(data))
        else:
            return
        tx_ns = int(wire * self._ns_per_byte)
        if tx_ns <= 0:
            tx_ns = 1
        self.busy_ns += tx_ns
        self._free_at = self.sim.now + tx_ns
        # Healthy-link fast path first; the RNG draw happens under
        # exactly the historical conditions (link up, loss configured,
        # data packet, rng wired) so loss substreams stay bit-identical.
        if self.up and not (self.loss_rate > 0.0 and packet.is_data
                            and self._loss_rng is not None
                            and self._loss_rng.random() < self.loss_rate):
            self.bytes_sent += wire
            self.packets_sent += 1
            packet.hops += 1
            # Delivery dispatches straight into the peer's receive():
            # same (time, seq) the _deliver trampoline consumed, one
            # Python call less per transmitted packet.
            self._fire2(tx_ns + self.delay_ns, self._peer_recv,
                        packet, self)
        else:
            self._drop(packet, "link_down" if not self.up else "loss")
        if control or (data and not self._data_paused):
            self._pump_armed = True
            self._fire(tx_ns, self._pump_cb)

    def _deliver(self, packet: Packet) -> None:
        self._peer_recv(packet, self)

    def _drop(self, packet: Packet, reason: str = "admission") -> None:
        self.packets_dropped += 1
        if self._rec_drop is not None:
            self._rec_drop.drop(self.sim.now, self.name, packet, reason)
        if self.on_drop is not None:
            self.on_drop(packet, self)

    # ------------------------------------------------------------------
    # PFC (802.1Qbb) hooks — driven by the downstream switch's
    # PfcController; only the lossy data class is held back.
    # ------------------------------------------------------------------
    def pause_data(self) -> None:
        self._data_paused = True

    def resume_data(self) -> None:
        self._data_paused = False
        if not self._pump_armed and (self._control or self._data):
            if self.sim.now >= self._free_at:
                self._pump()
            else:
                self._pump_armed = True
                self._fire(self._free_at - self.sim.now, self._pump_cb)

    @property
    def data_paused(self) -> bool:
        return self._data_paused

    # ------------------------------------------------------------------
    def set_loss(self, rate: float, rng) -> None:
        """Enable random drops of departing data packets (fault injection)."""
        if not 0.0 <= rate <= 1.0:
            raise ValueError("loss rate must be in [0, 1]")
        self.loss_rate = rate
        self._loss_rng = rng

    def set_bandwidth(self, bandwidth_bps: float) -> None:
        """Change the serialization rate (fault injection: degradation).

        Packets already mid-serialization keep their old departure time;
        only packets popped after the change see the new rate, which is
        how a real PHY renegotiation behaves.
        """
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        self.bandwidth_bps = float(bandwidth_bps)
        self._ns_per_byte = 8.0 * SEC / self.bandwidth_bps

    def set_delay(self, delay_ns: int) -> None:
        """Change the propagation delay (fault injection: latency shift).

        In-flight deliveries keep their scheduled arrival; a shrinking
        delay can therefore never reorder one direction of a link.
        """
        if delay_ns < 0:
            raise ValueError("delay must be non-negative")
        self.delay_ns = int(delay_ns)

    def flush(self, reason: str = "flush") -> int:
        """Drop every queued packet (fault injection: buffer drain).

        Data packets pass through ``policy.on_dequeue`` before the drop so
        shared-buffer occupancy and PFC ingress credit stay balanced —
        the invariant suite checks ``buffer.used_bytes == 0`` after runs.
        Returns the number of packets flushed.
        """
        flushed = 0
        while self._control:
            self._drop(self._control.popleft(), reason)
            flushed += 1
        while self._data:
            packet = self._data.popleft()
            self.queued_bytes -= packet.wire_bytes
            self.policy.on_dequeue(self, packet)
            self._drop(packet, reason)
            flushed += 1
        return flushed

    @property
    def backlog_packets(self) -> int:
        return len(self._control) + len(self._data)

    @property
    def busy(self) -> bool:
        """Is the serializer occupied right now?"""
        return self.sim.now < self._free_at

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        peer = self.peer.name if self.peer else "?"
        return f"Port({self.name}->{peer}, q={self.queued_bytes}B)"
