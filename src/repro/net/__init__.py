"""Network substrate: packets, ports, devices, topologies."""

from repro.net.packet import (CONTROL_PACKET_BYTES, DATA_HEADER_BYTES,
                              DEFAULT_MTU, FlowKey, Packet, PacketType,
                              ack_packet, cnp_packet, data_packet,
                              nack_packet)
from repro.net.node import Device
from repro.net.port import Port, QueuePolicy
from repro.net.topology import Topology, fat_tree, leaf_spine

__all__ = [
    "Packet", "PacketType", "FlowKey", "Device", "Port", "QueuePolicy",
    "Topology", "leaf_spine", "fat_tree",
    "data_packet", "ack_packet", "nack_packet", "cnp_packet",
    "DATA_HEADER_BYTES", "CONTROL_PACKET_BYTES", "DEFAULT_MTU",
]
