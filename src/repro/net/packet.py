"""Packet model.

Packets approximate RoCEv2 frames at the granularity the paper cares about:
a PSN-carrying data segment (BTH), ACK/NACK control packets carrying the
receiver's expected PSN (AETH), and DCQCN CNPs.  Header layouts are not
modelled byte-for-byte; instead each packet knows its wire size so links and
buffers account for real bandwidth/occupancy.

Key fields used by Themis:

* ``psn``       — packet sequence number (data packets).
* ``epsn``      — expected PSN carried by ACK/NACK (AETH syndrome field).
* ``udp_sport`` — RoCEv2 UDP source port, the entropy field ECMP hashes
  over and the field Themis-S rewrites (Fig. 3).
* ``path_index`` — the fabric path the packet actually took; assigned by
  the source ToR's load balancer.  This is simulator bookkeeping standing
  in for "which core/spine the packet traversed".
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Optional

#: Bytes of Eth+IP+UDP+BTH framing on a data segment.
DATA_HEADER_BYTES = 58
#: Wire size of ACK/NACK/CNP control packets.
CONTROL_PACKET_BYTES = 64
#: Default MTU (payload + headers) used across experiments, per Table 1.
DEFAULT_MTU = 1500


class PacketType(enum.Enum):
    """RoCEv2 packet classes the simulator distinguishes."""

    DATA = "data"
    ACK = "ack"
    NACK = "nack"
    CNP = "cnp"


@dataclass(frozen=True)
class FlowKey:
    """Identity of one RC queue pair's direction (sender -> receiver).

    ``src``/``dst`` are NIC ids; ``qp`` disambiguates multiple QPs between
    the same NIC pair (collectives open one QP per peer per step group).
    """

    src: int
    dst: int
    qp: int = 0

    def reversed(self) -> "FlowKey":
        """Key of the control-packet direction (receiver -> sender)."""
        return FlowKey(self.dst, self.src, self.qp)

    def __str__(self) -> str:
        return f"{self.src}->{self.dst}#{self.qp}"


_packet_ids = itertools.count()


class Packet:
    """A simulated packet.

    Mutable on purpose: switches rewrite ``udp_sport`` (Themis-S) and set
    ``ecn_marked`` (RED/ECN) in flight, exactly like real hardware.
    """

    __slots__ = (
        "pkt_id", "ptype", "flow", "psn", "epsn", "payload_bytes",
        "wire_bytes", "udp_sport", "ecn_marked", "is_retx", "path_index",
        "sent_at", "themis_generated", "hops",
    )

    def __init__(self, ptype: PacketType, flow: FlowKey, *,
                 psn: int = 0, epsn: int = 0, payload_bytes: int = 0,
                 udp_sport: int = 0, is_retx: bool = False,
                 sent_at: int = 0) -> None:
        self.pkt_id = next(_packet_ids)
        self.ptype = ptype
        self.flow = flow
        self.psn = psn
        self.epsn = epsn
        self.payload_bytes = payload_bytes
        if ptype is PacketType.DATA:
            self.wire_bytes = payload_bytes + DATA_HEADER_BYTES
        else:
            self.wire_bytes = CONTROL_PACKET_BYTES
        self.udp_sport = udp_sport
        self.ecn_marked = False
        self.is_retx = is_retx
        self.path_index: Optional[int] = None
        self.sent_at = sent_at
        self.themis_generated = False
        self.hops = 0

    # -- classification helpers ---------------------------------------
    @property
    def is_data(self) -> bool:
        return self.ptype is PacketType.DATA

    @property
    def is_control(self) -> bool:
        return self.ptype is not PacketType.DATA

    @property
    def src(self) -> int:
        """NIC id this packet originates from."""
        return self.flow.src

    @property
    def dst(self) -> int:
        """NIC id this packet is addressed to."""
        return self.flow.dst

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        extra = f"psn={self.psn}" if self.is_data else f"epsn={self.epsn}"
        return (f"Packet#{self.pkt_id}({self.ptype.value}, {self.flow}, "
                f"{extra}, {self.wire_bytes}B)")


def data_packet(flow: FlowKey, psn: int, payload_bytes: int, *,
                udp_sport: int = 0, is_retx: bool = False,
                sent_at: int = 0) -> Packet:
    """Build a data segment."""
    return Packet(PacketType.DATA, flow, psn=psn,
                  payload_bytes=payload_bytes, udp_sport=udp_sport,
                  is_retx=is_retx, sent_at=sent_at)


def ack_packet(data_flow: FlowKey, epsn: int) -> Packet:
    """Cumulative ACK: everything below ``epsn`` is received."""
    return Packet(PacketType.ACK, data_flow.reversed(), epsn=epsn)


def nack_packet(data_flow: FlowKey, epsn: int) -> Packet:
    """NACK carrying only the receiver's expected PSN (per §2.2 the
    out-of-order trigger PSN is *not* included)."""
    return Packet(PacketType.NACK, data_flow.reversed(), epsn=epsn)


def cnp_packet(data_flow: FlowKey) -> Packet:
    """DCQCN congestion notification packet."""
    return Packet(PacketType.CNP, data_flow.reversed())
