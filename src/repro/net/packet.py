"""Packet model.

Packets approximate RoCEv2 frames at the granularity the paper cares about:
a PSN-carrying data segment (BTH), ACK/NACK control packets carrying the
receiver's expected PSN (AETH), and DCQCN CNPs.  Header layouts are not
modelled byte-for-byte; instead each packet knows its wire size so links and
buffers account for real bandwidth/occupancy.

Key fields used by Themis:

* ``psn``       — packet sequence number (data packets).
* ``epsn``      — expected PSN carried by ACK/NACK (AETH syndrome field).
* ``udp_sport`` — RoCEv2 UDP source port, the entropy field ECMP hashes
  over and the field Themis-S rewrites (Fig. 3).
* ``path_index`` — the fabric path the packet actually took; assigned by
  the source ToR's load balancer.  This is simulator bookkeeping standing
  in for "which core/spine the packet traversed".

Packet pooling
--------------
Simulations allocate one :class:`Packet` per segment per flow — millions
per run — so the module keeps a free list and the factory constructors
(:func:`data_packet` & friends) reset a recycled instance in place instead
of allocating.  :func:`release_packet` returns a packet to the pool; the
RNIC calls it once a delivered packet has been fully consumed.

**Pooling invariant:** a pooled packet must never be retained after the
delivery callbacks return — consumers copy the fields they need (PSNs,
sizes, flow keys) rather than storing the object.  Every recycled packet
gets a fresh ``pkt_id``, so holding a stale reference is detectable in
tests by the id changing under you.
"""

from __future__ import annotations

import enum
import itertools
from typing import NamedTuple, Optional

#: Bytes of Eth+IP+UDP+BTH framing on a data segment.
DATA_HEADER_BYTES = 58
#: Wire size of ACK/NACK/CNP control packets.
CONTROL_PACKET_BYTES = 64
#: Default MTU (payload + headers) used across experiments, per Table 1.
DEFAULT_MTU = 1500


class PacketType(enum.Enum):
    """RoCEv2 packet classes the simulator distinguishes."""

    DATA = "data"
    ACK = "ack"
    NACK = "nack"
    CNP = "cnp"


class FlowKey(NamedTuple):
    """Identity of one RC queue pair's direction (sender -> receiver).

    ``src``/``dst`` are NIC ids; ``qp`` disambiguates multiple QPs between
    the same NIC pair (collectives open one QP per peer per step group).

    A ``NamedTuple`` rather than a dataclass: flow keys index every
    QP/route/cache dict on the hot path, and tuple hash/equality run in C
    — the dataclass version paid a Python-level ``__eq__`` on every dict
    hit whose stored key was a different (equal) object, e.g. the
    receiver-side key probed with the sender-side packet's key.
    """

    src: int
    dst: int
    qp: int = 0

    def reversed(self) -> "FlowKey":
        """Key of the control-packet direction (receiver -> sender)."""
        return FlowKey(self[1], self[0], self[2])

    def __str__(self) -> str:
        return f"{self[0]}->{self[1]}#{self[2]}"


_packet_ids = itertools.count()


class Packet:
    """A simulated packet.

    Mutable on purpose: switches rewrite ``udp_sport`` (Themis-S) and set
    ``ecn_marked`` (RED/ECN) in flight, exactly like real hardware.

    ``is_data``/``is_control`` and ``src``/``dst`` are plain attributes
    (not properties) set at init time: they are read several times per hop
    on the hot path and ``ptype``/``flow`` are never reassigned.
    """

    __slots__ = (
        "pkt_id", "ptype", "flow", "psn", "epsn", "payload_bytes",
        "wire_bytes", "udp_sport", "ecn_marked", "is_retx", "path_index",
        "sent_at", "themis_generated", "hops", "is_data", "is_control",
        "src", "dst", "_in_pool",
    )

    def __init__(self, ptype: PacketType, flow: FlowKey, *,
                 psn: int = 0, epsn: int = 0, payload_bytes: int = 0,
                 udp_sport: int = 0, is_retx: bool = False,
                 sent_at: int = 0) -> None:
        self._in_pool = False
        self._init(ptype, flow, psn, epsn, payload_bytes, udp_sport,
                   is_retx, sent_at)

    def _init(self, ptype: PacketType, flow: FlowKey, psn: int = 0,
              epsn: int = 0, payload_bytes: int = 0, udp_sport: int = 0,
              is_retx: bool = False, sent_at: int = 0) -> None:
        """(Re)initialise every field — shared by __init__ and the pool.

        Positional-only by convention: the factories below call it once
        per simulated packet, where keyword passing is measurable.
        """
        self.pkt_id = next(_packet_ids)
        self.ptype = ptype
        self.flow = flow
        self.psn = psn
        self.epsn = epsn
        self.payload_bytes = payload_bytes
        if ptype is PacketType.DATA:
            self.wire_bytes = payload_bytes + DATA_HEADER_BYTES
            self.is_data = True
            self.is_control = False
        else:
            self.wire_bytes = CONTROL_PACKET_BYTES
            self.is_data = False
            self.is_control = True
        self.src = flow.src
        self.dst = flow.dst
        self.udp_sport = udp_sport
        self.ecn_marked = False
        self.is_retx = is_retx
        self.path_index: Optional[int] = None
        self.sent_at = sent_at
        self.themis_generated = False
        self.hops = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        extra = f"psn={self.psn}" if self.is_data else f"epsn={self.epsn}"
        return (f"Packet#{self.pkt_id}({self.ptype.value}, {self.flow}, "
                f"{extra}, {self.wire_bytes}B)")


#: Free list shared by the factory constructors below.  Bounded so a burst
#: (e.g. a large incast draining) cannot pin memory forever.
_POOL_CAP = 8192
_pool: list[Packet] = []


def release_packet(packet: Packet) -> None:
    """Return a consumed packet to the free list.

    Safe to call at most once per delivery (double release is a no-op via
    the ``_in_pool`` guard).  Only call this at a *terminal* consumption
    point — after it returns, the object may be handed out again by any
    factory with completely different contents.
    """
    if packet._in_pool:
        return
    packet._in_pool = True
    if len(_pool) < _POOL_CAP:
        _pool.append(packet)


def pooled_packets() -> int:
    """Current free-list size (introspection for tests/benchmarks)."""
    return len(_pool)


def _make(ptype: PacketType, flow: FlowKey, psn: int = 0, epsn: int = 0,
          payload_bytes: int = 0, udp_sport: int = 0, is_retx: bool = False,
          sent_at: int = 0) -> Packet:
    if _pool:
        pkt = _pool.pop()
    else:
        pkt = Packet.__new__(Packet)
    pkt._in_pool = False
    pkt._init(ptype, flow, psn, epsn, payload_bytes, udp_sport,
              is_retx, sent_at)
    return pkt


def data_packet(flow: FlowKey, psn: int, payload_bytes: int, *,
                udp_sport: int = 0, is_retx: bool = False,
                sent_at: int = 0) -> Packet:
    """Build a data segment."""
    return _make(PacketType.DATA, flow, psn, 0, payload_bytes,
                 udp_sport, is_retx, sent_at)


def ack_packet(data_flow: FlowKey, epsn: int) -> Packet:
    """Cumulative ACK: everything below ``epsn`` is received."""
    return _make(PacketType.ACK, data_flow.reversed(), 0, epsn)


def nack_packet(data_flow: FlowKey, epsn: int) -> Packet:
    """NACK carrying only the receiver's expected PSN (per §2.2 the
    out-of-order trigger PSN is *not* included)."""
    return _make(PacketType.NACK, data_flow.reversed(), 0, epsn)


def cnp_packet(data_flow: FlowKey) -> Packet:
    """DCQCN congestion notification packet."""
    return _make(PacketType.CNP, data_flow.reversed())
