"""Bidirectional link handle pairing the two directed :class:`Port`\\ s.

The port layer models one *direction* of a cable; operationally a cable
fails, degrades, or reboots as a unit.  A :class:`Link` names the pair
(``"tor0:spine1"`` or ``"tor0:nic3"``) and exposes whole-cable operations
— administrative up/down, rate scaling against the nominal bandwidth,
and asymmetric latency shifts — which is the surface the fault-injection
subsystem (:mod:`repro.faults`) drives.

Links are registered by :class:`repro.net.topology.Topology` as it wires
switches and NICs, so every cable in a built fabric is addressable by
name without walking adjacency lists.
"""

from __future__ import annotations

from typing import Iterable

from repro.net.port import Port


class Link:
    """A named cable: two directed ports between devices *a* and *b*."""

    __slots__ = ("name", "a_name", "b_name", "port_ab", "port_ba",
                 "kind")

    def __init__(self, a_name: str, b_name: str, port_ab: Port,
                 port_ba: Port, kind: str = "fabric") -> None:
        self.a_name = a_name
        self.b_name = b_name
        self.name = f"{a_name}:{b_name}"
        self.port_ab = port_ab
        self.port_ba = port_ba
        self.kind = kind  # "fabric" (switch<->switch) or "host" (tor<->nic)

    # ------------------------------------------------------------------
    @property
    def ports(self) -> tuple[Port, Port]:
        return (self.port_ab, self.port_ba)

    @property
    def up(self) -> bool:
        """A cable is up only when both directions are up."""
        return self.port_ab.up and self.port_ba.up

    def endpoints(self) -> tuple[str, str]:
        return (self.a_name, self.b_name)

    # ------------------------------------------------------------------
    # Whole-cable fault operations
    # ------------------------------------------------------------------
    def set_up(self, up: bool) -> None:
        """Administratively raise/lower both directions."""
        self.port_ab.up = up
        self.port_ba.up = up

    def scale_rate(self, factor: float) -> None:
        """Degrade (or restore) both directions to ``factor`` of nominal.

        ``factor=1.0`` restores the healthy rate; the scale is always
        applied to the *nominal* bandwidth, so degradations do not
        compound across repeated fault events.
        """
        if factor <= 0:
            raise ValueError("rate factor must be positive")
        for port in self.ports:
            port.set_bandwidth(port.nominal_bandwidth_bps * factor)

    def shift_latency(self, extra_ns: int, direction: str = "both") -> None:
        """Add ``extra_ns`` of propagation delay on top of nominal.

        ``direction`` is ``"ab"``, ``"ba"``, or ``"both"`` — asymmetric
        shifts (one direction only) model the skew that breaks RTT-based
        estimators.  ``extra_ns=0`` restores nominal delay.
        """
        if direction not in ("ab", "ba", "both"):
            raise ValueError(f"bad direction {direction!r}")
        targets: Iterable[Port]
        if direction == "ab":
            targets = (self.port_ab,)
        elif direction == "ba":
            targets = (self.port_ba,)
        else:
            targets = self.ports
        for port in targets:
            port.set_delay(port.nominal_delay_ns + int(extra_ns))

    def restore(self) -> None:
        """Return the cable to its healthy state (up, nominal rate/delay)."""
        self.set_up(True)
        for port in self.ports:
            port.set_bandwidth(port.nominal_bandwidth_bps)
            port.set_delay(port.nominal_delay_ns)

    def flush(self, reason: str = "link_flush") -> int:
        """Drop everything queued in both directions; returns the count."""
        return (self.port_ab.flush(reason) + self.port_ba.flush(reason))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.up else "DOWN"
        return f"Link({self.name}, {state})"
