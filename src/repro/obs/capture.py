"""Packet tracing: per-hop event capture for debugging and analysis.

A :class:`PacketTracer` is a passive switch middleware that records every
packet it sees (optionally filtered to one flow) with its location and
header snapshot — the simulator's answer to a fabric-wide packet capture.
Traces answer questions like "which spine did PSN 4711 take?" or "when
did the compensated NACK for ePSN 2 go out?", and the tests use them to
verify Eq. 1's path assignment end to end.

Historically this lived in ``repro.harness.tracer``; that shim has been
removed and this module is the only home.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Optional

from repro.net.packet import FlowKey, Packet
from repro.net.port import Port
from repro.switch.switch import Middleware, Switch

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.harness.network import Network


@dataclass(frozen=True)
class TraceEvent:
    """One packet observation at one switch."""

    time_ns: int
    location: str
    pkt_id: int
    ptype: str
    src: int
    dst: int
    qp: int
    psn: int
    epsn: int
    path_index: Optional[int]
    is_retx: bool

    def as_json(self) -> str:
        return json.dumps(asdict(self))


class PacketTracer(Middleware):
    """Passive capture middleware (never blocks or modifies packets)."""

    def __init__(self, flow: Optional[FlowKey] = None,
                 max_events: int = 1_000_000) -> None:
        self.flow = flow
        self.max_events = max_events
        self.events: list[TraceEvent] = []
        self.truncated = False

    def on_packet(self, switch: Switch, packet: Packet,
                  in_port: Optional[Port]) -> bool:
        if self.flow is not None and packet.flow != self.flow \
                and packet.flow != self.flow.reversed():
            return True
        if len(self.events) >= self.max_events:
            self.truncated = True
            return True
        self.events.append(TraceEvent(
            time_ns=switch.sim.now, location=switch.name,
            pkt_id=packet.pkt_id, ptype=packet.ptype.value,
            src=packet.flow.src, dst=packet.flow.dst, qp=packet.flow.qp,
            psn=packet.psn, epsn=packet.epsn,
            path_index=packet.path_index, is_retx=packet.is_retx))
        return True

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def hops_of(self, pkt_id: int) -> list[TraceEvent]:
        """Chronological hop list of one packet instance."""
        return [e for e in self.events if e.pkt_id == pkt_id]

    def packets_by_psn(self, psn: int) -> list[TraceEvent]:
        """Every data-packet observation with the given PSN."""
        return [e for e in self.events
                if e.ptype == "data" and e.psn == psn]

    def spine_of(self, pkt_id: int) -> Optional[str]:
        """The non-ToR switch one packet traversed (leaf-spine only)."""
        for event in self.hops_of(pkt_id):
            if not event.location.startswith("tor"):
                return event.location
        return None

    def nack_events(self) -> list[TraceEvent]:
        return [e for e in self.events if e.ptype == "nack"]

    def write_jsonl(self, path: str | Path) -> Path:
        """Persist the capture, one JSON event per line."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w") as fh:
            for event in self.events:
                fh.write(event.as_json() + "\n")
        return path


def attach_tracer(network: "Network",
                  flow: Optional[FlowKey] = None) -> PacketTracer:
    """Install one shared tracer at the head of every switch pipeline.

    Must run before traffic starts; the tracer sees packets before any
    Themis middleware acts on them.
    """
    tracer = PacketTracer(flow)
    for switch in network.topology.switches:
        switch.middleware.insert(0, tracer)
    return tracer
