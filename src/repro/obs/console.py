"""Console output helper for the CLI.

Every subcommand routes its output through one :class:`Console` so the
harness has exactly three output contracts:

* default      — human-readable text on stdout (``info``/``table``),
* ``--quiet``  — informational chatter suppressed, results still shown,
* ``--json``   — a single machine-readable JSON document on stdout
                 (``result``); all text output suppressed.

Errors and warnings always go to stderr so ``--json`` stdout stays a
clean, parseable stream.
"""

from __future__ import annotations

import json
import sys
from typing import Any, Optional, TextIO


class Console:
    """Routed, mode-aware printing for CLI subcommands."""

    def __init__(self, *, quiet: bool = False, json_mode: bool = False,
                 stream: Optional[TextIO] = None,
                 err_stream: Optional[TextIO] = None) -> None:
        self.quiet = quiet
        self.json_mode = json_mode
        self.stream = stream if stream is not None else sys.stdout
        self.err_stream = err_stream if err_stream is not None \
            else sys.stderr
        self._result_doc: Optional[dict] = None

    # ------------------------------------------------------------------
    def info(self, *parts: Any, sep: str = " ") -> None:
        """Progress/log line: suppressed under --quiet and --json."""
        if self.quiet or self.json_mode:
            return
        print(*parts, sep=sep, file=self.stream)

    def out(self, *parts: Any, sep: str = " ") -> None:
        """Primary human-readable output: suppressed only under --json.

        Use for the lines a script piping the default output would want
        (tables, headline numbers); ``--quiet`` keeps these.
        """
        if self.json_mode:
            return
        print(*parts, sep=sep, file=self.stream)

    def warn(self, *parts: Any, sep: str = " ") -> None:
        print("warning:", *parts, sep=sep, file=self.err_stream)

    def error(self, *parts: Any, sep: str = " ") -> None:
        print("error:", *parts, sep=sep, file=self.err_stream)

    # ------------------------------------------------------------------
    def result(self, doc: dict) -> None:
        """Register the command's machine-readable result document.

        Under ``--json`` the document is printed (pretty, sorted) as the
        sole stdout output; otherwise it is retained for tests/embedding
        but not printed (the human output already covered it).
        """
        self._result_doc = doc
        if self.json_mode:
            print(json.dumps(doc, indent=2, sort_keys=True),
                  file=self.stream)

    @property
    def last_result(self) -> Optional[dict]:
        return self._result_doc

    # ------------------------------------------------------------------
    def progress_printer(self):
        """An ``echo``-style callable for APIs that take a print hook."""
        return self.info
