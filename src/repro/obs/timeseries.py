"""Time-series instrumentation.

Experiments need traces like "sending rate over time" (Fig. 1c) and
"retransmission ratio over time" (Fig. 1b).  :class:`TimeSeries` records raw
``(time, value)`` samples; :class:`WindowedCounter` accumulates event counts
and reports per-window rates; :class:`RateMeter` converts byte counts into a
bits-per-second series.

This module is the canonical home of these types (they once lived at
``repro.sim.trace``, removed after its deprecation window).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Tuple

#: Nanoseconds per second (mirrors ``repro.sim.engine.SEC``; kept local so
#: the observability layer does not import the engine package).
SEC = 1_000_000_000


@dataclass
class TimeSeries:
    """Raw (time_ns, value) samples with simple summary statistics."""

    name: str = ""
    samples: List[Tuple[int, float]] = field(default_factory=list)

    def record(self, time_ns: int, value: float) -> None:
        self.samples.append((time_ns, value))

    def __len__(self) -> int:
        return len(self.samples)

    def times(self) -> List[int]:
        return [t for t, _ in self.samples]

    def values(self) -> List[float]:
        return [v for _, v in self.samples]

    def mean(self) -> float:
        """Time-unweighted mean of the recorded values (0.0 if empty)."""
        if not self.samples:
            return 0.0
        return sum(v for _, v in self.samples) / len(self.samples)

    def time_weighted_mean(self) -> float:
        """Mean weighting each value by how long it was in force.

        The value recorded at ``t_i`` is assumed to hold until ``t_{i+1}``;
        the final sample gets zero weight.  Falls back to :meth:`mean` when
        fewer than two samples exist.
        """
        if len(self.samples) < 2:
            return self.mean()
        total = 0.0
        weight = 0
        for (t0, v), (t1, _) in zip(self.samples, self.samples[1:]):
            dt = t1 - t0
            total += v * dt
            weight += dt
        if weight == 0:
            return self.mean()
        return total / weight


class WindowedCounter:
    """Counts events into fixed windows; reports per-window totals.

    Used for the Fig. 1b retransmission-ratio trace: one counter for
    retransmitted packets, one for all packets, ratio per window.
    """

    def __init__(self, window_ns: int) -> None:
        if window_ns <= 0:
            raise ValueError("window must be positive")
        self.window_ns = window_ns
        self._windows: dict[int, float] = {}

    def add(self, time_ns: int, amount: float = 1.0) -> None:
        self._windows[time_ns // self.window_ns] = (
            self._windows.get(time_ns // self.window_ns, 0.0) + amount)

    def total(self) -> float:
        return sum(self._windows.values())

    def series(self) -> List[Tuple[int, float]]:
        """Sorted ``(window_start_ns, count)`` pairs."""
        return [(idx * self.window_ns, count)
                for idx, count in sorted(self._windows.items())]

    @staticmethod
    def ratio_series(numerator: "WindowedCounter",
                     denominator: "WindowedCounter",
                     ) -> List[Tuple[int, float]]:
        """Per-window ``numerator/denominator`` where the denominator is
        nonzero.  Both counters must share a window size."""
        if numerator.window_ns != denominator.window_ns:
            raise ValueError("window sizes differ")
        den = dict(denominator.series())
        out = []
        for start, count in numerator.series():
            total = den.get(start, 0.0)
            if total > 0:
                out.append((start, count / total))
        return out


class RateMeter:
    """Accumulates bytes into windows and reports Gbps per window."""

    def __init__(self, window_ns: int) -> None:
        self._counter = WindowedCounter(window_ns)
        self.window_ns = window_ns

    def add_bytes(self, time_ns: int, nbytes: int) -> None:
        self._counter.add(time_ns, float(nbytes))

    def total_bytes(self) -> float:
        return self._counter.total()

    def series_gbps(self) -> List[Tuple[int, float]]:
        scale = 8.0 * SEC / self.window_ns / 1e9
        return [(t, b * scale) for t, b in self._counter.series()]

    def mean_gbps(self, start_ns: int = 0, end_ns: int | None = None) -> float:
        """Average rate over [start, end] based on total bytes."""
        series = self._counter.series()
        if not series:
            return 0.0
        if end_ns is None:
            end_ns = series[-1][0] + self.window_ns
        duration = max(end_ns - start_ns, self.window_ns)
        total = sum(b for t, b in series if start_ns <= t < end_ns)
        return total * 8.0 / duration * SEC / 1e9


def summarize(values: Iterable[float]) -> dict:
    """Small helper: min/mean/max/p99-style summary for reports."""
    vals = sorted(values)
    if not vals:
        return {"count": 0, "min": 0.0, "mean": 0.0, "max": 0.0}
    return {
        "count": len(vals),
        "min": vals[0],
        "mean": sum(vals) / len(vals),
        "max": vals[-1],
    }
