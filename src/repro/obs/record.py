"""Structured trace recorder and flight-recorder ring buffer.

The :class:`Recorder` is the hub of the observability layer.  Components
hold a *channel* — either the recorder itself (category enabled) or
``None`` (disabled) — so the instrumentation cost on a cold category is a
single attribute load and branch::

    rec = recorder.channel(PACKET) if recorder else None
    ...
    if rec is not None:
        rec.packet_hop(now, name, packet)

Every emitted event additionally lands in a bounded **flight ring**
(last-N events kept) regardless of retention settings, so a post-mortem
dump is always available when a simulation raises, an invariant fails,
or a job worker crashes.

Storage layout (the traced-run fast path)
-----------------------------------------
Events are stored as compact *struct rows*: flat tuples whose first
element is an interned **name id** (an index into per-recorder
``id -> name/category/materializer`` tables) followed by the scalar
payload fields in a fixed per-event-type order.  Emitting costs one
tuple build, one list append, and one integer count bump — no dict is
built, no ``str(flow)`` or ``f"pfc_{action}"`` string is formatted, and
dynamic names (queue actions, PFC/fault transitions) are interned once
per distinct action rather than formatted per event.

The legacy record shape ``(time_ns, category, name, location, data)``
with ``data`` a dict of scalars is **materialized lazily** — only when
:meth:`records`, :attr:`ring`, or :meth:`dump_flight` is called — and is
byte-identical to what the eager dict-based recorder produced (golden
equality tests pin this per category).  ``data`` never holds a live
:class:`Packet` reference (packets are pooled and recycled); immutable
``FlowKey`` tuples are safe to hold and are stringified at
materialization time.

Per-category **sampling** (``sample={QUEUE: 16}``) keeps every k-th
event of a category and drops the rest before any recording work
happens; sampled-out events are invisible (not counted, not ringed).

:meth:`columns` offers a typed columnar view (``array('q')``/list per
field) of the uniform high-rate categories for offline analysis.
"""

from __future__ import annotations

import itertools
import json
import os
import weakref
from array import array
from collections import deque
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.packet import FlowKey, Packet

# ----------------------------------------------------------------------
# Event categories
# ----------------------------------------------------------------------
PACKET = "packet"    # per-hop packet observations at switches
QUEUE = "queue"      # port enqueue/dequeue + queue depth samples
ECN = "ecn"          # ECN CE marks applied by switch queue policies
DROP = "drop"        # tail/queue-policy drops at ports
NACK = "nack"        # NACK emit / Themis-D classify / compensate lifecycle
PFC = "pfc"          # PFC pause / resume frames
QP = "qp"            # sender QP state changes (rewind, rto, complete)
CC = "cc"            # congestion-control rate updates
FAULT = "fault"      # injected network failures (link down, reboot, storm)

ALL_CATEGORIES: tuple[str, ...] = (PACKET, QUEUE, ECN, DROP, NACK, PFC, QP,
                                   CC, FAULT)

#: Default flight-ring capacity: enough to reconstruct the last few
#: microseconds of a busy fabric without holding the whole run in memory.
DEFAULT_RING_CAPACITY = 4096

#: Environment variable overriding where crash dumps are written.
DUMP_DIR_ENV = "REPRO_OBS_DIR"
DEFAULT_DUMP_DIR = "obs-dumps"


class InvariantError(AssertionError):
    """An internal consistency check failed (flight ring was dumped)."""


# ----------------------------------------------------------------------
# Materializers: compact struct row -> legacy (t, cat, name, loc, data).
# Field order inside each data dict is load-bearing — dump_flight JSONL
# and the Perfetto export are byte-compared against the historical
# dict-based output.
# ----------------------------------------------------------------------
def _mat_hop(e, name, cat):
    flow = e[5]
    return (e[1], cat, name, e[2], {
        "pkt_id": e[3], "ptype": e[4].value, "src": flow.src,
        "dst": flow.dst, "qp": flow.qp, "psn": e[6], "epsn": e[7],
        "path_index": e[8], "is_retx": e[9]})


def _mat_queue(e, name, cat):
    return (e[1], cat, name, e[2], {
        "queued_bytes": e[3], "backlog_pkts": e[4]})


def _mat_ecn(e, name, cat):
    return (e[1], cat, name, e[2], {
        "pkt_id": e[3], "psn": e[4], "flow": str(e[5]),
        "queued_bytes": e[6]})


def _mat_drop(e, name, cat):
    return (e[1], cat, name, e[2], {
        "pkt_id": e[3], "ptype": e[4].value, "flow": str(e[5]),
        "psn": e[6], "reason": e[7]})


def _mat_nack_emit(e, name, cat):
    return (e[1], cat, name, e[2], {
        "flow": str(e[3]), "epsn": e[4], "trigger_psn": e[5]})


def _mat_nack_classify(e, name, cat):
    tpsn, n_paths, guard = e[6], e[7], e[10]
    data: dict = {"flow": str(e[3]), "epsn": e[4], "verdict": e[5],
                  "tpsn": tpsn, "n_paths": n_paths,
                  "ring_len": e[8], "armed": e[9]}
    if n_paths:
        data["epsn_path"] = e[4] % n_paths
        data["tpsn_path"] = None if tpsn is None else tpsn % n_paths
    if guard is not None:
        data["guard"] = guard
    return (e[1], cat, name, e[2], data)


def _mat_nack_compensate(e, name, cat):
    return (e[1], cat, name, e[2], {
        "flow": str(e[3]), "bepsn": e[4], "prove_psn": e[5]})


def _mat_nack_cancel(e, name, cat):
    return (e[1], cat, name, e[2], {
        "flow": str(e[3]), "bepsn": e[4], "reason": e[5]})


def _mat_pfc(e, name, cat):
    return (e[1], cat, name, e[2], {"occupancy_bytes": e[3]})


def _mat_qp_state(e, name, cat):
    data = {"flow": str(e[3]), "state": e[4]}
    data.update(e[5])
    return (e[1], cat, name, e[2], data)


def _mat_cc_rate(e, name, cat):
    return (e[1], cat, name, e[2], {"rate_bps": e[3]})


def _mat_fault(e, name, cat):
    return (e[1], cat, name, e[2], dict(e[3]))


#: Statically-interned names: (name, category, materializer).  Dynamic
#: names (queue actions, pfc_*/fault_* transitions) are interned on
#: first use and appended after these.
_STATIC_NAMES = (
    ("hop", PACKET, _mat_hop),
    ("ecn_mark", ECN, _mat_ecn),
    ("drop", DROP, _mat_drop),
    ("nack_emit", NACK, _mat_nack_emit),
    ("nack_classify", NACK, _mat_nack_classify),
    ("nack_compensate", NACK, _mat_nack_compensate),
    ("nack_cancel", NACK, _mat_nack_cancel),
    ("qp_state", QP, _mat_qp_state),
    ("cc_rate", CC, _mat_cc_rate),
    # The two queue actions every Port fires on the hot path are
    # statically interned so queue_enq/queue_deq skip the action lookup.
    ("enq", QUEUE, _mat_queue),
    ("deq", QUEUE, _mat_queue),
)
(_ID_HOP, _ID_ECN, _ID_DROP, _ID_NACK_EMIT, _ID_NACK_CLASSIFY,
 _ID_NACK_COMPENSATE, _ID_NACK_CANCEL, _ID_QP_STATE,
 _ID_CC_RATE, _ID_Q_ENQ, _ID_Q_DEQ) = range(len(_STATIC_NAMES))


class Recorder:
    """Typed trace-event recorder with per-category enable flags.

    Parameters
    ----------
    categories:
        Iterable of category names to enable, or ``None`` for all.
        Disabled categories emit nothing and cost nothing at call sites
        (their channel is ``None``).
    ring_capacity:
        Size of the always-on flight ring (last-N events kept).
    retain:
        Categories whose events are additionally kept *in full* (an
        unbounded append-only buffer of compact rows) for offline
        analysis — e.g. ``{NACK}`` for the causality audit, or all
        categories for a Perfetto export.
    sample:
        Optional ``{category: k}`` striding — keep every k-th event of
        that category, drop the rest before any recording work.  Absent
        categories (and ``k=1``) record everything.  Sampled-out events
        do not count toward :meth:`total_events`.
    """

    def __init__(self, categories: Optional[Iterable[str]] = None, *,
                 ring_capacity: int = DEFAULT_RING_CAPACITY,
                 retain: Iterable[str] = (),
                 sample: Optional[dict] = None) -> None:
        cats = ALL_CATEGORIES if categories is None else tuple(categories)
        unknown = set(cats) - set(ALL_CATEGORIES)
        if unknown:
            raise ValueError(f"unknown trace categories: {sorted(unknown)}")
        self.enabled = frozenset(cats)
        retained = frozenset(retain)
        unknown = retained - set(ALL_CATEGORIES)
        if unknown:
            raise ValueError(f"unknown retain categories: {sorted(unknown)}")
        # Retaining a disabled category would silently record nothing.
        self.retain = retained & self.enabled
        sample = dict(sample or {})
        unknown = set(sample) - set(ALL_CATEGORIES)
        if unknown:
            raise ValueError(f"unknown sample categories: {sorted(unknown)}")
        for cat, k in sample.items():
            if int(k) < 1:
                raise ValueError(f"sample stride for {cat} must be >= 1")
        self.sample = {cat: int(k) for cat, k in sample.items()}

        # Interned name tables (index = name id used in struct rows).
        self._names: list[str] = [n for n, _, _ in _STATIC_NAMES]
        self._name_cats: list[str] = [c for _, c, _ in _STATIC_NAMES]
        self._mat: list = [m for _, _, m in _STATIC_NAMES]
        self._counts: list[int] = [0] * len(_STATIC_NAMES)
        # Dynamic-name intern maps: raw action -> name id.
        self._queue_ids: dict[str, int] = {"enq": _ID_Q_ENQ,
                                           "deq": _ID_Q_DEQ}
        self._pfc_ids: dict[str, int] = {}
        self._fault_ids: dict[str, int] = {}

        # Flight ring: deque of compact rows with C-level auto-evict,
        # so the hot emitters pay no length check or trim slice.
        self._cap = int(ring_capacity)
        self._ring: deque = deque(maxlen=self._cap)
        # Bound method cached once: every emitter saves one attribute
        # lookup per event (the ring is never reassigned).
        self._ring_append = self._ring.append

        # Retained full buffers (compact rows, objects shared with the
        # ring) — one attribute per category so the hot emitters pay a
        # single load instead of a dict lookup.
        self._retained: dict[str, list] = {cat: [] for cat in self.retain}
        self._ret_packet = self._retained.get(PACKET)
        self._ret_queue = self._retained.get(QUEUE)
        self._ret_ecn = self._retained.get(ECN)
        self._ret_drop = self._retained.get(DROP)
        self._ret_nack = self._retained.get(NACK)
        self._ret_pfc = self._retained.get(PFC)
        self._ret_qp = self._retained.get(QP)
        self._ret_cc = self._retained.get(CC)
        self._ret_fault = self._retained.get(FAULT)

        # Sampling strides (1 = keep everything) + seen counters.
        self._k_packet = self.sample.get(PACKET, 1)
        self._k_queue = self.sample.get(QUEUE, 1)
        self._k_ecn = self.sample.get(ECN, 1)
        self._k_drop = self.sample.get(DROP, 1)
        self._k_nack = self.sample.get(NACK, 1)
        self._k_pfc = self.sample.get(PFC, 1)
        self._k_qp = self.sample.get(QP, 1)
        self._k_cc = self.sample.get(CC, 1)
        self._k_fault = self.sample.get(FAULT, 1)
        self._seen = {cat: 0 for cat in ALL_CATEGORIES}

        self.dumps: list[Path] = []

    # ------------------------------------------------------------------
    # Channel handout
    # ------------------------------------------------------------------
    def channel(self, category: str) -> Optional["Recorder"]:
        """Return ``self`` when *category* is enabled, else ``None``.

        Call sites store the result once and guard each emit with a
        single ``if rec is not None`` — the whole per-category flag
        machinery compiles down to that check.
        """
        return self if category in self.enabled else None

    # ------------------------------------------------------------------
    # Interning helpers (cold: once per distinct dynamic name)
    # ------------------------------------------------------------------
    def _intern(self, name: str, cat: str, mat) -> int:
        name_id = len(self._names)
        self._names.append(name)
        self._name_cats.append(cat)
        self._mat.append(mat)
        self._counts.append(0)
        return name_id

    def _sampled_out(self, cat: str, k: int) -> bool:
        seen = self._seen[cat] + 1
        self._seen[cat] = seen
        return bool(seen % k)

    # ------------------------------------------------------------------
    # Specialized emitter closures for the two hottest call sites
    # (Switch.receive and Port enqueue/dequeue).  A closure that
    # captured the ring/counts once costs a plain function call per
    # event — no ``self`` rebinding and no per-emit attribute loads —
    # which is worth ~25% of the whole tracing overhead at full rate.
    # Non-default configurations (sampling, retention, subclassed
    # emitters) fall back to the bound methods below.
    # ------------------------------------------------------------------
    def hop_emitter(self):
        """Callable for ``Switch.rec``: same signature as
        :meth:`packet_hop`."""
        if (type(self).packet_hop is not Recorder.packet_hop
                or self._k_packet != 1 or self._ret_packet is not None):
            return self.packet_hop
        ring_append = self._ring_append
        counts = self._counts

        def emit_hop(t, loc, pkt):
            ring_append((_ID_HOP, t, loc, pkt.pkt_id, pkt.ptype, pkt.flow,
                         pkt.psn, pkt.epsn, pkt.path_index, pkt.is_retx))
            counts[_ID_HOP] += 1

        return emit_hop

    def queue_emitters(self):
        """``(enq, deq)`` callables for ``Port._rec_enq/_rec_deq``: same
        signatures as :meth:`queue_enq`/:meth:`queue_deq`."""
        if (type(self).queue_enq is not Recorder.queue_enq
                or type(self).queue_deq is not Recorder.queue_deq
                or self._k_queue != 1 or self._ret_queue is not None):
            return self.queue_enq, self.queue_deq
        ring_append = self._ring_append
        counts = self._counts

        def emit_enq(t, loc, queued_bytes, backlog):
            ring_append((_ID_Q_ENQ, t, loc, queued_bytes, backlog))
            counts[_ID_Q_ENQ] += 1

        def emit_deq(t, loc, queued_bytes, backlog):
            ring_append((_ID_Q_DEQ, t, loc, queued_bytes, backlog))
            counts[_ID_Q_DEQ] += 1

        return emit_enq, emit_deq

    # ------------------------------------------------------------------
    # Typed emitters.  The ring append / count bump / retain append is
    # inlined in each (no helper call on the hot path).  Scalar fields
    # are copied at emit time; the only object references stored are
    # immutable (FlowKey tuples, enum members, strings) — never a live
    # pooled Packet, whose fields are recycled after delivery.
    # ------------------------------------------------------------------
    def packet_hop(self, t: int, loc: str, packet: "Packet") -> None:
        if self._k_packet != 1 and self._sampled_out(PACKET,
                                                     self._k_packet):
            return
        row = (_ID_HOP, t, loc, packet.pkt_id, packet.ptype, packet.flow,
               packet.psn, packet.epsn, packet.path_index, packet.is_retx)
        self._ring_append(row)
        self._counts[_ID_HOP] += 1
        if self._ret_packet is not None:
            self._ret_packet.append(row)

    def queue_enq(self, t: int, loc: str, queued_bytes: int,
                  backlog: int) -> None:
        """``queue_sample(..., "enq", ...)`` minus the action lookup —
        the Port hot path fires this once per enqueued packet."""
        if self._k_queue != 1 and self._sampled_out(QUEUE, self._k_queue):
            return
        row = (_ID_Q_ENQ, t, loc, queued_bytes, backlog)
        self._ring_append(row)
        self._counts[_ID_Q_ENQ] += 1
        if self._ret_queue is not None:
            self._ret_queue.append(row)

    def queue_deq(self, t: int, loc: str, queued_bytes: int,
                  backlog: int) -> None:
        if self._k_queue != 1 and self._sampled_out(QUEUE, self._k_queue):
            return
        row = (_ID_Q_DEQ, t, loc, queued_bytes, backlog)
        self._ring_append(row)
        self._counts[_ID_Q_DEQ] += 1
        if self._ret_queue is not None:
            self._ret_queue.append(row)

    def queue_sample(self, t: int, loc: str, action: str,
                     queued_bytes: int, backlog: int) -> None:
        """Enqueue/dequeue with the resulting queue depth."""
        if self._k_queue != 1 and self._sampled_out(QUEUE, self._k_queue):
            return
        name_id = self._queue_ids.get(action)
        if name_id is None:
            name_id = self._queue_ids[action] = self._intern(
                action, QUEUE, _mat_queue)
        row = (name_id, t, loc, queued_bytes, backlog)
        self._ring_append(row)
        self._counts[name_id] += 1
        if self._ret_queue is not None:
            self._ret_queue.append(row)

    def ecn_mark(self, t: int, loc: str, packet: "Packet",
                 queued_bytes: int) -> None:
        if self._k_ecn != 1 and self._sampled_out(ECN, self._k_ecn):
            return
        row = (_ID_ECN, t, loc, packet.pkt_id, packet.psn, packet.flow,
               queued_bytes)
        self._ring_append(row)
        self._counts[_ID_ECN] += 1
        if self._ret_ecn is not None:
            self._ret_ecn.append(row)

    def drop(self, t: int, loc: str, packet: "Packet",
             reason: str = "tail") -> None:
        if self._k_drop != 1 and self._sampled_out(DROP, self._k_drop):
            return
        row = (_ID_DROP, t, loc, packet.pkt_id, packet.ptype, packet.flow,
               packet.psn, reason)
        self._ring_append(row)
        self._counts[_ID_DROP] += 1
        if self._ret_drop is not None:
            self._ret_drop.append(row)

    def nack_emit(self, t: int, loc: str, flow: "FlowKey", epsn: int,
                  trigger_psn: Optional[int]) -> None:
        """A receiver generated a NACK for *epsn* on seeing *trigger_psn*."""
        if self._k_nack != 1 and self._sampled_out(NACK, self._k_nack):
            return
        row = (_ID_NACK_EMIT, t, loc, flow, epsn, trigger_psn)
        self._ring_append(row)
        self._counts[_ID_NACK_EMIT] += 1
        if self._ret_nack is not None:
            self._ret_nack.append(row)

    def nack_classify(self, t: int, loc: str, flow: "FlowKey", epsn: int,
                      verdict: str, *, tpsn: Optional[int] = None,
                      n_paths: int = 0, ring_len: int = 0,
                      armed: bool = False,
                      guard: Optional[str] = None) -> None:
        """Themis-D decision for one NACK (Eq. 3 evaluation)."""
        if self._k_nack != 1 and self._sampled_out(NACK, self._k_nack):
            return
        row = (_ID_NACK_CLASSIFY, t, loc, flow, epsn, verdict, tpsn,
               n_paths, ring_len, armed, guard)
        self._ring_append(row)
        self._counts[_ID_NACK_CLASSIFY] += 1
        if self._ret_nack is not None:
            self._ret_nack.append(row)

    def nack_compensate(self, t: int, loc: str, flow: "FlowKey",
                        bepsn: int, prove_psn: int) -> None:
        """A previously blocked ePSN was proven lost; NACK regenerated."""
        if self._k_nack != 1 and self._sampled_out(NACK, self._k_nack):
            return
        row = (_ID_NACK_COMPENSATE, t, loc, flow, bepsn, prove_psn)
        self._ring_append(row)
        self._counts[_ID_NACK_COMPENSATE] += 1
        if self._ret_nack is not None:
            self._ret_nack.append(row)

    def nack_cancel(self, t: int, loc: str, flow: "FlowKey", bepsn: int,
                    reason: str) -> None:
        """Armed compensation dismissed (the blocked ePSN showed up)."""
        if self._k_nack != 1 and self._sampled_out(NACK, self._k_nack):
            return
        row = (_ID_NACK_CANCEL, t, loc, flow, bepsn, reason)
        self._ring_append(row)
        self._counts[_ID_NACK_CANCEL] += 1
        if self._ret_nack is not None:
            self._ret_nack.append(row)

    def pfc(self, t: int, loc: str, action: str,
            occupancy_bytes: int) -> None:
        if self._k_pfc != 1 and self._sampled_out(PFC, self._k_pfc):
            return
        name_id = self._pfc_ids.get(action)
        if name_id is None:
            # The display name is formatted once per distinct action,
            # not once per event.
            name_id = self._pfc_ids[action] = self._intern(
                f"pfc_{action}", PFC, _mat_pfc)
        row = (name_id, t, loc, occupancy_bytes)
        self._ring_append(row)
        self._counts[name_id] += 1
        if self._ret_pfc is not None:
            self._ret_pfc.append(row)

    def qp_state(self, t: int, loc: str, flow: "FlowKey", state: str,
                 **detail) -> None:
        if self._k_qp != 1 and self._sampled_out(QP, self._k_qp):
            return
        row = (_ID_QP_STATE, t, loc, flow, state, detail)
        self._ring_append(row)
        self._counts[_ID_QP_STATE] += 1
        if self._ret_qp is not None:
            self._ret_qp.append(row)

    def cc_rate(self, t: int, loc: str, rate_bps: float) -> None:
        if self._k_cc != 1 and self._sampled_out(CC, self._k_cc):
            return
        row = (_ID_CC_RATE, t, loc, rate_bps)
        self._ring_append(row)
        self._counts[_ID_CC_RATE] += 1
        if self._ret_cc is not None:
            self._ret_cc.append(row)

    def fault(self, t: int, loc: str, action: str, **detail) -> None:
        """An injected failure (or its recovery) took effect at *loc*.

        ``action`` names the transition (``link_down``, ``link_up``,
        ``degrade``, ``latency_shift``, ``reboot``, ``recover``,
        ``pfc_storm``, ``storm_end``, ``reconverge``, ...); scalar detail
        fields carry the parameters.  Faults always leave a trace — the
        audit relies on these events to explain every compensation
        decision made around a path failure.
        """
        if self._k_fault != 1 and self._sampled_out(FAULT, self._k_fault):
            return
        name_id = self._fault_ids.get(action)
        if name_id is None:
            name_id = self._fault_ids[action] = self._intern(
                f"fault_{action}", FAULT, _mat_fault)
        row = (name_id, t, loc, detail)
        self._ring_append(row)
        self._counts[name_id] += 1
        if self._ret_fault is not None:
            self._ret_fault.append(row)

    # ------------------------------------------------------------------
    # Lazy materialization
    # ------------------------------------------------------------------
    def _materialize(self, entry: tuple):
        name_id = entry[0]
        return self._mat[name_id](entry, self._names[name_id],
                                  self._name_cats[name_id])

    @property
    def ring(self) -> deque:
        """Materialized flight-ring view (legacy record tuples).

        Built lazily on access; the underlying storage is the compact
        struct-row deque.  Kept as a ``deque`` with ``maxlen`` for
        drop-in compatibility with the eager recorder's ring attribute.
        """
        mat = self._materialize
        return deque((mat(e) for e in self._ring), maxlen=self._cap)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def records(self, category: Optional[str] = None) -> list:
        """Recorded events for one category (retained buffer when the
        category is retained, else whatever survives in the flight ring);
        all ring contents when *category* is ``None``.  Records are
        materialized to the legacy ``(t, cat, name, loc, data)`` shape."""
        mat = self._materialize
        if category is None:
            return [mat(e) for e in self._ring]
        retained = self._retained.get(category)
        if retained is not None:
            return [mat(e) for e in retained]
        cats = self._name_cats
        return [mat(e) for e in self._ring if cats[e[0]] == category]

    @property
    def counts(self) -> dict:
        """Per-event-name emit counts (materialized from id counters)."""
        return {name: count for name, count
                in zip(self._names, self._counts) if count}

    def total_events(self) -> int:
        return sum(self._counts)

    def counts_summary(self) -> dict:
        """Per-event-name counts plus a total, for Metrics.summary()."""
        out = dict(sorted(self.counts.items()))
        out["total"] = self.total_events()
        return out

    # ------------------------------------------------------------------
    # Typed columnar export
    # ------------------------------------------------------------------
    #: Column layouts of the uniform (fixed-row) categories:
    #: field name -> (array typecode or None for a list, row extractor;
    #: a ``None`` extractor means "interned event name").
    _COLUMN_SPECS = {
        PACKET: (("t", "q", lambda e: e[1]),
                 ("loc", None, lambda e: e[2]),
                 ("pkt_id", "q", lambda e: e[3]),
                 ("ptype", None, lambda e: e[4].value),
                 ("src", "q", lambda e: e[5].src),
                 ("dst", "q", lambda e: e[5].dst),
                 ("qp", "q", lambda e: e[5].qp),
                 ("psn", "q", lambda e: e[6]),
                 ("epsn", "q", lambda e: e[7]),
                 ("path_index", "q", lambda e: e[8]),
                 ("is_retx", "b", lambda e: e[9])),
        QUEUE: (("t", "q", lambda e: e[1]),
                ("loc", None, lambda e: e[2]),
                ("name", None, None),
                ("queued_bytes", "q", lambda e: e[3]),
                ("backlog_pkts", "q", lambda e: e[4])),
        CC: (("t", "q", lambda e: e[1]),
             ("loc", None, lambda e: e[2]),
             ("rate_bps", "d", lambda e: e[3])),
        PFC: (("t", "q", lambda e: e[1]),
              ("loc", None, lambda e: e[2]),
              ("name", None, None),
              ("occupancy_bytes", "q", lambda e: e[3])),
    }

    def columns(self, category: str) -> dict:
        """Typed columnar view of a uniform category's recorded rows.

        Returns ``{field: array.array | list}`` built lazily from the
        retained buffer (or the ring, when the category is unretained).
        Only the fixed-row categories (packet/queue/cc/pfc) support
        this; variable-shape categories raise ``ValueError``.
        """
        spec = self._COLUMN_SPECS.get(category)
        if spec is None:
            raise ValueError(
                f"category {category!r} has no uniform column layout")
        rows = self._retained.get(category)
        if rows is None:
            cats = self._name_cats
            rows = [e for e in self._ring if cats[e[0]] == category]
        names = self._names
        out: dict = {}
        for field, typecode, extract in spec:
            if extract is None:
                out[field] = [names[e[0]] for e in rows]
            elif typecode is None:
                out[field] = [extract(e) for e in rows]
            else:
                out[field] = array(typecode,
                                   (int(extract(e)) for e in rows)
                                   if typecode != "d"
                                   else (extract(e) for e in rows))
        return out

    # ------------------------------------------------------------------
    # Flight-recorder dump
    # ------------------------------------------------------------------
    def dump_flight(self, path: str | Path | None = None, *,
                    reason: str = "manual") -> Path:
        """Write the flight ring as JSONL; returns the path written.

        The first line is a metadata header; each following line is one
        event.  Both are standalone JSON objects, so the file parses as
        plain JSONL.
        """
        if path is None:
            path = _default_dump_path(reason)
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        rows = self._ring
        mat = self._materialize
        with path.open("w") as fh:
            fh.write(json.dumps({
                "meta": "repro-flight-recorder", "reason": reason,
                "events": len(rows),
                "total_emitted": self.total_events(),
                "categories": sorted(self.enabled)}) + "\n")
            for entry in rows:
                t, cat, name, loc, data = mat(entry)
                doc = {"t": t, "cat": cat, "ev": name, "loc": loc}
                doc.update(data)
                fh.write(json.dumps(doc) + "\n")
        self.dumps.append(path)
        return path


# ----------------------------------------------------------------------
# Active-recorder registry (crash-dump hook)
# ----------------------------------------------------------------------
# The harness registers the recorder of the run in flight so that crash
# paths far from the Network object (job workers, invariant checks) can
# dump it without plumbing.  A weakref keeps the registry from extending
# recorder lifetime.
_active: Optional[weakref.ref] = None


def set_active(recorder: Optional[Recorder]) -> None:
    global _active
    _active = None if recorder is None else weakref.ref(recorder)


def active_recorder() -> Optional[Recorder]:
    if _active is None:
        return None
    return _active()


# Process-local monotonic sequence: pid + wall-clock ms alone collide when
# one process dumps twice within a millisecond (e.g. in-proc job retries),
# and concurrently-failing job workers forked from the same parent can even
# share a pid namespace on some mp start methods.  pid + seq + optional
# caller tag (job spec-hash) makes every dump name unique.
_dump_seq = itertools.count()


def _default_dump_path(reason: str, tag: str | None = None) -> Path:
    import time

    directory = Path(os.environ.get(DUMP_DIR_ENV, DEFAULT_DUMP_DIR))
    slug = "".join(c if c.isalnum() or c in "-_" else "-" for c in reason)
    stamp = int(time.time() * 1000)
    parts = [f"flight-{slug}"]
    if tag:
        safe = "".join(c if c.isalnum() or c in "-_" else "-" for c in tag)
        parts.append(safe)
    parts.append(f"pid{os.getpid()}-{stamp}-{next(_dump_seq)}")
    return directory / ("-".join(parts) + ".jsonl")


def dump_active_flight(reason: str,
                       directory: str | Path | None = None, *,
                       tag: str | None = None,
                       ) -> Optional[Path]:
    """Dump the active recorder's flight ring; best-effort, never raises.

    Returns the dump path, or ``None`` when no recorder is active or the
    write failed (crash paths must not mask the original error).  *tag*
    (e.g. a job spec-hash) is woven into the filename so concurrent
    worker failures never race to the same dump file.
    """
    rec = active_recorder()
    if rec is None:
        return None
    try:
        if directory is None:
            path = _default_dump_path(reason, tag)
        else:
            path = Path(directory) / _default_dump_path(reason, tag).name
        return rec.dump_flight(path, reason=reason)
    except Exception:  # pragma: no cover - defensive
        return None


def check_invariant(condition: bool, message: str) -> None:
    """Assert an internal invariant; on failure dump the flight ring.

    Raises :class:`InvariantError` with the dump path appended so the
    failure message points straight at the evidence.
    """
    if condition:
        return
    dump = dump_active_flight("invariant")
    if dump is not None:
        message = f"{message} [flight recorder: {dump}]"
    raise InvariantError(message)
