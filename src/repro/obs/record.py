"""Structured trace recorder and flight-recorder ring buffer.

The :class:`Recorder` is the hub of the observability layer.  Components
hold a *channel* — either the recorder itself (category enabled) or
``None`` (disabled) — so the instrumentation cost on a cold category is a
single attribute load and branch::

    rec = recorder.channel(PACKET) if recorder else None
    ...
    if rec is not None:
        rec.packet_hop(now, name, packet)

Every emitted event additionally lands in a bounded **flight ring**
(``collections.deque`` with ``maxlen``) regardless of retention settings,
so the last N events are always available for a post-mortem dump when a
simulation raises, an invariant fails, or a job worker crashes.

Events are plain tuples ``(time_ns, category, name, location, data)``
where ``data`` is a dict of scalars only — never a live :class:`Packet`
reference (packets are pooled and recycled; retaining one would alias a
future packet).
"""

from __future__ import annotations

import itertools
import json
import os
import weakref
from collections import deque
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.packet import FlowKey, Packet

# ----------------------------------------------------------------------
# Event categories
# ----------------------------------------------------------------------
PACKET = "packet"    # per-hop packet observations at switches
QUEUE = "queue"      # port enqueue/dequeue + queue depth samples
ECN = "ecn"          # ECN CE marks applied by switch queue policies
DROP = "drop"        # tail/queue-policy drops at ports
NACK = "nack"        # NACK emit / Themis-D classify / compensate lifecycle
PFC = "pfc"          # PFC pause / resume frames
QP = "qp"            # sender QP state changes (rewind, rto, complete)
CC = "cc"            # congestion-control rate updates
FAULT = "fault"      # injected network failures (link down, reboot, storm)

ALL_CATEGORIES: tuple[str, ...] = (PACKET, QUEUE, ECN, DROP, NACK, PFC, QP,
                                   CC, FAULT)

#: Default flight-ring capacity: enough to reconstruct the last few
#: microseconds of a busy fabric without holding the whole run in memory.
DEFAULT_RING_CAPACITY = 4096

#: Environment variable overriding where crash dumps are written.
DUMP_DIR_ENV = "REPRO_OBS_DIR"
DEFAULT_DUMP_DIR = "obs-dumps"


class InvariantError(AssertionError):
    """An internal consistency check failed (flight ring was dumped)."""


class Recorder:
    """Typed trace-event recorder with per-category enable flags.

    Parameters
    ----------
    categories:
        Iterable of category names to enable, or ``None`` for all.
        Disabled categories emit nothing and cost nothing at call sites
        (their channel is ``None``).
    ring_capacity:
        Size of the always-on flight ring (last-N events kept).
    retain:
        Categories whose events are additionally kept *in full* (an
        unbounded list) for offline analysis — e.g. ``{NACK}`` for the
        causality audit, or all categories for a Perfetto export.
    """

    def __init__(self, categories: Optional[Iterable[str]] = None, *,
                 ring_capacity: int = DEFAULT_RING_CAPACITY,
                 retain: Iterable[str] = ()) -> None:
        cats = ALL_CATEGORIES if categories is None else tuple(categories)
        unknown = set(cats) - set(ALL_CATEGORIES)
        if unknown:
            raise ValueError(f"unknown trace categories: {sorted(unknown)}")
        self.enabled = frozenset(cats)
        retained = frozenset(retain)
        unknown = retained - set(ALL_CATEGORIES)
        if unknown:
            raise ValueError(f"unknown retain categories: {sorted(unknown)}")
        # Retaining a disabled category would silently record nothing.
        self.retain = retained & self.enabled
        self.ring: deque = deque(maxlen=int(ring_capacity))
        self._retained: dict[str, list] = {cat: [] for cat in self.retain}
        self.counts: dict[str, int] = {}
        self.dumps: list[Path] = []

    # ------------------------------------------------------------------
    # Channel handout
    # ------------------------------------------------------------------
    def channel(self, category: str) -> Optional["Recorder"]:
        """Return ``self`` when *category* is enabled, else ``None``.

        Call sites store the result once and guard each emit with a
        single ``if rec is not None`` — the whole per-category flag
        machinery compiles down to that check.
        """
        return self if category in self.enabled else None

    # ------------------------------------------------------------------
    # Core emit
    # ------------------------------------------------------------------
    def _emit(self, t: int, cat: str, name: str, loc: str,
              data: dict) -> None:
        record = (t, cat, name, loc, data)
        self.ring.append(record)
        self.counts[name] = self.counts.get(name, 0) + 1
        retained = self._retained.get(cat)
        if retained is not None:
            retained.append(record)

    # ------------------------------------------------------------------
    # Typed emitters.  All copy scalar fields; none retain object refs.
    # ------------------------------------------------------------------
    def packet_hop(self, t: int, loc: str, packet: "Packet") -> None:
        flow = packet.flow
        self._emit(t, PACKET, "hop", loc, {
            "pkt_id": packet.pkt_id, "ptype": packet.ptype.value,
            "src": flow.src, "dst": flow.dst, "qp": flow.qp,
            "psn": packet.psn, "epsn": packet.epsn,
            "path_index": packet.path_index, "is_retx": packet.is_retx})

    def queue_sample(self, t: int, loc: str, action: str,
                     queued_bytes: int, backlog: int) -> None:
        """Enqueue/dequeue with the resulting queue depth."""
        self._emit(t, QUEUE, action, loc, {
            "queued_bytes": queued_bytes, "backlog_pkts": backlog})

    def ecn_mark(self, t: int, loc: str, packet: "Packet",
                 queued_bytes: int) -> None:
        self._emit(t, ECN, "ecn_mark", loc, {
            "pkt_id": packet.pkt_id, "psn": packet.psn,
            "flow": str(packet.flow), "queued_bytes": queued_bytes})

    def drop(self, t: int, loc: str, packet: "Packet",
             reason: str = "tail") -> None:
        self._emit(t, DROP, "drop", loc, {
            "pkt_id": packet.pkt_id, "ptype": packet.ptype.value,
            "flow": str(packet.flow), "psn": packet.psn,
            "reason": reason})

    def nack_emit(self, t: int, loc: str, flow: "FlowKey", epsn: int,
                  trigger_psn: Optional[int]) -> None:
        """A receiver generated a NACK for *epsn* on seeing *trigger_psn*."""
        self._emit(t, NACK, "nack_emit", loc, {
            "flow": str(flow), "epsn": epsn, "trigger_psn": trigger_psn})

    def nack_classify(self, t: int, loc: str, flow: "FlowKey", epsn: int,
                      verdict: str, *, tpsn: Optional[int] = None,
                      n_paths: int = 0, ring_len: int = 0,
                      armed: bool = False,
                      guard: Optional[str] = None) -> None:
        """Themis-D decision for one NACK (Eq. 3 evaluation)."""
        data: dict = {"flow": str(flow), "epsn": epsn, "verdict": verdict,
                      "tpsn": tpsn, "n_paths": n_paths,
                      "ring_len": ring_len, "armed": armed}
        if n_paths:
            data["epsn_path"] = epsn % n_paths
            data["tpsn_path"] = None if tpsn is None else tpsn % n_paths
        if guard is not None:
            data["guard"] = guard
        self._emit(t, NACK, "nack_classify", loc, data)

    def nack_compensate(self, t: int, loc: str, flow: "FlowKey",
                        bepsn: int, prove_psn: int) -> None:
        """A previously blocked ePSN was proven lost; NACK regenerated."""
        self._emit(t, NACK, "nack_compensate", loc, {
            "flow": str(flow), "bepsn": bepsn, "prove_psn": prove_psn})

    def nack_cancel(self, t: int, loc: str, flow: "FlowKey", bepsn: int,
                    reason: str) -> None:
        """Armed compensation dismissed (the blocked ePSN showed up)."""
        self._emit(t, NACK, "nack_cancel", loc, {
            "flow": str(flow), "bepsn": bepsn, "reason": reason})

    def pfc(self, t: int, loc: str, action: str,
            occupancy_bytes: int) -> None:
        self._emit(t, PFC, f"pfc_{action}", loc, {
            "occupancy_bytes": occupancy_bytes})

    def qp_state(self, t: int, loc: str, flow: "FlowKey", state: str,
                 **detail) -> None:
        data = {"flow": str(flow), "state": state}
        data.update(detail)
        self._emit(t, QP, "qp_state", loc, data)

    def cc_rate(self, t: int, loc: str, rate_bps: float) -> None:
        self._emit(t, CC, "cc_rate", loc, {"rate_bps": rate_bps})

    def fault(self, t: int, loc: str, action: str, **detail) -> None:
        """An injected failure (or its recovery) took effect at *loc*.

        ``action`` names the transition (``link_down``, ``link_up``,
        ``degrade``, ``latency_shift``, ``reboot``, ``recover``,
        ``pfc_storm``, ``storm_end``, ``reconverge``, ...); scalar detail
        fields carry the parameters.  Faults always leave a trace — the
        audit relies on these events to explain every compensation
        decision made around a path failure.
        """
        self._emit(t, FAULT, f"fault_{action}", loc, dict(detail))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def records(self, category: Optional[str] = None) -> list:
        """Recorded events for one category (retained list when the
        category is retained, else whatever survives in the flight ring);
        all ring contents when *category* is ``None``."""
        if category is None:
            return list(self.ring)
        retained = self._retained.get(category)
        if retained is not None:
            return list(retained)
        return [r for r in self.ring if r[1] == category]

    def total_events(self) -> int:
        return sum(self.counts.values())

    def counts_summary(self) -> dict:
        """Per-event-name counts plus a total, for Metrics.summary()."""
        out = dict(sorted(self.counts.items()))
        out["total"] = self.total_events()
        return out

    # ------------------------------------------------------------------
    # Flight-recorder dump
    # ------------------------------------------------------------------
    def dump_flight(self, path: str | Path | None = None, *,
                    reason: str = "manual") -> Path:
        """Write the flight ring as JSONL; returns the path written.

        The first line is a metadata header; each following line is one
        event.  Both are standalone JSON objects, so the file parses as
        plain JSONL.
        """
        if path is None:
            path = _default_dump_path(reason)
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w") as fh:
            fh.write(json.dumps({
                "meta": "repro-flight-recorder", "reason": reason,
                "events": len(self.ring),
                "total_emitted": self.total_events(),
                "categories": sorted(self.enabled)}) + "\n")
            for t, cat, name, loc, data in self.ring:
                doc = {"t": t, "cat": cat, "ev": name, "loc": loc}
                doc.update(data)
                fh.write(json.dumps(doc) + "\n")
        self.dumps.append(path)
        return path


# ----------------------------------------------------------------------
# Active-recorder registry (crash-dump hook)
# ----------------------------------------------------------------------
# The harness registers the recorder of the run in flight so that crash
# paths far from the Network object (job workers, invariant checks) can
# dump it without plumbing.  A weakref keeps the registry from extending
# recorder lifetime.
_active: Optional[weakref.ref] = None


def set_active(recorder: Optional[Recorder]) -> None:
    global _active
    _active = None if recorder is None else weakref.ref(recorder)


def active_recorder() -> Optional[Recorder]:
    if _active is None:
        return None
    return _active()


# Process-local monotonic sequence: pid + wall-clock ms alone collide when
# one process dumps twice within a millisecond (e.g. in-proc job retries),
# and concurrently-failing job workers forked from the same parent can even
# share a pid namespace on some mp start methods.  pid + seq + optional
# caller tag (job spec-hash) makes every dump name unique.
_dump_seq = itertools.count()


def _default_dump_path(reason: str, tag: str | None = None) -> Path:
    import time

    directory = Path(os.environ.get(DUMP_DIR_ENV, DEFAULT_DUMP_DIR))
    slug = "".join(c if c.isalnum() or c in "-_" else "-" for c in reason)
    stamp = int(time.time() * 1000)
    parts = [f"flight-{slug}"]
    if tag:
        safe = "".join(c if c.isalnum() or c in "-_" else "-" for c in tag)
        parts.append(safe)
    parts.append(f"pid{os.getpid()}-{stamp}-{next(_dump_seq)}")
    return directory / ("-".join(parts) + ".jsonl")


def dump_active_flight(reason: str,
                       directory: str | Path | None = None, *,
                       tag: str | None = None,
                       ) -> Optional[Path]:
    """Dump the active recorder's flight ring; best-effort, never raises.

    Returns the dump path, or ``None`` when no recorder is active or the
    write failed (crash paths must not mask the original error).  *tag*
    (e.g. a job spec-hash) is woven into the filename so concurrent
    worker failures never race to the same dump file.
    """
    rec = active_recorder()
    if rec is None:
        return None
    try:
        if directory is None:
            path = _default_dump_path(reason, tag)
        else:
            path = Path(directory) / _default_dump_path(reason, tag).name
        return rec.dump_flight(path, reason=reason)
    except Exception:  # pragma: no cover - defensive
        return None


def check_invariant(condition: bool, message: str) -> None:
    """Assert an internal invariant; on failure dump the flight ring.

    Raises :class:`InvariantError` with the dump path appended so the
    failure message points straight at the evidence.
    """
    if condition:
        return
    dump = dump_active_flight("invariant")
    if dump is not None:
        message = f"{message} [flight recorder: {dump}]"
    raise InvariantError(message)
