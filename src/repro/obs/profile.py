"""Event-handler wall-time profiling for the simulation engines.

Both engines (:class:`repro.sim.engine.Simulator` and ``HeapSimulator``)
expose a ``trace`` hook invoked immediately before each callback runs.
The :class:`Profiler` rides that hook: at hook time it charges the
wall-clock interval since the *previous* hook to the previous callback,
then starts the clock for the new one.  The result is a histogram of
wall time per handler type (``Port._pump``, ``SenderQp._send_one``, ...)
— exactly the breakdown needed to aim the next perf PR.

The attribution is off by the engine's own dispatch overhead (popping the
next event is charged to the handler that preceded it), which is the
standard trade-off for hook-based profilers; relative shares remain
meaningful because dispatch cost is uniform across handler types.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Simulator


@dataclass
class HandlerStats:
    """Aggregated wall time for one handler type."""

    name: str
    calls: int = 0
    total_s: float = 0.0

    @property
    def mean_us(self) -> float:
        return self.total_s / self.calls * 1e6 if self.calls else 0.0


class Profiler:
    """Wall-time-per-handler histogram driven by the engine trace hook."""

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.stats: dict[str, HandlerStats] = {}
        self._prev_key: str | None = None
        self._prev_clock = 0.0
        self._names: dict[int, str] = {}   # id(callback) -> qualname cache
        self._attached = False

    # ------------------------------------------------------------------
    def attach(self) -> "Profiler":
        if self.sim.trace is not None:
            raise RuntimeError("engine trace hook already in use")
        self.sim.trace = self._hook
        self._attached = True
        self._prev_key = None
        self._prev_clock = time.perf_counter()
        return self

    def detach(self) -> None:
        if not self._attached:
            return
        self._flush(time.perf_counter())
        self.sim.trace = None
        self._attached = False

    def __enter__(self) -> "Profiler":
        return self.attach()

    def __exit__(self, *exc) -> None:
        self.detach()

    # ------------------------------------------------------------------
    def _hook(self, _time_ns: int, _seq: int, callback) -> None:
        now = time.perf_counter()
        self._flush(now)
        key = self._names.get(id(callback))
        if key is None:
            key = getattr(callback, "__qualname__", None) \
                or repr(callback)
            self._names[id(callback)] = key
        self._prev_key = key
        self._prev_clock = now

    def _flush(self, now: float) -> None:
        key = self._prev_key
        if key is None:
            return
        stats = self.stats.get(key)
        if stats is None:
            stats = self.stats[key] = HandlerStats(key)
        stats.calls += 1
        stats.total_s += now - self._prev_clock
        self._prev_key = None

    # ------------------------------------------------------------------
    def report(self) -> dict:
        """JSON-friendly summary, handlers sorted by total time."""
        total = sum(s.total_s for s in self.stats.values()) or 1.0
        rows = sorted(self.stats.values(), key=lambda s: -s.total_s)
        return {
            "handlers": [{
                "handler": s.name,
                "calls": s.calls,
                "total_ms": round(s.total_s * 1e3, 3),
                "mean_us": round(s.mean_us, 3),
                "share": round(s.total_s / total, 4),
            } for s in rows],
            "total_ms": round(total * 1e3, 3),
        }

    def format_table(self) -> str:
        report = self.report()
        lines = [f"{'handler':<40} {'calls':>10} {'total ms':>10} "
                 f"{'mean µs':>9} {'share':>7}"]
        for row in report["handlers"]:
            lines.append(f"{row['handler']:<40} {row['calls']:>10} "
                         f"{row['total_ms']:>10.3f} {row['mean_us']:>9.3f} "
                         f"{row['share']:>6.1%}")
        lines.append(f"total profiled wall time: {report['total_ms']:.1f} ms")
        return "\n".join(lines)
