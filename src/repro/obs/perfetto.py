"""Perfetto / Chrome ``trace_event`` JSON export.

Converts recorder event tuples into the Trace Event Format that both
``chrome://tracing`` and https://ui.perfetto.dev load natively: one
process ("repro-sim"), one track (thread) per emitting location (switch,
port, QP, CC instance), instant events for discrete occurrences, and
counter tracks for queue depth and congestion-control rate.

Reference: the "Trace Event Format" document (Google, JSON array format).
Simulation nanoseconds are exported as microsecond ``ts`` values (the
format's native unit) with fractional precision preserved.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Optional

from repro.obs.record import CC, QUEUE

#: Synthetic process id for the whole simulation.
PID = 1


def export_chrome_trace(records: Iterable[tuple], *,
                        label: str = "repro-sim") -> dict:
    """Build a Chrome trace_event document from event tuples.

    ``records`` are ``(t, cat, name, loc, data)`` tuples.  Returns the
    JSON-serialisable document; use :func:`write_chrome_trace` to persist.
    """
    events: list[dict] = []
    tids: dict[str, int] = {}

    events.append({"name": "process_name", "ph": "M", "pid": PID,
                   "tid": 0, "args": {"name": label}})

    def tid_for(loc: str) -> int:
        tid = tids.get(loc)
        if tid is None:
            tid = len(tids) + 1
            tids[loc] = tid
            events.append({"name": "thread_name", "ph": "M", "pid": PID,
                           "tid": tid, "args": {"name": loc or "?"}})
        return tid

    for t, cat, name, loc, data in records:
        tid = tid_for(loc)
        ts = t / 1000.0  # ns -> µs
        if cat == QUEUE:
            events.append({"name": f"queue_depth {loc}", "ph": "C",
                           "cat": cat, "pid": PID, "tid": tid, "ts": ts,
                           "args": {"bytes": data["queued_bytes"],
                                    "packets": data["backlog_pkts"]}})
        elif cat == CC:
            events.append({"name": f"cc_rate {loc}", "ph": "C",
                           "cat": cat, "pid": PID, "tid": tid, "ts": ts,
                           "args": {"gbps": data["rate_bps"] / 1e9}})
        else:
            events.append({"name": name, "ph": "i", "cat": cat,
                           "pid": PID, "tid": tid, "ts": ts, "s": "t",
                           "args": dict(data)})
    return {"traceEvents": events, "displayTimeUnit": "ns",
            "otherData": {"generator": "repro.obs.perfetto"}}


def write_chrome_trace(records: Iterable[tuple], path: str | Path, *,
                       label: str = "repro-sim") -> Path:
    """Export and write the trace; returns the path written."""
    doc = export_chrome_trace(records, label=label)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc))
    return path


def validate_chrome_trace(doc) -> list[str]:
    """Schema-check a trace document; returns a list of problems.

    An empty list means the document is loadable by Perfetto/Chrome.
    Checks the subset of the Trace Event Format this exporter uses.
    """
    errors: list[str] = []
    if not isinstance(doc, dict):
        return ["document is not a JSON object"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in ("i", "C", "M"):
            errors.append(f"{where}: unexpected ph {ph!r}")
            continue
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            errors.append(f"{where}: missing name")
        if not isinstance(ev.get("pid"), int) \
                or not isinstance(ev.get("tid"), int):
            errors.append(f"{where}: pid/tid must be integers")
        if ph == "M":
            args = ev.get("args")
            if not isinstance(args, dict) or "name" not in args:
                errors.append(f"{where}: metadata event needs args.name")
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            errors.append(f"{where}: ts missing or negative")
        if ph == "i" and ev.get("s") not in ("t", "p", "g"):
            errors.append(f"{where}: instant event needs scope s")
        if ph == "C" and not isinstance(ev.get("args"), dict):
            errors.append(f"{where}: counter event needs numeric args")
    return errors


def track_count(doc: dict) -> int:
    """Number of named tracks (threads) in an exported document."""
    return sum(1 for ev in doc.get("traceEvents", ())
               if ev.get("ph") == "M" and ev.get("name") == "thread_name")
