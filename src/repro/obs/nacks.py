"""NACK-decision causality audit.

Themis-D's correctness story is a chain of per-NACK decisions: a receiver
emits a NACK for an ePSN, the destination ToR recovers the trigger PSN
from the ring queue and applies Eq. 3, and a blocked NACK is either
vindicated later (compensation: a same-path PSN overtakes the blocked
ePSN) or dismissed (the "lost" packet shows up).  The audit trail stitches
the :data:`repro.obs.record.NACK`-category events back into one
:class:`NackDecision` per classified NACK so that ``repro trace nacks``
can explain every decision end to end.

Event vocabulary (see :class:`repro.obs.record.Recorder`):

``nack_emit``         receiver generated a NACK (ePSN + observed trigger)
``nack_classify``     Themis-D verdict with tPSN, path indices, ring state
``nack_compensate``   blocked ePSN proven lost; switch crafted the NACK
``nack_cancel``       armed compensation dismissed (BePSN arrived)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.obs.record import NACK


@dataclass
class NackDecision:
    """One classified NACK with its full causal context."""

    t: int                      # classification time (ns)
    loc: str                    # ToR that classified it
    flow: str                   # data-direction flow key (str form)
    epsn: int
    verdict: str                # forwarded | blocked | no_state | no_tpsn
    tpsn: Optional[int] = None
    n_paths: int = 0
    epsn_path: Optional[int] = None
    tpsn_path: Optional[int] = None
    ring_len: int = 0
    armed: bool = False
    guard: Optional[str] = None          # why arming was skipped
    # Receiver-side origin (nearest preceding nack_emit for this ePSN)
    emit_t: Optional[int] = None
    emit_trigger_psn: Optional[int] = None
    # Outcome of an armed blocked NACK
    outcome: Optional[str] = None        # compensated | cancelled | open
    outcome_t: Optional[int] = None
    prove_psn: Optional[int] = None

    @property
    def explained(self) -> bool:
        """Does the record carry enough context to justify the verdict?

        * forwarded/blocked need the trigger PSN and both path indices;
        * no_state / no_tpsn are self-explaining (the missing state *is*
          the explanation);
        * a blocked NACK that armed compensation must have a resolved or
          explicitly open outcome.
        """
        if self.verdict in ("no_state", "no_tpsn"):
            return True
        if self.tpsn is None or self.n_paths <= 0:
            return False
        if self.epsn_path is None or self.tpsn_path is None:
            return False
        if self.verdict == "blocked" and self.armed:
            return self.outcome is not None
        return True

    def timeline(self) -> list[str]:
        """Human-readable event-by-event story of this decision."""
        lines = []
        if self.emit_t is not None:
            trig = (f" on seeing PSN {self.emit_trigger_psn}"
                    if self.emit_trigger_psn is not None else "")
            lines.append(f"{self.emit_t:>12} ns  receiver NACKed "
                         f"ePSN {self.epsn}{trig}")
        desc = f"{self.t:>12} ns  {self.loc} verdict={self.verdict}"
        if self.tpsn is not None:
            desc += (f" tPSN={self.tpsn}"
                     f" paths: tPSN->{self.tpsn_path}"
                     f" ePSN->{self.epsn_path} (N={self.n_paths},"
                     f" ring={self.ring_len})")
        lines.append(desc)
        if self.verdict == "blocked":
            if self.guard:
                lines.append(f"{'':>15} compensation not armed"
                             f" ({self.guard})")
            elif self.armed and self.outcome == "compensated":
                lines.append(f"{self.outcome_t:>12} ns  compensated:"
                             f" PSN {self.prove_psn} proved BePSN"
                             f" {self.epsn} lost; NACK regenerated")
            elif self.armed and self.outcome == "cancelled":
                lines.append(f"{self.outcome_t:>12} ns  cancelled:"
                             f" BePSN {self.epsn} arrived after all")
            elif self.armed:
                lines.append(f"{'':>15} compensation still armed at"
                             " end of trace")
        return lines


@dataclass
class NackAudit:
    """All decisions of one run plus roll-up statistics."""

    decisions: list[NackDecision] = field(default_factory=list)

    def by_verdict(self, verdict: str) -> list[NackDecision]:
        return [d for d in self.decisions if d.verdict == verdict]

    def unexplained(self) -> list[NackDecision]:
        return [d for d in self.decisions if not d.explained]

    def summary(self) -> dict:
        blocked = self.by_verdict("blocked")
        return {
            "decisions": len(self.decisions),
            "forwarded": len(self.by_verdict("forwarded")),
            "blocked": len(blocked),
            "no_state": len(self.by_verdict("no_state")),
            "no_tpsn": len(self.by_verdict("no_tpsn")),
            "compensated": sum(1 for d in blocked
                               if d.outcome == "compensated"),
            "cancelled": sum(1 for d in blocked
                             if d.outcome == "cancelled"),
            "armed_open": sum(1 for d in blocked
                              if d.armed and d.outcome == "open"),
            "unexplained": len(self.unexplained()),
        }


def build_audit(records: Iterable[tuple]) -> NackAudit:
    """Assemble the audit trail from NACK-category event tuples.

    ``records`` are ``(t, cat, name, loc, data)`` tuples as stored by the
    :class:`Recorder`; non-NACK categories are ignored so the caller can
    pass a mixed stream (e.g. the flight ring).
    """
    events = sorted((r for r in records if r[1] == NACK),
                    key=lambda r: r[0])
    # Receiver emissions indexed by (flow, epsn): list of (t, trigger).
    emits: dict[tuple, list] = {}
    for t, _cat, name, _loc, data in events:
        if name == "nack_emit":
            emits.setdefault((data["flow"], data["epsn"]), []).append(
                (t, data.get("trigger_psn")))

    audit = NackAudit()
    # Armed decisions waiting for an outcome, keyed by (flow, bepsn).
    armed: dict[tuple, NackDecision] = {}
    for t, _cat, name, loc, data in events:
        if name == "nack_classify":
            decision = NackDecision(
                t=t, loc=loc, flow=data["flow"], epsn=data["epsn"],
                verdict=data["verdict"], tpsn=data.get("tpsn"),
                n_paths=data.get("n_paths", 0),
                epsn_path=data.get("epsn_path"),
                tpsn_path=data.get("tpsn_path"),
                ring_len=data.get("ring_len", 0),
                armed=data.get("armed", False),
                guard=data.get("guard"))
            for et, trigger in reversed(
                    emits.get((decision.flow, decision.epsn), ())):
                if et <= t:
                    decision.emit_t = et
                    decision.emit_trigger_psn = trigger
                    break
            if decision.verdict == "blocked" and decision.armed:
                decision.outcome = "open"
                # A re-armed (flow, epsn) supersedes the older record.
                armed[(decision.flow, decision.epsn)] = decision
            audit.decisions.append(decision)
        elif name == "nack_compensate":
            decision = armed.pop((data["flow"], data["bepsn"]), None)
            if decision is not None:
                decision.outcome = "compensated"
                decision.outcome_t = t
                decision.prove_psn = data.get("prove_psn")
        elif name == "nack_cancel":
            decision = armed.pop((data["flow"], data["bepsn"]), None)
            if decision is not None:
                decision.outcome = "cancelled"
                decision.outcome_t = t
    return audit


def format_report(audit: NackAudit, *, limit: int = 50,
                  verdicts: Optional[set[str]] = None) -> str:
    """Render the audit as a human-readable report."""
    lines = []
    summary = audit.summary()
    lines.append("NACK causality audit")
    lines.append("  " + "  ".join(f"{k}={v}" for k, v in summary.items()))
    shown = 0
    for decision in audit.decisions:
        if verdicts is not None and decision.verdict not in verdicts:
            continue
        if shown >= limit:
            lines.append(f"  ... ({len(audit.decisions) - shown} more"
                         " decisions truncated)")
            break
        shown += 1
        lines.append(f"- flow {decision.flow} ePSN {decision.epsn}:")
        for entry in decision.timeline():
            lines.append("    " + entry)
    if summary["unexplained"]:
        lines.append(f"WARNING: {summary['unexplained']} decisions lack "
                     "full causal context")
    return "\n".join(lines)
