"""repro.obs — observability layer.

Structured tracing (:mod:`repro.obs.record`), the always-on flight
recorder, the NACK causality audit (:mod:`repro.obs.nacks`),
Perfetto export (:mod:`repro.obs.perfetto`), engine profiling
(:mod:`repro.obs.profile`), time-series primitives
(:mod:`repro.obs.timeseries`), the per-hop packet capture middleware
(:mod:`repro.obs.capture`), and the CLI console helper
(:mod:`repro.obs.console`).

Only dependency-light modules are imported eagerly; ``capture``,
``nacks``, and ``perfetto`` (which pull in the network stack) load
lazily via module ``__getattr__`` so importing :mod:`repro.obs` from
low-level packages can never create an import cycle.
"""

from repro.obs.console import Console
from repro.obs.profile import Profiler
from repro.obs.record import (ALL_CATEGORIES, CC, DROP, ECN, FAULT, NACK,
                              PACKET, PFC, QP, QUEUE, InvariantError,
                              Recorder, active_recorder, check_invariant,
                              dump_active_flight, set_active)
from repro.obs.timeseries import (RateMeter, TimeSeries, WindowedCounter,
                                  summarize)

__all__ = [
    "ALL_CATEGORIES", "PACKET", "QUEUE", "ECN", "DROP", "NACK", "PFC",
    "QP", "CC", "FAULT",
    "Recorder", "InvariantError", "check_invariant", "set_active",
    "active_recorder", "dump_active_flight",
    "Console", "Profiler",
    "TimeSeries", "WindowedCounter", "RateMeter", "summarize",
    # Lazily loaded:
    "PacketTracer", "TraceEvent", "attach_tracer",
    "build_audit", "format_report", "NackAudit", "NackDecision",
    "export_chrome_trace", "write_chrome_trace", "validate_chrome_trace",
]

_LAZY = {
    "PacketTracer": ("repro.obs.capture", "PacketTracer"),
    "TraceEvent": ("repro.obs.capture", "TraceEvent"),
    "attach_tracer": ("repro.obs.capture", "attach_tracer"),
    "build_audit": ("repro.obs.nacks", "build_audit"),
    "format_report": ("repro.obs.nacks", "format_report"),
    "NackAudit": ("repro.obs.nacks", "NackAudit"),
    "NackDecision": ("repro.obs.nacks", "NackDecision"),
    "export_chrome_trace": ("repro.obs.perfetto", "export_chrome_trace"),
    "write_chrome_trace": ("repro.obs.perfetto", "write_chrome_trace"),
    "validate_chrome_trace": ("repro.obs.perfetto",
                              "validate_chrome_trace"),
}


def __getattr__(name: str):
    target = _LAZY.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute "
                             f"{name!r}")
    import importlib

    module = importlib.import_module(target[0])
    value = getattr(module, target[1])
    globals()[name] = value
    return value
