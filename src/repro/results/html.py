"""Zero-dependency HTML rendering for the dashboard.

Server-rendered pages: tables, stat tiles, and inline-SVG line charts.
Colors follow a validated palette (categorical slots assigned in fixed
order, light and dark steps selected per surface, text always in ink
tokens rather than series colors); every chart ships a legend for >= 2
series, direct end-labels, and native ``<title>`` tooltips on markers.
"""

from __future__ import annotations

from html import escape as esc  # noqa: F401 - re-exported for callers
from typing import Optional, Sequence

#: Categorical series slots (light, dark) in fixed assignment order —
#: a series keeps its slot even when others are filtered out.
SERIES_LIGHT = ("#2a78d6", "#eb6834", "#1baf7a", "#eda100",
                "#e87ba4", "#008300", "#4a3aa7", "#e34948")
SERIES_DARK = ("#3987e5", "#d95926", "#199e70", "#c98500",
               "#d55181", "#008300", "#9085e9", "#e66767")

_SERIES_VARS_LIGHT = "\n".join(
    f"  --series-{i + 1}: {hex};" for i, hex in enumerate(SERIES_LIGHT))
_SERIES_VARS_DARK = "\n".join(
    f"    --series-{i + 1}: {hex};" for i, hex in enumerate(SERIES_DARK))

_STYLE = f"""
:root {{
  color-scheme: light;
  --page: #f9f9f7;
  --surface-1: #fcfcfb;
  --text-primary: #0b0b0b;
  --text-secondary: #52514e;
  --muted: #898781;
  --grid: #e1e0d9;
  --baseline: #c3c2b7;
  --border: rgba(11,11,11,0.10);
  --good: #006300;
{_SERIES_VARS_LIGHT}
}}
@media (prefers-color-scheme: dark) {{
  :root {{
    color-scheme: dark;
    --page: #0d0d0d;
    --surface-1: #1a1a19;
    --text-primary: #ffffff;
    --text-secondary: #c3c2b7;
    --muted: #898781;
    --grid: #2c2c2a;
    --baseline: #383835;
    --border: rgba(255,255,255,0.10);
    --good: #0ca30c;
{_SERIES_VARS_DARK}
  }}
}}
* {{ box-sizing: border-box; }}
body {{
  margin: 0; padding: 24px;
  background: var(--page); color: var(--text-primary);
  font: 14px/1.5 system-ui, -apple-system, "Segoe UI", sans-serif;
}}
main {{ max-width: 1080px; margin: 0 auto; }}
a {{ color: var(--series-1); text-decoration: none; }}
a:hover {{ text-decoration: underline; }}
h1 {{ font-size: 20px; margin: 0 0 4px; }}
h2 {{ font-size: 16px; margin: 28px 0 8px; }}
.subtitle {{ color: var(--text-secondary); margin: 0 0 20px; }}
nav {{ margin: 0 0 20px; color: var(--muted); }}
nav a {{ margin-right: 14px; }}
.card {{
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 16px; margin: 0 0 16px;
  overflow-x: auto;
}}
.tiles {{ display: flex; flex-wrap: wrap; gap: 12px; margin: 0 0 16px; }}
.tile {{
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 12px 16px; min-width: 128px;
}}
.tile .v {{ font-size: 22px; font-weight: 600; }}
.tile .l {{ color: var(--text-secondary); font-size: 12px; }}
table {{ border-collapse: collapse; width: 100%; }}
th, td {{
  text-align: left; padding: 5px 10px;
  border-bottom: 1px solid var(--grid);
}}
th {{ color: var(--text-secondary); font-weight: 600; }}
td.num, th.num {{ text-align: right;
                  font-variant-numeric: tabular-nums; }}
tr:last-child td {{ border-bottom: none; }}
.swatch {{
  display: inline-block; width: 10px; height: 10px;
  border-radius: 2px; margin-right: 6px; vertical-align: baseline;
}}
.legend {{ margin: 6px 0 0; color: var(--text-secondary);
           font-size: 12px; }}
.legend span {{ margin-right: 14px; white-space: nowrap; }}
.note {{ color: var(--muted); font-size: 12px; margin: 6px 0 0; }}
code {{ background: var(--grid); border-radius: 4px;
        padding: 1px 5px; font-size: 12px; }}
"""


def page(title: str, body: str, *, subtitle: str = "",
         active: str = "") -> str:
    """Full HTML document with the shared chrome and nav."""
    links = [("/", "overview"), ("/arena", "arena"),
             ("/faults", "faults"), ("/bench", "bench")]
    bold = ' style="font-weight:600"'
    nav = "".join(
        f'<a href="{href}"{bold if href == active else ""}>'
        f"{label}</a>" for href, label in links)
    sub = f'<p class="subtitle">{esc(subtitle)}</p>' if subtitle else ""
    return (
        "<!DOCTYPE html>\n<html lang=\"en\"><head>"
        "<meta charset=\"utf-8\">"
        "<meta name=\"viewport\" content=\"width=device-width, "
        "initial-scale=1\">"
        f"<title>{esc(title)} · repro results</title>"
        f"<style>{_STYLE}</style></head><body><main>"
        f"<nav>{nav}</nav><h1>{esc(title)}</h1>{sub}{body}"
        "</main></body></html>")


def tiles(items: Sequence[tuple[str, object]]) -> str:
    cells = "".join(
        f'<div class="tile"><div class="v">{esc(str(value))}</div>'
        f'<div class="l">{esc(label)}</div></div>'
        for label, value in items)
    return f'<div class="tiles">{cells}</div>'


def table(headers: Sequence[str], rows: Sequence[Sequence[object]], *,
          numeric: Sequence[int] = (), raw: Sequence[int] = ()) -> str:
    """HTML table; ``numeric`` columns right-align with tabular figures,
    ``raw`` columns are trusted pre-built HTML (links, swatches)."""
    num = ' class="num"'
    head = "".join(
        f'<th{num if i in numeric else ""}>{esc(h)}</th>'
        for i, h in enumerate(headers))
    body = []
    for row in rows:
        cells = []
        for i, cell in enumerate(row):
            content = str(cell) if i in raw else esc(str(cell))
            cells.append(
                f'<td{num if i in numeric else ""}>'
                f"{content}</td>")
        body.append("<tr>" + "".join(cells) + "</tr>")
    return (f'<table><thead><tr>{head}</tr></thead>'
            f'<tbody>{"".join(body)}</tbody></table>')


def card(inner: str) -> str:
    return f'<div class="card">{inner}</div>'


def swatch(slot: int) -> str:
    return (f'<span class="swatch" '
            f'style="background:var(--series-{slot})"></span>')


def line_chart(labels: Sequence[str],
               series: Sequence[tuple[str, Sequence[Optional[float]]]],
               *, width: int = 640, height: int = 200,
               y_fmt: str = "{:,.0f}",
               invert_y: bool = False) -> str:
    """Multi-series SVG line chart.

    ``labels`` name the x positions (one per point); each series is
    ``(name, values)`` with ``None`` for gaps.  At most 8 series (the
    categorical palette's fixed slots); callers cap before this.
    ``invert_y`` puts small values on top (rank charts: 1 is best).
    """
    series = list(series)[:8]
    values = [v for _, vs in series for v in vs if v is not None]
    if not values or not labels:
        return '<p class="note">no data yet</p>'
    lo, hi = min(values), max(values)
    if lo == hi:
        lo, hi = lo - 1, hi + 1
    pad = 0.08 * (hi - lo)
    lo, hi = lo - pad, hi + pad
    ml, mr, mt, mb = 56, 16, 10, 24
    iw, ih = width - ml - mr, height - mt - mb
    n = len(labels)

    def x(i: int) -> float:
        return ml + (iw * i / max(1, n - 1) if n > 1 else iw / 2)

    def y(v: float) -> float:
        frac = (v - lo) / (hi - lo)
        if invert_y:
            frac = 1.0 - frac
        return mt + ih * (1.0 - frac)

    parts = [f'<svg viewBox="0 0 {width} {height}" role="img" '
             f'style="width:100%;max-width:{width}px;height:auto">']
    # Recessive grid: 3 horizontal hairlines + y tick labels in muted ink.
    for frac in (0.0, 0.5, 1.0):
        v = lo + frac * (hi - lo)
        gy = y(v)
        parts.append(f'<line x1="{ml}" y1="{gy:.1f}" x2="{width - mr}" '
                     f'y2="{gy:.1f}" stroke="var(--grid)" '
                     'stroke-width="1"/>')
        parts.append(f'<text x="{ml - 8}" y="{gy + 4:.1f}" '
                     'text-anchor="end" font-size="11" '
                     'fill="var(--muted)" style="font-variant-numeric:'
                     f'tabular-nums">{esc(y_fmt.format(v))}</text>')
    # X labels: first / middle / last to avoid collisions.
    shown = {0, n - 1, (n - 1) // 2} if n > 1 else {0}
    for i in shown:
        parts.append(f'<text x="{x(i):.1f}" y="{height - 6}" '
                     'text-anchor="middle" font-size="11" '
                     f'fill="var(--muted)">{esc(labels[i])}</text>')
    for si, (name, vals) in enumerate(series):
        color = f"var(--series-{si + 1})"
        # Split into segments at None gaps.
        segment: list[tuple[float, float]] = []
        segments = []
        for i, v in enumerate(vals[:n]):
            if v is None:
                if segment:
                    segments.append(segment)
                segment = []
            else:
                segment.append((x(i), y(v)))
        if segment:
            segments.append(segment)
        for seg in segments:
            if len(seg) > 1:
                points = " ".join(f"{px:.1f},{py:.1f}"
                                  for px, py in seg)
                parts.append(f'<polyline points="{points}" fill="none" '
                             f'stroke="{color}" stroke-width="2" '
                             'stroke-linejoin="round"/>')
        for i, v in enumerate(vals[:n]):
            if v is None:
                continue
            # 8px markers with a 2px surface ring; <title> is the
            # native hover tooltip.
            parts.append(
                f'<circle cx="{x(i):.1f}" cy="{y(v):.1f}" r="4" '
                f'fill="{color}" stroke="var(--surface-1)" '
                f'stroke-width="2"><title>{esc(name)} · '
                f'{esc(labels[i])}: {esc(y_fmt.format(v))}</title>'
                '</circle>')
        # Direct end-label for up to 4 series, in ink (not series color).
        if len(series) <= 4:
            last = next((i for i in range(len(vals[:n]) - 1, -1, -1)
                         if vals[i] is not None), None)
            if last is not None:
                parts.append(
                    f'<text x="{x(last) + 8:.1f}" '
                    f'y="{y(vals[last]) + 4:.1f}" font-size="11" '
                    f'fill="var(--text-secondary)">{esc(name)}</text>')
    parts.append("</svg>")
    legend = ""
    if len(series) >= 2:
        legend = ('<div class="legend">' + "".join(
            f"<span>{swatch(i + 1)}{esc(name)}</span>"
            for i, (name, _) in enumerate(series)) + "</div>")
    return "".join(parts) + legend
