"""The SQLite results store.

One file (``results.sqlite`` by convention) holds two kinds of state:

* **Job results** (``job_results``) — the raw payload of every completed
  :class:`repro.harness.jobs.JobSpec`, keyed by spec-hash.  This table
  *is* the run cache: the store's primary key and the runner's cache key
  are the same string, so :class:`repro.harness.jobs.JobRunner` can
  satisfy a job from here without executing anything.  Payloads are
  stored as the same canonical JSON that travels the runner's other
  paths (pipe, checkpoint), so a cache hit reconstructs a byte-identical
  result.
* **Ingested runs** (``runs`` + per-schema detail tables) — whole result
  documents (arena rankings, fault campaigns, bench history) decomposed
  into queryable rows for the dashboard, with enough fidelity that
  :func:`repro.results.ingest.emit_arena_doc` can re-emit the original
  document byte-for-byte.

Concurrency model: a single writer (the runner / the ingest CLI) on one
connection in WAL mode, any number of readers on their own read-only
connections (:func:`connect_readonly`) — which is how the dashboard
serves concurrent traffic with one connection per handler thread.
"""

from __future__ import annotations

import json
import os
import sqlite3
import time
from typing import Optional, Sequence

SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS job_results (
    spec_hash   TEXT PRIMARY KEY,
    kind        TEXT NOT NULL,
    seed        INTEGER NOT NULL,
    label       TEXT NOT NULL DEFAULT '',
    params_json TEXT NOT NULL,
    result_json TEXT NOT NULL,
    created_s   REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS job_results_kind ON job_results(kind);

CREATE TABLE IF NOT EXISTS runs (
    run_id     INTEGER PRIMARY KEY AUTOINCREMENT,
    schema     TEXT NOT NULL,
    name       TEXT NOT NULL,
    source     TEXT NOT NULL DEFAULT '-',
    ingested_s REAL NOT NULL,
    meta_json  TEXT NOT NULL DEFAULT '{}'
);
CREATE INDEX IF NOT EXISTS runs_schema ON runs(schema);

CREATE TABLE IF NOT EXISTS arena_cells (
    run_id        INTEGER NOT NULL REFERENCES runs(run_id),
    cell_order    INTEGER NOT NULL,
    spec_hash     TEXT NOT NULL,
    lb            TEXT NOT NULL,
    transport     TEXT NOT NULL,
    cc            TEXT NOT NULL,
    workload      TEXT NOT NULL,
    topology      TEXT NOT NULL,
    seed          INTEGER NOT NULL,
    completed     INTEGER NOT NULL,
    mean_slowdown REAL NOT NULL,
    goodput_gbps  REAL NOT NULL,
    reorder_rate  REAL NOT NULL,
    nack_validity REAL NOT NULL,
    tail_ns       INTEGER NOT NULL,
    cell_json     TEXT NOT NULL,
    PRIMARY KEY (run_id, cell_order)
);
CREATE INDEX IF NOT EXISTS arena_cells_hash ON arena_cells(spec_hash);

CREATE TABLE IF NOT EXISTS arena_ranking (
    run_id             INTEGER NOT NULL REFERENCES runs(run_id),
    rank               INTEGER NOT NULL,
    lb                 TEXT NOT NULL,
    transport          TEXT NOT NULL,
    mean_slowdown      REAL NOT NULL,
    mean_goodput_gbps  REAL NOT NULL,
    mean_reorder_rate  REAL NOT NULL,
    mean_nack_validity REAL NOT NULL,
    row_json           TEXT NOT NULL,
    PRIMARY KEY (run_id, rank)
);

CREATE TABLE IF NOT EXISTS fault_cells (
    run_id       INTEGER NOT NULL REFERENCES runs(run_id),
    cell_order   INTEGER NOT NULL,
    scenario     TEXT NOT NULL,
    seed         INTEGER NOT NULL,
    completed    INTEGER NOT NULL,
    tail_stretch REAL,
    dip_frac     REAL,
    recovery_ns  INTEGER,
    unexplained  INTEGER NOT NULL,
    cell_json    TEXT NOT NULL,
    PRIMARY KEY (run_id, cell_order)
);
CREATE INDEX IF NOT EXISTS fault_cells_scenario ON fault_cells(scenario);

CREATE TABLE IF NOT EXISTS bench_scenarios (
    run_id         INTEGER NOT NULL REFERENCES runs(run_id),
    scenario       TEXT NOT NULL,
    engine         TEXT NOT NULL,
    events         INTEGER NOT NULL,
    wall_s         REAL NOT NULL,
    events_per_sec INTEGER NOT NULL,
    PRIMARY KEY (run_id, scenario, engine)
);
"""


def _canonical(obj: object) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def connect_readonly(path: str) -> sqlite3.Connection:
    """A read-only connection — what every dashboard thread gets.

    ``mode=ro`` makes accidental writes an sqlite error rather than a
    lock fight with the single writer.
    """
    if not os.path.exists(path):
        raise FileNotFoundError(f"results store not found: {path}")
    conn = sqlite3.connect(f"file:{path}?mode=ro", uri=True)
    conn.row_factory = sqlite3.Row
    return conn


class ResultsStore:
    """Single-writer handle on a results database (creates the schema)."""

    def __init__(self, path: str) -> None:
        self.path = str(path)
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self.conn = sqlite3.connect(self.path)
        self.conn.row_factory = sqlite3.Row
        # WAL lets dashboard readers proceed while a sweep is writing.
        self.conn.execute("PRAGMA journal_mode=WAL")
        self.conn.executescript(_SCHEMA)
        version = self.conn.execute("PRAGMA user_version").fetchone()[0]
        if version == 0:
            self.conn.execute(f"PRAGMA user_version={SCHEMA_VERSION}")
        elif version != SCHEMA_VERSION:
            raise RuntimeError(
                f"{self.path}: store schema v{version}, this build "
                f"expects v{SCHEMA_VERSION}")
        self.conn.commit()

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        self.conn.close()

    def __enter__(self) -> "ResultsStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- run cache (job results) ---------------------------------------
    def get_job_result(self, spec_hash: str) -> Optional[dict]:
        """The cached payload for a spec-hash, or ``None`` on a miss.

        The payload went through canonical JSON on the way in, so what
        comes back is structurally identical to a fresh
        ``execute_spec`` payload — the property the byte-identical
        warm-run guarantee rests on.
        """
        row = self.conn.execute(
            "SELECT result_json FROM job_results WHERE spec_hash=?",
            (spec_hash,)).fetchone()
        return None if row is None else json.loads(row["result_json"])

    def put_job_result(self, spec, result: dict) -> None:
        """Insert/refresh one completed job (spec is a ``JobSpec``)."""
        self.conn.execute(
            "INSERT OR REPLACE INTO job_results "
            "(spec_hash, kind, seed, label, params_json, result_json, "
            " created_s) VALUES (?,?,?,?,?,?,?)",
            (spec.spec_hash, spec.kind, spec.seed, spec.label,
             _canonical(spec.params), _canonical(result), time.time()))
        self.conn.commit()

    def job_count(self) -> int:
        return self.conn.execute(
            "SELECT COUNT(*) FROM job_results").fetchone()[0]

    # -- ingested runs -------------------------------------------------
    def insert_run(self, schema: str, name: str, *, source: str = "-",
                   meta: Optional[dict] = None) -> int:
        cur = self.conn.execute(
            "INSERT INTO runs (schema, name, source, ingested_s, "
            "meta_json) VALUES (?,?,?,?,?)",
            (schema, name, source, time.time(),
             json.dumps(meta or {})))
        self.conn.commit()
        return cur.lastrowid

    def run_row(self, run_id: int) -> Optional[sqlite3.Row]:
        return self.conn.execute(
            "SELECT * FROM runs WHERE run_id=?", (run_id,)).fetchone()

    def insert_arena_cells(self, run_id: int,
                           cells: Sequence[dict]) -> None:
        self.conn.executemany(
            "INSERT INTO arena_cells VALUES "
            "(?,?,?,?,?,?,?,?,?,?,?,?,?,?,?,?)",
            [(run_id, i, c["spec_hash"], c["lb"], c["transport"],
              c["cc"], c["workload"], c["topology"], c["seed"],
              int(bool(c["completed"])), c["mean_slowdown"],
              c["goodput_gbps"], c["reorder_rate"], c["nack_validity"],
              c["tail_ns"], json.dumps(c))
             for i, c in enumerate(cells)])
        self.conn.commit()

    def insert_arena_ranking(self, run_id: int,
                             ranking: Sequence[dict]) -> None:
        self.conn.executemany(
            "INSERT INTO arena_ranking VALUES (?,?,?,?,?,?,?,?,?)",
            [(run_id, r["rank"], r["lb"], r["transport"],
              r["mean_slowdown"], r["mean_goodput_gbps"],
              r["mean_reorder_rate"], r["mean_nack_validity"],
              json.dumps(r))
             for r in ranking])
        self.conn.commit()

    def insert_fault_cells(self, run_id: int,
                           cells: Sequence[dict]) -> None:
        self.conn.executemany(
            "INSERT INTO fault_cells VALUES (?,?,?,?,?,?,?,?,?,?)",
            [(run_id, i, c["scenario"], c["seed"],
              int(bool(c["completed"])), c.get("tail_stretch"),
              c["goodput"].get("dip_frac"),
              c["goodput"].get("recovery_ns"),
              c["nacks"].get("unexplained", 0), json.dumps(c))
             for i, c in enumerate(cells)])
        self.conn.commit()

    def insert_bench_scenarios(self, run_id: int, doc: dict) -> None:
        rows = []
        for name, res in doc.get("scenarios", {}).items():
            rows.append((run_id, name, res.get("engine", "calendar"),
                         res["events"], res["wall_s"],
                         res["events_per_sec"]))
        heap = doc.get("heap_baseline")
        if heap:
            rows.append((run_id, heap["scenario"], "heap",
                         heap["events"], heap["wall_s"],
                         heap["events_per_sec"]))
        tracing = doc.get("tracing")
        if tracing:
            rows.append((run_id, tracing["scenario"], "traced",
                         tracing["events"], tracing["wall_s"],
                         tracing["events_per_sec"]))
        self.conn.executemany(
            "INSERT INTO bench_scenarios VALUES (?,?,?,?,?,?)", rows)
        self.conn.commit()

    # -- summary -------------------------------------------------------
    def counts(self) -> dict:
        """Row counts per surface — the dashboard's headline tiles."""
        q = self.conn.execute
        return {
            "path": self.path,
            "job_results": q("SELECT COUNT(*) FROM job_results")
            .fetchone()[0],
            "runs": q("SELECT COUNT(*) FROM runs").fetchone()[0],
            "arena_runs": q("SELECT COUNT(*) FROM runs WHERE "
                            "schema LIKE 'repro-arena%'").fetchone()[0],
            "fault_runs": q("SELECT COUNT(*) FROM runs WHERE "
                            "schema LIKE 'repro-faults%'").fetchone()[0],
            "bench_runs": q("SELECT COUNT(*) FROM runs WHERE "
                            "schema LIKE 'repro-bench%'").fetchone()[0],
            "arena_cells": q("SELECT COUNT(*) FROM arena_cells")
            .fetchone()[0],
            "fault_cells": q("SELECT COUNT(*) FROM fault_cells")
            .fetchone()[0],
        }
