"""Results service: spec-hash results store, run cache, dashboard.

ROADMAP item 5 ("serve results to many users"): every prior PR emits
spec-hashed documents — ``repro arena --out`` (``repro-arena-v1``),
``repro faults run --out`` (``repro-faults-v1``), and the tracked
``BENCH_engine.json`` history — and this package turns them into one
browsable, cacheable system of record:

* :mod:`repro.results.store` — the SQLite store.  Its primary key is the
  :class:`repro.harness.jobs.JobSpec` spec-hash, which is *also* the job
  runner's cache key, so the store doubles as a read-through run cache:
  re-running a sweep with unchanged specs executes zero jobs.
* :mod:`repro.results.ingest` — document ingesters (arena, faults,
  bench) plus lossless re-emitters used by the round-trip tests.
* :mod:`repro.results.query` — read-side queries the dashboard renders:
  rankings over time, fault-recovery panels, bench trend lines.
* :mod:`repro.results.server` — ``repro serve``: a zero-dependency
  stdlib HTTP dashboard with per-thread read-only connections.

Everything here is stdlib-only (``sqlite3``, ``http.server``); the rest
of the simulator never imports this package except lazily.
"""

from repro.results.ingest import (IngestError, detect_doc_kind,
                                  emit_arena_doc, emit_faults_doc,
                                  ingest_doc, ingest_file)
from repro.results.store import ResultsStore, connect_readonly

__all__ = [
    "ResultsStore", "connect_readonly",
    "IngestError", "detect_doc_kind", "ingest_doc", "ingest_file",
    "emit_arena_doc", "emit_faults_doc",
]
