"""Read-side queries for the dashboard and the ``repro results`` CLI.

Every function takes a plain sqlite connection (writer or read-only) so
the dashboard's per-thread read-only connections and the CLI's writer
handle share one query surface.  Rows come back as JSON-ready dicts —
the ``/api/*`` endpoints serve them verbatim.
"""

from __future__ import annotations

import json
import sqlite3
from typing import Optional


def summary(conn: sqlite3.Connection) -> dict:
    q = conn.execute
    one = lambda sql, *a: q(sql, a).fetchone()[0]  # noqa: E731
    return {
        "job_results": one("SELECT COUNT(*) FROM job_results"),
        "runs": one("SELECT COUNT(*) FROM runs"),
        "arena_runs": one("SELECT COUNT(*) FROM runs "
                          "WHERE schema LIKE 'repro-arena%'"),
        "fault_runs": one("SELECT COUNT(*) FROM runs "
                          "WHERE schema LIKE 'repro-faults%'"),
        "bench_runs": one("SELECT COUNT(*) FROM runs "
                          "WHERE schema LIKE 'repro-bench%'"),
        "arena_cells": one("SELECT COUNT(*) FROM arena_cells"),
        "fault_cells": one("SELECT COUNT(*) FROM fault_cells"),
        "lbs_ranked": one("SELECT COUNT(DISTINCT lb) "
                          "FROM arena_ranking"),
    }


def list_runs(conn: sqlite3.Connection,
              schema_prefix: Optional[str] = None) -> list[dict]:
    sql = ("SELECT run_id, schema, name, source, ingested_s "
           "FROM runs")
    args: tuple = ()
    if schema_prefix:
        sql += " WHERE schema LIKE ?"
        args = (schema_prefix + "%",)
    sql += " ORDER BY run_id"
    return [dict(r) for r in conn.execute(sql, args)]


# ----------------------------------------------------------------------
# Arena
# ----------------------------------------------------------------------
def arena_runs(conn: sqlite3.Connection) -> list[dict]:
    """Arena run listing with per-run headline (the rank-1 pair)."""
    rows = []
    for run in list_runs(conn, "repro-arena"):
        best = conn.execute(
            "SELECT lb, transport, mean_slowdown FROM arena_ranking "
            "WHERE run_id=? AND rank=1", (run["run_id"],)).fetchone()
        cells = conn.execute(
            "SELECT COUNT(*), SUM(completed) FROM arena_cells "
            "WHERE run_id=?", (run["run_id"],)).fetchone()
        rows.append(dict(
            run,
            cells=cells[0], completed_cells=cells[1] or 0,
            best_lb=best["lb"] if best else None,
            best_transport=best["transport"] if best else None,
            best_slowdown=best["mean_slowdown"] if best else None))
    return rows


def arena_ranking(conn: sqlite3.Connection, run_id: int) -> list[dict]:
    return [json.loads(r["row_json"]) for r in conn.execute(
        "SELECT row_json FROM arena_ranking WHERE run_id=? "
        "ORDER BY rank", (run_id,))]


def arena_cells(conn: sqlite3.Connection, run_id: int) -> list[dict]:
    return [json.loads(r["cell_json"]) for r in conn.execute(
        "SELECT cell_json FROM arena_cells WHERE run_id=? "
        "ORDER BY cell_order", (run_id,))]


def ranking_over_time(conn: sqlite3.Connection) -> dict:
    """Rank and slowdown trajectories per (lb, transport) pair.

    Returns ``{"run_ids": [...], "series": [{"lb", "transport",
    "ranks": [...], "slowdowns": [...]}, ...]}`` with one entry per run
    (``None`` where the pair is absent from a run), series ordered by
    their rank in the most recent run — the dashboard's headline chart.
    """
    run_ids = [r["run_id"] for r in
               conn.execute("SELECT run_id FROM runs WHERE schema LIKE "
                            "'repro-arena%' ORDER BY run_id")]
    by_pair: dict[tuple, dict] = {}
    for row in conn.execute(
            "SELECT run_id, rank, lb, transport, mean_slowdown "
            "FROM arena_ranking ORDER BY run_id, rank"):
        pair = (row["lb"], row["transport"])
        entry = by_pair.setdefault(pair, {
            "lb": row["lb"], "transport": row["transport"],
            "ranks": {}, "slowdowns": {}})
        entry["ranks"][row["run_id"]] = row["rank"]
        entry["slowdowns"][row["run_id"]] = row["mean_slowdown"]
    series = []
    last = run_ids[-1] if run_ids else None
    for entry in by_pair.values():
        series.append({
            "lb": entry["lb"], "transport": entry["transport"],
            "latest_rank": entry["ranks"].get(last),
            "ranks": [entry["ranks"].get(r) for r in run_ids],
            "slowdowns": [entry["slowdowns"].get(r) for r in run_ids]})
    series.sort(key=lambda s: (s["latest_rank"] is None,
                               s["latest_rank"] or 0,
                               s["lb"], s["transport"]))
    return {"run_ids": run_ids, "series": series}


def cell_detail(conn: sqlite3.Connection, run_id: int,
                spec_hash: str) -> Optional[dict]:
    row = conn.execute(
        "SELECT cell_json FROM arena_cells WHERE run_id=? AND "
        "spec_hash=?", (run_id, spec_hash)).fetchone()
    if row is None:
        return None
    cell = json.loads(row["cell_json"])
    # The same spec-hash across other ingested runs: the cell's own
    # history line (seed and grid unchanged -> directly comparable).
    history = [
        {"run_id": r["run_id"], "mean_slowdown": r["mean_slowdown"],
         "goodput_gbps": r["goodput_gbps"],
         "nack_validity": r["nack_validity"]}
        for r in conn.execute(
            "SELECT run_id, mean_slowdown, goodput_gbps, nack_validity "
            "FROM arena_cells WHERE spec_hash=? ORDER BY run_id",
            (spec_hash,))]
    job = conn.execute(
        "SELECT kind, seed, label, params_json FROM job_results "
        "WHERE spec_hash=?", (spec_hash,)).fetchone()
    return {"run_id": run_id, "cell": cell, "history": history,
            "job": (dict(kind=job["kind"], seed=job["seed"],
                         label=job["label"],
                         params=json.loads(job["params_json"]))
                    if job else None)}


# ----------------------------------------------------------------------
# Faults
# ----------------------------------------------------------------------
def fault_panels(conn: sqlite3.Connection) -> list[dict]:
    """Per-scenario recovery/dip panels across every ingested run."""
    panels: dict[str, dict] = {}
    for row in conn.execute(
            "SELECT f.run_id, f.scenario, f.seed, f.completed, "
            "f.tail_stretch, f.dip_frac, f.recovery_ns, f.unexplained "
            "FROM fault_cells f ORDER BY f.run_id, f.cell_order"):
        panel = panels.setdefault(row["scenario"], {
            "scenario": row["scenario"], "cells": []})
        panel["cells"].append({
            "run_id": row["run_id"], "seed": row["seed"],
            "completed": bool(row["completed"]),
            "tail_stretch": row["tail_stretch"],
            "dip_frac": row["dip_frac"],
            "recovery_ns": row["recovery_ns"],
            "unexplained": row["unexplained"]})
    for panel in panels.values():
        cells = panel["cells"]
        recoveries = [c["recovery_ns"] for c in cells
                      if c["recovery_ns"] is not None]
        dips = [c["dip_frac"] for c in cells
                if c["dip_frac"] is not None]
        panel["aggregate"] = {
            "cells": len(cells),
            "completed": sum(1 for c in cells if c["completed"]),
            "unexplained_nacks": sum(c["unexplained"] for c in cells),
            "mean_recovery_ns": (round(sum(recoveries) / len(recoveries))
                                 if recoveries else None),
            "worst_dip_frac": max(dips) if dips else None,
        }
    return sorted(panels.values(), key=lambda p: p["scenario"])


# ----------------------------------------------------------------------
# Bench
# ----------------------------------------------------------------------
def bench_series(conn: sqlite3.Connection) -> dict:
    """events/sec trend per (scenario, engine) plus per-run meta."""
    run_ids = [r["run_id"] for r in
               conn.execute("SELECT run_id FROM runs WHERE schema LIKE "
                            "'repro-bench%' ORDER BY run_id")]
    series: dict[tuple, dict] = {}
    for row in conn.execute(
            "SELECT run_id, scenario, engine, events_per_sec "
            "FROM bench_scenarios ORDER BY run_id"):
        key = (row["scenario"], row["engine"])
        entry = series.setdefault(key, {
            "scenario": row["scenario"], "engine": row["engine"],
            "points": {}})
        entry["points"][row["run_id"]] = row["events_per_sec"]
    meta = []
    for run_id in run_ids:
        run = conn.execute("SELECT meta_json, source FROM runs WHERE "
                           "run_id=?", (run_id,)).fetchone()
        doc = json.loads(run["meta_json"])
        meta.append({
            "run_id": run_id, "source": run["source"],
            "quick": doc.get("quick"),
            "python": doc.get("python"),
            "speedup_vs_heap": doc.get("speedup_vs_heap"),
            "tracing_overhead": doc.get("tracing", {})
            .get("overhead_ratio"),
            "cost_model_costs": doc.get("cost_model", {})
            .get("costs_ns"),
        })
    out = []
    for entry in sorted(series.values(),
                        key=lambda e: (e["scenario"], e["engine"])):
        out.append({
            "scenario": entry["scenario"], "engine": entry["engine"],
            "events_per_sec": [entry["points"].get(r)
                               for r in run_ids]})
    return {"run_ids": run_ids, "series": out, "runs": meta}
