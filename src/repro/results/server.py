"""``repro serve`` — the live experiment dashboard.

Stdlib only: a :class:`http.server.ThreadingHTTPServer` where every
handler thread reads through its own **read-only** sqlite connection
(``threading.local``), so concurrent page loads never contend with each
other or with a sweep writing the store in WAL mode.

Routing is a plain table of ``(pattern, renderer)`` entries; every
renderer returns ``(status, content_type, body)``.  The same table
drives ``repro serve --check``: :func:`check_pages` renders every page
headlessly (no sockets) against the store and validates HTML/JSON
shape, which is what CI's results-smoke job runs.

Pages
-----
* ``/``                     overview tiles + latest arena ranking
* ``/arena``                run list + ranking-over-time chart
* ``/arena/<run_id>``       one run: ranked table + cell grid
* ``/cell/<run_id>/<hash>`` per-cell drill-down + Perfetto deep link
* ``/faults``               recovery / goodput-dip panels per scenario
* ``/bench``                events/sec + cost-model trend lines
* ``/api/...``              the JSON twins of every page
* ``/traces/<file>``        exported Perfetto traces (``--traces`` dir)
"""

from __future__ import annotations

import json
import os
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Optional
from urllib.parse import quote

from repro.results import html as H
from repro.results import query as Q
from repro.results.store import connect_readonly

PERFETTO_UI = "https://ui.perfetto.dev/#!/?url="


class Dashboard:
    """Renders every route against one store file."""

    def __init__(self, db_path: str,
                 traces_dir: Optional[str] = None) -> None:
        self.db_path = db_path
        self.traces_dir = traces_dir
        self._local = threading.local()
        self.routes: list[tuple[re.Pattern, Callable]] = [
            (re.compile(r"^/$"), self.page_index),
            (re.compile(r"^/healthz$"), self.page_health),
            (re.compile(r"^/arena$"), self.page_arena),
            (re.compile(r"^/arena/(\d+)$"), self.page_arena_run),
            (re.compile(r"^/cell/(\d+)/([0-9a-f]+)$"), self.page_cell),
            (re.compile(r"^/faults$"), self.page_faults),
            (re.compile(r"^/bench$"), self.page_bench),
            (re.compile(r"^/api/summary$"), self.api_summary),
            (re.compile(r"^/api/arena/runs$"), self.api_arena_runs),
            (re.compile(r"^/api/arena/(\d+)$"), self.api_arena_run),
            (re.compile(r"^/api/ranking-over-time$"),
             self.api_ranking_over_time),
            (re.compile(r"^/api/cell/(\d+)/([0-9a-f]+)$"),
             self.api_cell),
            (re.compile(r"^/api/faults$"), self.api_faults),
            (re.compile(r"^/api/bench$"), self.api_bench),
            (re.compile(r"^/traces/([\w.\-]+)$"), self.serve_trace),
        ]

    # -- connection per thread -----------------------------------------
    def conn(self):
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = connect_readonly(self.db_path)
            self._local.conn = conn
        return conn

    # -- dispatch ------------------------------------------------------
    def render(self, path: str,
               host: str = "localhost") -> tuple[int, str, bytes]:
        """Resolve one request path; never raises (500 with detail)."""
        path = path.split("?", 1)[0]
        for pattern, handler in self.routes:
            match = pattern.match(path)
            if match:
                try:
                    return handler(host, *match.groups())
                except Exception as exc:  # pragma: no cover - guard
                    return (500, "text/plain; charset=utf-8",
                            f"internal error: {exc}".encode())
        return (404, "text/plain; charset=utf-8", b"not found")

    @staticmethod
    def _html(body: str, status: int = 200) -> tuple[int, str, bytes]:
        return status, "text/html; charset=utf-8", body.encode()

    @staticmethod
    def _json(doc, status: int = 200) -> tuple[int, str, bytes]:
        return (status, "application/json",
                json.dumps(doc, indent=2, sort_keys=True).encode())

    # -- pages ---------------------------------------------------------
    def page_health(self, host: str) -> tuple[int, str, bytes]:
        return self._json({"ok": True, "db": self.db_path})

    def page_index(self, host: str) -> tuple[int, str, bytes]:
        conn = self.conn()
        s = Q.summary(conn)
        body = H.tiles([
            ("cached job results", s["job_results"]),
            ("ingested runs", s["runs"]),
            ("arena runs", s["arena_runs"]),
            ("fault runs", s["fault_runs"]),
            ("bench runs", s["bench_runs"]),
            ("arena cells", s["arena_cells"]),
        ])
        runs = Q.arena_runs(conn)
        if runs:
            latest = runs[-1]
            ranking = Q.arena_ranking(conn, latest["run_id"])
            rows = [(r["rank"],
                     f'{H.swatch(min(i + 1, 8))}{H.esc(r["lb"])}',
                     r["transport"], f"{r['mean_slowdown']:.3f}",
                     f"{r['mean_goodput_gbps']:.3f}",
                     f"{r['mean_nack_validity']:.3f}",
                     f"{r['completed_cells']}/{r['cells']}")
                    for i, r in enumerate(ranking)]
            body += ("<h2>latest arena ranking "
                     f'(<a href="/arena/{latest["run_id"]}">run '
                     f'{latest["run_id"]}</a>)</h2>'
                     + H.card(H.table(
                         ["rank", "lb", "transport", "slowdown",
                          "goodput Gbps", "nack validity", "cells"],
                         rows, numeric=(0, 3, 4, 5, 6), raw=(1,))))
        else:
            body += H.card(
                "<p>No runs ingested yet. Start with "
                "<code>repro arena --quick --out arena.json</code> then "
                "<code>repro results ingest --db results.sqlite "
                "arena.json</code>.</p>")
        return self._html(H.page(
            "experiment results", body, active="/",
            subtitle="spec-hash results store · "
                     + os.path.basename(self.db_path)))

    def page_arena(self, host: str) -> tuple[int, str, bytes]:
        conn = self.conn()
        runs = Q.arena_runs(conn)
        over_time = Q.ranking_over_time(conn)
        body = ""
        if over_time["run_ids"] and over_time["series"]:
            labels = [f"run {r}" for r in over_time["run_ids"]]
            # Chart the best pairs only (palette slots are finite);
            # the full per-run ranking lives in the table below.
            top = over_time["series"][:6]
            chart = H.line_chart(
                labels,
                [(f"{s['lb']}/{s['transport']}", s["slowdowns"])
                 for s in top], y_fmt="{:.3f}")
            body += ("<h2>mean FCT slowdown over ingested runs</h2>"
                     + H.card(chart + (
                         '<p class="note">top 6 (lb, transport) pairs '
                         'by latest rank; lower is better. All '
                         f'{len(over_time["series"])} pairs are in the '
                         'run tables.</p>')))
        rows = [(f'<a href="/arena/{r["run_id"]}">run {r["run_id"]}</a>',
                 r["schema"], H.esc(r["source"]),
                 f"{r['completed_cells']}/{r['cells']}",
                 H.esc(f"{r['best_lb']}/{r['best_transport']}"
                       if r["best_lb"] else "-"),
                 ("-" if r["best_slowdown"] is None
                  else f"{r['best_slowdown']:.3f}"))
                for r in runs]
        body += "<h2>ingested arena runs</h2>" + H.card(H.table(
            ["run", "schema", "source", "cells", "best pair",
             "best slowdown"], rows, numeric=(3, 5), raw=(0, 2, 4)))
        return self._html(H.page("arena", body, active="/arena",
                                 subtitle="LB x transport head-to-head "
                                          "rankings"))

    def page_arena_run(self, host: str,
                       run_id: str) -> tuple[int, str, bytes]:
        conn = self.conn()
        run_id = int(run_id)
        ranking = Q.arena_ranking(conn, run_id)
        cells = Q.arena_cells(conn, run_id)
        if not cells:
            return self._html(H.page(f"arena run {run_id}",
                                     H.card("<p>unknown run</p>")),
                              status=404)
        rank_rows = [(r["rank"],
                      f'{H.swatch(min(i + 1, 8))}{H.esc(r["lb"])}',
                      r["transport"], f"{r['mean_slowdown']:.3f}",
                      f"{r['mean_goodput_gbps']:.3f}",
                      f"{r['mean_reorder_rate']:.4f}",
                      f"{r['mean_nack_validity']:.3f}",
                      f"{r['completed_cells']}/{r['cells']}")
                     for i, r in enumerate(ranking)]
        body = "<h2>ranking</h2>" + H.card(H.table(
            ["rank", "lb", "transport", "slowdown", "goodput Gbps",
             "reorder", "nack validity", "cells"],
            rank_rows, numeric=(0, 3, 4, 5, 6, 7), raw=(1,)))
        cell_rows = []
        for c in cells:
            link = (f'<a href="/cell/{run_id}/{c["spec_hash"]}">'
                    f'{c["spec_hash"][:10]}</a>')
            cell_rows.append(
                (link, c["lb"], c["transport"], c["cc"], c["workload"],
                 c["topology"], c["seed"],
                 "yes" if c["completed"] else "NO",
                 f"{c['mean_slowdown']:.3f}",
                 f"{c['goodput_gbps']:.3f}",
                 f"{c['nack_validity']:.3f}"))
        body += "<h2>cells</h2>" + H.card(H.table(
            ["cell", "lb", "transport", "cc", "workload", "topology",
             "seed", "done", "slowdown", "goodput", "validity"],
            cell_rows, numeric=(6, 8, 9, 10), raw=(0,)))
        return self._html(H.page(f"arena run {run_id}", body,
                                 active="/arena"))

    def page_cell(self, host: str, run_id: str,
                  spec_hash: str) -> tuple[int, str, bytes]:
        conn = self.conn()
        detail = Q.cell_detail(conn, int(run_id), spec_hash)
        if detail is None:
            return self._html(H.page("cell", H.card("<p>unknown cell"
                                                    "</p>")), status=404)
        cell = detail["cell"]
        body = H.tiles([
            ("mean slowdown", f"{cell['mean_slowdown']:.3f}"),
            ("goodput Gbps", f"{cell['goodput_gbps']:.3f}"),
            ("reorder rate", f"{cell['reorder_rate']:.4f}"),
            ("NACK validity", f"{cell['nack_validity']:.3f}"),
        ])
        rows = [(k, v) for k, v in cell.items()]
        body += "<h2>cell fields</h2>" + H.card(
            H.table(["field", "value"], rows))
        if len(detail["history"]) > 1:
            labels = [f"run {h['run_id']}" for h in detail["history"]]
            body += "<h2>this cell across ingested runs</h2>" + H.card(
                H.line_chart(labels, [
                    ("slowdown",
                     [h["mean_slowdown"] for h in detail["history"]])],
                    y_fmt="{:.3f}"))
        # Perfetto deep link: served from --traces when an exported
        # trace named <spec_hash>.json exists there.
        trace_name = f"{spec_hash}.json"
        if (self.traces_dir
                and os.path.exists(os.path.join(self.traces_dir,
                                                trace_name))):
            trace_url = f"http://{host}/traces/{trace_name}"
            deep = PERFETTO_UI + quote(trace_url, safe="")
            body += "<h2>trace</h2>" + H.card(
                f'<p><a href="{deep}">open in Perfetto UI</a> · '
                f'<a href="/traces/{trace_name}">raw trace JSON</a></p>')
        else:
            body += "<h2>trace</h2>" + H.card(
                "<p>No exported trace for this cell. Generate one with "
                f"<code>repro trace --perfetto traces/{trace_name}"
                "</code> and serve with <code>--traces traces/</code>."
                "</p>")
        if detail["job"]:
            body += "<h2>job spec (run cache)</h2>" + H.card(
                "<pre>" + H.esc(json.dumps(detail["job"], indent=2,
                                           sort_keys=True)) + "</pre>")
        return self._html(H.page(
            f"cell {spec_hash[:10]}", body, active="/arena",
            subtitle=f"{cell['lb']}/{cell['transport']}/{cell['cc']}/"
                     f"{cell['workload']}/{cell['topology']}/"
                     f"s{cell['seed']}"))

    def page_faults(self, host: str) -> tuple[int, str, bytes]:
        conn = self.conn()
        panels = Q.fault_panels(conn)
        if not panels:
            body = H.card("<p>No fault campaigns ingested. Run "
                          "<code>repro faults run --name "
                          "link-flap-smoke --out faults.json</code> "
                          "then ingest it.</p>")
        else:
            body = ""
            for panel in panels:
                agg = panel["aggregate"]
                body += f"<h2>{H.esc(panel['scenario'])}</h2>"
                body += H.tiles([
                    ("cells", agg["cells"]),
                    ("completed", agg["completed"]),
                    ("unexplained NACKs", agg["unexplained_nacks"]),
                    ("mean recovery",
                     "-" if agg["mean_recovery_ns"] is None
                     else f"{agg['mean_recovery_ns'] / 1000:.1f} us"),
                    ("worst goodput dip",
                     "-" if agg["worst_dip_frac"] is None
                     else f"{agg['worst_dip_frac'] * 100:.1f}%"),
                ])
                rows = [(c["run_id"], c["seed"],
                         "yes" if c["completed"] else "NO",
                         "-" if c["tail_stretch"] is None
                         else f"{c['tail_stretch']:.3f}",
                         "-" if c["dip_frac"] is None
                         else f"{c['dip_frac'] * 100:.1f}%",
                         "-" if c["recovery_ns"] is None
                         else f"{c['recovery_ns'] / 1000:.1f}",
                         c["unexplained"])
                        for c in panel["cells"]]
                body += H.card(H.table(
                    ["run", "seed", "done", "tail stretch",
                     "goodput dip", "recovery (us)", "unexplained"],
                    rows, numeric=(0, 1, 3, 4, 5, 6)))
        return self._html(H.page(
            "fault campaigns", body, active="/faults",
            subtitle="recovery time · goodput dip · NACK-audit "
                     "validity"))

    def page_bench(self, host: str) -> tuple[int, str, bytes]:
        conn = self.conn()
        data = Q.bench_series(conn)
        if not data["run_ids"]:
            body = H.card("<p>No bench history ingested. Ingest the "
                          "tracked <code>BENCH_engine.json</code> or a "
                          "nightly <code>bench-full.json</code>.</p>")
        else:
            labels = [f"run {r}" for r in data["run_ids"]]
            calendar = [(s["scenario"], s["events_per_sec"])
                        for s in data["series"]
                        if s["engine"] == "calendar"]
            body = "<h2>events/sec by scenario</h2>" + H.card(
                H.line_chart(labels, calendar, y_fmt="{:,.0f}"))
            rows = [(r["run_id"], H.esc(str(r["source"])),
                     "quick" if r["quick"] else "full",
                     r["python"] or "-",
                     "-" if r["speedup_vs_heap"] is None
                     else f"{r['speedup_vs_heap']:.2f}x",
                     "-" if r["tracing_overhead"] is None
                     else f"{r['tracing_overhead']:.2f}x")
                    for r in data["runs"]]
            body += "<h2>bench runs</h2>" + H.card(H.table(
                ["run", "source", "mode", "python", "speedup vs heap",
                 "tracing overhead"], rows, numeric=(0, 4, 5),
                raw=(1,)))
            costs = data["runs"][-1].get("cost_model_costs") or {}
            if costs:
                top = sorted(costs.items(), key=lambda kv: -kv[1])[:12]
                body += ("<h2>fitted per-event-class costs "
                         "(latest run)</h2>"
                         + H.card(H.table(
                             ["event class", "cost (ns)"],
                             [(k, f"{v:,.0f}") for k, v in top],
                             numeric=(1,))))
        return self._html(H.page(
            "bench history", body, active="/bench",
            subtitle="engine throughput and cost-model trend"))

    # -- API -----------------------------------------------------------
    def api_summary(self, host: str) -> tuple[int, str, bytes]:
        return self._json(Q.summary(self.conn()))

    def api_arena_runs(self, host: str) -> tuple[int, str, bytes]:
        return self._json({"runs": Q.arena_runs(self.conn())})

    def api_arena_run(self, host: str,
                      run_id: str) -> tuple[int, str, bytes]:
        conn = self.conn()
        cells = Q.arena_cells(conn, int(run_id))
        if not cells:
            return self._json({"error": "unknown run"}, status=404)
        return self._json({"run_id": int(run_id), "cells": cells,
                           "ranking": Q.arena_ranking(conn,
                                                      int(run_id))})

    def api_ranking_over_time(self,
                              host: str) -> tuple[int, str, bytes]:
        return self._json(Q.ranking_over_time(self.conn()))

    def api_cell(self, host: str, run_id: str,
                 spec_hash: str) -> tuple[int, str, bytes]:
        detail = Q.cell_detail(self.conn(), int(run_id), spec_hash)
        if detail is None:
            return self._json({"error": "unknown cell"}, status=404)
        return self._json(detail)

    def api_faults(self, host: str) -> tuple[int, str, bytes]:
        return self._json({"panels": Q.fault_panels(self.conn())})

    def api_bench(self, host: str) -> tuple[int, str, bytes]:
        return self._json(Q.bench_series(self.conn()))

    # -- static traces -------------------------------------------------
    def serve_trace(self, host: str,
                    name: str) -> tuple[int, str, bytes]:
        if not self.traces_dir:
            return (404, "text/plain; charset=utf-8",
                    b"no --traces directory configured")
        path = os.path.join(self.traces_dir, name)
        if (not os.path.abspath(path).startswith(
                os.path.abspath(self.traces_dir) + os.sep)
                or not os.path.exists(path)):
            return 404, "text/plain; charset=utf-8", b"no such trace"
        with open(path, "rb") as fh:
            return 200, "application/json", fh.read()


# ----------------------------------------------------------------------
# HTTP plumbing
# ----------------------------------------------------------------------
def make_handler(dashboard: Dashboard,
                 quiet: bool = False) -> type:
    class Handler(BaseHTTPRequestHandler):
        def do_GET(self) -> None:  # noqa: N802 - http.server API
            host = self.headers.get("Host") or "localhost"
            status, ctype, body = dashboard.render(self.path, host=host)
            self.send_response(status)
            self.send_header("Content-Type", ctype)
            self.send_header("Content-Length", str(len(body)))
            self.send_header("Cache-Control", "no-cache")
            self.end_headers()
            self.wfile.write(body)

        def log_message(self, fmt, *args) -> None:
            if not quiet:  # pragma: no cover - console chatter
                super().log_message(fmt, *args)

    return Handler


def make_server(db_path: str, *, host: str = "127.0.0.1",
                port: int = 8000, traces_dir: Optional[str] = None,
                quiet: bool = False) -> ThreadingHTTPServer:
    """Bound, ready-to-``serve_forever`` threaded server (port 0 OK)."""
    dashboard = Dashboard(db_path, traces_dir=traces_dir)
    server = ThreadingHTTPServer((host, port),
                                 make_handler(dashboard, quiet=quiet))
    server.dashboard = dashboard
    return server


# ----------------------------------------------------------------------
# Headless check (CI)
# ----------------------------------------------------------------------
def check_pages(db_path: str,
                traces_dir: Optional[str] = None) -> list[str]:
    """Render every page/endpoint headlessly; returns problems.

    Covers the static routes plus one ``/arena/<id>`` and one
    ``/cell/...`` per ingested arena run, validating that HTML pages
    close cleanly and the API twins parse as JSON.
    """
    dashboard = Dashboard(db_path, traces_dir=traces_dir)
    conn = dashboard.conn()
    paths = ["/", "/healthz", "/arena", "/faults", "/bench",
             "/api/summary", "/api/arena/runs",
             "/api/ranking-over-time", "/api/faults", "/api/bench"]
    for run in Q.arena_runs(conn):
        paths.append(f"/arena/{run['run_id']}")
        paths.append(f"/api/arena/{run['run_id']}")
        cells = Q.arena_cells(conn, run["run_id"])
        if cells:
            paths.append(f"/cell/{run['run_id']}/"
                         f"{cells[0]['spec_hash']}")
            paths.append(f"/api/cell/{run['run_id']}/"
                         f"{cells[0]['spec_hash']}")
    problems = []
    for path in paths:
        status, ctype, body = dashboard.render(path)
        if status != 200:
            problems.append(f"{path}: HTTP {status}")
            continue
        if ctype.startswith("text/html"):
            text = body.decode()
            if not text.startswith("<!DOCTYPE html>") \
                    or "</html>" not in text:
                problems.append(f"{path}: malformed HTML document")
        elif ctype == "application/json":
            try:
                json.loads(body)
            except json.JSONDecodeError as exc:
                problems.append(f"{path}: invalid JSON ({exc})")
    return problems
