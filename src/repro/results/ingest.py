"""Document ingesters: versioned result docs -> queryable rows.

Three document families are understood, auto-detected by their schema
marker:

* ``repro-arena-v1``  — ``repro arena --out`` (PR 9),
* ``repro-faults-v1`` — ``repro faults run --out``,
* bench history       — ``BENCH_engine.json`` (``schema_version`` int),
  normalised to the ``repro-bench-v<N>`` schema string in the store.

Ingest is **validating** (a malformed document raises
:class:`IngestError` before any row lands) and **lossless** for the
versioned documents: per-cell/per-rank rows keep the original JSON
fragment with its key order, and the document-level remainder lands in
``runs.meta_json``, so :func:`emit_arena_doc` / :func:`emit_faults_doc`
rebuild the exact bytes that came in — the round-trip property pinned
by ``tests/results/test_store.py``.
"""

from __future__ import annotations

import json

from repro.results.store import ResultsStore


class IngestError(ValueError):
    """A document failed validation or was not a known schema."""


def detect_doc_kind(doc: dict) -> str:
    """``"arena"`` | ``"faults"`` | ``"bench"``, or raise."""
    if not isinstance(doc, dict):
        raise IngestError("document is not a JSON object")
    schema = doc.get("schema")
    if isinstance(schema, str) and schema.startswith("repro-arena-"):
        return "arena"
    if isinstance(schema, str) and schema.startswith("repro-faults-"):
        return "faults"
    if isinstance(doc.get("schema_version"), int) and "scenarios" in doc:
        return "bench"
    raise IngestError(
        f"unrecognised document (schema={schema!r}); expected a "
        "repro-arena-v1 / repro-faults-v1 doc or BENCH_engine.json")


def ingest_doc(store: ResultsStore, doc: dict, *,
               source: str = "-") -> dict:
    """Validate + ingest one document; returns an ingest receipt."""
    kind = detect_doc_kind(doc)
    if kind == "arena":
        return _ingest_arena(store, doc, source)
    if kind == "faults":
        return _ingest_faults(store, doc, source)
    return _ingest_bench(store, doc, source)


def ingest_file(store: ResultsStore, path: str) -> dict:
    with open(path) as fh:
        try:
            doc = json.load(fh)
        except json.JSONDecodeError as exc:
            raise IngestError(f"{path}: not valid JSON ({exc})") from None
    return ingest_doc(store, doc, source=str(path))


# ----------------------------------------------------------------------
# Arena
# ----------------------------------------------------------------------
def _ingest_arena(store: ResultsStore, doc: dict, source: str) -> dict:
    from repro.harness.arena import validate_arena_doc
    problems = [p for p in validate_arena_doc(doc)
                if "did not complete" not in p]
    if problems:
        raise IngestError(f"invalid arena doc: {problems[:3]}")
    run_id = store.insert_run(doc["schema"], "arena", source=source,
                              meta={"axes": doc["axes"]})
    store.insert_arena_cells(run_id, doc["cells"])
    store.insert_arena_ranking(run_id, doc["ranking"])
    return {"run_id": run_id, "kind": "arena",
            "cells": len(doc["cells"]),
            "ranking_rows": len(doc["ranking"])}


def emit_arena_doc(store: ResultsStore, run_id: int) -> dict:
    """Rebuild the exact ``repro-arena-v1`` document from stored rows."""
    run = store.run_row(run_id)
    if run is None or not run["schema"].startswith("repro-arena-"):
        raise IngestError(f"run {run_id} is not an ingested arena run")
    meta = json.loads(run["meta_json"])
    cells = [json.loads(r["cell_json"]) for r in store.conn.execute(
        "SELECT cell_json FROM arena_cells WHERE run_id=? "
        "ORDER BY cell_order", (run_id,))]
    ranking = [json.loads(r["row_json"]) for r in store.conn.execute(
        "SELECT row_json FROM arena_ranking WHERE run_id=? "
        "ORDER BY rank", (run_id,))]
    # Key order mirrors build_arena_doc, so a plain json.dumps of this
    # dict is byte-identical to dumping the original.
    return {"schema": run["schema"], "axes": meta["axes"],
            "cells": cells, "ranking": ranking}


# ----------------------------------------------------------------------
# Faults
# ----------------------------------------------------------------------
def _ingest_faults(store: ResultsStore, doc: dict, source: str) -> dict:
    from repro.faults.campaign import validate_faults_doc
    problems = validate_faults_doc(doc)
    if problems:
        raise IngestError(f"invalid faults doc: {problems[:3]}")
    meta = {k: doc[k] for k in ("scenario", "duration_us", "seeds",
                                "failures", "validation_problems")
            if k in doc}
    if "aggregate" in doc:
        meta["aggregate"] = doc["aggregate"]
    run_id = store.insert_run(doc["schema"], doc["scenario"],
                              source=source, meta=meta)
    store.insert_fault_cells(run_id, doc["cells"])
    return {"run_id": run_id, "kind": "faults",
            "cells": len(doc["cells"])}


def emit_faults_doc(store: ResultsStore, run_id: int) -> dict:
    """Rebuild the exact ``repro-faults-v1`` document from stored rows."""
    run = store.run_row(run_id)
    if run is None or not run["schema"].startswith("repro-faults-"):
        raise IngestError(f"run {run_id} is not an ingested faults run")
    meta = json.loads(run["meta_json"])
    cells = [json.loads(r["cell_json"]) for r in store.conn.execute(
        "SELECT cell_json FROM fault_cells WHERE run_id=? "
        "ORDER BY cell_order", (run_id,))]
    doc = {"schema": run["schema"],
           "scenario": meta["scenario"],
           "duration_us": meta["duration_us"],
           "seeds": meta["seeds"],
           "cells": cells,
           "failures": meta.get("failures", []),
           "validation_problems": meta.get("validation_problems", [])}
    if "aggregate" in meta:
        doc["aggregate"] = meta["aggregate"]
    return doc


# ----------------------------------------------------------------------
# Bench
# ----------------------------------------------------------------------
def _ingest_bench(store: ResultsStore, doc: dict, source: str) -> dict:
    scenarios = doc.get("scenarios")
    if not isinstance(scenarios, dict) or not scenarios:
        raise IngestError("bench doc has no scenarios")
    for name, res in scenarios.items():
        for key in ("events", "wall_s", "events_per_sec"):
            if key not in res:
                raise IngestError(f"bench scenario {name!r} missing "
                                  f"{key!r}")
    schema = f"repro-bench-v{doc['schema_version']}"
    # Everything except the bulky per-scenario rows rides meta_json, so
    # the dashboard can surface cost-model fits and tracing overhead.
    meta = {k: v for k, v in doc.items() if k != "scenarios"}
    run_id = store.insert_run(schema, "bench", source=source, meta=meta)
    store.insert_bench_scenarios(run_id, doc)
    return {"run_id": run_id, "kind": "bench",
            "scenarios": len(scenarios)}
