"""DCQCN rate control (Zhu et al., SIGCOMM'15) as RNICs implement it.

The reaction point (sender) keeps a current rate ``Rc``, target rate ``Rt``
and congestion estimate ``alpha``:

* **Decrease** — on a CNP (or, on commodity RNICs, a NACK): at most once
  per *rate decrease interval* ``TD``::

      Rt <- Rc;  Rc <- Rc * (1 - alpha/2);  alpha <- (1-g)*alpha + g

  and the recovery state machine resets — this reset is the "slow start"
  the paper's Fig. 1c shows being triggered spuriously.
* **Increase** — every *rate increase timer* ``TI`` after the last
  decrease: ``F`` rounds of fast recovery (``Rc <- (Rc+Rt)/2``), then
  additive increase (``Rt += Rai``), then hyper increase (``Rt += Rhai``).
* **Alpha decay** — every ``alpha_timer`` without a decrease:
  ``alpha <- (1-g)*alpha``.

The (TI, TD) pair is exactly the knob swept in Fig. 5.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.cc.base import CongestionControl
from repro.sim.engine import US, Simulator
from repro.sim.events import Event
from repro.obs.timeseries import TimeSeries


@dataclass(frozen=True)
class DcqcnConfig:
    """DCQCN parameters.

    ``ti_ns``/``td_ns`` default to the recommended configuration the paper
    sweeps first: TI = 900 us, TD = 4 us.  Increase steps scale with line
    rate so one config works across 100G and 400G experiments.
    """

    ti_ns: int = 900 * US
    td_ns: int = 4 * US
    alpha_g: float = 1.0 / 256.0
    alpha_timer_ns: int = 55 * US
    fast_recovery_rounds: int = 5
    hyper_after_rounds: int = 5
    rate_ai_fraction: float = 0.005    # Rai = 0.5% of line rate
    rate_hai_fraction: float = 0.05    # Rhai = 5% of line rate
    min_rate_fraction: float = 0.002   # floor = 0.2% of line rate
    nack_triggers_decrease: bool = True
    timeout_drops_to_min: bool = True
    #: DCQCN's byte counter B: every B transmitted bytes also trigger an
    #: increase event (the spec's second increase clock).  ``None``
    #: disables it, leaving the timer as the only increase driver.
    byte_counter_bytes: int | None = None

    def with_timers(self, ti_us: float, td_us: float) -> "DcqcnConfig":
        """Convenience for the Fig. 5 (TI, TD) sweep, arguments in us."""
        return replace(self, ti_ns=int(ti_us * US), td_ns=int(td_us * US))


class Dcqcn(CongestionControl):
    """Per-QP DCQCN reaction point."""

    def __init__(self, sim: Simulator, line_rate_bps: float,
                 config: DcqcnConfig,
                 rate_trace: Optional[TimeSeries] = None) -> None:
        super().__init__(sim, line_rate_bps)
        self.config = config
        self.rate_current = float(line_rate_bps)
        self.rate_target = float(line_rate_bps)
        self.alpha = 1.0
        self.min_rate_bps = line_rate_bps * config.min_rate_fraction
        self.rate_ai_bps = line_rate_bps * config.rate_ai_fraction
        self.rate_hai_bps = line_rate_bps * config.rate_hai_fraction

        self._last_decrease_ns: Optional[int] = None
        self._increase_stage = 0       # timer-driven stage counter
        self._byte_stage = 0           # byte-counter stage counter
        self._bytes_acc = 0
        self._increase_event: Optional[Event] = None
        self._alpha_event: Optional[Event] = None

        self.rate_trace = rate_trace
        self.decreases = 0
        self.increases = 0

        # CC observability channel (repro.obs), attached by the harness
        # cc factory together with a display location (None = disabled).
        self.rec = None
        self.rec_loc = ""

    # ------------------------------------------------------------------
    @property
    def rate_bps(self) -> float:
        return self.rate_current

    def _set_rate(self, rate: float) -> None:
        self.rate_current = min(self.line_rate_bps,
                                max(self.min_rate_bps, rate))
        if self.rate_trace is not None:
            self.rate_trace.record(self.sim.now, self.rate_current)
        if self.rec is not None:
            self.rec.cc_rate(self.sim.now, self.rec_loc,
                             self.rate_current)

    # ------------------------------------------------------------------
    # Decrease path
    # ------------------------------------------------------------------
    def on_cnp(self) -> None:
        self._restart_alpha_timer()
        self.alpha = (1 - self.config.alpha_g) * self.alpha \
            + self.config.alpha_g
        self._maybe_decrease()

    def on_nack(self) -> None:
        # Commodity RNICs couple loss signals into the rate machinery:
        # a NACK triggers the same decrease + recovery reset as a CNP.
        # Unlike a CNP it does not update alpha (alpha estimates *ECN*
        # congestion), so during a NACK storm the cuts get shallower as
        # alpha decays — matching the bounded sawtooth of Fig. 1c.
        if self.config.nack_triggers_decrease:
            self._maybe_decrease()

    def on_timeout(self) -> None:
        if self.config.timeout_drops_to_min:
            self.rate_target = self.rate_current
            self._set_rate(self.min_rate_bps)
            self._reset_recovery()

    def _maybe_decrease(self) -> None:
        now = self.sim.now
        if (self._last_decrease_ns is not None
                and now - self._last_decrease_ns < self.config.td_ns):
            return
        self._last_decrease_ns = now
        self.decreases += 1
        self.rate_target = self.rate_current
        self._set_rate(self.rate_current * (1 - self.alpha / 2))
        self._reset_recovery()
        self._restart_alpha_timer()

    def _reset_recovery(self) -> None:
        self._increase_stage = 0
        self._byte_stage = 0
        self._bytes_acc = 0
        if self._increase_event is not None:
            self._increase_event.cancel()
        self._increase_event = self.sim.schedule(
            self.config.ti_ns, self._increase_tick)

    # ------------------------------------------------------------------
    # Increase path
    # ------------------------------------------------------------------
    def _increase_tick(self) -> None:
        self._increase_event = None
        self._increase_stage += 1
        self._do_increase()
        if not self._fully_recovered():
            self._increase_event = self.sim.schedule(
                self.config.ti_ns, self._increase_tick)

    def on_bytes_sent(self, nbytes: int) -> None:
        """Byte-counter increase clock (DCQCN's second trigger)."""
        if self.config.byte_counter_bytes is None:
            return
        if self._fully_recovered():
            return
        self._bytes_acc += nbytes
        while self._bytes_acc >= self.config.byte_counter_bytes:
            self._bytes_acc -= self.config.byte_counter_bytes
            self._byte_stage += 1
            self._do_increase()

    def _do_increase(self) -> None:
        cfg = self.config
        self.increases += 1
        if cfg.byte_counter_bytes is None:
            # Timer-only operation: fast recovery for F rounds, then
            # additive increase, hyper after a further H rounds.
            stage = self._increase_stage
            if stage > cfg.fast_recovery_rounds:
                if stage > (cfg.fast_recovery_rounds
                            + cfg.hyper_after_rounds):
                    self.rate_target = min(
                        self.line_rate_bps,
                        self.rate_target + self.rate_hai_bps)
                else:
                    self.rate_target = min(
                        self.line_rate_bps,
                        self.rate_target + self.rate_ai_bps)
        else:
            # Dual-clock operation per the DCQCN spec: fast recovery
            # while neither counter passed F, hyper once both did,
            # additive in between.
            ft, fb = self._increase_stage, self._byte_stage
            if min(ft, fb) > cfg.fast_recovery_rounds:
                self.rate_target = min(self.line_rate_bps,
                                       self.rate_target + self.rate_hai_bps)
            elif max(ft, fb) > cfg.fast_recovery_rounds:
                self.rate_target = min(self.line_rate_bps,
                                       self.rate_target + self.rate_ai_bps)
        self._set_rate((self.rate_current + self.rate_target) / 2)

    def _fully_recovered(self) -> bool:
        return (self.rate_current >= self.line_rate_bps * 0.999
                and self.rate_target >= self.line_rate_bps)

    # ------------------------------------------------------------------
    # Alpha decay
    # ------------------------------------------------------------------
    def _restart_alpha_timer(self) -> None:
        if self._alpha_event is not None:
            self._alpha_event.cancel()
        self._alpha_event = self.sim.schedule(
            self.config.alpha_timer_ns, self._alpha_tick)

    def _alpha_tick(self) -> None:
        self._alpha_event = None
        self.alpha *= (1 - self.config.alpha_g)
        # Below ~0.005 a decrease changes the rate by <0.25%; park the
        # timer (the next CNP/decrease restarts it) so idle QPs quiesce.
        if self.alpha > 5e-3:
            self._alpha_event = self.sim.schedule(
                self.config.alpha_timer_ns, self._alpha_tick)

    # ------------------------------------------------------------------
    def stop(self) -> None:
        if self._increase_event is not None:
            self._increase_event.cancel()
            self._increase_event = None
        if self._alpha_event is not None:
            self._alpha_event.cancel()
            self._alpha_event = None
