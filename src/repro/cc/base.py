"""Congestion-control interface used by sender QPs.

A sender QP consults :attr:`CongestionControl.rate_bps` to pace packets and
feeds back transport events (CNP arrivals, NACKs, timeouts).  The paper's
central observation is that commodity RNICs couple *reliability* signals
into this module: a NACK triggers the same rate cut as a CNP (§2.2,
"unnecessary slow starts"), which is what Themis prevents by blocking
invalid NACKs in the fabric.
"""

from __future__ import annotations

from repro.sim.engine import Simulator


class CongestionControl:
    """Strategy interface; one instance per sender QP."""

    def __init__(self, sim: Simulator, line_rate_bps: float) -> None:
        self.sim = sim
        self.line_rate_bps = float(line_rate_bps)

    @property
    def rate_bps(self) -> float:
        """Current paced sending rate."""
        raise NotImplementedError

    def on_cnp(self) -> None:
        """A DCQCN congestion notification arrived for this QP."""

    def on_nack(self) -> None:
        """A NACK arrived (commodity RNICs treat this as congestion)."""

    def on_timeout(self) -> None:
        """Retransmission timeout fired."""

    def on_ack(self) -> None:
        """Positive cumulative ACK progress (hook for future schemes)."""

    def on_bytes_sent(self, nbytes: int) -> None:
        """Data transmitted — drives DCQCN's byte-counter increases."""

    def stop(self) -> None:
        """Cancel any pending timers (QP teardown)."""


class FixedRate(CongestionControl):
    """Line-rate sender with no reaction to any signal.

    Used by the *Ideal* transport baseline in Fig. 1d, which isolates the
    cost of spurious retransmissions + slow starts: Ideal never slows down
    and never retransmits spuriously.
    """

    @property
    def rate_bps(self) -> float:
        return self.line_rate_bps
