"""Congestion control (DCQCN and fixed-rate baseline)."""

from repro.cc.base import CongestionControl, FixedRate
from repro.cc.dcqcn import Dcqcn, DcqcnConfig

__all__ = ["CongestionControl", "FixedRate", "Dcqcn", "DcqcnConfig"]
