"""Priority Flow Control (IEEE 802.1Qbb) for lossless RoCE fabrics.

Production RoCE deployments traditionally run the data class lossless:
when a switch's ingress accounting for an upstream port crosses XOFF it
sends a PAUSE for that priority; the upstream transmitter stops sending
data (the control class keeps flowing) until occupancy drains below XON
and a RESUME goes out.

The paper's experiments run DCQCN over ECN without PFC (the Zero-Touch
RoCE setting its RNIC citations describe), so :class:`PfcConfig` is off
by default — but the substrate is here because (a) loss-free operation is
the environment NIC-SR was designed for, and (b) the lossless-vs-lossy
ablation (`benchmarks/test_pfc_lossless.py`) shows Themis's behaviour is
not an artifact of drops.

Implementation notes: per-upstream-port ingress byte accounting on each
switch; PAUSE/RESUME are modelled as a control signal that takes one link
propagation delay to act on the upstream egress port (pausing only its
data queue, mirroring per-priority PFC).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.net.packet import Packet
from repro.net.port import Port
from repro.sim.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.switch.switch import Switch


@dataclass(frozen=True)
class PfcConfig:
    """PFC thresholds in bytes of per-ingress-port occupancy."""

    xoff_bytes: int = 80_000
    xon_bytes: int = 40_000

    def __post_init__(self) -> None:
        if not 0 < self.xon_bytes <= self.xoff_bytes:
            raise ValueError("require 0 < XON <= XOFF")


class PfcController:
    """Per-switch PFC state machine.

    Tracks how many bytes queued in this switch arrived from each
    upstream egress port, and pauses/resumes those ports around the
    XOFF/XON thresholds.
    """

    def __init__(self, sim: Simulator, switch: "Switch",
                 config: PfcConfig) -> None:
        self.sim = sim
        self.switch = switch
        self.config = config
        self._ingress_bytes: dict[Port, int] = {}
        self._paused: set[Port] = set()
        #: Ports held paused by an injected PFC storm (repro.faults):
        #: occupancy-driven XON must not lift these until the storm ends.
        self._storm_paused: set[Port] = set()
        #: pkt_id -> upstream port, for crediting on dequeue.
        self._origin: dict[int, Port] = {}
        self.pauses_sent = 0
        self.resumes_sent = 0
        #: PFC observability channel (repro.obs); None = disabled.
        self.rec = None

    # ------------------------------------------------------------------
    def on_ingress(self, packet: Packet, in_port: Optional[Port]) -> None:
        """Charge an arriving data packet to its upstream port."""
        if in_port is None or packet.is_control:
            return
        self._origin[packet.pkt_id] = in_port
        occupancy = self._ingress_bytes.get(in_port, 0) \
            + packet.wire_bytes
        self._ingress_bytes[in_port] = occupancy
        if occupancy >= self.config.xoff_bytes \
                and in_port not in self._paused:
            self._paused.add(in_port)
            self.pauses_sent += 1
            if self.rec is not None:
                self.rec.pfc(self.sim.now, in_port.name, "pause",
                             occupancy)
            # The PAUSE frame crosses the wire back to the transmitter.
            self.sim.schedule(in_port.delay_ns, in_port.pause_data)

    def on_egress(self, packet: Packet) -> None:
        """Credit a departing data packet back to its upstream port."""
        in_port = self._origin.pop(packet.pkt_id, None)
        if in_port is None:
            return
        occupancy = self._ingress_bytes.get(in_port, 0) \
            - packet.wire_bytes
        self._ingress_bytes[in_port] = occupancy
        if occupancy <= self.config.xon_bytes and in_port in self._paused:
            if in_port in self._storm_paused:
                return  # storm holds the pause regardless of occupancy
            self._paused.discard(in_port)
            self.resumes_sent += 1
            if self.rec is not None:
                self.rec.pfc(self.sim.now, in_port.name, "resume",
                             occupancy)
            self.sim.schedule(in_port.delay_ns, in_port.resume_data)

    # ------------------------------------------------------------------
    # Injected PFC storms (repro.faults): a malfunctioning neighbour
    # spews PAUSE frames unconditionally, freezing the data class on the
    # victim ports until the storm subsides.
    # ------------------------------------------------------------------
    def inject_storm_pause(self, port: Port) -> None:
        """Hold ``port`` paused regardless of ingress occupancy."""
        self._storm_paused.add(port)
        if port not in self._paused:
            self._paused.add(port)
            self.pauses_sent += 1
            if self.rec is not None:
                self.rec.pfc(self.sim.now, port.name, "storm_pause",
                             self._ingress_bytes.get(port, 0))
            self.sim.schedule(port.delay_ns, port.pause_data)

    def release_storm_pause(self, port: Port) -> None:
        """End the storm hold; resume unless occupancy still demands
        the pause (the normal XOFF/XON machinery takes back over)."""
        self._storm_paused.discard(port)
        if port not in self._paused:
            return
        if self._ingress_bytes.get(port, 0) > self.config.xon_bytes:
            return  # legitimately congested: leave the pause standing
        self._paused.discard(port)
        self.resumes_sent += 1
        if self.rec is not None:
            self.rec.pfc(self.sim.now, port.name, "storm_resume",
                         self._ingress_bytes.get(port, 0))
        self.sim.schedule(port.delay_ns, port.resume_data)

    def ingress_occupancy(self, port: Port) -> int:
        return self._ingress_bytes.get(port, 0)

    @property
    def paused_ports(self) -> set[Port]:
        return set(self._paused)

    @property
    def storm_paused_ports(self) -> set[Port]:
        return set(self._storm_paused)
