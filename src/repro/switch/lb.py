"""Load-balancing policies for equal-cost egress port selection.

Implemented schemes:

* :class:`EcmpLB` — flow-level hashing of the 5-tuple (the de-facto
  baseline, §2.1).  The hash is **XOR-linear** in the UDP source port,
  mirroring the hashing-linearity property of production ASICs that prior
  work [37] exploits and that Themis's PathMap relies on (Fig. 3).
* :class:`RandomSprayLB` — uniform random packet spraying [13].
* :class:`AdaptiveRoutingLB` — per-packet adaptive routing: pick the
  candidate egress port with the smallest queue backlog (ties broken by
  round-robin), approximating switch AR implementations.
* :class:`FlowletLB` — flowlet switching (CONGA/LetFlow-style, §2.3).

The adaptive-spraying baseline zoo (PAPERS.md competitors the paper's
evaluation predates):

* :class:`RepsLB` — REPS: recycled-entropy packet spraying.  Entropy
  values that recently delivered a packet cleanly (proven by a
  cumulative ACK) are cached per flow and reused; entropies mapped to a
  failed link are evicted, which is REPS's failure-mitigation story.
* :class:`PrimeLB` — PRIME: pseudo-random integrated multi-part entropy.
  The spraying entropy is composed from a per-flow part and a rolling
  pseudo-random part; disjoint bit-fields of it probe a small candidate
  set and the least-congested probe wins (stateless beyond a counter).
* :class:`SpritzLB` — Spritz: path-aware LB for low-diameter fabrics
  (dragonfly).  Maintains per-candidate path state (an EWMA of egress
  backlog) and sprays with probability inversely proportional to it, so
  persistently-bad paths are avoided rather than re-probed per packet.
* :class:`SprinklersLB` — Sprinklers: variable-size striping.  Each flow
  hashes to a stripe size; consecutive PSNs within a stripe share one
  egress (bounding reordering) while stripes themselves spray.

PSN-based spraying is *not* an LB here: it is applied by the Themis-S
middleware (:mod:`repro.themis.source`), which overrides port selection
at the source ToR only.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Optional, Sequence

from repro.net.packet import FlowKey, Packet
from repro.sim.rng import SimRng

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.port import Port
    from repro.switch.switch import Switch

#: Rotation applied to the UDP source port inside the fold — makes the
#: PathMap construction exercise a non-identity (but still linear) delta.
SPORT_ROTATION = 5


def rotl16(value: int, amount: int) -> int:
    """Rotate a 16-bit value left."""
    amount %= 16
    value &= 0xFFFF
    return ((value << amount) | (value >> (16 - amount))) & 0xFFFF


def rotr16(value: int, amount: int) -> int:
    """Rotate a 16-bit value right (inverse of :func:`rotl16`)."""
    return rotl16(value, 16 - (amount % 16))


def ecmp_hash(src: int, dst: int, qp: int, udp_sport: int, *,
              salt: int = 0, rot: int = SPORT_ROTATION) -> int:
    """16-bit XOR-fold hash over the flow identity and UDP source port.

    ``salt``/``rot`` are per-switch parameters (real ASICs seed their CRC
    engines differently per box).  Linearity property exploited by the
    PathMap: for any delta ``d``,
    ``ecmp_hash(..., sport ^ d) == ecmp_hash(..., sport) ^ rotl16(d, rot)``.
    """
    acc = salt & 0xFFFF
    for word in (src & 0xFFFF, (src >> 16) & 0xFFFF,
                 dst & 0xFFFF, (dst >> 16) & 0xFFFF,
                 qp & 0xFFFF):
        acc ^= word
        acc = rotl16(acc, 1)
    acc ^= rotl16(udp_sport & 0xFFFF, rot)
    return acc & 0xFFFF


def ecmp_index(packet: Packet, n_candidates: int, *,
               salt: int = 0, rot: int = SPORT_ROTATION) -> int:
    """Candidate index ECMP picks for this packet."""
    flow = packet.flow
    return ecmp_hash(flow.src, flow.dst, flow.qp, packet.udp_sport,
                     salt=salt, rot=rot) % n_candidates


class LoadBalancer:
    """Strategy interface: choose one egress port among equal-cost ones."""

    name = "base"

    def select(self, switch: "Switch", packet: Packet,
               candidates: Sequence["Port"]) -> "Port":
        raise NotImplementedError


class EcmpLB(LoadBalancer):
    """Flow hashing: every packet of a flow takes the same path."""

    name = "ecmp"

    def select(self, switch: "Switch", packet: Packet,
               candidates: Sequence["Port"]) -> "Port":
        return candidates[ecmp_index(packet, len(candidates),
                                     salt=switch.hash_salt,
                                     rot=switch.hash_rot)]


class RandomSprayLB(LoadBalancer):
    """Uniform random packet spraying (per-packet, stateless)."""

    name = "rps"

    def __init__(self, rng: SimRng) -> None:
        self._rng = rng
        self._u01 = rng.u01

    def select(self, switch: "Switch", packet: Packet,
               candidates: Sequence["Port"]) -> "Port":
        # Flattened SimRng.choice: one C-level draw per sprayed packet.
        return candidates[int(self._u01() * len(candidates))]


class FlowletLB(LoadBalancer):
    """Flowlet switching (CONGA/LetFlow-style, §2.3).

    A flow may move to a new path only when a time gap larger than
    ``gap_ns`` separates consecutive packets — large enough for in-flight
    packets on the old path to drain, preserving order.  The paper's
    §2.3 point: RNIC *hardware rate pacing* emits packets back to back,
    so the gaps never appear and flowlet LB degenerates to per-flow
    (ECMP-like) behaviour; shrinking the gap below the path-delay spread
    trades that for reordering.  Both regimes are measurable here
    (`benchmarks/test_flowlet_baseline.py`).

    **Semantics note** — :meth:`select` re-stamps ``last_ns`` on every
    in-flowlet packet, so the gap is measured from the *previous packet*,
    not from the flowlet's first packet.  This is intentional and matches
    CONGA/LetFlow: a flowlet ends only when the inter-packet gap exceeds
    ``gap_ns`` (long enough for the old path to drain), so a continuously
    paced flow forms one unbounded flowlet — exactly the §2.3
    degeneration above.  Measuring from flowlet start would instead force
    a path switch every ``gap_ns`` regardless of spacing, reordering
    in-flight packets.  Pinned by ``tests/switch/test_flowlet.py``.
    """

    name = "flowlet"

    def __init__(self, rng: SimRng, gap_ns: int = 50_000) -> None:
        if gap_ns < 0:
            raise ValueError("gap must be >= 0")
        self._rng = rng
        self.gap_ns = gap_ns
        #: flow -> (candidate index, last packet timestamp)
        self._state: dict = {}
        self.flowlet_switches = 0

    def select(self, switch: "Switch", packet: Packet,
               candidates: Sequence["Port"]) -> "Port":
        now = switch.sim.now
        n = len(candidates)
        state = self._state.get(packet.flow)
        if state is not None:
            index, last_ns = state
            if now - last_ns < self.gap_ns and index < n:
                self._state[packet.flow] = (index, now)
                return candidates[index]
        # Gap expired (or first packet): start a new flowlet on the
        # least-loaded port, ties broken randomly.
        best = min(port.queued_bytes for port in candidates)
        ties = [i for i, port in enumerate(candidates)
                if port.queued_bytes == best]
        index = ties[self._rng.choice(len(ties))]
        if state is not None and state[0] != index:
            self.flowlet_switches += 1
        self._state[packet.flow] = (index, now)
        return candidates[index]


class AdaptiveRoutingLB(LoadBalancer):
    """Per-packet adaptive routing on local egress queue occupancy.

    Switch ASICs quantize queue depth into coarse congestion bins and pick
    pseudo-randomly among the least-congested ports, so consecutive
    packets of one flow still interleave across several uplinks — the
    per-packet reordering that makes "AR + commodity RNIC" the paper's
    problem case.  ``bin_bytes`` is the quantization step.
    """

    name = "ar"

    def __init__(self, rng: SimRng, bin_bytes: int = 4096) -> None:
        if bin_bytes < 1:
            raise ValueError("bin size must be positive")
        self._rng = rng
        self.bin_bytes = bin_bytes

    def select(self, switch: "Switch", packet: Packet,
               candidates: Sequence["Port"]) -> "Port":
        best_bin = min(port.queued_bytes // self.bin_bytes
                       for port in candidates)
        ties = [port for port in candidates
                if port.queued_bytes // self.bin_bytes == best_bin]
        if len(ties) == 1:
            return ties[0]
        return ties[self._rng.choice(len(ties))]


class RepsLB(LoadBalancer):
    """REPS: recycled-entropy packet spraying (PAPERS: arXiv 2407.21625).

    Per flow, entropy values whose packet was covered by a cumulative ACK
    are pushed onto a bounded recycle cache; the next packet of that flow
    prefers a recycled (entropy, port) pair over a fresh random draw —
    ACKed entropies are evidence of a currently-healthy, uncongested
    path.  On link failure the fault layer calls :meth:`evict_dead`
    (via ``Network.reconverge_routes``) so no cached entropy can steer a
    packet onto a dead egress; lazy checks in :meth:`select` cover the
    window between failure and reconvergence.

    Recycling is driven from the *receiver* side: the harness registers
    :meth:`on_ack` as a ``Metrics.ack_listeners`` callback, firing when
    an ACK is generated.  (Real REPS recycles at the sender when the ACK
    returns; recycling at generation time only shifts the recycle point
    by the reverse-path delay and keeps the hook transport-agnostic.)
    """

    name = "reps"

    def __init__(self, rng: SimRng, cache_size: int = 64) -> None:
        if cache_size < 1:
            raise ValueError("cache size must be positive")
        self._rng = rng
        self.cache_size = cache_size
        #: flow -> deque[(entropy, port)] of ACK-proven entropies.
        self._cache: dict[FlowKey, deque] = {}
        #: flow -> {psn: (entropy, port)} awaiting ACK coverage.
        self._inflight: dict[FlowKey, dict] = {}
        self.recycled_hits = 0
        self.fresh_draws = 0
        self.evictions = 0

    def select(self, switch: "Switch", packet: Packet,
               candidates: Sequence["Port"]) -> "Port":
        flow = packet.flow
        cache = self._cache.get(flow)
        entropy: Optional[int] = None
        port: Optional["Port"] = None
        if cache:
            # Pop until a live, still-equal-cost entry surfaces; stale
            # entries (dead or no-longer-candidate port) are evicted.
            while cache:
                cand_entropy, cand_port = cache.popleft()
                if cand_port.up and cand_port in candidates:
                    entropy, port = cand_entropy, cand_port
                    break
                self.evictions += 1
        if port is None:
            entropy = int(self._rng.u01() * 65536)
            port = candidates[entropy % len(candidates)]
            self.fresh_draws += 1
        else:
            self.recycled_hits += 1
        # A retransmission overwrites the slot for its PSN: the entropy
        # that lost the packet is discarded rather than ever recycled.
        self._inflight.setdefault(flow, {})[packet.psn] = (entropy, port)
        return port

    def on_ack(self, flow: FlowKey, epsn: int) -> None:
        """Cumulative ACK for ``flow``: recycle entropies below ``epsn``."""
        inflight = self._inflight.get(flow)
        if not inflight:
            return
        acked = [psn for psn in inflight if psn < epsn]
        if not acked:
            return
        cache = self._cache.get(flow)
        if cache is None:
            cache = self._cache[flow] = deque(maxlen=self.cache_size)
        for psn in sorted(acked):
            entropy, port = inflight.pop(psn)
            if port.up:
                cache.append((entropy, port))
            else:
                self.evictions += 1

    def evict_dead(self) -> None:
        """Purge every cached/inflight entropy mapped to a down port."""
        for cache in self._cache.values():
            live = [entry for entry in cache if entry[1].up]
            if len(live) != len(cache):
                self.evictions += len(cache) - len(live)
                cache.clear()
                cache.extend(live)
        for inflight in self._inflight.values():
            dead = [psn for psn, (_, port) in inflight.items()
                    if not port.up]
            for psn in dead:
                del inflight[psn]
            self.evictions += len(dead)


class PrimeLB(LoadBalancer):
    """PRIME: multi-part entropy selection (PAPERS: arXiv 2507.23012).

    Each packet's 16-bit entropy is composed from a stable per-flow part
    (the ECMP hash) XOR a rolling Weyl-sequence part, so consecutive
    packets decorrelate without any RNG.  Disjoint 4-bit fields of the
    entropy nominate ``probes`` candidate ports and the one with the
    smallest quantized backlog wins — "power of two choices" steered
    entirely by the entropy, keeping the scheme stateless beyond one
    per-flow counter (deployable in an RNIC pipeline).
    """

    name = "prime"

    def __init__(self, probes: int = 2, bin_bytes: int = 4096) -> None:
        if not 1 <= probes <= 4:
            raise ValueError("probes must be in 1..4")
        if bin_bytes < 1:
            raise ValueError("bin size must be positive")
        self.probes = probes
        self.bin_bytes = bin_bytes
        #: flow -> packets seen (the rolling part's phase).
        self._count: dict[FlowKey, int] = {}

    def select(self, switch: "Switch", packet: Packet,
               candidates: Sequence["Port"]) -> "Port":
        flow = packet.flow
        count = self._count.get(flow, 0)
        self._count[flow] = count + 1
        base = ecmp_hash(flow.src, flow.dst, flow.qp, packet.udp_sport,
                         salt=switch.hash_salt, rot=switch.hash_rot)
        weyl = (count * 0x9E37 + 0x79B9) & 0xFFFF
        entropy = base ^ rotl16(weyl, 3)
        n = len(candidates)
        best_port = None
        best_bin = None
        for part in range(self.probes):
            index = ((entropy >> (4 * part)) & 0xF) % n
            port = candidates[index]
            backlog = port.queued_bytes // self.bin_bytes
            if best_bin is None or backlog < best_bin:
                best_port, best_bin = port, backlog
        return best_port


class SpritzLB(LoadBalancer):
    """Spritz: path-aware spraying for low-diameter fabrics
    (PAPERS: arXiv 2602.19567).

    Uniform spraying is wrong on dragonfly-like topologies where
    equal-cost candidates hide very unequal path quality (a congested
    global link vs. a clear one).  Spritz keeps per-candidate path state
    — an EWMA of the egress backlog updated on every visit — and sprays
    with probability inversely proportional to it, so persistently-bad
    paths receive asymptotically less traffic while still being probed
    enough to notice recovery.
    """

    name = "spritz"

    def __init__(self, rng: SimRng, alpha: float = 0.25,
                 mtu_bytes: int = 1000) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self._rng = rng
        self.alpha = alpha
        self.mtu_bytes = mtu_bytes
        #: port -> EWMA of queued bytes (persistent path state).
        self._ewma: dict = {}

    def select(self, switch: "Switch", packet: Packet,
               candidates: Sequence["Port"]) -> "Port":
        ewma = self._ewma
        alpha = self.alpha
        weights = []
        total = 0.0
        for port in candidates:
            score = ewma.get(port, 0.0)
            score += alpha * (port.queued_bytes - score)
            ewma[port] = score
            weight = 1.0 / (1.0 + score / self.mtu_bytes)
            weights.append(weight)
            total += weight
        pick = self._rng.u01() * total
        acc = 0.0
        for port, weight in zip(candidates, weights):
            acc += weight
            if pick < acc:
                return port
        return candidates[-1]  # float round-off fallback


class SprinklersLB(LoadBalancer):
    """Sprinklers: variable-size striping (PAPERS: arXiv 1407.0006).

    Each flow hashes to a stripe size (a power of two, so the stripe
    index is a shift); runs of ``stripe_size`` consecutive PSNs share one
    egress — bounding reordering to stripe boundaries — while the stripe
    index re-hashes, spreading the flow across all candidates.  Flows
    disagree on both stripe size and stripe->port mapping, which is what
    decorrelates the collisions that plague plain ECMP.
    """

    name = "sprinklers"

    def __init__(self, max_stripe_log2: int = 6) -> None:
        if not 0 <= max_stripe_log2 <= 12:
            raise ValueError("max_stripe_log2 must be in 0..12")
        self.max_stripe_log2 = max_stripe_log2
        #: flow -> (stripe shift, per-flow salt), cached.
        self._stripe: dict[FlowKey, tuple] = {}

    def select(self, switch: "Switch", packet: Packet,
               candidates: Sequence["Port"]) -> "Port":
        flow = packet.flow
        cached = self._stripe.get(flow)
        if cached is None:
            h = ecmp_hash(flow.src, flow.dst, flow.qp, 0x5A5A,
                          salt=switch.hash_salt, rot=switch.hash_rot)
            cached = (h % (self.max_stripe_log2 + 1), h)
            self._stripe[flow] = cached
        shift, flow_salt = cached
        stripe = packet.psn >> shift
        # ecmp_hash is linear in its sport argument, so feeding the raw
        # stripe index would only perturb high bits (rotl16 of a small
        # integer) and the modulo below would never move.  A Weyl-style
        # odd-multiplier mix spreads consecutive stripes over all 16 bits.
        mixed = (stripe * 0x9E37 + 0x79B9) & 0xFFFF
        index = ecmp_hash(flow.src, flow.dst, flow.qp, mixed,
                          salt=flow_salt, rot=switch.hash_rot)
        return candidates[index % len(candidates)]
