"""Load-balancing policies for equal-cost egress port selection.

Implemented schemes:

* :class:`EcmpLB` — flow-level hashing of the 5-tuple (the de-facto
  baseline, §2.1).  The hash is **XOR-linear** in the UDP source port,
  mirroring the hashing-linearity property of production ASICs that prior
  work [37] exploits and that Themis's PathMap relies on (Fig. 3).
* :class:`RandomSprayLB` — uniform random packet spraying [13].
* :class:`AdaptiveRoutingLB` — per-packet adaptive routing: pick the
  candidate egress port with the smallest queue backlog (ties broken by
  round-robin), approximating switch AR implementations.
* PSN-based spraying is *not* an LB here: it is applied by the Themis-S
  middleware (:mod:`repro.themis.source`), which overrides port selection
  at the source ToR only.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.net.packet import Packet
from repro.sim.rng import SimRng

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.port import Port
    from repro.switch.switch import Switch

#: Rotation applied to the UDP source port inside the fold — makes the
#: PathMap construction exercise a non-identity (but still linear) delta.
SPORT_ROTATION = 5


def rotl16(value: int, amount: int) -> int:
    """Rotate a 16-bit value left."""
    amount %= 16
    value &= 0xFFFF
    return ((value << amount) | (value >> (16 - amount))) & 0xFFFF


def rotr16(value: int, amount: int) -> int:
    """Rotate a 16-bit value right (inverse of :func:`rotl16`)."""
    return rotl16(value, 16 - (amount % 16))


def ecmp_hash(src: int, dst: int, qp: int, udp_sport: int, *,
              salt: int = 0, rot: int = SPORT_ROTATION) -> int:
    """16-bit XOR-fold hash over the flow identity and UDP source port.

    ``salt``/``rot`` are per-switch parameters (real ASICs seed their CRC
    engines differently per box).  Linearity property exploited by the
    PathMap: for any delta ``d``,
    ``ecmp_hash(..., sport ^ d) == ecmp_hash(..., sport) ^ rotl16(d, rot)``.
    """
    acc = salt & 0xFFFF
    for word in (src & 0xFFFF, (src >> 16) & 0xFFFF,
                 dst & 0xFFFF, (dst >> 16) & 0xFFFF,
                 qp & 0xFFFF):
        acc ^= word
        acc = rotl16(acc, 1)
    acc ^= rotl16(udp_sport & 0xFFFF, rot)
    return acc & 0xFFFF


def ecmp_index(packet: Packet, n_candidates: int, *,
               salt: int = 0, rot: int = SPORT_ROTATION) -> int:
    """Candidate index ECMP picks for this packet."""
    flow = packet.flow
    return ecmp_hash(flow.src, flow.dst, flow.qp, packet.udp_sport,
                     salt=salt, rot=rot) % n_candidates


class LoadBalancer:
    """Strategy interface: choose one egress port among equal-cost ones."""

    name = "base"

    def select(self, switch: "Switch", packet: Packet,
               candidates: Sequence["Port"]) -> "Port":
        raise NotImplementedError


class EcmpLB(LoadBalancer):
    """Flow hashing: every packet of a flow takes the same path."""

    name = "ecmp"

    def select(self, switch: "Switch", packet: Packet,
               candidates: Sequence["Port"]) -> "Port":
        return candidates[ecmp_index(packet, len(candidates),
                                     salt=switch.hash_salt,
                                     rot=switch.hash_rot)]


class RandomSprayLB(LoadBalancer):
    """Uniform random packet spraying (per-packet, stateless)."""

    name = "rps"

    def __init__(self, rng: SimRng) -> None:
        self._rng = rng
        self._u01 = rng.u01

    def select(self, switch: "Switch", packet: Packet,
               candidates: Sequence["Port"]) -> "Port":
        # Flattened SimRng.choice: one C-level draw per sprayed packet.
        return candidates[int(self._u01() * len(candidates))]


class FlowletLB(LoadBalancer):
    """Flowlet switching (CONGA/LetFlow-style, §2.3).

    A flow may move to a new path only when a time gap larger than
    ``gap_ns`` separates consecutive packets — large enough for in-flight
    packets on the old path to drain, preserving order.  The paper's
    §2.3 point: RNIC *hardware rate pacing* emits packets back to back,
    so the gaps never appear and flowlet LB degenerates to per-flow
    (ECMP-like) behaviour; shrinking the gap below the path-delay spread
    trades that for reordering.  Both regimes are measurable here
    (`benchmarks/test_flowlet_baseline.py`).
    """

    name = "flowlet"

    def __init__(self, rng: SimRng, gap_ns: int = 50_000) -> None:
        if gap_ns < 0:
            raise ValueError("gap must be >= 0")
        self._rng = rng
        self.gap_ns = gap_ns
        #: flow -> (candidate index, last packet timestamp)
        self._state: dict = {}
        self.flowlet_switches = 0

    def select(self, switch: "Switch", packet: Packet,
               candidates: Sequence["Port"]) -> "Port":
        now = switch.sim.now
        n = len(candidates)
        state = self._state.get(packet.flow)
        if state is not None:
            index, last_ns = state
            if now - last_ns < self.gap_ns and index < n:
                self._state[packet.flow] = (index, now)
                return candidates[index]
        # Gap expired (or first packet): start a new flowlet on the
        # least-loaded port, ties broken randomly.
        best = min(port.queued_bytes for port in candidates)
        ties = [i for i, port in enumerate(candidates)
                if port.queued_bytes == best]
        index = ties[self._rng.choice(len(ties))]
        if state is not None and state[0] != index:
            self.flowlet_switches += 1
        self._state[packet.flow] = (index, now)
        return candidates[index]


class AdaptiveRoutingLB(LoadBalancer):
    """Per-packet adaptive routing on local egress queue occupancy.

    Switch ASICs quantize queue depth into coarse congestion bins and pick
    pseudo-randomly among the least-congested ports, so consecutive
    packets of one flow still interleave across several uplinks — the
    per-packet reordering that makes "AR + commodity RNIC" the paper's
    problem case.  ``bin_bytes`` is the quantization step.
    """

    name = "ar"

    def __init__(self, rng: SimRng, bin_bytes: int = 4096) -> None:
        if bin_bytes < 1:
            raise ValueError("bin size must be positive")
        self._rng = rng
        self.bin_bytes = bin_bytes

    def select(self, switch: "Switch", packet: Packet,
               candidates: Sequence["Port"]) -> "Port":
        best_bin = min(port.queued_bytes // self.bin_bytes
                       for port in candidates)
        ties = [port for port in candidates
                if port.queued_bytes // self.bin_bytes == best_bin]
        if len(ties) == 1:
            return ties[0]
        return ties[self._rng.choice(len(ties))]
