"""Switch data plane: buffers, ECN, load balancers, forwarding pipeline."""

from repro.switch.buffer import SharedBuffer
from repro.switch.ecn import EcnConfig, EcnMarker
from repro.switch.lb import (AdaptiveRoutingLB, EcmpLB, FlowletLB,
                             LoadBalancer, RandomSprayLB, ecmp_hash,
                             ecmp_index, rotl16, rotr16)
from repro.switch.pfc import PfcConfig, PfcController
from repro.switch.switch import Middleware, Switch, SwitchQueuePolicy

__all__ = [
    "Switch", "Middleware", "SwitchQueuePolicy", "SharedBuffer",
    "EcnConfig", "EcnMarker", "LoadBalancer", "EcmpLB", "RandomSprayLB",
    "AdaptiveRoutingLB", "FlowletLB", "PfcConfig", "PfcController",
    "ecmp_hash", "ecmp_index", "rotl16", "rotr16",
]
