"""Switch data plane.

A :class:`Switch` forwards packets through three stages:

1. **Middleware chain** — programmable hooks (Themis-S / Themis-D live
   here).  A middleware may consume or block a packet (returning ``False``
   from :meth:`Middleware.on_packet`) or inject new packets by enqueueing
   through the switch.
2. **Route lookup** — ``routes[dst_nic]`` yields the set of equal-cost
   egress ports computed by the topology builder.
3. **Load balancing** — when several candidates exist, middleware gets the
   first chance to pin the egress port (PSN-based spraying); otherwise the
   switch's configured :class:`~repro.switch.lb.LoadBalancer` picks.
   Control packets always use ECMP so ACK/NACK streams stay on one path.

Egress ports use :class:`SwitchQueuePolicy`, which combines the shared
buffer (drops) and the ECN marker.
"""

from __future__ import annotations

import zlib
from typing import TYPE_CHECKING, Optional, Sequence

from repro.net.node import Device
from repro.net.packet import Packet
from repro.net.port import Port, QueuePolicy
from repro.switch.buffer import SharedBuffer
from repro.switch.ecn import EcnMarker
from repro.switch.lb import LoadBalancer, ecmp_index
from repro.sim.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.harness.metrics import Metrics


class Middleware:
    """In-switch programmable hook (the role Tofino P4 code plays)."""

    def on_packet(self, switch: "Switch", packet: Packet,
                  in_port: Optional[Port]) -> bool:
        """Inspect/modify a packet at ingress.

        Return ``False`` to stop processing (packet blocked or consumed);
        ``True`` to continue down the pipeline.
        """
        return True

    def select_port(self, switch: "Switch", packet: Packet,
                    candidates: Sequence[Port]) -> Optional[Port]:
        """Override egress selection for data packets; ``None`` defers."""
        return None

    def attach(self, switch: "Switch") -> None:
        """Called when installed on a switch; default records the host.

        Gives middleware access to ``switch.sim``/``switch.name`` for
        emitting trace events outside the packet path (e.g. flushing
        armed state when a fault disables the stage).
        """
        self.switch = switch

    def disable(self) -> None:
        """Administratively bypass this middleware (no-op by default)."""

    def enable(self) -> None:
        """Re-arm after :meth:`disable` (no-op by default)."""


class SwitchQueuePolicy(QueuePolicy):
    """Shared-buffer admission + ECN marking for one switch's ports.

    The shared-buffer byte accounting is inlined here (same arithmetic as
    :meth:`SharedBuffer.can_admit`/``reserve``/``release``) — these hooks
    run once per data packet per hop, and the delegation cost two extra
    Python calls per packet.  ``marker.should_mark`` stays a call because
    it owns the evaluated/marked counters.
    """

    def __init__(self, buffer: SharedBuffer, marker: EcnMarker,
                 switch: "Switch") -> None:
        self.buffer = buffer
        self.marker = marker
        self.switch = switch
        #: ECN observability channel (repro.obs); None = disabled.
        self.rec_ecn = None

    def admit(self, port: Port, packet: Packet) -> bool:
        buf = self.buffer
        nbytes = packet.wire_bytes
        if buf.used_bytes + nbytes > buf.capacity_bytes:
            return False
        cap = buf.per_port_cap_bytes
        return cap is None or port.queued_bytes + nbytes <= cap

    def on_enqueue(self, port: Port, packet: Packet) -> None:
        buf = self.buffer
        used = buf.used_bytes + packet.wire_bytes
        buf.used_bytes = used
        if used > buf.peak_bytes:
            buf.peak_bytes = used
        if not packet.ecn_marked and self.marker.should_mark(
                port.queued_bytes):
            packet.ecn_marked = True
            if self.rec_ecn is not None:
                self.rec_ecn.ecn_mark(self.switch.sim.now, port.name,
                                      packet, port.queued_bytes)

    def on_dequeue(self, port: Port, packet: Packet) -> None:
        self.buffer.used_bytes -= packet.wire_bytes
        pfc = self.switch.pfc
        if pfc is not None:
            pfc.on_egress(packet)


class Switch(Device):
    """An output-queued switch with pluggable LB and middleware."""

    def __init__(self, sim: Simulator, name: str, *,
                 lb: LoadBalancer, buffer: SharedBuffer,
                 ecn_marker: EcnMarker,
                 metrics: "Metrics | None" = None) -> None:
        super().__init__(sim, name)
        self.lb = lb
        self.buffer = buffer
        self.ecn_marker = ecn_marker
        self.metrics = metrics
        self.routes: dict[int, list[Port]] = {}
        self.down_nics: set[int] = set()
        self.middleware: list[Middleware] = []
        #: Administrative liveness: a rebooting switch blackholes every
        #: arriving packet (with drop accounting) until it comes back.
        self.active = True
        #: Optional PFC state machine (see repro.switch.pfc); installed
        #: by the harness when the fabric runs lossless.
        self.pfc = None
        #: Packet-hop emitter callable (``Recorder.hop_emitter()``);
        #: None = disabled.
        self.rec = None
        self._policy = SwitchQueuePolicy(buffer, ecn_marker, self)
        # Per-switch hash seed/rotation: real ASICs configure their CRC
        # engines per box, which is what makes multi-stage ECMP decorrelate
        # (and what the PathMap construction has to account for).
        self.hash_salt = zlib.crc32(name.encode()) & 0xFFFF
        self.hash_rot = 1 + (zlib.crc32(name[::-1].encode()) % 15)
        # ecmp_index is a pure function of (flow, sport, fan-out) for a
        # fixed salt/rot, so its result can be memoised per switch — an
        # ACK stream hits this dict instead of re-running the hash fold.
        self._ecmp_cache: dict = {}

    # ------------------------------------------------------------------
    def add_port(self, bandwidth_bps: float, delay_ns: int) -> Port:
        port = Port(self.sim, self, bandwidth_bps=bandwidth_bps,
                    delay_ns=delay_ns)
        port.policy = self._policy
        port.on_drop = self._record_drop
        return port

    def add_middleware(self, mw: Middleware) -> None:
        self.middleware.append(mw)
        mw.attach(self)

    # ------------------------------------------------------------------
    def receive(self, packet: Packet, in_port: Optional[Port]) -> None:
        # forward() is inlined below — this runs once per packet per hop;
        # keep the two bodies in sync.  Cold-path attributes (rec, pfc,
        # middleware) are loaded once; the route lookup is a plain dict
        # subscript (no bound-method call) with the miss handled cold.
        if not self.active:
            self._drop_inactive(packet)
            return
        rec = self.rec
        if rec is not None:
            rec(self.sim.now, self.name, packet)
        pfc = self.pfc
        if pfc is not None:
            pfc.on_ingress(packet, in_port)
        middleware = self.middleware
        if middleware:
            for mw in middleware:
                if not mw.on_packet(self, packet, in_port):
                    if pfc is not None:
                        pfc.on_egress(packet)  # consumed: credit
                    return
        try:
            candidates = self.routes[packet.dst]
        except KeyError:
            raise LookupError(
                f"{self.name}: no route to NIC {packet.dst}") from None
        if len(candidates) == 1:
            # Downlink hops have exactly one route; skip the selector.
            port = candidates[0]
        elif candidates:
            port = self._select(packet, candidates)
        else:
            raise LookupError(
                f"{self.name}: no route to NIC {packet.dst}")
        if not port.enqueue(packet) and pfc is not None:
            pfc.on_egress(packet)  # dropped at admission: credit

    def forward(self, packet: Packet) -> None:
        """Route + LB + enqueue, without the ingress stages.

        Kept as the entry point for middleware that re-injects packets
        (Themis-D retransmits) and for tests; :meth:`receive` inlines
        this body on the per-hop hot path.
        """
        try:
            candidates = self.routes[packet.dst]
        except KeyError:
            raise LookupError(
                f"{self.name}: no route to NIC {packet.dst}") from None
        if len(candidates) == 1:
            port = candidates[0]
        elif candidates:
            port = self._select(packet, candidates)
        else:
            raise LookupError(
                f"{self.name}: no route to NIC {packet.dst}")
        if not port.enqueue(packet) and self.pfc is not None:
            self.pfc.on_egress(packet)  # dropped at admission: credit

    def _select(self, packet: Packet, candidates: list[Port]) -> Port:
        if len(candidates) == 1:
            return candidates[0]
        if packet.is_control:
            # Control traffic stays on a single hashed path: commodity
            # fabrics never spray the lossless ACK/NACK class.
            key = (packet.flow, packet.udp_sport, len(candidates))
            index = self._ecmp_cache.get(key)
            if index is None:
                index = ecmp_index(packet, len(candidates),
                                   salt=self.hash_salt, rot=self.hash_rot)
                self._ecmp_cache[key] = index
            return candidates[index]
        if self.middleware:
            for mw in self.middleware:
                chosen = mw.select_port(self, packet, candidates)
                if chosen is not None:
                    return chosen
        return self.lb.select(self, packet, candidates)

    # ------------------------------------------------------------------
    # Fault-injection surface (driven by repro.faults)
    # ------------------------------------------------------------------
    def set_active(self, active: bool) -> None:
        """Raise/lower the whole forwarding plane (switch reboot)."""
        self.active = active
        if active:
            # Fresh-boot state: ASIC hash memo does not survive power
            # cycles, and any PFC pauses it asserted are gone.
            self._ecmp_cache.clear()

    def drain_buffers(self, reason: str = "reboot_drain") -> int:
        """Flush every egress queue with full accounting; returns count.

        Each data packet passes through the queue policy's dequeue hook,
        so shared-buffer occupancy and PFC ingress credit drain to zero —
        the post-run ``buffer.used_bytes == 0`` invariant must survive a
        mid-run reboot.
        """
        flushed = 0
        for port in self.ports:
            flushed += port.flush(reason)
        return flushed

    def _drop_inactive(self, packet: Packet) -> None:
        """Account a packet blackholed by an inactive (rebooting) switch."""
        if self.rec is not None:
            self.rec(self.sim.now, self.name, packet)
        if self.metrics is not None:
            self.metrics.on_drop(packet, self, None)

    def _record_drop(self, packet: Packet, port: Port) -> None:
        if self.metrics is not None:
            self.metrics.on_drop(packet, self, port)
