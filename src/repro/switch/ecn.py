"""ECN marking (DCQCN-style RED on instantaneous egress queue depth).

DCQCN expects switches to mark the IP ECN bits with probability 0 below
``kmin`` bytes of egress queue, rising linearly to ``pmax`` at ``kmax``,
and 1.0 above ``kmax``.  Marking happens when a data packet is enqueued,
based on the queue length it observes, which matches how shallow-buffer
ASICs implement WRED.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.rng import SimRng


@dataclass(frozen=True)
class EcnConfig:
    """RED/ECN thresholds in bytes.

    The defaults are sized for the 400 Gbps fabric of the paper's §5 setup
    (scaled from the DCQCN deployment guidance of ~5 µs of line rate for
    kmin).  Experiments override them per run.
    """

    kmin_bytes: int = 100_000
    kmax_bytes: int = 400_000
    pmax: float = 0.2

    def __post_init__(self) -> None:
        if self.kmin_bytes < 0 or self.kmax_bytes < self.kmin_bytes:
            raise ValueError("require 0 <= kmin <= kmax")
        if not 0.0 <= self.pmax <= 1.0:
            raise ValueError("pmax must be in [0, 1]")


class EcnMarker:
    """Stateless marking decision from queue depth + config + RNG."""

    def __init__(self, config: EcnConfig, rng: SimRng) -> None:
        self.config = config
        self._rng = rng
        # Thresholds copied out of the (frozen) config: should_mark runs
        # once per data packet per hop, so the attribute chain matters.
        self._kmin = config.kmin_bytes
        self._kmax = config.kmax_bytes
        self._pmax = config.pmax
        self._span = max(1, config.kmax_bytes - config.kmin_bytes)
        self._u01 = rng.u01
        self.marked = 0
        self.evaluated = 0

    def should_mark(self, queue_bytes: int) -> bool:
        """Decide marking for a packet that sees ``queue_bytes`` ahead."""
        self.evaluated += 1
        if queue_bytes <= self._kmin:
            return False
        if queue_bytes >= self._kmax:
            self.marked += 1
            return True
        hit = (self._u01()
               < self._pmax * (queue_bytes - self._kmin) / self._span)
        if hit:
            self.marked += 1
        return hit
