"""Shared switch buffer accounting.

Commodity switch ASICs pool packet memory across ports (e.g. the 64 MB
SRAM the paper cites for Tofino-class switches).  :class:`SharedBuffer`
tracks aggregate occupancy; a data packet is admitted only if both the
shared pool and the per-port static cap have room.  Control packets bypass
the buffer entirely (they ride the lossless high-priority class).
"""

from __future__ import annotations


class SharedBuffer:
    """Byte-accurate shared buffer with an optional per-port cap."""

    def __init__(self, capacity_bytes: int,
                 per_port_cap_bytes: int | None = None) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        self.capacity_bytes = int(capacity_bytes)
        self.per_port_cap_bytes = per_port_cap_bytes
        self.used_bytes = 0
        self.peak_bytes = 0
        self.rejections = 0

    def can_admit(self, nbytes: int, port_used_bytes: int) -> bool:
        if self.used_bytes + nbytes > self.capacity_bytes:
            return False
        if (self.per_port_cap_bytes is not None
                and port_used_bytes + nbytes > self.per_port_cap_bytes):
            return False
        return True

    def reserve(self, nbytes: int) -> None:
        self.used_bytes += nbytes
        if self.used_bytes > self.peak_bytes:
            self.peak_bytes = self.used_bytes
        if self.used_bytes > self.capacity_bytes:
            raise AssertionError("buffer accounting overflow: reserve "
                                 "called without can_admit check")

    def release(self, nbytes: int) -> None:
        self.used_bytes -= nbytes
        if self.used_bytes < 0:
            raise AssertionError("buffer accounting underflow")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SharedBuffer({self.used_bytes}/{self.capacity_bytes}B, "
                f"peak={self.peak_bytes})")
