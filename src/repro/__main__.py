"""Entry point: ``python -m repro <command>``."""

import sys

from repro.harness.cli import main

sys.exit(main())
