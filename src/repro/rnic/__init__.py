"""Commodity RNIC model: QPs, reliable transports, pacing."""

from repro.rnic.bitmap import OooTracker
from repro.rnic.config import RnicConfig
from repro.rnic.nic import Rnic
from repro.rnic.qp import SenderQp
from repro.rnic.reliability import (RECEIVER_CLASSES, GbnReceiver,
                                    IdealReceiver, NicSrReceiver,
                                    ReceiverQp)

__all__ = [
    "Rnic", "RnicConfig", "SenderQp", "ReceiverQp", "NicSrReceiver",
    "GbnReceiver", "IdealReceiver", "OooTracker", "RECEIVER_CLASSES",
]
