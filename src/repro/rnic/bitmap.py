"""Out-of-order reception tracker.

Commodity RNICs that enable OOO reception keep a bitmap of PSNs received
above the expected PSN (§2.2).  :class:`OooTracker` models it with a set —
semantically identical, and O(1) amortized for the advance scan because
each PSN is inserted and removed exactly once.
"""

from __future__ import annotations


class OooTracker:
    """Set of PSNs received ahead of the expected PSN."""

    def __init__(self) -> None:
        self._received: set[int] = set()
        self.peak_size = 0

    def __len__(self) -> int:
        return len(self._received)

    def __contains__(self, psn: int) -> bool:
        return psn in self._received

    def add(self, psn: int) -> None:
        self._received.add(psn)
        if len(self._received) > self.peak_size:
            self.peak_size = len(self._received)

    def advance(self, epsn: int) -> int:
        """Consume the contiguous run starting at ``epsn``.

        Returns the new expected PSN: the smallest PSN >= ``epsn`` that has
        not been received.  Mirrors the hardware rule "the ePSN advances to
        the smallest PSN whose packet has not yet been received".
        """
        while epsn in self._received:
            self._received.discard(epsn)
            epsn += 1
        return epsn

    def smallest(self) -> int | None:
        """Smallest tracked PSN (None when empty); used by invariants."""
        if not self._received:
            return None
        return min(self._received)
