"""The RNIC device: QP management and packet dispatch.

One :class:`Rnic` per host.  It owns the uplink port to its ToR, creates
sender/receiver QPs lazily, and dispatches arriving packets:

* DATA   -> receiver QP for the packet's flow,
* ACK/NACK -> sender QP of the reverse flow (reliability feedback),
* CNP    -> sender QP's congestion control.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.cc.base import CongestionControl
from repro.net.node import Device
from repro.net.packet import FlowKey, Packet, PacketType, release_packet
from repro.net.port import Port
from repro.rnic.config import RnicConfig
from repro.rnic.qp import SenderQp
from repro.rnic.reliability import RECEIVER_CLASSES, ReceiverQp
from repro.sim.engine import Simulator
from repro.sim.rng import SimRng

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.harness.metrics import Metrics

#: Signature for per-QP congestion-control construction: receives the data
#: flow so the harness can attach rate traces to watched flows.
CcFactory = Callable[[FlowKey], CongestionControl]


class Rnic(Device):
    """A commodity RNIC attached to one ToR port."""

    def __init__(self, sim: Simulator, nic_id: int, *,
                 config: RnicConfig, metrics: "Metrics", rng: SimRng,
                 cc_factory: CcFactory, transport: str = "nic_sr") -> None:
        super().__init__(sim, f"nic{nic_id}")
        if transport not in RECEIVER_CLASSES:
            raise ValueError(f"unknown transport {transport!r}; "
                             f"expected one of {sorted(RECEIVER_CLASSES)}")
        self.nic_id = nic_id
        self.config = config
        self.metrics = metrics
        self.rng = rng
        self.cc_factory = cc_factory
        self.transport = transport
        self.uplink: Optional[Port] = None
        #: Observability recorder (repro.obs), attached by the harness
        #: before any QP exists; QPs resolve their channels from it.
        self.recorder = None
        #: MPRDMA-mode hook (set by the harness): resolves a flow to its
        #: equal-cost path count so senders can apply Eq. 3 themselves.
        self.nack_filter_paths: Optional[Callable[[FlowKey], int]] = None

        self.senders: dict[FlowKey, SenderQp] = {}
        self.receivers: dict[FlowKey, ReceiverQp] = {}
        # Shadow index keyed by the *control* direction so arriving
        # ACK/NACK/CNP dispatch skips the per-packet FlowKey reversal.
        self._senders_by_ctrl: dict[FlowKey, SenderQp] = {}

    # ------------------------------------------------------------------
    # QP management
    # ------------------------------------------------------------------
    def sender(self, flow: FlowKey) -> SenderQp:
        """Get or create the sender QP for a data flow rooted here."""
        if flow.src != self.nic_id:
            raise ValueError(f"{self.name} cannot send flow {flow}")
        qp = self.senders.get(flow)
        if qp is None:
            sport = self.rng.randint(1024, 65536)
            cc = self.cc_factory(flow)
            filter_n = None
            if self.transport == "mp_rdma" \
                    and self.nack_filter_paths is not None:
                filter_n = self.nack_filter_paths(flow)
            qp = SenderQp(self.sim, self, flow, cc, self.config,
                          self.metrics, udp_sport=sport,
                          gbn=self.transport == "gbn",
                          nack_filter_n_paths=filter_n)
            self.senders[flow] = qp
            self._senders_by_ctrl[flow.reversed()] = qp
        return qp

    def receiver(self, flow: FlowKey) -> ReceiverQp:
        """Get or create the receiver QP for a data flow ending here."""
        if flow.dst != self.nic_id:
            raise ValueError(f"{self.name} cannot receive flow {flow}")
        qp = self.receivers.get(flow)
        if qp is None:
            cls = RECEIVER_CLASSES[self.transport]
            qp = cls(self.sim, self, flow, self.config, self.metrics)
            self.receivers[flow] = qp
        return qp

    def post_send(self, dst: int, nbytes: int, *, qp: int = 0,
                  on_done: Optional[Callable[[], None]] = None) -> FlowKey:
        """Post an ``nbytes`` RDMA write toward ``dst``; returns the flow."""
        if dst == self.nic_id:
            raise ValueError("loopback flows are not modelled")
        flow = FlowKey(self.nic_id, dst, qp)
        self.sender(flow).post_send(nbytes, on_done)
        return flow

    def expect_message(self, src: int, nbytes: int, *, qp: int = 0,
                       on_done: Optional[Callable[[], None]] = None
                       ) -> FlowKey:
        """Pre-post the matching receive for a peer's :meth:`post_send`."""
        flow = FlowKey(src, self.nic_id, qp)
        self.receiver(flow).expect_message(nbytes, on_done)
        return flow

    # ------------------------------------------------------------------
    # Wire I/O
    # ------------------------------------------------------------------
    def transmit(self, packet: Packet) -> None:
        if self.uplink is None:
            raise RuntimeError(f"{self.name} is not attached to a ToR")
        self.uplink.enqueue(packet)

    def receive(self, packet: Packet, in_port: Optional[Port]) -> None:
        """Consume a delivered packet and recycle it.

        The NIC is every packet's terminal hop, so once the QP handlers
        return (they copy the header fields they need) the object goes
        back to the packet pool — see the pooling invariant in
        :mod:`repro.net.packet`.
        """
        if packet.is_data:
            # Dict fast path: after the first packet of a flow the QP
            # exists, so skip receiver()'s validation wrapper.
            rqp = self.receivers.get(packet.flow)
            if rqp is None:
                rqp = self.receiver(packet.flow)
            rqp.on_data(packet)
            release_packet(packet)
            return
        # Control packets travel the reverse flow; the shadow index is
        # keyed by that direction so no FlowKey needs to be built here.
        sender = self._senders_by_ctrl.get(packet.flow)
        if sender is not None:
            if packet.ptype is PacketType.ACK:
                sender.on_ack(packet.epsn)
            elif packet.ptype is PacketType.NACK:
                trigger = packet.psn if self.transport == "mp_rdma" else None
                sender.on_nack(packet.epsn, trigger_psn=trigger)
            elif packet.ptype is PacketType.CNP:
                sender.on_cnp()
        release_packet(packet)

    def stop(self) -> None:
        """Tear down all QP timers (end of experiment)."""
        for qp in self.senders.values():
            qp.stop()
        for rqp in self.receivers.values():
            rqp.stop()
