"""Sender-side queue pair: pacing, reliability reaction, completions.

The sender QP models what commodity RNIC hardware does with an RC QP:

* serializes posted messages into PSN-numbered MTU segments,
* paces them at the congestion-control rate (hardware rate pacing — the
  very property that breaks flowlet LB, §2.3),
* on a NACK: retransmits the expected-PSN segment (selective repeat) or
  rewinds (Go-Back-N), *and reports the NACK to congestion control*, which
  is the spurious slow-start coupling Themis defuses,
* falls back to a retransmission timeout when no NACK arrives (the case
  NACK compensation exists to avoid, §3.4).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from repro.cc.base import CongestionControl
from repro.net.packet import FlowKey, data_packet
from repro.obs.record import QP as OBS_QP
from repro.rnic.config import RnicConfig
from repro.sim.engine import SEC, Simulator
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.harness.metrics import Metrics
    from repro.rnic.nic import Rnic


@dataclass
class _Message:
    start_psn: int
    end_psn: int
    nbytes: int
    on_done: Optional[Callable[[], None]]


class SenderQp:
    """One direction of an RC queue pair, sender side."""

    def __init__(self, sim: Simulator, nic: "Rnic", flow: FlowKey,
                 cc: CongestionControl, config: RnicConfig,
                 metrics: "Metrics", *, udp_sport: int,
                 gbn: bool = False,
                 nack_filter_n_paths: Optional[int] = None) -> None:
        self.sim = sim
        self.nic = nic
        self.flow = flow
        self.cc = cc
        self.config = config
        self.metrics = metrics
        self.udp_sport = udp_sport
        self.gbn = gbn
        #: MPRDMA-style sender-side Eq. 3 filtering: when set (and the
        #: NACK carries its trigger PSN), skew-induced NACKs are ignored
        #: at the sender instead of at the ToR.
        self.nack_filter_n_paths = nack_filter_n_paths
        self.nacks_filtered = 0

        self._messages: list[_Message] = []
        self._message_starts: list[int] = []   # parallel to _messages
        self._next_completion = 0              # index into _messages
        self._pf_hint = 0                      # last payload_for message

        self.total_psns = 0        # one past the last posted PSN
        self.next_psn = 0          # next never-sent PSN
        self.snd_una = 0           # cumulative: all PSNs below are acked
        self.highest_sent = -1

        self._retx_queue: list[int] = []
        self._retx_set: set[int] = set()

        self._send_event: Optional[Event] = None
        self._next_allowed_ns = 0

        self._rto_event: Optional[Event] = None
        self._rto_current_ns = config.rto_ns
        # Lazy RTO: the deadline the armed timer must respect.  Re-arming
        # on every ACK only moves this timestamp; the already-scheduled
        # event checks it when it fires and re-schedules the remainder,
        # so the per-ACK cancel+schedule churn disappears from the
        # calendar (one timer event per RTO span instead of per packet).
        self._rto_deadline = 0

        self.stats = metrics.flow_stats(flow)

        # QP-state observability channel (repro.obs); resolved once at QP
        # creation from the NIC's recorder (None = disabled).
        recorder = getattr(nic, "recorder", None)
        self.rec = None if recorder is None else recorder.channel(OBS_QP)
        # Location label only exists when the channel is live — with the
        # category disabled no per-QP string is ever formatted.
        self._rec_loc = ("" if self.rec is None
                         else f"{nic.name}/qp{flow.qp}->nic{flow.dst}")

    # ------------------------------------------------------------------
    # Posting work
    # ------------------------------------------------------------------
    def post_send(self, nbytes: int,
                  on_done: Optional[Callable[[], None]] = None) -> None:
        """Queue a message; PSN numbering continues across messages."""
        npkts = self.config.packets_for(nbytes)
        message = _Message(self.total_psns, self.total_psns + npkts,
                           nbytes, on_done)
        self._messages.append(message)
        self._message_starts.append(message.start_psn)
        self.total_psns = message.end_psn
        self.stats.bytes_posted += nbytes
        self._arm_rto()
        self._maybe_schedule_send()

    def payload_for(self, psn: int) -> int:
        """Payload bytes carried by segment ``psn``."""
        # Hint fast path: consecutive sends almost always stay within one
        # message, so remember the last hit and skip the bisect.
        messages = self._messages
        hint = self._pf_hint
        if hint < len(messages):
            message = messages[hint]
            if message.start_psn <= psn < message.end_psn:
                if psn == message.end_psn - 1:
                    return message.nbytes - (message.end_psn - 1
                                             - message.start_psn
                                             ) * self.config.payload_bytes
                return self.config.payload_bytes
        idx = bisect.bisect_right(self._message_starts, psn) - 1
        if idx < 0 or psn >= self._messages[idx].end_psn:
            raise ValueError(f"PSN {psn} was never posted on {self.flow}")
        message = self._messages[idx]
        self._pf_hint = idx
        if psn == message.end_psn - 1:
            remainder = message.nbytes - (message.end_psn - 1
                                          - message.start_psn
                                          ) * self.config.payload_bytes
            return remainder
        return self.config.payload_bytes

    # ------------------------------------------------------------------
    # Pacing / transmission
    # ------------------------------------------------------------------
    @property
    def inflight(self) -> int:
        return self.next_psn - self.snd_una

    def _has_work(self) -> bool:
        return bool(self._retx_queue) or self.next_psn < self.total_psns

    def _window_open(self) -> bool:
        return self.inflight < self.config.max_inflight_packets

    def _maybe_schedule_send(self) -> None:
        # Inlined _has_work()/_window_open() — this runs after every
        # sent packet and every ACK.
        if self._send_event is not None:
            return
        if not self._retx_queue:
            if (self.next_psn >= self.total_psns
                    or self.next_psn - self.snd_una
                    >= self.config.max_inflight_packets):
                return  # re-kicked when an ACK frees window space
        delay = self._next_allowed_ns - self.sim.now
        self._send_event = self.sim.schedule(delay if delay > 0 else 0,
                                             self._send_one)

    def _send_one(self) -> None:
        self._send_event = None
        retx = self._retx_queue
        if retx:
            psn = retx.pop(0)
            self._retx_set.discard(psn)
            if psn < self.snd_una:  # stale entry, already acked
                self._maybe_schedule_send()
                return
        elif (self.next_psn < self.total_psns
              and self.next_psn - self.snd_una
              < self.config.max_inflight_packets):
            psn = self.next_psn
            self.next_psn = psn + 1
        else:
            return
        highest = self.highest_sent
        is_retx = psn <= highest
        if psn > highest:
            self.highest_sent = psn
        sim = self.sim
        packet = data_packet(self.flow, psn, self.payload_for(psn),
                             udp_sport=self.udp_sport, is_retx=is_retx,
                             sent_at=sim.now)
        self.metrics.on_data_sent(self.flow, packet)
        self.nic.transmit(packet)
        cc = self.cc
        wire = packet.wire_bytes
        cc.on_bytes_sent(wire)
        gap_ns = int(wire * 8 * SEC / cc.rate_bps)
        base = self._next_allowed_ns
        now = sim.now
        if now > base:
            base = now
        self._next_allowed_ns = base + (gap_ns if gap_ns > 1 else 1)
        self._maybe_schedule_send()

    # ------------------------------------------------------------------
    # Reliability feedback
    # ------------------------------------------------------------------
    def on_ack(self, epsn: int) -> None:
        self._advance_una(epsn)
        self.cc.on_ack()
        self._maybe_schedule_send()

    def on_nack(self, epsn: int,
                trigger_psn: Optional[int] = None) -> None:
        """NACK: cumulative progress below epsn + retransmit request."""
        self.stats.nacks_received += 1
        self._advance_una(epsn)
        if (self.nack_filter_n_paths is not None
                and trigger_psn is not None
                and trigger_psn % self.nack_filter_n_paths
                != epsn % self.nack_filter_n_paths):
            # Eq. 3 at the sender: different path => skew, not loss.
            self.nacks_filtered += 1
            self._maybe_schedule_send()
            return
        if self.rec is not None:
            self.rec.qp_state(self.sim.now, self._rec_loc, self.flow,
                              "nack_rewind" if self.gbn else "nack_retx",
                              epsn=epsn, inflight=self.inflight)
        if self.gbn:
            # Go-Back-N: rewind and resend everything from the expected PSN.
            if epsn < self.next_psn:
                self.next_psn = epsn
                self._retx_queue.clear()
                self._retx_set.clear()
        else:
            self._queue_retx(epsn)
        self.cc.on_nack()
        self._maybe_schedule_send()

    def on_cnp(self) -> None:
        self.stats.cnps_received += 1
        self.cc.on_cnp()

    def force_retransmit(self, psn: int) -> None:
        """Oracle loss notification (Ideal transport): resend one PSN
        without touching congestion control."""
        self._queue_retx(psn)
        self._maybe_schedule_send()

    def _queue_retx(self, psn: int) -> None:
        if psn < self.snd_una or psn >= self.total_psns:
            return
        if psn in self._retx_set:
            return
        self._retx_set.add(psn)
        self._retx_queue.append(psn)

    def _advance_una(self, epsn: int) -> None:
        if epsn <= self.snd_una:
            return
        self.snd_una = min(epsn, self.total_psns)
        while self._retx_queue and self._retx_queue[0] < self.snd_una:
            self._retx_set.discard(self._retx_queue.pop(0))
        self._fire_completions()
        self._arm_rto(reset_backoff=True)

    def _fire_completions(self) -> None:
        while self._next_completion < len(self._messages):
            message = self._messages[self._next_completion]
            if message.end_psn > self.snd_una:
                break
            self._next_completion += 1
            self.stats.sender_done_ns = self.sim.now
            if self.rec is not None:
                self.rec.qp_state(self.sim.now, self._rec_loc, self.flow,
                                  "message_complete",
                                  end_psn=message.end_psn)
            if message.on_done is not None:
                message.on_done()

    @property
    def complete(self) -> bool:
        return self.total_psns > 0 and self.snd_una >= self.total_psns

    # ------------------------------------------------------------------
    # Retransmission timeout
    # ------------------------------------------------------------------
    def _arm_rto(self, reset_backoff: bool = False) -> None:
        if reset_backoff:
            self._rto_current_ns = self.config.rto_ns
        if self.snd_una >= self.total_psns:
            # Flow complete: the pending timer (if any) will see the
            # completed state when it fires and do nothing.
            self._rto_deadline = 0
            return
        self._rto_deadline = self.sim.now + self._rto_current_ns
        if self._rto_event is None:
            self._rto_event = self.sim.schedule(self._rto_current_ns,
                                                self._rto_fire)

    def _rto_fire(self) -> None:
        self._rto_event = None
        if self.snd_una >= self.total_psns:
            return
        remaining = self._rto_deadline - self.sim.now
        if remaining > 0:
            # ACKs pushed the deadline out while this event was in
            # flight; sleep the remainder instead of having paid a
            # cancel+schedule per ACK.
            self._rto_event = self.sim.schedule(remaining, self._rto_fire)
            return
        self.stats.timeouts += 1
        if self.rec is not None:
            self.rec.qp_state(self.sim.now, self._rec_loc, self.flow,
                              "rto", snd_una=self.snd_una,
                              rto_ns=self._rto_current_ns)
        if self.gbn:
            self.next_psn = self.snd_una
            self._retx_queue.clear()
            self._retx_set.clear()
        else:
            self._queue_retx(self.snd_una)
        self.cc.on_timeout()
        self._rto_current_ns = min(
            int(self._rto_current_ns * self.config.rto_backoff),
            self.config.rto_max_ns)
        self._rto_deadline = self.sim.now + self._rto_current_ns
        self._rto_event = self.sim.schedule(self._rto_current_ns,
                                            self._rto_fire)
        self._maybe_schedule_send()

    def stop(self) -> None:
        """Tear down timers (end of experiment)."""
        if self._rto_event is not None:
            self._rto_event.cancel()
            self._rto_event = None
        if self._send_event is not None:
            self._send_event.cancel()
            self._send_event = None
        self.cc.stop()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SenderQp({self.flow}, una={self.snd_una}, "
                f"next={self.next_psn}/{self.total_psns})")
