"""Receiver-side reliable transports.

Three generations are modelled (§1, §2.2):

* :class:`NicSrReceiver` — current-generation commodity RNICs (CX-6/7,
  BF3): out-of-order reception into a bitmap + selective repeat.  The
  crucial, faithful quirk: *any* packet with PSN > ePSN is blindly treated
  as evidence of loss and triggers a NACK carrying only the ePSN, at most
  one NACK per ePSN value.
* :class:`GbnReceiver` — previous generation (CX-4/5): OOO packets are
  dropped at the receiver and the sender goes back to the expected PSN.
* :class:`IdealReceiver` — oracle baseline for Fig. 1d: accepts OOO and
  never NACKs; real losses are repaired by an oracle notification straight
  to the sender (wired up by the harness), so it isolates the cost of
  spurious retransmissions and slow starts.

All receivers share cumulative-ACK emission with coalescing, per-QP CNP
generation for DCQCN, and message-completion bookkeeping.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable, Optional

from repro.net.packet import FlowKey, Packet, PacketType, _make
from repro.obs.record import NACK as OBS_NACK
from repro.rnic.bitmap import OooTracker
from repro.rnic.config import RnicConfig
from repro.sim.engine import Simulator
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.harness.metrics import Metrics
    from repro.rnic.nic import Rnic


class ReceiverQp:
    """Common receiver-side state: ACK/CNP emission and completions."""

    def __init__(self, sim: Simulator, nic: "Rnic", flow: FlowKey,
                 config: RnicConfig, metrics: "Metrics") -> None:
        self.sim = sim
        self.nic = nic
        self.flow = flow              # data direction (sender -> us)
        # Control direction, computed once: every ACK/NACK/CNP carries
        # this key, so emission skips the per-packet reversal.
        self._ctrl_flow = flow.reversed()
        self.config = config
        self.metrics = metrics
        self.stats = metrics.flow_stats(flow)

        self.epsn = 0
        self.nack_sent_for_epsn = False

        # NACK observability channel (repro.obs); resolved once at QP
        # creation from the NIC's recorder (None = disabled).
        recorder = getattr(nic, "recorder", None)
        self.rec_nack = None if recorder is None \
            else recorder.channel(OBS_NACK)

        self._expected: deque[tuple[int, Optional[Callable[[], None]]]] \
            = deque()                 # (end_psn, callback)
        self._posted_psns = 0

        self._unacked_advance = 0
        self._ack_event: Optional[Event] = None
        self._last_cnp_ns: Optional[int] = None

    # ------------------------------------------------------------------
    # Receive-side completions
    # ------------------------------------------------------------------
    def expect_message(self, nbytes: int,
                       on_done: Optional[Callable[[], None]] = None
                       ) -> None:
        """Pre-post a receive: fire ``on_done`` once the message's PSN
        range is fully (in-order-completable) received."""
        npkts = self.config.packets_for(nbytes)
        self._posted_psns += npkts
        self._expected.append((self._posted_psns, on_done))
        self._check_completions()

    def _check_completions(self) -> None:
        while self._expected and self._expected[0][0] <= self.epsn:
            _, on_done = self._expected.popleft()
            self.stats.receiver_done_ns = self.sim.now
            if on_done is not None:
                on_done()

    # ------------------------------------------------------------------
    # Packet entry point
    # ------------------------------------------------------------------
    def on_data(self, packet: Packet) -> None:
        if packet.ecn_marked:
            self._maybe_send_cnp()
        self._handle_data(packet)

    def _handle_data(self, packet: Packet) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # ACK emission (coalesced cumulative ACKs)
    # ------------------------------------------------------------------
    def _note_advance(self, advanced_by: int) -> None:
        self._unacked_advance += advanced_by
        if self._unacked_advance >= self.config.ack_coalesce_packets:
            self._send_ack()
        else:
            self._schedule_delayed_ack()

    def _schedule_delayed_ack(self) -> None:
        if self._ack_event is None:
            self._ack_event = self.sim.schedule(self.config.delayed_ack_ns,
                                                self._delayed_ack_fire)

    def _delayed_ack_fire(self) -> None:
        self._ack_event = None
        self._send_ack()

    def _send_ack(self) -> None:
        if self._ack_event is not None:
            self._ack_event.cancel()
            self._ack_event = None
        self._unacked_advance = 0
        self.metrics.on_ack_generated(self.flow, self.epsn)
        # _make with the precomputed control flow == ack_packet(flow, ...)
        # minus the per-ACK FlowKey reversal.
        self.nic.transmit(_make(PacketType.ACK, self._ctrl_flow, 0,
                                self.epsn))

    def _send_nack(self, trigger_psn: int | None = None, *,
                   observed_psn: int | None = None) -> None:
        """Emit a NACK for the current ePSN.

        Commodity RNICs do not include the trigger PSN (§2.2); the
        MPRDMA-style transport overrides ``trigger_psn`` to stamp it
        into the packet's ``psn`` field.  ``observed_psn`` is telemetry
        only — the OOO arrival that caused this NACK — and never touches
        the wire format.
        """
        self.metrics.on_nack_generated(self.flow)
        if self.rec_nack is not None:
            self.rec_nack.nack_emit(
                self.sim.now, self.nic.name, self.flow, self.epsn,
                trigger_psn if trigger_psn is not None else observed_psn)
        nack = _make(PacketType.NACK, self._ctrl_flow, 0, self.epsn)
        if trigger_psn is not None:
            nack.psn = trigger_psn
        self.nic.transmit(nack)

    def _maybe_send_cnp(self) -> None:
        now = self.sim.now
        if (self._last_cnp_ns is not None
                and now - self._last_cnp_ns < self.config.cnp_interval_ns):
            return
        self._last_cnp_ns = now
        self.metrics.on_cnp_generated(self.flow)
        self.nic.transmit(_make(PacketType.CNP, self._ctrl_flow))

    def stop(self) -> None:
        if self._ack_event is not None:
            self._ack_event.cancel()
            self._ack_event = None


class NicSrReceiver(ReceiverQp):
    """Selective-repeat receiver of current commodity RNICs (§2.2)."""

    def __init__(self, sim: Simulator, nic: "Rnic", flow: FlowKey,
                 config: RnicConfig, metrics: "Metrics") -> None:
        super().__init__(sim, nic, flow, config, metrics)
        self.tracker = OooTracker()

    def _handle_data(self, packet: Packet) -> None:
        psn = packet.psn
        if psn < self.epsn or psn in self.tracker:
            # Duplicate: the payload was already received — every one of
            # these corresponds to a wasted (spurious or repeated)
            # retransmission arriving.
            self.stats.receiver_duplicates += 1
            self._schedule_delayed_ack()
            return
        if psn == self.epsn:
            self.metrics.on_delivered(self.flow, packet)
            old = self.epsn
            self.epsn = self.tracker.advance(psn + 1)
            self.nack_sent_for_epsn = False
            self._note_advance(self.epsn - old)
            self._check_completions()
            return
        # PSN > ePSN: out-of-order arrival.  The commodity RNIC cannot
        # tell multi-path skew from loss, assumes loss, and NACKs the
        # expected PSN — but only once per ePSN value.
        self.stats.receiver_ooo += 1
        self.metrics.on_delivered(self.flow, packet)
        self.tracker.add(psn)
        if not self.nack_sent_for_epsn:
            self.nack_sent_for_epsn = True
            self._send_nack(observed_psn=psn)


class GbnReceiver(ReceiverQp):
    """Go-Back-N receiver of previous-generation RNICs (CX-4/5)."""

    def __init__(self, sim: Simulator, nic: "Rnic", flow: FlowKey,
                 config: RnicConfig, metrics: "Metrics") -> None:
        super().__init__(sim, nic, flow, config, metrics)
        self.ooo_dropped = 0

    def _handle_data(self, packet: Packet) -> None:
        psn = packet.psn
        if psn < self.epsn:
            self.stats.receiver_duplicates += 1
            self._schedule_delayed_ack()
            return
        if psn == self.epsn:
            self.metrics.on_delivered(self.flow, packet)
            self.epsn += 1
            self.nack_sent_for_epsn = False
            self._note_advance(1)
            self._check_completions()
            return
        # OOO: dropped outright by this NIC generation.
        self.stats.receiver_ooo += 1
        self.ooo_dropped += 1
        if not self.nack_sent_for_epsn:
            self.nack_sent_for_epsn = True
            self._send_nack(observed_psn=psn)


class IdealReceiver(ReceiverQp):
    """Oracle transport: OOO-tolerant, loss repaired out of band."""

    def __init__(self, sim: Simulator, nic: "Rnic", flow: FlowKey,
                 config: RnicConfig, metrics: "Metrics") -> None:
        super().__init__(sim, nic, flow, config, metrics)
        self.tracker = OooTracker()

    def _handle_data(self, packet: Packet) -> None:
        psn = packet.psn
        if psn < self.epsn or psn in self.tracker:
            self.stats.receiver_duplicates += 1
            self._schedule_delayed_ack()
            return
        self.metrics.on_delivered(self.flow, packet)
        if psn == self.epsn:
            old = self.epsn
            self.epsn = self.tracker.advance(psn + 1)
            self._note_advance(self.epsn - old)
            self._check_completions()
        else:
            self.stats.receiver_ooo += 1
            self.tracker.add(psn)


class MpRdmaReceiver(NicSrReceiver):
    """MPRDMA-style transport: NACKs carry the trigger PSN (§2.3).

    Multi-path RDMA transport proposals fix the ambiguity at the NIC:
    the NACK tells the sender *which* out-of-order packet triggered it,
    so the sender (which knows the deterministic spraying policy) can
    apply Eq. 3 itself and ignore skew-induced NACKs — no switch help
    needed.  The paper's point is that no off-the-shelf RNIC implements
    this; it lives here as the what-if comparator.
    """

    def _handle_data(self, packet: Packet) -> None:
        psn = packet.psn
        if psn < self.epsn or psn in self.tracker:
            self.stats.receiver_duplicates += 1
            self._schedule_delayed_ack()
            return
        if psn == self.epsn:
            self.metrics.on_delivered(self.flow, packet)
            old = self.epsn
            self.epsn = self.tracker.advance(psn + 1)
            self.nack_sent_for_epsn = False
            self._note_advance(self.epsn - old)
            self._check_completions()
            return
        self.stats.receiver_ooo += 1
        self.metrics.on_delivered(self.flow, packet)
        self.tracker.add(psn)
        if not self.nack_sent_for_epsn:
            self.nack_sent_for_epsn = True
            self._send_nack(trigger_psn=psn)


RECEIVER_CLASSES = {
    "nic_sr": NicSrReceiver,
    "gbn": GbnReceiver,
    "ideal": IdealReceiver,
    "mp_rdma": MpRdmaReceiver,
}
