"""RNIC behavioural parameters shared by sender and receiver QPs."""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.packet import DATA_HEADER_BYTES, DEFAULT_MTU
from repro.sim.engine import MS, US


@dataclass(frozen=True)
class RnicConfig:
    """Knobs of the commodity-RNIC model.

    ``mtu_bytes`` is the wire MTU (Table 1 uses 1500 B); the data payload
    per packet is ``mtu_bytes - DATA_HEADER_BYTES``.  ``max_inflight_packets``
    bounds unacknowledged packets per QP — commodity RNICs size this from
    their retransmission-tracking resources; congestion control, not this
    window, is the normal rate limiter.
    """

    mtu_bytes: int = DEFAULT_MTU
    max_inflight_packets: int = 1024
    ack_coalesce_packets: int = 4
    delayed_ack_ns: int = 2 * US
    cnp_interval_ns: int = 50 * US
    rto_ns: int = 400 * US
    rto_backoff: float = 2.0
    rto_max_ns: int = 4 * MS

    def __post_init__(self) -> None:
        if self.mtu_bytes <= DATA_HEADER_BYTES:
            raise ValueError("MTU smaller than headers")
        if self.max_inflight_packets < 1:
            raise ValueError("window must be >= 1 packet")
        if self.ack_coalesce_packets < 1:
            raise ValueError("ack coalescing must be >= 1")

    @property
    def payload_bytes(self) -> int:
        return self.mtu_bytes - DATA_HEADER_BYTES

    def packets_for(self, nbytes: int) -> int:
        """Number of MTU segments a message of ``nbytes`` occupies."""
        if nbytes <= 0:
            raise ValueError("message must be at least 1 byte")
        return -(-nbytes // self.payload_bytes)
