"""Synthetic training-job workload (§2.1's traffic characterization).

AI training traffic is bursty and synchronized: every iteration, all
workers compute (network idle), then *simultaneously* enter a
communication phase (a collective), then compute again.
:class:`TrainingJob` drives that loop over the simulated fabric so
experiments can measure per-iteration communication time — including the
warm-up effects (DCQCN state, Themis tables) that single-shot collective
runs miss.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Type

from repro.collectives.group import Collective

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.harness.network import Network


class TrainingJob:
    """Iterated compute/communicate loop across multiple groups."""

    def __init__(self, network: "Network",
                 groups: list[list[int]], *,
                 collective_cls: Type[Collective],
                 bytes_per_iteration: int,
                 iterations: int,
                 compute_time_ns: int) -> None:
        if iterations < 1:
            raise ValueError("need at least one iteration")
        if compute_time_ns < 0:
            raise ValueError("compute time cannot be negative")
        self.network = network
        self.groups = groups
        self.collective_cls = collective_cls
        self.bytes_per_iteration = bytes_per_iteration
        self.iterations = iterations
        self.compute_time_ns = compute_time_ns

        self.iteration_times_ns: list[int] = []
        self._current: list[Collective] = []
        self._pending_groups = 0
        self._iteration = 0
        self._iteration_start_ns: Optional[int] = None
        self.done = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Kick off iteration 0 (after one compute phase)."""
        self.network.sim.schedule(self.compute_time_ns,
                                  self._begin_iteration)

    def _begin_iteration(self) -> None:
        self._iteration_start_ns = self.network.now_ns
        self._pending_groups = len(self.groups)
        self._current = []
        for members in self.groups:
            coll = self.collective_cls(self.network, members,
                                       self.bytes_per_iteration)
            self._current.append(coll)
            self._watch(coll)
            coll.start()

    def _watch(self, coll: Collective) -> None:
        # Poll-free completion: wrap the group's finish hook.
        original = coll._node_finished

        def wrapped() -> None:
            original()
            if coll.complete:
                self._group_done()

        coll._node_finished = wrapped

    def _group_done(self) -> None:
        self._pending_groups -= 1
        if self._pending_groups:
            return
        assert self._iteration_start_ns is not None
        self.iteration_times_ns.append(
            self.network.now_ns - self._iteration_start_ns)
        self._iteration += 1
        if self._iteration >= self.iterations:
            self.done = True
            return
        self.network.sim.schedule(self.compute_time_ns,
                                  self._begin_iteration)

    # ------------------------------------------------------------------
    @property
    def mean_iteration_ns(self) -> float:
        if not self.iteration_times_ns:
            return 0.0
        return sum(self.iteration_times_ns) / len(self.iteration_times_ns)

    @property
    def max_iteration_ns(self) -> int:
        return max(self.iteration_times_ns) if self.iteration_times_ns \
            else 0
