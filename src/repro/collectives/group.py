"""Communication groups and collective base machinery.

AI training traffic (§2.1) is a handful of large synchronized flows; the
paper's §5 setup partitions 256 NICs into 16 groups of 16 — one NIC per
rack per group — and runs the same collective in every group
simultaneously.  :func:`cross_rack_groups` reproduces that assignment.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.harness.network import Network


def cross_rack_groups(num_tors: int, nics_per_tor: int
                      ) -> list[list[int]]:
    """§5 group layout: group ``g`` holds NIC ``g`` of every rack.

    Assumes the leaf-spine NIC numbering (``tor * nics_per_tor + slot``).
    Every intra-group hop is therefore cross-rack, which is what makes the
    collectives exercise the multi-path core.
    """
    return [[tor * nics_per_tor + g for tor in range(num_tors)]
            for g in range(nics_per_tor)]


def interleaved_ring_groups(num_nodes: int, num_groups: int
                            ) -> list[list[int]]:
    """Fig. 1a layout: group ``g`` = nodes with ``id % num_groups == g``
    (e.g. {0,2,4,6} and {1,3,5,7})."""
    if num_nodes % num_groups:
        raise ValueError("groups must divide the node count")
    return [list(range(g, num_nodes, num_groups)) for g in range(num_groups)]


class Collective:
    """Base class: tracks per-node completion and the group finish time."""

    name = "collective"

    def __init__(self, network: "Network", members: list[int],
                 total_bytes: int, *, qp: int = 0) -> None:
        if len(set(members)) != len(members) or len(members) < 2:
            raise ValueError("need >= 2 distinct members")
        if total_bytes < len(members):
            raise ValueError("message too small to chunk across the group")
        self.network = network
        self.members = list(members)
        self.total_bytes = int(total_bytes)
        self.qp = qp
        self.start_ns: Optional[int] = None
        self.done_ns: Optional[int] = None
        self._nodes_finished = 0

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return len(self.members)

    @property
    def complete(self) -> bool:
        return self.done_ns is not None

    def completion_time_ns(self) -> int:
        if self.start_ns is None or self.done_ns is None:
            raise RuntimeError(f"{self.name} has not completed")
        return self.done_ns - self.start_ns

    def start(self) -> None:
        if self.start_ns is not None:
            raise RuntimeError("collective already started")
        self.start_ns = self.network.now_ns
        self._launch()

    def _launch(self) -> None:
        raise NotImplementedError

    def _node_finished(self) -> None:
        self._nodes_finished += 1
        if self._nodes_finished == self.size:
            self.done_ns = self.network.now_ns

    def chunk_bytes(self) -> int:
        """Per-step chunk: the buffer split across the group."""
        return -(-self.total_bytes // self.size)
