"""Halving-doubling (recursive) Allreduce.

The other major allreduce algorithm used by collective libraries: a
reduce-scatter phase of log2(n) pairwise exchanges over halving message
sizes (partners at distance n/2, n/4, ..., 1), then an allgather phase
mirroring it with doubling sizes.  Compared with the ring algorithm it
has fewer, larger steps and a different (butterfly) communication graph,
so it exercises distinct ECMP collision patterns — useful as a workload
beyond the paper's two.

Each node advances to step ``s+1`` only after both its send and its
receive of step ``s`` completed (a true pairwise exchange).  Each
(node, step) pair uses its own QP since partners change every step.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.collectives.group import Collective

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.harness.network import Network


class HalvingDoublingAllreduce(Collective):
    """Butterfly allreduce; group size must be a power of two."""

    name = "hd_allreduce"

    def __init__(self, network: "Network", members: list[int],
                 total_bytes: int, *, qp: int = 0) -> None:
        super().__init__(network, members, total_bytes, qp=qp)
        n = self.size
        if n & (n - 1):
            raise ValueError("halving-doubling needs a power-of-two group")
        self._log_n = n.bit_length() - 1
        #: per step: (partner distance, message bytes)
        self._schedule: list[tuple[int, int]] = []
        size = total_bytes
        for _ in range(self._log_n):              # reduce-scatter phase
            size = -(-size // 2)
            self._schedule.append((0, size))      # distance filled below
        for step in range(self._log_n):           # allgather phase
            self._schedule.append((0, self._schedule[
                self._log_n - 1 - step][1]))
        distances = ([n >> (k + 1) for k in range(self._log_n)]
                     + [1 << k for k in range(self._log_n)])
        self._schedule = [(d, s) for d, (_, s)
                          in zip(distances, self._schedule)]
        self._step = [0] * n
        self._send_done = [0] * n
        self._recv_done = [0] * n

    @property
    def num_steps(self) -> int:
        return 2 * self._log_n

    def partner(self, position: int, step: int) -> int:
        distance, _ = self._schedule[step]
        return position ^ distance

    # ------------------------------------------------------------------
    def _launch(self) -> None:
        for position in range(self.size):
            self._post_step(position)

    def _post_step(self, position: int) -> None:
        step = self._step[position]
        if step >= self.num_steps:
            return
        node = self.members[position]
        peer = self.members[self.partner(position, step)]
        _, nbytes = self._schedule[step]
        # One QP per (pair direction, step): partners change every step.
        qp = self.qp * self.num_steps + step
        self.network.nics[node].post_send(
            peer, nbytes, qp=qp,
            on_done=self._make_cb(position, is_send=True))
        self.network.nics[node].expect_message(
            peer, nbytes, qp=qp,
            on_done=self._make_cb(position, is_send=False))

    def _make_cb(self, position: int, is_send: bool):
        def callback() -> None:
            if is_send:
                self._send_done[position] += 1
            else:
                self._recv_done[position] += 1
            done = min(self._send_done[position],
                       self._recv_done[position])
            if done > self._step[position]:
                self._step[position] = done
                if done == self.num_steps:
                    self._node_finished()
                else:
                    self._post_step(position)
        return callback
