"""Alltoall collective.

Every node exchanges ``total/n`` bytes with every other node, all pairs in
flight simultaneously — the bursty, low-entropy pattern (§2.1) that makes
ECMP collisions catastrophic and gives packet-level LB its headroom.
Each (src, dst) pair gets its own QP, matching the higher QP counts the
paper reports for Alltoall (§4 cites ~10 QPs/GPU vs 4 for Allreduce).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.collectives.group import Collective

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.harness.network import Network


class AllToAll(Collective):
    """Full-mesh exchange within a group."""

    name = "alltoall"

    def __init__(self, network: "Network", members: list[int],
                 total_bytes: int, *, qp: int = 0) -> None:
        super().__init__(network, members, total_bytes, qp=qp)
        self._pending_recvs = [self.size - 1] * self.size

    def _launch(self) -> None:
        chunk = self.chunk_bytes()
        for position, node in enumerate(self.members):
            for peer_position, peer in enumerate(self.members):
                if peer == node:
                    continue
                self.network.nics[node].expect_message(
                    peer, chunk, qp=self.qp,
                    on_done=self._make_recv_cb(position))
                self.network.nics[node].post_send(peer, chunk, qp=self.qp)

    def _make_recv_cb(self, position: int):
        def callback() -> None:
            self._pending_recvs[position] -= 1
            if self._pending_recvs[position] == 0:
                self._node_finished()
        return callback
