"""Ring-based collectives (Allreduce, AllGather, ReduceScatter).

All three follow the same dataflow: at every step each node sends one
chunk to its right neighbour and receives one from its left neighbour.
The per-node dependency is the real algorithmic one — a node may enter
step ``s+1`` only after (a) its step-``s`` send completed (the data left
and was acknowledged) and (b) its step-``s`` receive completed (it now
holds the data to reduce/forward).  Receives for all steps are pre-posted,
matching RDMA receive semantics; sends are posted as dependencies clear.

Each (node -> right neighbour) pair reuses a single QP across all steps,
so PSN numbering is continuous — exactly the state Themis-D's per-QP ring
queue is sized for.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.collectives.group import Collective

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.harness.network import Network


class RingCollective(Collective):
    """Shared engine; subclasses fix the number of ring steps."""

    name = "ring"

    def __init__(self, network: "Network", members: list[int],
                 total_bytes: int, *, num_steps: int, qp: int = 0) -> None:
        super().__init__(network, members, total_bytes, qp=qp)
        if num_steps < 1:
            raise ValueError("need at least one ring step")
        self.num_steps = num_steps
        self._send_done = [0] * self.size   # per node: steps fully sent
        self._recv_done = [0] * self.size   # per node: steps fully received
        self._next_step = [0] * self.size   # per node: next step to post

    # ------------------------------------------------------------------
    def _right(self, position: int) -> int:
        return self.members[(position + 1) % self.size]

    def _launch(self) -> None:
        for position in range(self.size):
            node = self.members[position]
            # Pre-post every step's receive (from the left neighbour).
            for step in range(self.num_steps):
                self.network.nics[node].expect_message(
                    self.members[(position - 1) % self.size],
                    self.chunk_bytes(), qp=self.qp,
                    on_done=self._make_recv_cb(position))
            self._post_step(position)

    def _post_step(self, position: int) -> None:
        step = self._next_step[position]
        if step >= self.num_steps:
            return
        self._next_step[position] += 1
        node = self.members[position]
        self.network.nics[node].post_send(
            self._right(position), self.chunk_bytes(), qp=self.qp,
            on_done=self._make_send_cb(position))

    # Callbacks are built per position; completions arrive strictly in
    # step order because both sides process one QP's PSN space in order.
    def _make_send_cb(self, position: int):
        def callback() -> None:
            self._send_done[position] += 1
            self._on_progress(position)
        return callback

    def _make_recv_cb(self, position: int):
        def callback() -> None:
            self._recv_done[position] += 1
            self._on_progress(position)
        return callback

    def _on_progress(self, position: int) -> None:
        done = min(self._send_done[position], self._recv_done[position])
        if done >= self.num_steps:
            if self._next_step[position] == self.num_steps:
                self._next_step[position] += 1  # guard against double fire
                self._node_finished()
            return
        if done >= self._next_step[position]:
            self._post_step(position)


class RingAllreduce(RingCollective):
    """Reduce-scatter + allgather: 2*(n-1) steps of ``total/n`` chunks."""

    name = "allreduce"

    def __init__(self, network: "Network", members: list[int],
                 total_bytes: int, *, qp: int = 0) -> None:
        super().__init__(network, members, total_bytes,
                         num_steps=2 * (len(members) - 1), qp=qp)


class RingAllgather(RingCollective):
    """n-1 ring steps; every node ends with all chunks."""

    name = "allgather"

    def __init__(self, network: "Network", members: list[int],
                 total_bytes: int, *, qp: int = 0) -> None:
        super().__init__(network, members, total_bytes,
                         num_steps=len(members) - 1, qp=qp)


class RingReduceScatter(RingCollective):
    """n-1 ring steps; every node ends with one reduced chunk."""

    name = "reducescatter"

    def __init__(self, network: "Network", members: list[int],
                 total_bytes: int, *, qp: int = 0) -> None:
        super().__init__(network, members, total_bytes,
                         num_steps=len(members) - 1, qp=qp)
