"""Collective communication workloads (ring collectives, alltoall)."""

from repro.collectives.alltoall import AllToAll
from repro.collectives.group import (Collective, cross_rack_groups,
                                     interleaved_ring_groups)
from repro.collectives.halving_doubling import HalvingDoublingAllreduce
from repro.collectives.ring import (RingAllgather, RingAllreduce,
                                    RingCollective, RingReduceScatter)
from repro.collectives.training import TrainingJob

COLLECTIVE_CLASSES = {
    "allreduce": RingAllreduce,
    "allgather": RingAllgather,
    "reducescatter": RingReduceScatter,
    "alltoall": AllToAll,
    "hd_allreduce": HalvingDoublingAllreduce,
}

__all__ = [
    "Collective", "RingCollective", "RingAllreduce", "RingAllgather",
    "RingReduceScatter", "AllToAll", "HalvingDoublingAllreduce",
    "TrainingJob", "COLLECTIVE_CLASSES",
    "cross_rack_groups", "interleaved_ring_groups",
]
