"""ConWeave-style baseline: flow rerouting + in-network reordering."""

from repro.conweave.config import ConweaveConfig
from repro.conweave.dest import InOrderDest
from repro.conweave.source import RerouteSource

__all__ = ["ConweaveConfig", "InOrderDest", "RerouteSource"]
