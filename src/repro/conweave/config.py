"""Configuration for the ConWeave-style in-network reordering baseline."""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.engine import US


@dataclass(frozen=True)
class ConweaveConfig:
    """Knobs of the §2.3 related-work baseline.

    ``reorder_timeout_ns`` bounds how long a buffered out-of-order packet
    may wait for its predecessors before the buffer gives up and flushes
    in PSN order (ConWeave's ordering timeout).  ``buffer_packets`` is
    the per-QP reordering capacity — the scarce ToR resource the paper
    argues makes packet-level LB infeasible for this approach.
    ``flip_interval_ns`` is how often the source ToR reroutes a flow
    (ConWeave reroutes on congestion; a periodic flip models the steady
    rerouting rate while keeping at most two paths live at once).
    """

    reorder_timeout_ns: int = 100 * US
    buffer_packets: int = 64
    flip_interval_ns: int = 100 * US

    def __post_init__(self) -> None:
        if self.reorder_timeout_ns <= 0:
            raise ValueError("reorder timeout must be positive")
        if self.buffer_packets < 1:
            raise ValueError("need at least one buffer slot")
        if self.flip_interval_ns <= 0:
            raise ValueError("flip interval must be positive")
