"""In-network reordering at the destination ToR (ConWeave-style).

The destination ToR holds out-of-order data packets in a per-QP reorder
buffer and releases them to the NIC strictly in PSN order, so the
commodity RNIC never sees OOO arrivals at all.  Two escape hatches make
it a real switch mechanism rather than an oracle:

* **ordering timeout** — a buffered packet whose predecessors have not
  shown up within ``reorder_timeout_ns`` forces a flush (the missing
  packet is presumed lost; holding forever would deadlock),
* **capacity** — at most ``buffer_packets`` slots per QP; overflow also
  forces a flush.

Every flush delivers the buffered packets in ascending PSN order and
surrenders ordering for the skipped gap — the NIC then NACKs as usual.
The §2.3 argument is quantitative: with ConWeave's *two-path* rerouting
the buffer stays small, but under packet-level spraying the required
buffering explodes (see ``benchmarks/test_conweave_baseline.py``).
"""

from __future__ import annotations

from typing import Optional

from repro.conweave.config import ConweaveConfig
from repro.net.packet import FlowKey, Packet, PacketType
from repro.net.port import Port
from repro.sim.events import Event
from repro.switch.switch import Middleware, Switch


class _QpReorderState:
    __slots__ = ("expected", "buffer", "timer", "deadline")

    def __init__(self) -> None:
        self.expected = 0
        self.buffer: dict[int, Packet] = {}
        self.timer: Optional[Event] = None
        self.deadline = 0


class InOrderDest(Middleware):
    """Per-QP reorder buffer in front of the last hop."""

    def __init__(self, config: ConweaveConfig) -> None:
        self.config = config
        self._state: dict[FlowKey, _QpReorderState] = {}
        self._switch: Optional[Switch] = None
        # Stats
        self.buffered_packets = 0
        self.peak_buffer = 0
        self.timeout_flushes = 0
        self.overflow_flushes = 0
        self.delivered_in_order = 0

    # ------------------------------------------------------------------
    def on_packet(self, switch: Switch, packet: Packet,
                  in_port: Optional[Port]) -> bool:
        if packet.ptype is not PacketType.DATA:
            return True
        if packet.flow.dst not in switch.down_nics \
                or packet.flow.src in switch.down_nics:
            return True
        self._switch = switch
        state = self._state.get(packet.flow)
        if state is None:
            state = _QpReorderState()
            self._state[packet.flow] = state

        psn = packet.psn
        if psn < state.expected:
            return True  # retransmitted duplicate: pass through
        if psn == state.expected:
            state.expected += 1
            self.delivered_in_order += 1
            # Forward this packet *before* draining the run it unblocks,
            # then consume it (the pipeline must not forward it twice).
            switch.forward(packet)
            self._drain(switch, packet.flow, state)
            return False
        # Out of order: hold it.
        if psn not in state.buffer:
            state.buffer[psn] = packet
            self.buffered_packets += 1
            if len(state.buffer) > self.peak_buffer:
                self.peak_buffer = len(state.buffer)
        if len(state.buffer) >= self.config.buffer_packets:
            self.overflow_flushes += 1
            self._flush(switch, packet.flow, state)
        else:
            self._arm_timer(switch, packet.flow, state)
        return False

    # ------------------------------------------------------------------
    def _drain(self, switch: Switch, flow: FlowKey,
               state: _QpReorderState) -> None:
        """Release the contiguous run now unblocked by an in-order
        arrival (the arrival itself is forwarded by the caller)."""
        while state.expected in state.buffer:
            held = state.buffer.pop(state.expected)
            state.expected += 1
            self.delivered_in_order += 1
            switch.forward(held)
        self._rearm_or_cancel(switch, flow, state)

    def _flush(self, switch: Switch, flow: FlowKey,
               state: _QpReorderState) -> None:
        """Give up on the gap: deliver everything buffered in ascending
        PSN order and resume ordered delivery after the highest PSN let
        through (the skipped gap is now the NIC's problem to NACK)."""
        psns = sorted(state.buffer)
        for psn in psns:
            switch.forward(state.buffer.pop(psn))
        state.expected = psns[-1] + 1 if psns else state.expected
        self._rearm_or_cancel(switch, flow, state)

    def _arm_timer(self, switch: Switch, flow: FlowKey,
                   state: _QpReorderState) -> None:
        if state.timer is not None:
            return
        state.deadline = switch.sim.now + self.config.reorder_timeout_ns
        state.timer = switch.sim.schedule(
            self.config.reorder_timeout_ns, self._timer_fire, switch,
            flow)

    def _rearm_or_cancel(self, switch: Switch, flow: FlowKey,
                         state: _QpReorderState) -> None:
        if state.timer is not None:
            state.timer.cancel()
            state.timer = None
        if state.buffer:
            self._arm_timer(switch, flow, state)

    def _timer_fire(self, switch: Switch, flow: FlowKey) -> None:
        state = self._state.get(flow)
        if state is None:
            return
        state.timer = None
        if not state.buffer:
            return
        self.timeout_flushes += 1
        # The gap packet is presumed lost: one timeout expires the whole
        # episode and ordered delivery resumes past the flushed run.
        self._flush(switch, flow, state)

    # ------------------------------------------------------------------
    def buffer_occupancy(self, flow: FlowKey) -> int:
        state = self._state.get(flow)
        return len(state.buffer) if state else 0
