"""Flow-level rerouting at the source ToR (ConWeave-style).

ConWeave [35] keeps each flow on one path and *reroutes* it when the
path congests, so at most two paths carry a flow simultaneously (old +
new during the transition).  We model the steady-state effect with a
periodic reroute: every ``flip_interval_ns`` the flow moves to the
currently least-loaded uplink.  Between flips packets stay perfectly
ordered; each flip creates one bounded reordering episode — exactly the
workload the destination-side reorder buffer is sized for.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.conweave.config import ConweaveConfig
from repro.net.packet import FlowKey, Packet
from repro.net.port import Port
from repro.switch.switch import Middleware, Switch


class RerouteSource(Middleware):
    """Per-flow path pinning with periodic congestion-driven reroutes."""

    def __init__(self, config: ConweaveConfig) -> None:
        self.config = config
        #: flow -> (candidate index, last flip time)
        self._paths: dict[FlowKey, tuple[int, int]] = {}
        self.reroutes = 0

    def select_port(self, switch: Switch, packet: Packet,
                    candidates: Sequence[Port]) -> Optional[Port]:
        if not packet.is_data:
            return None
        if packet.flow.src not in switch.down_nics \
                or packet.flow.dst in switch.down_nics:
            return None
        now = switch.sim.now
        n = len(candidates)
        state = self._paths.get(packet.flow)
        if state is None:
            index = min(range(n),
                        key=lambda i: candidates[i].queued_bytes)
            self._paths[packet.flow] = (index, now)
        else:
            index, flipped_at = state
            if now - flipped_at >= self.config.flip_interval_ns:
                best = min(range(n),
                           key=lambda i: candidates[i].queued_bytes)
                if best != index:
                    index = best
                    self.reroutes += 1
                self._paths[packet.flow] = (index, now)
        packet.path_index = index
        return candidates[index]
