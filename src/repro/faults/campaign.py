"""Fault campaigns: run a scenario across seeds, verify resilience.

A **cell** is one (scenario, seed) simulation: the canonical traced
alltoall workload with the scenario's fault schedule installed, plus a
baseline run of the *same seed without faults* for reference.  Each cell
reports the three resilience headline numbers the issue asks for:

* **recovery time** — how long after the last fault action aggregate
  goodput returns to ``RECOVERY_FRACTION`` of its pre-fault mean;
* **goodput dip** — the deepest aggregate-goodput window during the
  fault span, as a fraction of the pre-fault mean;
* **NACK validity** — the full causality audit summary; a cell with any
  unexplained compensation decision is a correctness failure, not a
  performance data point.

Cells are deterministic: same seed + same compiled spec produce a
bitwise-identical result document (no wall-clock values inside), which
is what lets campaigns ride the checkpoint/resume machinery of
:class:`repro.harness.jobs.JobRunner` via the ``fault_cell`` job kind.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.faults.spec import compiled_spec, spec_duration_us

#: Goodput is "recovered" at this fraction of the pre-fault mean.
RECOVERY_FRACTION = 0.9

#: Workload defaults for a cell; the spec's ``workload`` section
#: overrides any of them.
DEFAULT_WORKLOAD = {
    "nodes": 8,
    "message_bytes": 20_000,
    "scheme": "themis",
    "loss": 0.0,
    "trace_window_us": 10.0,
}

RESULT_VERSION = 1

#: Schema marker for the campaign output document written by
#: ``repro faults run --out`` — the ingest format of ``repro.results``
#: (mirrors ``repro-arena-v1`` for the arena).
FAULTS_SCHEMA = "repro-faults-v1"


# ----------------------------------------------------------------------
# One cell
# ----------------------------------------------------------------------
def run_cell(params: dict, seed: int) -> dict:
    """Execute one campaign cell; returns the JSON result document.

    ``params`` carries ``{"spec": <compiled scenario spec>}`` plus an
    optional ``"deadline_ns"``.
    """
    from repro.harness.tracing import (TRACE_DEADLINE_NS,
                                       build_traced_alltoall)
    from repro.obs.nacks import build_audit
    from repro.obs.record import FAULT, NACK, Recorder
    from repro.sim.engine import US

    spec = compiled_spec(params["spec"])
    deadline_ns = int(params.get("deadline_ns", TRACE_DEADLINE_NS))
    workload = {**DEFAULT_WORKLOAD, **spec.get("workload", {})}
    window_ns = int(round(workload["trace_window_us"] * US))

    def once(fault_spec: Optional[dict]):
        recorder = Recorder(retain={NACK, FAULT})
        net, _ = build_traced_alltoall(
            nodes=workload["nodes"], loss=workload["loss"], seed=seed,
            message_bytes=workload["message_bytes"],
            scheme=workload["scheme"], recorder=recorder,
            faults=fault_spec, watch_flows=True,
            trace_window_ns=window_ns)
        net.run(until_ns=deadline_ns)
        net.stop()
        return net, recorder

    base_net, _ = once(None)
    net, recorder = once(spec)

    injector = net.fault_injector
    first_ns = injector.first_fault_ns if injector else None
    last_ns = injector.last_event_ns if injector else None
    converge_ns = injector.converge_ns if injector else 0

    goodput = _goodput_metrics(net.metrics, first_ns,
                               None if last_ns is None
                               else last_ns + converge_ns)
    audit = build_audit(recorder.records(NACK))
    audit_summary = audit.summary()

    completion_ns = getattr(net, "trace_done_ns", None)
    baseline_ns = getattr(base_net, "trace_done_ns", None)
    tail_stretch = (round(completion_ns / baseline_ns, 6)
                    if completion_ns and baseline_ns else None)

    return {
        "version": RESULT_VERSION,
        "scenario": spec["name"],
        "seed": seed,
        "workload": workload,
        "completed": net.metrics.all_flows_done(),
        "completion_ns": completion_ns,
        "baseline_completion_ns": baseline_ns,
        "tail_stretch": tail_stretch,
        "goodput": goodput,
        "faults": {
            "scheduled": len(spec["events"]),
            "applied": len(injector.applied) if injector else 0,
            "first_ns": first_ns,
            "last_ns": last_ns,
            "converge_ns": converge_ns,
            "fault_events_recorded": len(recorder.records(FAULT)),
        },
        "nacks": audit_summary,
        "drops": net.metrics.drops,
        "retransmissions": net.metrics.retransmissions,
        "baseline_drops": base_net.metrics.drops,
        "baseline_retransmissions": base_net.metrics.retransmissions,
    }


def _goodput_metrics(metrics, first_fault_ns: Optional[int],
                     fault_end_ns: Optional[int]) -> dict:
    """Aggregate the watched flows' goodput windows into dip/recovery.

    Pre-fault mean is taken over windows strictly before the first
    fault; the dip is the worst window between first fault and fault
    end; recovery is the first post-fault-span window back at
    ``RECOVERY_FRACTION`` of the pre-fault mean.
    """
    window_ns = metrics.trace_window_ns
    aggregate: dict[int, float] = {}
    for meter in metrics.throughput_meters.values():
        for t, gbps in meter.series_gbps():
            aggregate[t] = aggregate.get(t, 0.0) + gbps
    series = sorted(aggregate.items())
    doc: dict = {
        "window_ns": window_ns,
        "windows": len(series),
        "pre_fault_gbps": None,
        "dip_gbps": None,
        "dip_frac": None,
        "recovery_ns": None,
    }
    if not series or first_fault_ns is None:
        return doc
    pre = [g for t, g in series if t + window_ns <= first_fault_ns]
    if not pre:
        return doc
    pre_mean = sum(pre) / len(pre)
    doc["pre_fault_gbps"] = round(pre_mean, 4)
    if fault_end_ns is None:
        fault_end_ns = first_fault_ns
    during = [g for t, g in series
              if first_fault_ns <= t + window_ns and t <= fault_end_ns]
    if during and pre_mean > 0:
        dip = min(during)
        doc["dip_gbps"] = round(dip, 4)
        doc["dip_frac"] = round(1.0 - dip / pre_mean, 4)
    threshold = RECOVERY_FRACTION * pre_mean
    for t, gbps in series:
        if t >= fault_end_ns and gbps >= threshold:
            doc["recovery_ns"] = t - fault_end_ns
            break
    return doc


# ----------------------------------------------------------------------
# Result validation (CI gate)
# ----------------------------------------------------------------------
_REQUIRED_KEYS = ("version", "scenario", "seed", "workload", "completed",
                  "goodput", "faults", "nacks", "drops",
                  "retransmissions")


def validate_result(doc: dict) -> list[str]:
    """Schema check for one cell result; returns a list of problems."""
    problems = []
    if not isinstance(doc, dict):
        return ["result is not a dict"]
    for key in _REQUIRED_KEYS:
        if key not in doc:
            problems.append(f"missing key {key!r}")
    if doc.get("version") != RESULT_VERSION:
        problems.append(f"bad version {doc.get('version')!r}")
    if not isinstance(doc.get("completed"), bool):
        problems.append("'completed' must be a bool")
    faults = doc.get("faults")
    if isinstance(faults, dict):
        if faults.get("applied") != faults.get("scheduled"):
            problems.append(
                f"only {faults.get('applied')} of "
                f"{faults.get('scheduled')} fault events applied")
    else:
        problems.append("'faults' must be a dict")
    nacks = doc.get("nacks")
    if isinstance(nacks, dict):
        if nacks.get("unexplained", 1) != 0:
            problems.append(
                f"{nacks.get('unexplained')} unexplained NACK "
                "decision(s) — compensation state was corrupted")
    else:
        problems.append("'nacks' must be a dict")
    return problems


# ----------------------------------------------------------------------
# Campaigns over the parallel runner
# ----------------------------------------------------------------------
def campaign_specs(spec, seeds: Sequence[int]) -> list:
    """One ``fault_cell`` :class:`JobSpec` per seed, in seed order."""
    from repro.harness.jobs import JobSpec

    doc = compiled_spec(spec)
    return [JobSpec(kind="fault_cell", seed=seed,
                    params={"spec": doc},
                    label=f"{doc['name']}@s{seed}")
            for seed in seeds]


def run_campaign(spec, seeds: Sequence[int], *, workers: int = 1,
                 timeout_s: Optional[float] = None, retries: int = 2,
                 checkpoint: Optional[str] = None, cache=None,
                 counters=None, progress=None) -> dict:
    """Run every (scenario, seed) cell on the job runner; aggregate.

    Cells are aggregated in seed order regardless of completion order,
    so a parallel campaign is bitwise-identical to a serial one.  The
    versioned document (:func:`build_faults_doc`) additionally excludes
    the job counters, so a cache-warm re-run emits identical bytes.
    """
    from repro.harness.jobs import JobRunner
    from repro.harness.metrics import JobCounters

    doc = compiled_spec(spec)
    specs = campaign_specs(doc, seeds)
    counters = counters if counters is not None else JobCounters()
    runner = JobRunner(workers=workers, timeout_s=timeout_s,
                       retries=retries, checkpoint=checkpoint,
                       cache=cache, counters=counters, progress=progress)
    outcomes = runner.run(specs)

    cells, failures, problems = [], [], []
    for job in specs:
        outcome = outcomes[job.spec_hash]
        if outcome.ok:
            cells.append(outcome.result)
            for problem in validate_result(outcome.result):
                problems.append(f"seed {job.seed}: {problem}")
        else:
            failures.append({"seed": job.seed, "error": outcome.error})
    summary = {
        "scenario": doc["name"],
        "duration_us": spec_duration_us(doc),
        "seeds": list(seeds),
        "cells": cells,
        "failures": failures,
        "validation_problems": problems,
        "jobs": counters.summary(),
    }
    if cells:
        recoveries = [c["goodput"]["recovery_ns"] for c in cells
                      if c["goodput"]["recovery_ns"] is not None]
        dips = [c["goodput"]["dip_frac"] for c in cells
                if c["goodput"]["dip_frac"] is not None]
        stretches = [c["tail_stretch"] for c in cells
                     if c["tail_stretch"] is not None]
        summary["aggregate"] = {
            "completed": sum(1 for c in cells if c["completed"]),
            "cells": len(cells),
            "unexplained_nacks": sum(c["nacks"]["unexplained"]
                                     for c in cells),
            "mean_recovery_ns": (round(sum(recoveries) / len(recoveries))
                                 if recoveries else None),
            "worst_dip_frac": max(dips) if dips else None,
            "worst_tail_stretch": max(stretches) if stretches else None,
        }
    return summary


# ----------------------------------------------------------------------
# The versioned output document
# ----------------------------------------------------------------------
def build_faults_doc(summary: dict) -> dict:
    """The ``repro-faults-v1`` document for a campaign summary.

    Everything in the summary except ``jobs``: the job counters carry
    wall-clock/scheduling state (retries, cache hits) that differs
    between a cold and a cache-warm run of the same campaign, and the
    document must be byte-identical across both.
    """
    doc = {"schema": FAULTS_SCHEMA,
           "scenario": summary["scenario"],
           "duration_us": summary["duration_us"],
           "seeds": summary["seeds"],
           "cells": summary["cells"],
           "failures": summary["failures"],
           "validation_problems": summary["validation_problems"]}
    if "aggregate" in summary:
        doc["aggregate"] = summary["aggregate"]
    return doc


_DOC_KEYS = ("schema", "scenario", "duration_us", "seeds", "cells",
             "failures", "validation_problems")
_DOC_CELL_KEYS = ("scenario", "seed", "completed", "tail_stretch",
                  "goodput", "nacks")


def validate_faults_doc(doc: dict) -> list[str]:
    """Schema check for a ``repro-faults-v1`` document; returns problems.

    Structural only: a campaign whose cells carry resilience failures is
    still a well-formed document (those failures live in
    ``validation_problems``), same as ``validate_arena_doc``'s split
    between shape and outcome.
    """
    problems = []
    if not isinstance(doc, dict):
        return ["document is not an object"]
    if doc.get("schema") != FAULTS_SCHEMA:
        problems.append(f"schema is {doc.get('schema')!r}, "
                        f"expected {FAULTS_SCHEMA!r}")
    for key in _DOC_KEYS:
        if key not in doc:
            problems.append(f"missing key {key!r}")
    if not isinstance(doc.get("scenario"), str) or not doc.get("scenario"):
        problems.append("scenario missing or empty")
    if not isinstance(doc.get("seeds"), list) or not doc.get("seeds"):
        problems.append("seeds missing or empty")
    cells = doc.get("cells")
    if not isinstance(cells, list):
        problems.append("cells is not a list")
        cells = []
    for i, cell in enumerate(cells):
        if not isinstance(cell, dict):
            problems.append(f"cell[{i}] is not an object")
            continue
        missing = [k for k in _DOC_CELL_KEYS if k not in cell]
        if missing:
            problems.append(f"cell[{i}] missing fields: {missing}")
            continue
        if not isinstance(cell["goodput"], dict):
            problems.append(f"cell[{i}].goodput is not an object")
        if not isinstance(cell["nacks"], dict):
            problems.append(f"cell[{i}].nacks is not an object")
    for key in ("failures", "validation_problems"):
        if key in doc and not isinstance(doc[key], list):
            problems.append(f"{key} is not a list")
    if not cells and not doc.get("failures"):
        problems.append("document has neither cells nor failures")
    return problems
