"""repro.faults — schedulable network failures and fault campaigns.

Three pieces:

* :mod:`repro.faults.spec` — composable fault layers (link flap, rate
  degradation, latency shift, switch reboot, PFC storm, random loss)
  and the declarative scenario builder that compiles them into a flat
  campaign spec.
* :mod:`repro.faults.injector` — schedules a compiled spec's actions as
  first-class engine events on a built :class:`repro.harness.network.Network`,
  with every action recorded on the ``FAULT`` observability category.
* :mod:`repro.faults.campaign` — runs (scenario, seed) cells on the
  parallel job runner and reports recovery-time / goodput-dip /
  NACK-validity metrics.

``spec`` has no heavy dependencies and is imported eagerly; the injector
and campaign layers (which pull in the network stack and the harness)
load lazily so low-level packages can import :mod:`repro.faults` freely.
"""

from repro.faults.spec import (DEFAULT_CONVERGE_US, LAYER_KINDS,
                               LatencyShift, LinkFlap, PfcStorm,
                               RandomLoss, RateDegrade, Scenario,
                               ScenarioError, SwitchReboot,
                               compiled_spec, load_scenario,
                               scenario_from_dict, spec_duration_us,
                               validate_compiled)

__all__ = [
    "Scenario", "ScenarioError", "LinkFlap", "RateDegrade",
    "LatencyShift", "SwitchReboot", "PfcStorm", "RandomLoss",
    "LAYER_KINDS", "DEFAULT_CONVERGE_US",
    "compiled_spec", "scenario_from_dict", "load_scenario",
    "validate_compiled", "spec_duration_us",
    # Lazily loaded:
    "FaultInjector",
    "run_cell", "run_campaign", "campaign_specs", "validate_result",
    "BUILTIN_SCENARIOS", "builtin",
]

_LAZY = {
    "FaultInjector": ("repro.faults.injector", "FaultInjector"),
    "run_cell": ("repro.faults.campaign", "run_cell"),
    "run_campaign": ("repro.faults.campaign", "run_campaign"),
    "campaign_specs": ("repro.faults.campaign", "campaign_specs"),
    "validate_result": ("repro.faults.campaign", "validate_result"),
    "BUILTIN_SCENARIOS": ("repro.faults.scenarios", "BUILTIN_SCENARIOS"),
    "builtin": ("repro.faults.scenarios", "builtin"),
}


def __getattr__(name: str):
    target = _LAZY.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute "
                             f"{name!r}")
    import importlib

    module = importlib.import_module(target[0])
    value = getattr(module, target[1])
    globals()[name] = value
    return value
