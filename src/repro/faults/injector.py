"""Schedulable fault events wired into a live :class:`Network`.

The :class:`FaultInjector` takes a compiled scenario spec
(:func:`repro.faults.spec.compiled_spec`) and schedules each action as a
first-class engine event via ``sim.schedule_at``.  Every applied action
is emitted on the ``FAULT`` observability category, so a flight-ring dump
or a retained trace always shows *what the fabric did to itself* next to
what the protocol machinery decided — failures never appear as silent
state changes.

Semantics
---------
* ``link_down`` / ``link_up`` — administrative cable state.  Packets
  queued behind a dead cable drain as accounted ``link_down`` drops (the
  port charges wire time for them, matching the busy_ns invariants).
  Routing reconverges ``converge_us`` later; until then traffic
  blackholes exactly as on a real fabric between failure and detection.
* ``degrade`` / ``degrade_end`` — both directions run at ``factor`` of
  nominal bandwidth.
* ``latency_shift`` / ``latency_end`` — extra propagation delay, on one
  direction (``ab``/``ba``) or both; asymmetric shifts skew RTT
  estimators without losing a single packet.
* ``reboot`` / ``recover`` — the switch stops forwarding (arrivals are
  dropped with accounting), every incident cable goes down, and its
  egress buffers drain through the queue-policy hooks so shared-buffer
  and PFC credit stay balanced.  Recovery restores only cables the
  reboot itself took down.
* ``pfc_storm`` / ``storm_end`` — the switch holds its neighbours' data
  class paused (through the PFC controller when one is installed, else
  directly at the ports).  Occupancy-driven XON cannot lift the pause
  until the storm ends.
* ``loss`` / ``loss_end`` — random drops on the cable, drawn from the
  dedicated fault RNG substream so packet-level streams are untouched.

Themis coupling: after every liveness-changing action the injector
reconverges routing and sets the Themis middleware to match the fabric —
disabled while any cable or switch is unhealthy (the §6 fallback:
PSN-path mapping can no longer be trusted), re-enabled once the fabric
is fully intact again.

Determinism: an empty scenario schedules **zero** events and draws
nothing from any RNG, so a run with an empty spec is bitwise-identical
to a run without an injector.
"""

from __future__ import annotations

from typing import Optional

from repro.faults.spec import (RECONVERGE_KINDS, ScenarioError,
                               compiled_spec)
from repro.net.link import Link
from repro.obs import record as obs_record
from repro.sim.engine import US


def _ns(at_us: float) -> int:
    return int(round(at_us * US))


class FaultInjector:
    """Compile-checked fault schedule bound to one built network."""

    def __init__(self, net, spec) -> None:
        self.net = net
        self.spec = compiled_spec(spec)
        self.converge_ns = _ns(self.spec.get("converge_us", 0.0))
        self.events = list(self.spec["events"])
        #: Fault channel (None when tracing is off / category disabled).
        self.rec = (net.recorder.channel(obs_record.FAULT)
                    if net.recorder is not None else None)
        #: Dedicated substream — deriving it cannot perturb any other
        #: stream, and an empty schedule never draws from it.
        self.rng = net.rng.fault_stream()
        #: (sim_ns, kind, target) for every action actually applied.
        self.applied: list[tuple[int, str, str]] = []
        #: switch name -> list of (pfc_or_None, port) held by a storm.
        self._storm_held: dict[str, list] = {}
        #: switch name -> links reboots took down (to restore), and the
        #: count of reboot windows currently holding the switch down —
        #: overlapping reboots merge, and only the last recovery
        #: restores.
        self._reboot_links: dict[str, list[Link]] = {}
        self._reboot_depth: dict[str, int] = {}
        self.installed = False
        self._validate()

    # ------------------------------------------------------------------
    # Validation against the built fabric
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        topo = self.net.topology
        switch_names = {s.name for s in topo.switches}
        tor_names = {s.name for s in topo.tors}
        for i, ev in enumerate(self.events):
            kind = ev["kind"]
            if "link" in ev:
                try:
                    topo.link(ev["link"])
                except LookupError as exc:
                    raise ScenarioError(
                        f"event {i} ({kind}): {exc}") from None
            if "switch" in ev:
                name = ev["switch"]
                if name not in switch_names:
                    raise ScenarioError(
                        f"event {i} ({kind}): unknown switch {name!r} "
                        f"(known: {sorted(switch_names)})")
                if kind == "reboot" and name in tor_names:
                    raise ScenarioError(
                        f"event {i}: rebooting ToR {name!r} would "
                        "disconnect its NICs; campaigns only reboot "
                        "aggregation/spine switches")

    # ------------------------------------------------------------------
    def install(self) -> int:
        """Schedule every action; returns the number scheduled."""
        if self.installed:
            raise RuntimeError("fault schedule already installed")
        self.installed = True
        for ev in self.events:
            self.net.sim.schedule_at(_ns(ev["at_us"]), self._apply, ev)
        return len(self.events)

    # ------------------------------------------------------------------
    # Spans (for campaign metrics)
    # ------------------------------------------------------------------
    @property
    def first_fault_ns(self) -> Optional[int]:
        return _ns(self.events[0]["at_us"]) if self.events else None

    @property
    def last_event_ns(self) -> Optional[int]:
        if not self.events:
            return None
        return max(_ns(ev["at_us"]) for ev in self.events)

    # ------------------------------------------------------------------
    # Action dispatch
    # ------------------------------------------------------------------
    def _apply(self, ev: dict) -> None:
        kind = ev["kind"]
        handler = getattr(self, f"_do_{kind}")
        handler(ev)
        target = ev.get("link") or ev.get("switch") or "?"
        self.applied.append((self.net.sim.now, kind, target))
        if kind in RECONVERGE_KINDS:
            self.net.sim.schedule(self.converge_ns, self._reconverge)

    def _emit(self, loc: str, action: str, **detail) -> None:
        if self.rec is not None:
            self.rec.fault(self.net.sim.now, loc, action, **detail)

    def _link(self, ev: dict) -> Link:
        return self.net.topology.link(ev["link"])

    def _switch(self, ev: dict):
        name = ev["switch"]
        return next(s for s in self.net.topology.switches
                    if s.name == name)

    # -- liveness ------------------------------------------------------
    def _do_link_down(self, ev: dict) -> None:
        link = self._link(ev)
        link.set_up(False)
        self._emit(link.name, "link_down")

    def _do_link_up(self, ev: dict) -> None:
        link = self._link(ev)
        link.set_up(True)
        self._emit(link.name, "link_up")

    def _do_reboot(self, ev: dict) -> None:
        switch = self._switch(ev)
        downed = []
        for link in self.net.topology.links_of(switch.name):
            if link.up:
                link.set_up(False)
                downed.append(link)
        self._reboot_links.setdefault(switch.name, []).extend(downed)
        depth = self._reboot_depth.get(switch.name, 0) + 1
        self._reboot_depth[switch.name] = depth
        switch.set_active(False)
        flushed = switch.drain_buffers()
        self._emit(switch.name, "reboot", links_downed=len(downed),
                   packets_flushed=flushed)

    def _do_recover(self, ev: dict) -> None:
        switch = self._switch(ev)
        depth = self._reboot_depth.get(switch.name, 1) - 1
        if depth > 0:
            # An overlapping reboot window still holds the switch down.
            self._reboot_depth[switch.name] = depth
            self._emit(switch.name, "recover", deferred=True)
            return
        self._reboot_depth.pop(switch.name, None)
        for link in self._reboot_links.pop(switch.name, []):
            link.set_up(True)
        switch.set_active(True)
        self._emit(switch.name, "recover")

    def _reconverge(self) -> None:
        net = self.net
        net.reconverge_routes()
        intact = net.fabric_intact()
        net._set_themis_enabled(intact)
        self._emit("fabric", "reconverge", intact=intact,
                   themis_enabled=intact)

    # -- capacity ------------------------------------------------------
    def _do_degrade(self, ev: dict) -> None:
        link = self._link(ev)
        link.scale_rate(ev["factor"])
        self._emit(link.name, "degrade", factor=ev["factor"])

    def _do_degrade_end(self, ev: dict) -> None:
        link = self._link(ev)
        link.scale_rate(1.0)
        self._emit(link.name, "degrade_end")

    def _do_latency_shift(self, ev: dict) -> None:
        link = self._link(ev)
        extra_ns = _ns(ev["extra_us"])
        link.shift_latency(extra_ns, ev.get("direction", "both"))
        self._emit(link.name, "latency_shift", extra_ns=extra_ns,
                   direction=ev.get("direction", "both"))

    def _do_latency_end(self, ev: dict) -> None:
        link = self._link(ev)
        link.shift_latency(0, ev.get("direction", "both"))
        self._emit(link.name, "latency_end")

    # -- loss ----------------------------------------------------------
    def _do_loss(self, ev: dict) -> None:
        link = self._link(ev)
        for port in link.ports:
            port.set_loss(ev["rate"], self.rng)
        self._emit(link.name, "loss", rate=ev["rate"])

    def _do_loss_end(self, ev: dict) -> None:
        link = self._link(ev)
        for port in link.ports:
            port.set_loss(0.0, None)
        self._emit(link.name, "loss_end")

    # -- PFC storm -----------------------------------------------------
    def _victim_ports(self, switch) -> list:
        """Neighbour egress ports pointing *at* the storming switch —
        the ports its PAUSE frames silence."""
        out = []
        for link in self.net.topology.links_of(switch.name):
            port = (link.port_ba if link.a_name == switch.name
                    else link.port_ab)
            out.append(port)
        return out

    def _do_pfc_storm(self, ev: dict) -> None:
        switch = self._switch(ev)
        held = []
        pfc = switch.pfc
        for port in self._victim_ports(switch):
            if pfc is not None:
                pfc.inject_storm_pause(port)
                held.append((pfc, port))
            elif not port.data_paused:
                # Lossy fabric (no controller): freeze the port directly,
                # remembering it so release never clobbers another pause.
                port.pause_data()
                held.append((None, port))
        self._storm_held[switch.name] = held
        self._emit(switch.name, "pfc_storm", ports=len(held))

    def _do_storm_end(self, ev: dict) -> None:
        switch = self._switch(ev)
        for pfc, port in self._storm_held.pop(switch.name, []):
            if pfc is not None:
                pfc.release_storm_pause(port)
            else:
                port.resume_data()
        self._emit(switch.name, "storm_end")
