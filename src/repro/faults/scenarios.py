"""Built-in named fault scenarios.

A small registry of ready-to-run campaigns (``repro faults run --name``)
that double as living documentation of the layer vocabulary.  Each entry
is a zero-argument builder returning a fresh :class:`Scenario`, so
callers can tweak before compiling.
"""

from __future__ import annotations

from typing import Callable

from repro.faults.spec import (LatencyShift, LinkFlap, PfcStorm,
                               RandomLoss, RateDegrade, Scenario,
                               SwitchReboot)


def link_flap_smoke() -> Scenario:
    """Tiny CI scenario: one uplink flaps once mid-alltoall."""
    return Scenario(
        "link-flap-smoke",
        workload={"nodes": 8, "message_bytes": 200_000},
    ).add(LinkFlap(link="tor0:spine0", at_us=40, down_us=80))


def flap_storm() -> Scenario:
    """Repeated flapping on one uplink — the pathological LAG member."""
    return Scenario(
        "flap-storm",
        workload={"nodes": 8, "message_bytes": 400_000},
    ).add(LinkFlap(link="tor0:spine0", at_us=50, down_us=40, repeat=4,
                   period_us=120))


def brownout() -> Scenario:
    """One uplink degrades to 25% rate while another grows latency."""
    return Scenario(
        "brownout",
        workload={"nodes": 8, "message_bytes": 400_000},
    ).add(RateDegrade(link="tor0:spine0", at_us=40, duration_us=300,
                      factor=0.25)) \
     .add(LatencyShift(link="tor1:spine1", at_us=80, duration_us=200,
                       extra_us=5, direction="ab"))


def spine_reboot() -> Scenario:
    """A spine power-cycles mid-run: buffers drain, routes shrink."""
    return Scenario(
        "spine-reboot",
        workload={"nodes": 8, "message_bytes": 400_000},
    ).add(SwitchReboot(switch="spine0", at_us=60, down_us=200))


def pfc_storm() -> Scenario:
    """A spine holds its neighbours paused (lossless-fabric pathology)."""
    return Scenario(
        "pfc-storm",
        workload={"nodes": 8, "message_bytes": 300_000},
    ).add(PfcStorm(switch="spine0", at_us=50, duration_us=150))


def gray_failure() -> Scenario:
    """Silent partial loss on one uplink — the hardest fault to detect."""
    return Scenario(
        "gray-failure",
        workload={"nodes": 8, "message_bytes": 400_000},
    ).add(RandomLoss(link="tor0:spine0", at_us=30, duration_us=400,
                     rate=0.05))


BUILTIN_SCENARIOS: dict[str, Callable[[], Scenario]] = {
    "link-flap-smoke": link_flap_smoke,
    "flap-storm": flap_storm,
    "brownout": brownout,
    "spine-reboot": spine_reboot,
    "pfc-storm": pfc_storm,
    "gray-failure": gray_failure,
}


def builtin(name: str) -> Scenario:
    """Fresh builder output for a named scenario."""
    try:
        return BUILTIN_SCENARIOS[name]()
    except KeyError:
        raise LookupError(
            f"no builtin scenario {name!r} "
            f"(known: {sorted(BUILTIN_SCENARIOS)})") from None
