"""Declarative fault scenarios: composable layers -> a compiled spec.

A scenario is assembled seedemu-style from **fault layers** — small
dataclasses, each describing one failure pattern on one target — and
compiled into a flat, JSON-serialisable **campaign spec**: a sorted list
of timed actions the :class:`repro.faults.injector.FaultInjector`
schedules as first-class engine events.  The compiled document is what
travels (CLI files, job params, checkpoints), so a full fault campaign
fits in a ~20-line JSON file::

    {
      "name": "flap-smoke",
      "converge_us": 25,
      "workload": {"nodes": 8, "message_bytes": 20000},
      "layers": [
        {"kind": "link_flap", "link": "tor0:spine0",
         "at_us": 40, "down_us": 80}
      ]
    }

All times are **microseconds of simulated time** (floats allowed); the
injector converts to integer nanoseconds at install.  Layer targets are
names: ``"a:b"`` for cables (either ordering), switch names for
reboot/storm layers.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional, Union

SPEC_VERSION = 1

#: Default routing-convergence delay after a liveness change (detection +
#: control-plane update), in microseconds.
DEFAULT_CONVERGE_US = 25.0


class ScenarioError(ValueError):
    """A fault scenario is malformed or targets nothing in the fabric."""


def _us(value: float, name: str, *, minimum: float = 0.0) -> float:
    value = float(value)
    if value < minimum:
        raise ScenarioError(f"{name} must be >= {minimum}, got {value}")
    return value


# ----------------------------------------------------------------------
# Fault layers
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LinkFlap:
    """Cable down for ``down_us``, optionally repeated every ``period_us``."""

    link: str
    at_us: float
    down_us: float
    repeat: int = 1
    period_us: Optional[float] = None

    def events(self) -> list[dict]:
        at = _us(self.at_us, "at_us")
        down = _us(self.down_us, "down_us", minimum=1e-3)
        if self.repeat < 1:
            raise ScenarioError("repeat must be >= 1")
        period = (_us(self.period_us, "period_us", minimum=down + 1e-3)
                  if self.period_us is not None else 2.0 * down)
        out = []
        for i in range(self.repeat):
            start = at + i * period
            out.append({"at_us": start, "kind": "link_down",
                        "link": self.link})
            out.append({"at_us": start + down, "kind": "link_up",
                        "link": self.link})
        return out


@dataclass(frozen=True)
class RateDegrade:
    """Cable runs at ``factor`` of nominal bandwidth for a while."""

    link: str
    at_us: float
    duration_us: float
    factor: float

    def events(self) -> list[dict]:
        at = _us(self.at_us, "at_us")
        dur = _us(self.duration_us, "duration_us", minimum=1e-3)
        if not 0.0 < self.factor < 1.0:
            raise ScenarioError(
                f"degrade factor must be in (0, 1), got {self.factor}")
        return [
            {"at_us": at, "kind": "degrade", "link": self.link,
             "factor": self.factor},
            {"at_us": at + dur, "kind": "degrade_end", "link": self.link},
        ]


@dataclass(frozen=True)
class LatencyShift:
    """Extra propagation delay, optionally on one direction only."""

    link: str
    at_us: float
    duration_us: float
    extra_us: float
    direction: str = "both"  # "ab" | "ba" | "both"

    def events(self) -> list[dict]:
        at = _us(self.at_us, "at_us")
        dur = _us(self.duration_us, "duration_us", minimum=1e-3)
        extra = _us(self.extra_us, "extra_us", minimum=1e-3)
        if self.direction not in ("ab", "ba", "both"):
            raise ScenarioError(f"bad direction {self.direction!r}")
        return [
            {"at_us": at, "kind": "latency_shift", "link": self.link,
             "extra_us": extra, "direction": self.direction},
            {"at_us": at + dur, "kind": "latency_end", "link": self.link,
             "direction": self.direction},
        ]


@dataclass(frozen=True)
class SwitchReboot:
    """Switch powers off (buffers drain as drops), links with it."""

    switch: str
    at_us: float
    down_us: float

    def events(self) -> list[dict]:
        at = _us(self.at_us, "at_us")
        down = _us(self.down_us, "down_us", minimum=1e-3)
        return [
            {"at_us": at, "kind": "reboot", "switch": self.switch},
            {"at_us": at + down, "kind": "recover", "switch": self.switch},
        ]


@dataclass(frozen=True)
class PfcStorm:
    """Switch spews PAUSE frames, freezing its neighbours' data class."""

    switch: str
    at_us: float
    duration_us: float

    def events(self) -> list[dict]:
        at = _us(self.at_us, "at_us")
        dur = _us(self.duration_us, "duration_us", minimum=1e-3)
        return [
            {"at_us": at, "kind": "pfc_storm", "switch": self.switch},
            {"at_us": at + dur, "kind": "storm_end",
             "switch": self.switch},
        ]


@dataclass(frozen=True)
class RandomLoss:
    """Cable silently drops a fraction of data packets for a while."""

    link: str
    at_us: float
    duration_us: float
    rate: float

    def events(self) -> list[dict]:
        at = _us(self.at_us, "at_us")
        dur = _us(self.duration_us, "duration_us", minimum=1e-3)
        if not 0.0 < self.rate <= 1.0:
            raise ScenarioError(
                f"loss rate must be in (0, 1], got {self.rate}")
        return [
            {"at_us": at, "kind": "loss", "link": self.link,
             "rate": self.rate},
            {"at_us": at + dur, "kind": "loss_end", "link": self.link},
        ]


LAYER_KINDS = {
    "link_flap": LinkFlap,
    "degrade": RateDegrade,
    "latency_shift": LatencyShift,
    "switch_reboot": SwitchReboot,
    "pfc_storm": PfcStorm,
    "random_loss": RandomLoss,
}

FaultLayer = Union[LinkFlap, RateDegrade, LatencyShift, SwitchReboot,
                   PfcStorm, RandomLoss]

#: Every action kind a compiled spec may contain.
EVENT_KINDS = frozenset({
    "link_down", "link_up", "degrade", "degrade_end", "latency_shift",
    "latency_end", "reboot", "recover", "pfc_storm", "storm_end",
    "loss", "loss_end",
})

#: Action kinds that change liveness and therefore trigger a routing
#: reconvergence ``converge_us`` later.
RECONVERGE_KINDS = frozenset({"link_down", "link_up", "reboot", "recover"})


# ----------------------------------------------------------------------
# Scenario builder
# ----------------------------------------------------------------------
@dataclass
class Scenario:
    """Composable scenario: ``Scenario("x").add(layer).add(layer)``."""

    name: str
    converge_us: float = DEFAULT_CONVERGE_US
    workload: dict = field(default_factory=dict)
    layers: list = field(default_factory=list)

    def add(self, layer: FaultLayer) -> "Scenario":
        self.layers.append(layer)
        return self

    def compile(self) -> dict:
        """Flatten layers into the sorted, runnable campaign spec.

        Events sort by time with the layer/emission order as the stable
        tiebreak, so compilation is fully deterministic.
        """
        events: list[dict] = []
        for layer in self.layers:
            events.extend(layer.events())
        events.sort(key=lambda ev: ev["at_us"])
        return {"version": SPEC_VERSION, "name": self.name,
                "converge_us": _us(self.converge_us, "converge_us"),
                "workload": dict(self.workload), "events": events}


def scenario_from_dict(doc: dict) -> Scenario:
    """Parse the declarative layer form (the ~20-line JSON file)."""
    if not isinstance(doc, dict):
        raise ScenarioError("scenario document must be a JSON object")
    name = doc.get("name")
    if not name or not isinstance(name, str):
        raise ScenarioError("scenario needs a non-empty string 'name'")
    scenario = Scenario(
        name=name,
        converge_us=doc.get("converge_us", DEFAULT_CONVERGE_US),
        workload=dict(doc.get("workload", {})))
    layers = doc.get("layers", [])
    if not isinstance(layers, list):
        raise ScenarioError("'layers' must be a list")
    for i, layer_doc in enumerate(layers):
        if not isinstance(layer_doc, dict) or "kind" not in layer_doc:
            raise ScenarioError(f"layer {i} needs a 'kind' field")
        kind = layer_doc["kind"]
        cls = LAYER_KINDS.get(kind)
        if cls is None:
            raise ScenarioError(
                f"layer {i}: unknown kind {kind!r} "
                f"(expected one of {sorted(LAYER_KINDS)})")
        params = {k: v for k, v in layer_doc.items() if k != "kind"}
        try:
            scenario.add(cls(**params))
        except TypeError as exc:
            raise ScenarioError(f"layer {i} ({kind}): {exc}") from None
    return scenario


def load_scenario(path: Union[str, Path]) -> Scenario:
    """Read a declarative scenario JSON file."""
    try:
        doc = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ScenarioError(f"cannot read scenario {path}: {exc}") from exc
    return scenario_from_dict(doc)


def compiled_spec(source: Union[Scenario, dict]) -> dict:
    """Normalise builder / layer-form / compiled-form input to compiled.

    Accepts a :class:`Scenario`, a layer-form dict (has ``layers``), or
    an already-compiled dict (has ``events``), and validates the result.
    """
    if isinstance(source, Scenario):
        spec = source.compile()
    elif isinstance(source, dict) and "events" in source:
        spec = source
    elif isinstance(source, dict):
        spec = scenario_from_dict(source).compile()
    else:
        raise ScenarioError(
            f"cannot compile a {type(source).__name__} into a spec")
    validate_compiled(spec)
    return spec


def validate_compiled(spec: dict) -> None:
    """Structural validation of a compiled spec; raises ScenarioError."""
    if not isinstance(spec, dict):
        raise ScenarioError("compiled spec must be a dict")
    for key in ("name", "events"):
        if key not in spec:
            raise ScenarioError(f"compiled spec missing {key!r}")
    if spec.get("version", SPEC_VERSION) != SPEC_VERSION:
        raise ScenarioError(f"unsupported spec version {spec['version']}")
    events = spec["events"]
    if not isinstance(events, list):
        raise ScenarioError("'events' must be a list")
    last = -1.0
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            raise ScenarioError(f"event {i} must be a dict")
        kind = ev.get("kind")
        if kind not in EVENT_KINDS:
            raise ScenarioError(f"event {i}: unknown kind {kind!r}")
        at = ev.get("at_us")
        if not isinstance(at, (int, float)) or at < 0:
            raise ScenarioError(f"event {i}: bad at_us {at!r}")
        if at < last:
            raise ScenarioError(f"event {i}: events not time-sorted")
        last = at
        target_key = "switch" if kind in ("reboot", "recover",
                                          "pfc_storm", "storm_end") \
            else "link"
        if not isinstance(ev.get(target_key), str):
            raise ScenarioError(
                f"event {i} ({kind}): missing {target_key!r} target")


def spec_duration_us(spec: dict) -> float:
    """Time of the last scheduled action (0 for an empty scenario)."""
    events: Iterable[dict] = spec.get("events", [])
    return max((ev["at_us"] for ev in events), default=0.0)
