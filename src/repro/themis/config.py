"""Themis deployment parameters."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ThemisConfig:
    """Knobs for the ToR middleware.

    ``queue_capacity_factor`` is the paper's ``F`` (§4): the per-QP ring
    queue holds ``ceil(BDP_last_hop / MTU * F)`` entries so transient RTT
    fluctuation on the ToR->NIC hop does not evict in-flight PSNs early.

    ``enable_validation`` / ``enable_compensation`` exist for the ablation
    benchmarks — production Themis runs with both on.

    ``psn_bits`` models the truncated 1-byte PSN stored per ring-queue
    entry (§4's memory estimate); comparisons use serial-number arithmetic
    so wraparound inside the last-hop window is handled.

    ``spray_mode`` selects how Themis-S realizes Eq. 1: ``"direct"`` picks
    the ToR uplink index directly (2-tier Clos, §3.2), ``"pathmap"``
    rewrites the UDP source port through a PathMap so downstream linear
    ECMP becomes deterministic (3-tier, Fig. 3).
    """

    queue_capacity_factor: float = 1.5
    queue_entries_override: int | None = None
    enable_validation: bool = True
    enable_compensation: bool = True
    psn_bits: int = 8
    spray_mode: str = "direct"

    def __post_init__(self) -> None:
        if self.queue_capacity_factor <= 1.0:
            raise ValueError("capacity factor F must exceed 1.0 (§4)")
        if self.spray_mode not in ("direct", "pathmap"):
            raise ValueError("spray_mode must be 'direct' or 'pathmap'")
        if not 4 <= self.psn_bits <= 32:
            raise ValueError("psn_bits out of range")

    def queue_entries(self, last_hop_bandwidth_bps: float,
                      last_hop_rtt_ns: int, mtu_bytes: int) -> int:
        """Ring-queue capacity from the last-hop BDP (§4)."""
        if self.queue_entries_override is not None:
            return self.queue_entries_override
        bdp_bytes = last_hop_bandwidth_bps * last_hop_rtt_ns / 1e9 / 8.0
        entries = int(-(-bdp_bytes * self.queue_capacity_factor
                        // mtu_bytes))
        return max(4, entries)
