"""Ring-based PSN queue (§3.3).

Themis-D caches the PSN of every in-flight packet on the ToR->NIC hop in a
fixed-capacity FIFO ring, one per QP.  Entries store *truncated* PSNs
(1 byte in the paper's §4 memory budget), so "larger than ePSN" uses
serial-number arithmetic within the truncated space — valid because the
ring only ever holds roughly one last-hop BDP of consecutive PSNs.

When a NACK carrying ``ePSN`` arrives, :meth:`find_tpsn` dequeues entries
in arrival order until the first PSN greater than ``ePSN``; that PSN is the
out-of-order packet that triggered the NACK (the RNIC emits at most one
NACK per ePSN, so the *first* newer-than-expected arrival is the trigger).
"""

from __future__ import annotations

from typing import Optional


class PsnRingQueue:
    """Fixed-capacity FIFO of truncated PSNs with head/tail pointers."""

    def __init__(self, capacity: int, psn_bits: int = 8) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self.psn_bits = psn_bits
        self._mask = (1 << psn_bits) - 1
        self._half = 1 << (psn_bits - 1)
        self._slots: list[int] = [0] * self.capacity
        self.head = 0          # next slot to dequeue
        self.tail = 0          # next slot to fill
        self._size = 0
        self.overflows = 0

    def __len__(self) -> int:
        return self._size

    @property
    def full(self) -> bool:
        return self._size == self.capacity

    def truncate(self, psn: int) -> int:
        return psn & self._mask

    def _greater(self, a: int, b: int) -> bool:
        """Serial-number compare in the truncated space: a > b?"""
        return 0 < ((a - b) & self._mask) < self._half

    # ------------------------------------------------------------------
    def enqueue(self, psn: int) -> None:
        """Record a PSN leaving toward the NIC.

        On overflow the oldest entry is evicted (the hardware ring simply
        wraps); §4 sizes the queue so this only happens when RTT spikes
        beyond the provisioning factor F.
        """
        if self.full:
            self.head = (self.head + 1) % self.capacity
            self._size -= 1
            self.overflows += 1
        self._slots[self.tail] = self.truncate(psn)
        self.tail = (self.tail + 1) % self.capacity
        self._size += 1

    def dequeue(self) -> int:
        if self._size == 0:
            raise IndexError("PSN queue empty")
        value = self._slots[self.head]
        self.head = (self.head + 1) % self.capacity
        self._size -= 1
        return value

    def find_tpsn(self, epsn: int) -> Optional[int]:
        """Dequeue until the first PSN larger than ``epsn`` (the tPSN).

        Returns the truncated tPSN, or ``None`` if the queue drained
        without finding one (queue undersized or NACK raced the data).
        The matching entry itself is consumed, exactly like the switch
        example in Fig. 4b where both the scanned and matched entries
        leave the queue.
        """
        target = self.truncate(epsn)
        while self._size:
            candidate = self.dequeue()
            if self._greater(candidate, target):
                return candidate
        return None

    def contains(self, psn: int) -> bool:
        """Non-consuming membership scan (truncated equality).

        Used by the NACK-compensation arming guard: if the blocked ePSN's
        packet is still in the ring it already traversed the ToR (the
        last-hop FIFO cannot reorder), so it is not lost and compensation
        must not arm.  Same O(capacity) cost class as :meth:`find_tpsn`.
        """
        target = self.truncate(psn)
        for i in range(self._size):
            if self._slots[(self.head + i) % self.capacity] == target:
                return True
        return False

    def snapshot(self) -> list[int]:
        """Entries in FIFO order (oldest first) — used by tests."""
        return [self._slots[(self.head + i) % self.capacity]
                for i in range(self._size)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"PsnRingQueue(cap={self.capacity}, size={self._size}, "
                f"head={self.head}, tail={self.tail})")
