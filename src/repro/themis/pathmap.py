"""PathMap construction for multi-tier fabrics (§3.2, Fig. 3).

In a 2-tier Clos the source ToR fully determines the path, so Themis-S can
pick the uplink directly.  In 3-tier fabrics the downstream (aggregation)
switches hash independently, so Themis-S instead *rewrites the UDP source
port*: because commodity ECMP hashes are linear in the header words
(Zhang et al., ATC'21 [37]), a precomputed table of port deltas — the
PathMap — deterministically steers a packet onto any of the ``N``
equal-cost paths.

This module reproduces the offline construction against the simulator's
XOR-linear, per-switch-salted hash: :func:`trace_path` replays the exact
forwarding decisions a packet would experience, and :func:`build_pathmap`
searches the 16-bit delta space for ``N`` deltas reaching ``N`` distinct
fabric paths.  Delta 0 is always entry 0, so the base path serves residue
class 0.

Production deployments exploit full hash linearity to make one PathMap
serve every flow; with per-switch salts the map here is built per flow,
which preserves the mechanism (header rewriting at the source ToR only)
at equal switch memory cost.
"""

from __future__ import annotations

from typing import Sequence

from repro.net.packet import FlowKey, Packet, PacketType
from repro.net.topology import Topology
from repro.switch.lb import ecmp_index
from repro.switch.switch import Switch


def trace_path(topology: Topology, flow: FlowKey,
               udp_sport: int) -> tuple[str, ...]:
    """Fabric path (sequence of switch names) ECMP gives this header.

    Replays route lookup + hashed selection hop by hop without injecting
    a packet, mirroring :meth:`repro.switch.switch.Switch._select`.
    """
    probe = Packet(PacketType.DATA, flow, psn=0, payload_bytes=1,
                   udp_sport=udp_sport)
    switch: Switch = topology.nic_tor[flow.src]
    path: list[str] = []
    for _ in range(16):  # generous hop bound; Clos diameters are tiny
        path.append(switch.name)
        candidates = switch.routes.get(flow.dst)
        if not candidates:
            raise LookupError(f"{switch.name}: no route to {flow.dst}")
        if len(candidates) == 1:
            port = candidates[0]
        else:
            port = candidates[ecmp_index(probe, len(candidates),
                                         salt=switch.hash_salt,
                                         rot=switch.hash_rot)]
        peer = port.peer
        if not isinstance(peer, Switch):
            return tuple(path)  # reached the destination ToR's down port
        switch = peer
    raise RuntimeError("forwarding loop while tracing path")


def build_pathmap(topology: Topology, flow: FlowKey, base_sport: int,
                  n_paths: int) -> list[int]:
    """Search sport deltas realizing ``n_paths`` distinct fabric paths.

    Returns ``deltas`` where ``deltas[r]`` steers residue class ``r``;
    ``deltas[0] == 0`` (the unmodified header keeps the base path).
    Raises :class:`ValueError` if the fabric cannot realize that many
    distinct paths for this flow.
    """
    if n_paths < 1:
        raise ValueError("n_paths must be >= 1")
    deltas: list[int] = [0]
    seen = {trace_path(topology, flow, base_sport)}
    for delta in range(1, 1 << 16):
        if len(deltas) == n_paths:
            break
        path = trace_path(topology, flow, base_sport ^ delta)
        if path not in seen:
            seen.add(path)
            deltas.append(delta)
    if len(deltas) < n_paths:
        raise ValueError(
            f"only {len(deltas)} distinct paths reachable via sport "
            f"rewriting for {flow} (wanted {n_paths})")
    return deltas


def apply_pathmap(deltas: Sequence[int], base_sport: int, psn: int) -> int:
    """Header modification of Fig. 3 step 3: sport' = sport xor delta."""
    return base_sport ^ deltas[psn % len(deltas)]


def pathmap_memory_bytes(n_paths: int) -> int:
    """Each entry stores a 16-bit sport delta (§4)."""
    return n_paths * 2
