"""Analytical memory-overhead model (§4, Table 1).

Reproduces the paper's switch SRAM budget:

* Themis-S: ``M_PathMap = N_paths * 2 bytes``.
* Themis-D per QP: a 20-byte flow-table entry (13 B QP id + 3 B blocked
  ePSN + 1 B Valid + 3 B queue metadata) plus the ring queue of
  ``ceil(BW * RTT_last * F / MTU)`` one-byte truncated PSNs.
* Total: ``M_PathMap + M_QP * N_QP * N_NIC``.

With Table 1's reference values this lands at ~193 KB; see EXPERIMENTS.md
for the comparison against the paper's quoted SRAM fraction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

FLOW_ENTRY_QP_ID_BYTES = 13
FLOW_ENTRY_BEPSN_BYTES = 3
FLOW_ENTRY_VALID_BYTES = 1
FLOW_ENTRY_QUEUE_META_BYTES = 3
FLOW_ENTRY_BYTES = (FLOW_ENTRY_QP_ID_BYTES + FLOW_ENTRY_BEPSN_BYTES
                    + FLOW_ENTRY_VALID_BYTES + FLOW_ENTRY_QUEUE_META_BYTES)
QUEUE_ENTRY_BYTES = 1
PATHMAP_ENTRY_BYTES = 2
TOFINO_SRAM_BYTES = 64 * 1024 * 1024


@dataclass(frozen=True)
class MemoryParams:
    """Symbols of Table 1 with their reference values."""

    n_paths: int = 256
    bandwidth_bps: float = 400e9        # last-hop bandwidth BW
    rtt_last_s: float = 2e-6            # last-hop RTT
    n_nic: int = 16                     # NICs per ToR switch
    n_qp: int = 100                     # cross-rack QPs per RNIC
    mtu_bytes: int = 1500
    expansion_factor: float = 1.5       # F

    def __post_init__(self) -> None:
        if self.expansion_factor <= 1.0:
            raise ValueError("F must exceed 1 (§4)")
        if min(self.n_paths, self.n_nic, self.n_qp, self.mtu_bytes) <= 0:
            raise ValueError("all counts must be positive")


@dataclass(frozen=True)
class MemoryBreakdown:
    """Computed budget, all in bytes."""

    pathmap_bytes: int
    queue_entries: int
    per_qp_bytes: int
    total_bytes: int

    def total_kb(self) -> float:
        return self.total_bytes / 1000.0

    def sram_fraction(self, sram_bytes: int = TOFINO_SRAM_BYTES) -> float:
        return self.total_bytes / sram_bytes


def queue_entries(params: MemoryParams) -> int:
    """N_entries = ceil(BW * RTT_last * F / MTU), BW*RTT in bytes."""
    bdp_bytes = params.bandwidth_bps * params.rtt_last_s / 8.0
    return math.ceil(bdp_bytes * params.expansion_factor
                     / params.mtu_bytes)


def memory_overhead(params: MemoryParams = MemoryParams()
                    ) -> MemoryBreakdown:
    """Evaluate Eq. 4 of the paper."""
    pathmap = params.n_paths * PATHMAP_ENTRY_BYTES
    entries = queue_entries(params)
    per_qp = FLOW_ENTRY_BYTES + entries * QUEUE_ENTRY_BYTES
    total = pathmap + per_qp * params.n_qp * params.n_nic
    return MemoryBreakdown(pathmap_bytes=pathmap, queue_entries=entries,
                           per_qp_bytes=per_qp, total_bytes=total)
