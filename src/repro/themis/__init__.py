"""Themis: the paper's contribution — PSN spraying + NACK filtering."""

from repro.themis.audit import SwitchAudit, audit_network, audit_switch
from repro.themis.config import ThemisConfig
from repro.themis.dest import ThemisDest
from repro.themis.flow_table import FlowEntry, FlowTable
from repro.themis.memory import (FLOW_ENTRY_BYTES, MemoryBreakdown,
                                 MemoryParams, memory_overhead,
                                 queue_entries)
from repro.themis.pathmap import (apply_pathmap, build_pathmap,
                                  pathmap_memory_bytes, trace_path)
from repro.themis.ring_queue import PsnRingQueue
from repro.themis.source import ThemisSource

__all__ = [
    "ThemisConfig", "ThemisSource", "ThemisDest", "FlowTable", "FlowEntry",
    "PsnRingQueue", "MemoryParams", "MemoryBreakdown", "memory_overhead",
    "queue_entries", "FLOW_ENTRY_BYTES", "build_pathmap", "apply_pathmap",
    "trace_path", "pathmap_memory_bytes",
    "SwitchAudit", "audit_switch", "audit_network",
]
