"""Themis-D flow table (Fig. 4a).

One entry per cross-rack QP terminating under this ToR.  An entry bundles
the per-QP ring PSN queue (for tPSN identification, §3.3) with the
``BePSN``/``Valid`` pair that drives NACK compensation (§3.4), plus the
path count ``N`` the validation rule (Eq. 3) needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.net.packet import FlowKey
from repro.themis.ring_queue import PsnRingQueue


@dataclass
class FlowEntry:
    """State Themis-D keeps per cross-rack QP."""

    flow: FlowKey
    n_paths: int
    queue: PsnRingQueue
    blocked_epsn: Optional[int] = None   # BePSN
    valid: bool = False                  # compensation armed?
    # Bookkeeping (not part of the 20-byte hardware entry)
    nacks_blocked: int = 0
    nacks_forwarded: int = 0
    nacks_compensated: int = 0

    def same_path(self, psn_a: int, psn_b: int) -> bool:
        """Eq. 3: two PSNs map to the same path iff equal mod N."""
        return psn_a % self.n_paths == psn_b % self.n_paths


class FlowTable:
    """QP -> entry map with lazy creation.

    The paper populates entries by intercepting RNIC connection handshakes
    at the ToR; creating the entry on the QP's first data packet is the
    simulation equivalent (both happen before any NACK can exist).
    """

    def __init__(self) -> None:
        self._entries: dict[FlowKey, FlowEntry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, flow: FlowKey) -> Optional[FlowEntry]:
        return self._entries.get(flow)

    def get_or_create(self, flow: FlowKey, n_paths: int,
                      queue_capacity: int, psn_bits: int = 8) -> FlowEntry:
        entry = self._entries.get(flow)
        if entry is None:
            entry = FlowEntry(flow, n_paths,
                              PsnRingQueue(queue_capacity, psn_bits))
            self._entries[flow] = entry
        return entry

    def entries(self) -> list[FlowEntry]:
        return list(self._entries.values())
