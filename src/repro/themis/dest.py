"""Themis-D: NACK validation and compensation at the destination ToR.

Data path (§3.3): every cross-rack data packet heading to a local NIC has
its PSN pushed into the flow's ring PSN queue just before it leaves the
ToR, so the queue's FIFO order equals the NIC's arrival order.

NACK path (§3.3): a NACK from a local NIC carries only the receiver's
ePSN.  Themis-D recovers the trigger PSN (tPSN) by dequeuing the ring
until the first PSN greater than ePSN, then applies Eq. 3::

    valid  <=>  tPSN mod N == ePSN mod N

Valid NACKs (the expected packet's path also delivered a later PSN — the
expected packet is genuinely lost) are forwarded; invalid NACKs (skew
between different paths) are blocked.

Compensation (§3.4): blocking arms ``(BePSN, Valid)``.  If a later data
packet proves the blocked ePSN lost (same-path PSN above it arrives),
Themis-D crafts the NACK the RNIC can no longer produce; if the BePSN
packet itself shows up, compensation is disarmed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.net.packet import FlowKey, Packet, PacketType, nack_packet
from repro.net.port import Port
from repro.switch.switch import Middleware, Switch
from repro.themis.config import ThemisConfig
from repro.themis.flow_table import FlowEntry, FlowTable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.harness.metrics import Metrics


class ThemisDest(Middleware):
    """Destination-ToR middleware: block invalid NACKs, compensate."""

    def __init__(self, config: ThemisConfig, metrics: "Metrics", *,
                 n_paths_for: Callable[[FlowKey], int],
                 queue_capacity_for: Callable[[FlowKey], int]) -> None:
        self.config = config
        self.metrics = metrics
        self.n_paths_for = n_paths_for
        self.queue_capacity_for = queue_capacity_for
        self.table = FlowTable()
        self.enabled = True
        #: NACK-audit observability channel (repro.obs); None = disabled.
        self.rec = None

    def disable(self) -> None:
        """Link-failure fallback (§6): pass every packet through
        untouched — commodity NACK behaviour returns, matching the
        ECMP-mode source side.

        Armed compensation registers are explicitly cancelled (and
        traced) before the stage goes dark: a ``(BePSN, Valid)`` pair
        left dangling across a path failure would otherwise be silent
        state corruption — the audit could never explain what became of
        the armed decision.  The RNIC's own timeout still recovers the
        loss, exactly as in the paper's §6 fallback.
        """
        if self.enabled:
            self._flush_armed("path_failure_disable")
        self.enabled = False

    def _flush_armed(self, reason: str) -> None:
        """Cancel every armed compensation register, with trace events."""
        switch = getattr(self, "switch", None)
        for entry in self.table.entries():
            if not entry.valid:
                continue
            entry.valid = False
            self.metrics.themis.compensation_cancelled += 1
            if self.rec is not None and switch is not None:
                self.rec.nack_cancel(switch.sim.now, switch.name,
                                     entry.flow, entry.blocked_epsn,
                                     reason)

    def enable(self) -> None:
        """Re-arm after the fabric heals; stale per-QP state is dropped
        (path counts may have changed)."""
        self.enabled = True
        self.table = FlowTable()

    # ------------------------------------------------------------------
    def on_packet(self, switch: Switch, packet: Packet,
                  in_port: Optional[Port]) -> bool:
        if not self.enabled:
            return True
        if (packet.is_data
                and packet.flow.dst in switch.down_nics
                and packet.flow.src not in switch.down_nics):
            self._on_data_to_nic(switch, packet)
            return True
        if (packet.ptype is PacketType.NACK
                and not packet.themis_generated
                and packet.flow.src in switch.down_nics
                and packet.flow.dst not in switch.down_nics):
            return self._on_nack_from_nic(switch, packet)
        return True

    # ------------------------------------------------------------------
    # Data path: PSN caching + compensation checks
    # ------------------------------------------------------------------
    def _entry_for(self, flow: FlowKey) -> FlowEntry:
        entry = self.table.get(flow)
        if entry is not None:
            return entry
        n_paths = self.n_paths_for(flow)
        capacity = self.queue_capacity_for(flow)
        psn_bits = self.config.psn_bits
        # Truncated mod-N comparison is only exact when N divides the
        # truncated space; fall back to full PSNs otherwise.
        if (1 << psn_bits) % n_paths != 0:
            psn_bits = 32
        return self.table.get_or_create(flow, n_paths, capacity, psn_bits)

    def _on_data_to_nic(self, switch: Switch, packet: Packet) -> None:
        entry = self._entry_for(packet.flow)
        if self.config.enable_compensation and entry.valid:
            self._compensation_check(switch, entry, packet.psn)
        before = entry.queue.overflows
        entry.queue.enqueue(packet.psn)
        if entry.queue.overflows > before:
            self.metrics.themis.queue_overflows += 1

    def _compensation_check(self, switch: Switch, entry: FlowEntry,
                            psn: int) -> None:
        bepsn = entry.blocked_epsn
        assert bepsn is not None
        if psn == bepsn:
            # The "lost" packet arrived after all: nothing to compensate.
            entry.valid = False
            self.metrics.themis.compensation_cancelled += 1
            if self.rec is not None:
                self.rec.nack_cancel(switch.sim.now, switch.name,
                                     entry.flow, bepsn, "bepsn_arrived")
            return
        if psn > bepsn and entry.same_path(psn, bepsn):
            # A later packet on the *same* path overtook the blocked ePSN:
            # it is genuinely lost.  Craft the NACK the RNIC cannot send.
            entry.valid = False
            entry.nacks_compensated += 1
            self.metrics.themis.nacks_compensated += 1
            if self.rec is not None:
                self.rec.nack_compensate(switch.sim.now, switch.name,
                                         entry.flow, bepsn, psn)
            nack = nack_packet(entry.flow, bepsn)
            nack.themis_generated = True
            switch.forward(nack)

    # ------------------------------------------------------------------
    # NACK path: tPSN identification + Eq. 3 validation
    # ------------------------------------------------------------------
    def _on_nack_from_nic(self, switch: Switch, packet: Packet) -> bool:
        if not self.config.enable_validation:
            return True
        data_flow = packet.flow.reversed()
        entry = self.table.get(data_flow)
        self.metrics.themis.nacks_inspected += 1
        rec = self.rec
        if entry is None:
            # No state (e.g. NACK before any data was seen) — be
            # conservative and behave like a vanilla switch.
            self.metrics.themis.tpsn_not_found += 1
            self.metrics.themis.nacks_forwarded += 1
            if rec is not None:
                rec.nack_classify(switch.sim.now, switch.name, data_flow,
                                  packet.epsn, "no_state")
            return True
        tpsn = entry.queue.find_tpsn(packet.epsn)
        if tpsn is None:
            self.metrics.themis.tpsn_not_found += 1
            self.metrics.themis.nacks_forwarded += 1
            entry.nacks_forwarded += 1
            if rec is not None:
                rec.nack_classify(switch.sim.now, switch.name, data_flow,
                                  packet.epsn, "no_tpsn",
                                  n_paths=entry.n_paths,
                                  ring_len=len(entry.queue))
            return True
        # Eq. 3 in the (possibly truncated) PSN space: psn_bits is chosen
        # so that 2^bits is a multiple of N, making the residue exact.
        epsn_trunc = entry.queue.truncate(packet.epsn)
        if entry.same_path(tpsn, epsn_trunc):
            self.metrics.themis.nacks_forwarded += 1
            entry.nacks_forwarded += 1
            if rec is not None:
                rec.nack_classify(switch.sim.now, switch.name, data_flow,
                                  packet.epsn, "forwarded", tpsn=tpsn,
                                  n_paths=entry.n_paths,
                                  ring_len=len(entry.queue))
            return True
        self.metrics.themis.nacks_blocked += 1
        entry.nacks_blocked += 1
        armed = False
        guard = None
        if self.config.enable_compensation:
            # Arming guard: the NACK is one last-hop RTT stale.  If the
            # expected packet already traversed the ToR it sits in the
            # ring *behind* the trigger (the trigger always passes the
            # ToR first, and the last-hop FIFO preserves order), so it is
            # provably not lost and compensation would only ever fire
            # spuriously.  Arm only when the ePSN is absent.
            if entry.queue.contains(packet.epsn):
                self.metrics.themis.compensation_cancelled += 1
                guard = "epsn_in_ring"
            else:
                if rec is not None and entry.valid \
                        and entry.blocked_epsn != packet.epsn:
                    # One (BePSN, Valid) register per flow: a new arming
                    # quietly replaces the previous one.
                    rec.nack_cancel(switch.sim.now, switch.name,
                                    data_flow, entry.blocked_epsn,
                                    "superseded")
                entry.blocked_epsn = packet.epsn
                entry.valid = True
                armed = True
        else:
            guard = "compensation_disabled"
        if rec is not None:
            rec.nack_classify(switch.sim.now, switch.name, data_flow,
                              packet.epsn, "blocked", tpsn=tpsn,
                              n_paths=entry.n_paths,
                              ring_len=len(entry.queue), armed=armed,
                              guard=guard)
        return False
