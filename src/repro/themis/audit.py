"""Deployed-state audit: measured switch memory vs the §4 model.

The §4 estimate assumes a worst-case QP census; a running fabric lets us
*count* the state Themis actually allocated (flow-table entries, ring
capacities) and price it with the same per-entry constants.  The audit
bench compares the two, closing the loop between the analytical model
and the implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.themis.dest import ThemisDest
from repro.themis.memory import FLOW_ENTRY_BYTES, PATHMAP_ENTRY_BYTES, \
    QUEUE_ENTRY_BYTES
from repro.themis.source import ThemisSource

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.switch.switch import Switch


@dataclass(frozen=True)
class SwitchAudit:
    """Measured Themis state on one ToR."""

    switch_name: str
    flow_entries: int
    queue_entry_slots: int
    pathmap_entries: int

    @property
    def dest_bytes(self) -> int:
        return (self.flow_entries * FLOW_ENTRY_BYTES
                + self.queue_entry_slots * QUEUE_ENTRY_BYTES)

    @property
    def source_bytes(self) -> int:
        return self.pathmap_entries * PATHMAP_ENTRY_BYTES

    @property
    def total_bytes(self) -> int:
        return self.dest_bytes + self.source_bytes


def audit_switch(switch: "Switch") -> SwitchAudit:
    """Price the Themis state currently held by one switch."""
    flow_entries = 0
    queue_slots = 0
    pathmap_entries = 0
    for mw in switch.middleware:
        if isinstance(mw, ThemisDest):
            for entry in mw.table.entries():
                flow_entries += 1
                # Entries using widened PSNs (non-power-of-two N) are
                # priced at their actual width.
                width_bytes = max(1, entry.queue.psn_bits // 8)
                queue_slots += entry.queue.capacity * width_bytes
        elif isinstance(mw, ThemisSource):
            if mw.config.spray_mode == "pathmap":
                pathmap_entries += sum(len(pm) for pm
                                       in mw._pathmaps.values())
            else:
                # Direct mode keeps one base-path word per flow instead
                # of a PathMap; price it like one entry per flow.
                pathmap_entries += len(mw._base_cache)
    return SwitchAudit(switch.name, flow_entries, queue_slots,
                       pathmap_entries)


def audit_network(network) -> list[SwitchAudit]:
    """Audit every ToR of a :class:`repro.harness.network.Network`."""
    return [audit_switch(tor) for tor in network.topology.tors]
