"""Themis-S: PSN-based packet spraying at the source ToR (§3.2).

For every cross-rack data packet entering the fabric from a locally
attached NIC, Themis-S deterministically assigns the path

    path_i = (PSN_i mod N + P_base) mod N                         (Eq. 1)

where ``P_base`` is the index plain ECMP would have chosen for the flow
(so un-sprayed and sprayed deployments share the same base path layout).

Two realizations:

* ``direct`` — 2-tier Clos: the ToR picks uplink ``path_i`` directly.
* ``pathmap`` — multi-tier: the packet's UDP source port is rewritten
  through the flow's PathMap so every downstream linear-ECMP hop becomes
  a deterministic function of ``PSN mod N`` (Fig. 3).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional, Sequence

from repro.net.packet import FlowKey, Packet
from repro.net.port import Port
from repro.switch.lb import ecmp_index
from repro.switch.switch import Middleware, Switch
from repro.themis.config import ThemisConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.harness.metrics import Metrics

#: pathmap mode: callable resolving a flow + base sport to its delta table.
PathmapProvider = Callable[[FlowKey, int], Sequence[int]]


class ThemisSource(Middleware):
    """Source-ToR middleware enforcing PSN-based spraying."""

    def __init__(self, config: ThemisConfig,
                 metrics: "Metrics | None" = None,
                 pathmap_provider: Optional[PathmapProvider] = None) -> None:
        self.config = config
        self.metrics = metrics
        self.pathmap_provider = pathmap_provider
        if config.spray_mode == "pathmap" and pathmap_provider is None:
            raise ValueError("pathmap mode needs a pathmap_provider")
        self.packets_sprayed = 0
        self.enabled = True
        self._base_cache: dict[FlowKey, int] = {}
        self._pathmaps: dict[FlowKey, Sequence[int]] = {}

    def disable(self) -> None:
        """Link-failure fallback (§6): stop spraying; the switch's
        configured LB (ECMP in themis deployments) takes over."""
        self.enabled = False

    def enable(self) -> None:
        """Re-arm after the fabric heals.  Base-path and PathMap caches
        are dropped: route candidate sets may have changed."""
        self.enabled = True
        self._base_cache.clear()
        self._pathmaps.clear()

    # ------------------------------------------------------------------
    def _is_spray_candidate(self, switch: Switch, packet: Packet) -> bool:
        """Cross-rack data entering the fabric at this ToR?"""
        return (packet.is_data
                and packet.flow.src in switch.down_nics
                and packet.flow.dst not in switch.down_nics)

    # ------------------------------------------------------------------
    # pathmap mode: header rewrite at ingress
    # ------------------------------------------------------------------
    def on_packet(self, switch: Switch, packet: Packet,
                  in_port: Optional[Port]) -> bool:
        if (self.enabled and self.config.spray_mode == "pathmap"
                and self._is_spray_candidate(switch, packet)):
            pathmap = self._pathmaps.get(packet.flow)
            if pathmap is None:
                assert self.pathmap_provider is not None
                pathmap = self.pathmap_provider(packet.flow,
                                                packet.udp_sport)
                self._pathmaps[packet.flow] = pathmap
            residue = packet.psn % len(pathmap)
            packet.udp_sport ^= pathmap[residue]
            packet.path_index = residue
            self.packets_sprayed += 1
        return True

    # ------------------------------------------------------------------
    # direct mode: uplink selection override
    # ------------------------------------------------------------------
    def select_port(self, switch: Switch, packet: Packet,
                    candidates: Sequence[Port]) -> Optional[Port]:
        if not self.enabled:
            return None
        if self.config.spray_mode != "direct":
            return None  # rewritten header steers downstream ECMP instead
        if not self._is_spray_candidate(switch, packet):
            return None
        n = len(candidates)
        base = self._base_cache.get(packet.flow)
        if base is None:
            # P_base: the path ECMP would give this flow's (stable) header.
            base = ecmp_index(packet, n, salt=switch.hash_salt,
                              rot=switch.hash_rot)
            self._base_cache[packet.flow] = base
        index = (packet.psn % n + base) % n
        packet.path_index = index
        self.packets_sprayed += 1
        return candidates[index]
