"""Property tests (hypothesis) for the calendar-queue engine.

The hybrid engine has three regimes an event can land in — the draining
cursor bucket, a future calendar bucket, and the overflow heap — plus two
migration moments (cursor advance, window jump).  These tests generate
random schedules that straddle all of the boundaries and assert the one
property everything else rests on: the calendar engine executes the exact
``(time, seq)`` sequence the reference heap engine does.

The delay strategy is deliberately lumpy: with the default geometry
(64 ns x 4096 buckets) the calendar window is 262,144 ns, so delays are
drawn from bands below, around, and far above that horizon.
"""

from hypothesis import given, settings, strategies as st

from repro.sim.engine import (DEFAULT_BUCKET_NS, DEFAULT_N_BUCKETS,
                              HeapSimulator, Simulator)

HORIZON_NS = DEFAULT_BUCKET_NS * DEFAULT_N_BUCKETS

#: Bands: same-bucket, near future, just below/above the window edge,
#: deep overflow (forces window jumps across empty stretches).
delays = st.one_of(
    st.integers(0, 2 * DEFAULT_BUCKET_NS),
    st.integers(0, HORIZON_NS // 4),
    st.integers(HORIZON_NS - 200, HORIZON_NS + 200),
    st.integers(2 * HORIZON_NS, 20 * HORIZON_NS),
)


def _run_program(sim_cls, initial, cancels, respawns):
    """Execute one generated schedule program; return the event log.

    ``initial`` seeds the queue; each executed callback consumes one
    entry of ``respawns`` to schedule a follow-up (inserts *during*
    drain, including into the currently-draining cursor bucket), and
    ``cancels`` marks initial handles to cancel before running.
    """
    sim = sim_cls()
    log = []
    sim.trace = lambda time, seq, callback: log.append((time, seq))
    state = {"next": 0}

    def callback(label):
        i = state["next"]
        if i < len(respawns):
            state["next"] = i + 1
            delay, use_fire = respawns[i]
            if use_fire:
                sim.fire(delay, callback, ("respawn", i))
            else:
                sim.schedule(delay, callback, ("respawn", i))

    handles = []
    for i, (delay, use_fire) in enumerate(initial):
        if use_fire:
            sim.fire(delay, callback, ("init", i))
            handles.append(None)          # fire entries have no handle
        else:
            handles.append(sim.schedule(delay, callback, ("init", i)))
    for i in cancels:
        handle = handles[i % len(handles)]
        if handle is not None:
            handle.cancel()
    sim.run()
    return log


@settings(max_examples=60, deadline=None)
@given(initial=st.lists(st.tuples(delays, st.booleans()),
                        min_size=1, max_size=40),
       cancels=st.lists(st.integers(0, 1_000), max_size=15),
       respawns=st.lists(st.tuples(delays, st.booleans()), max_size=30))
def test_calendar_matches_heap_for_random_programs(initial, cancels,
                                                   respawns):
    calendar_log = _run_program(Simulator, initial, cancels, respawns)
    heap_log = _run_program(HeapSimulator, initial, cancels, respawns)
    assert calendar_log == heap_log


@settings(max_examples=40, deadline=None)
@given(bucket_ns=st.integers(1, 256), n_buckets=st.integers(2, 64),
       initial=st.lists(st.tuples(st.integers(0, 50_000), st.booleans()),
                        min_size=1, max_size=40),
       respawns=st.lists(st.tuples(st.integers(0, 50_000), st.booleans()),
                         max_size=20))
def test_order_holds_for_tiny_geometries(bucket_ns, n_buckets, initial,
                                         respawns):
    """Shrunken rings force constant cursor wraps and window jumps."""
    def run_small(_unused):
        sim = Simulator(bucket_ns=bucket_ns, n_buckets=n_buckets)
        log = []
        sim.trace = lambda time, seq, callback: log.append((time, seq))
        state = {"next": 0}

        def callback(label):
            i = state["next"]
            if i < len(respawns):
                state["next"] = i + 1
                delay, use_fire = respawns[i]
                if use_fire:
                    sim.fire(delay, callback, i)
                else:
                    sim.schedule(delay, callback, i)

        for i, (delay, use_fire) in enumerate(initial):
            if use_fire:
                sim.fire(delay, callback, i)
            else:
                sim.schedule(delay, callback, i)
        sim.run()
        return log

    small_log = run_small(None)
    heap_log = _run_program(HeapSimulator, initial, [], respawns)
    assert small_log == heap_log


@settings(max_examples=20, deadline=None)
@given(n=st.integers(520, 1200), keep_every=st.integers(2, 9))
def test_overflow_compaction_drops_tombstones(n, keep_every):
    """Cancelled far-future timers must not grow the overflow heap
    without bound, and survivors must still run in order."""
    sim = Simulator()
    far = 10 * HORIZON_NS
    handles = [sim.schedule(far + i, lambda: None) for i in range(n)]
    live = 0
    for i, handle in enumerate(handles):
        if i % keep_every:
            handle.cancel()
        else:
            live += 1
    # Each new push may trigger compaction once tombstones dominate.
    for i in range(600):
        sim.schedule(far + n + i, lambda: None)
    live += 600
    # The lazy-compaction bound: at most max(512, 2 * live) retained
    # entries immediately after a compaction, plus what was pushed since.
    assert len(sim._overflow) <= max(512, 2 * live) + 600
    assert sim.run() == live


def test_compaction_preserves_fire_entries():
    """fire() entries have no cancelled flag; compaction must keep them."""
    sim = Simulator()
    ran = []
    far = 10 * HORIZON_NS
    for i in range(300):
        sim.fire(far + i, ran.append, i)
    doomed = [sim.schedule(far + 1000 + i, lambda: None)
              for i in range(600)]
    for handle in doomed:
        handle.cancel()
    for i in range(300):  # pushes that trigger compaction
        sim.fire(far + 2000 + i, ran.append, 300 + i)
    sim.run()
    assert ran == list(range(600))
