"""Unit tests for time-series instrumentation."""

import pytest

from repro.obs.timeseries import RateMeter, TimeSeries, WindowedCounter, summarize


class TestTimeSeries:
    def test_record_and_accessors(self):
        ts = TimeSeries("x")
        ts.record(10, 1.0)
        ts.record(20, 3.0)
        assert len(ts) == 2
        assert ts.times() == [10, 20]
        assert ts.values() == [1.0, 3.0]

    def test_mean_empty_is_zero(self):
        assert TimeSeries().mean() == 0.0

    def test_mean(self):
        ts = TimeSeries()
        for t, v in [(0, 2.0), (1, 4.0), (2, 6.0)]:
            ts.record(t, v)
        assert ts.mean() == pytest.approx(4.0)

    def test_time_weighted_mean(self):
        ts = TimeSeries()
        ts.record(0, 10.0)    # holds for 90 ns
        ts.record(90, 0.0)    # final sample, zero weight
        assert ts.time_weighted_mean() == pytest.approx(10.0)

    def test_time_weighted_mean_weights_by_duration(self):
        ts = TimeSeries()
        ts.record(0, 100.0)   # 10 ns
        ts.record(10, 0.0)    # 90 ns
        ts.record(100, 50.0)  # terminal
        assert ts.time_weighted_mean() == pytest.approx(10.0)

    def test_time_weighted_falls_back_with_one_sample(self):
        ts = TimeSeries()
        ts.record(5, 7.0)
        assert ts.time_weighted_mean() == 7.0


class TestWindowedCounter:
    def test_window_validation(self):
        with pytest.raises(ValueError):
            WindowedCounter(0)

    def test_counts_bucket_by_window(self):
        wc = WindowedCounter(100)
        wc.add(10)
        wc.add(99)
        wc.add(100)
        wc.add(250)
        assert wc.series() == [(0, 2.0), (100, 1.0), (200, 1.0)]
        assert wc.total() == 4.0

    def test_weighted_amounts(self):
        wc = WindowedCounter(10)
        wc.add(0, 2.5)
        wc.add(5, 2.5)
        assert wc.series() == [(0, 5.0)]

    def test_ratio_series(self):
        num = WindowedCounter(10)
        den = WindowedCounter(10)
        for t in range(0, 30):
            den.add(t)
        num.add(5)
        num.add(15)
        num.add(16)
        ratios = dict(WindowedCounter.ratio_series(num, den))
        assert ratios[0] == pytest.approx(0.1)
        assert ratios[10] == pytest.approx(0.2)
        assert 20 not in ratios  # numerator empty there

    def test_ratio_series_requires_matching_windows(self):
        with pytest.raises(ValueError):
            WindowedCounter.ratio_series(WindowedCounter(10),
                                         WindowedCounter(20))


class TestRateMeter:
    def test_series_gbps(self):
        meter = RateMeter(1_000)  # 1 us windows
        meter.add_bytes(0, 125)   # 1000 bits in 1 us = 1 Gbps
        series = meter.series_gbps()
        assert series == [(0, pytest.approx(1.0))]

    def test_mean_gbps_over_span(self):
        meter = RateMeter(1_000)
        meter.add_bytes(0, 125)
        meter.add_bytes(1_000, 125)
        # 2000 bits over 2 us = 1 Gbps
        assert meter.mean_gbps(0, 2_000) == pytest.approx(1.0)

    def test_empty_meter(self):
        meter = RateMeter(1_000)
        assert meter.series_gbps() == []
        assert meter.mean_gbps() == 0.0


def test_summarize():
    stats = summarize([3.0, 1.0, 2.0])
    assert stats == {"count": 3, "min": 1.0, "mean": 2.0, "max": 3.0}
    assert summarize([])["count"] == 0
