"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import MS, NS, SEC, US, SimulationError, Simulator


def test_time_constants():
    assert NS == 1
    assert US == 1_000
    assert MS == 1_000_000
    assert SEC == 1_000_000_000


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(30, order.append, "c")
        sim.schedule(10, order.append, "a")
        sim.schedule(20, order.append, "b")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_run_in_schedule_order(self):
        sim = Simulator()
        order = []
        for label in "abcde":
            sim.schedule(5, order.append, label)
        sim.run()
        assert order == list("abcde")

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(42, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [42]
        assert sim.now == 42

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(100, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [100]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1, lambda: None)

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(10, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(5, lambda: None)

    def test_nested_scheduling_from_callback(self):
        sim = Simulator()
        order = []

        def outer():
            order.append(("outer", sim.now))
            sim.schedule(5, inner)

        def inner():
            order.append(("inner", sim.now))

        sim.schedule(10, outer)
        sim.run()
        assert order == [("outer", 10), ("inner", 15)]


class TestCancellation:
    def test_cancelled_event_does_not_run(self):
        sim = Simulator()
        ran = []
        event = sim.schedule(10, ran.append, 1)
        event.cancel()
        sim.run()
        assert ran == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        event = sim.schedule(10, lambda: None)
        event.cancel()
        event.cancel()
        sim.run()

    def test_cancel_one_of_many(self):
        sim = Simulator()
        ran = []
        keep = sim.schedule(10, ran.append, "keep")
        drop = sim.schedule(10, ran.append, "drop")
        drop.cancel()
        sim.run()
        assert ran == ["keep"]
        assert not keep.cancelled


class TestFire:
    def test_fire_runs_callback_with_arg(self):
        sim = Simulator()
        seen = []
        sim.fire(10, seen.append, "x")
        sim.run()
        assert seen == ["x"] and sim.now == 10

    def test_fire_orders_with_scheduled_events(self):
        sim = Simulator()
        order = []
        sim.schedule(5, order.append, "event@5")
        sim.fire(5, order.append, "fire@5")
        sim.fire(3, order.append, "fire@3")
        sim.schedule(7, order.append, "event@7")
        sim.run()
        # Ties break by schedule order across both entry kinds.
        assert order == ["fire@3", "event@5", "fire@5", "event@7"]

    def test_fire_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.fire(-1, lambda _: None)

    def test_fire_respects_end_time(self):
        sim = Simulator(end_time=50)
        ran = []
        sim.fire(100, ran.append, 1)
        assert sim.run() == 0
        assert ran == [] and sim.pending == 1


class TestRunControl:
    def test_run_until_stops_clock_at_bound(self):
        sim = Simulator()
        ran = []
        sim.schedule(10, ran.append, "early")
        sim.schedule(100, ran.append, "late")
        sim.run(until=50)
        assert ran == ["early"]
        assert sim.now == 50
        sim.run()
        assert ran == ["early", "late"]

    def test_run_until_advances_clock_when_queue_drains(self):
        # The queue empties before the bound: the caller must still
        # observe now == until, same as the early-break case.
        sim = Simulator()
        sim.schedule(10, lambda: None)
        assert sim.run(until=500) == 1
        assert sim.now == 500
        sim = Simulator()
        assert sim.run(until=300) == 0   # nothing scheduled at all
        assert sim.now == 300

    def test_pending_counts_calendar_and_overflow(self):
        sim = Simulator()
        sim.schedule(10, lambda: None)           # calendar
        sim.fire(20, lambda _: None)             # calendar, fire entry
        sim.schedule(10**9, lambda: None)        # overflow heap
        assert sim.pending == 3
        sim.run()
        assert sim.pending == 0

    def test_end_time_blocks_late_events(self):
        sim = Simulator(end_time=50)
        ran = []
        sim.schedule(100, ran.append, 1)
        assert sim.run() == 0
        assert ran == []

    def test_step_executes_single_event(self):
        sim = Simulator()
        ran = []
        sim.schedule(1, ran.append, "a")
        sim.schedule(2, ran.append, "b")
        assert sim.step()
        assert ran == ["a"]
        assert sim.step()
        assert not sim.step()

    def test_executed_counter(self):
        sim = Simulator()
        for i in range(7):
            sim.schedule(i, lambda: None)
        sim.run()
        assert sim.executed == 7

    def test_run_is_not_reentrant(self):
        sim = Simulator()
        errors = []

        def reenter():
            try:
                sim.run()
            except SimulationError as exc:
                errors.append(exc)

        sim.schedule(1, reenter)
        sim.run()
        assert len(errors) == 1

    def test_run_returns_executed_count(self):
        sim = Simulator()
        sim.schedule(1, lambda: None)
        sim.schedule(2, lambda: None)
        assert sim.run() == 2


def test_determinism_two_identical_runs():
    def build():
        sim = Simulator()
        log = []

        def tick(n):
            log.append((sim.now, n))
            if n < 20:
                sim.schedule(n % 3 + 1, tick, n + 1)

        sim.schedule(0, tick, 0)
        sim.run()
        return log

    assert build() == build()
