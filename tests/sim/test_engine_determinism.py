"""Golden determinism test: calendar engine vs. the seed heap engine.

Runs one seeded spray workload on a 2-ToR leaf-spine fabric twice — once
on the default :class:`Simulator` (bucketed calendar queue) and once on
:class:`HeapSimulator` (the seed heapq engine kept as the reference
implementation) — recording every executed event's ``(time, seq,
callback name)`` through the engines' ``trace`` hook.  The two sequences
must be **bit-identical**: that is the determinism contract the calendar
engine's bucket geometry was designed around (disjoint windows, per-bucket
``(time, seq)`` order, lockstep ``seq`` consumption in ``fire``).

A golden SHA-256 of the sequence is also pinned.  It guards against
*accidental* behaviour drift (an engine edit that changes execution order,
an RNG stream reshuffle); a PR that intentionally changes the event
sequence should re-pin the hash in the same commit and say why.
"""

import hashlib

from repro.harness.network import Network, NetworkConfig, TopologySpec
from repro.sim.engine import HeapSimulator, MS, US

#: SHA-256 of the (time, seq, callback-name) event sequence of the
#: workload below.  Re-pin deliberately, never to "make the test pass".
#: Re-pinned for the batched-dispatch PR: packet deliveries now dispatch
#: straight into the peer's ``receive`` via ``fire2`` (traced callback
#: name changed from ``Port._deliver`` to ``Switch.receive``/
#: ``Rnic.receive`` at the same (time, seq)), and the sender RTO timer
#: became lazy (one calendar event per RTO span instead of a
#: cancel+schedule per ACK, shifting ``seq`` allocation).  Flow
#: completion times and RNG substreams are unchanged; both engines agree
#: on the new sequence (see test_engines_execute_identical_sequences).
GOLDEN_SHA256 = ("3e949d77f60f1f9f89739d5d2c8f4b3f"
                 "aae3738fc533b31810b3f6397977230e")


def _run_traced(sim):
    """Run the golden workload on ``sim``; return the event sequence."""
    topo = TopologySpec(kind="leaf_spine", num_tors=2, num_spines=2,
                        nics_per_tor=2, link_bandwidth_bps=100e9,
                        link_delay_ns=US)
    net = Network(NetworkConfig(topology=topo, scheme="rps",
                                transport="nic_sr", seed=11), sim=sim)
    log = []

    def trace(time, seq, callback):
        log.append((time, seq, getattr(callback, "__qualname__",
                                       repr(callback))))

    net.sim.trace = trace
    # Cross-ToR spray traffic in both directions plus one same-ToR flow,
    # sizes chosen to span several pacing windows and delayed-ACK rounds.
    for qp, (src, dst) in enumerate(((0, 2), (1, 3), (2, 1), (3, 0),
                                     (0, 1))):
        net.post_message(src, dst, 60_000, qp=qp)
    net.run(until_ns=5 * MS)
    net.stop()
    return log


def test_engines_execute_identical_sequences():
    calendar_log = _run_traced(None)          # default calendar engine
    heap_log = _run_traced(HeapSimulator())
    assert len(calendar_log) > 1_000          # the workload is non-trivial
    # Compare in slices so a failure points at the first divergence
    # instead of dumping two huge lists.
    if calendar_log != heap_log:
        for i, (a, b) in enumerate(zip(calendar_log, heap_log)):
            assert a == b, (f"first divergence at event {i}: "
                            f"calendar={a} heap={b}")
        raise AssertionError(
            f"common prefix identical but lengths differ: "
            f"calendar={len(calendar_log)} heap={len(heap_log)}")


def test_golden_hash_pinned():
    log = _run_traced(None)
    digest = hashlib.sha256(
        "\n".join(f"{t} {s} {n}" for t, s, n in log).encode()).hexdigest()
    if GOLDEN_SHA256 is None:
        raise AssertionError(
            f"golden hash not pinned yet — set GOLDEN_SHA256 = {digest!r}")
    assert digest == GOLDEN_SHA256, (
        "event sequence changed — if intentional, re-pin GOLDEN_SHA256 "
        f"to {digest!r} and explain the behaviour change in the commit")
