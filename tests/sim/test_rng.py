"""Unit tests for the deterministic RNG."""

from repro.sim.rng import SimRng


def test_same_seed_same_stream():
    a = SimRng(7)
    b = SimRng(7)
    assert [a.randint(0, 100) for _ in range(20)] \
        == [b.randint(0, 100) for _ in range(20)]


def test_different_seeds_differ():
    a = [SimRng(1).randint(0, 1 << 30) for _ in range(5)]
    b = [SimRng(2).randint(0, 1 << 30) for _ in range(5)]
    assert a != b


def test_fork_is_label_stable():
    assert SimRng(3).fork("portA").randint(0, 1 << 30) \
        == SimRng(3).fork("portA").randint(0, 1 << 30)


def test_fork_labels_are_independent():
    root = SimRng(3)
    assert root.fork("a").seed != root.fork("b").seed


def test_fork_order_does_not_matter():
    r1 = SimRng(5)
    a_first = r1.fork("a").seed
    r2 = SimRng(5)
    r2.fork("zzz")
    assert r2.fork("a").seed == a_first


def test_choice_in_range():
    rng = SimRng(11)
    picks = {rng.choice(4) for _ in range(200)}
    assert picks == {0, 1, 2, 3}


def test_random_unit_interval():
    rng = SimRng(13)
    vals = [rng.random() for _ in range(100)]
    assert all(0.0 <= v < 1.0 for v in vals)


def test_exponential_positive_mean():
    rng = SimRng(17)
    vals = [rng.exponential(10.0) for _ in range(2000)]
    assert all(v >= 0 for v in vals)
    assert 8.0 < sum(vals) / len(vals) < 12.0


def test_shuffled_is_permutation():
    rng = SimRng(19)
    items = list(range(10))
    out = rng.shuffled(items)
    assert sorted(out) == items
    assert items == list(range(10))  # input untouched
