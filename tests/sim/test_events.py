"""Unit tests for Event primitives."""

from repro.sim.events import Event


class TestOrdering:
    def test_time_orders_first(self):
        early = Event(10, 5, lambda: None, ())
        late = Event(20, 1, lambda: None, ())
        assert early < late
        assert not late < early

    def test_seq_breaks_ties(self):
        first = Event(10, 1, lambda: None, ())
        second = Event(10, 2, lambda: None, ())
        assert first < second


class TestCancel:
    def test_cancel_releases_references(self):
        """Cancelled events pinned in the heap must not keep packet
        graphs alive (they are lazily discarded)."""
        payload = object()
        event = Event(5, 0, lambda x: None, (payload,))
        event.cancel()
        assert event.cancelled
        assert event.args == ()
        # The callback is swapped for a no-op and stays callable.
        event.callback()

    def test_double_cancel_safe(self):
        event = Event(5, 0, lambda: None, ())
        event.cancel()
        event.cancel()
        assert event.cancelled
