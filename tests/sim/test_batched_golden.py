"""Golden equality: batched dispatch vs. the heap reference engine.

``Simulator.run_batched`` drains whole calendar buckets per step (one
sort per claimed bucket, same-timestamp events folded into a single
dispatch loop).  These tests pin its determinism contract on every
benchmark scenario plus a fault-injected run: the **event sequence**
(time, seq, callback qualname), the **flow-level outcomes**
(completions, posted bytes, retransmissions), the **per-port busy
time**, and the **RNG stream positions** must all be bit-identical to
the seed heapq engine executing the same workload.

The bench builders are reused in quick mode so the workloads are the
exact (scaled-down) geometries the perf numbers are measured on.
"""

import pytest

from repro.harness.bench import BUILDERS, DEADLINE_NS
from repro.sim.engine import HeapSimulator


def _rng_digest(rng):
    """Position digest for a SimRng (or a raw ``random.Random``)."""
    gen = getattr(rng, "_gen", rng)
    return hash(gen.getstate())


def _fingerprint(net):
    """Deterministic digest of everything the engines must agree on."""
    flows = {}
    for flow, stats in sorted(net.metrics.flows.items(),
                              key=lambda kv: str(kv[0])):
        flows[str(flow)] = (stats.bytes_posted, stats.packets_sent,
                            stats.retransmissions, stats.sender_done_ns,
                            stats.receiver_done_ns)
    busy = {}
    for switch in net.topology.switches:
        for port in switch.ports:
            busy[port.name] = port.busy_ns
    rng = {"root": _rng_digest(net.rng)}
    for label, child in net.rng._substreams.items():
        rng[f"sub:{label}"] = _rng_digest(child)
    for nic in net.nics:
        busy[nic.uplink.name] = nic.uplink.busy_ns
        rng[f"nic{nic.nic_id}"] = _rng_digest(nic.rng)
        if nic.uplink._loss_rng is not None:
            rng[f"loss{nic.nic_id}"] = _rng_digest(nic.uplink._loss_rng)
    return {"flows": flows, "busy": busy, "rng": rng,
            "executed": net.sim.executed, "now": net.now_ns}


def _run(scenario, sim, faults=None):
    net = BUILDERS[scenario](True, sim, None)  # quick geometry, untraced
    log = []

    def trace(time, seq, callback):
        log.append((time, seq, getattr(callback, "__qualname__",
                                       repr(callback))))

    net.sim.trace = trace
    if faults is not None:
        faults(net).install()
    net.run(until_ns=DEADLINE_NS)
    net.stop()
    return log, _fingerprint(net)


@pytest.mark.parametrize("scenario", ["incast", "alltoall", "lossy"])
def test_batched_matches_heap_reference(scenario):
    batched_log, batched_fp = _run(scenario, None)
    heap_log, heap_fp = _run(scenario, HeapSimulator())
    assert len(batched_log) > 1_000
    if batched_log != heap_log:
        for i, (a, b) in enumerate(zip(batched_log, heap_log)):
            assert a == b, (f"{scenario}: first divergence at event {i}: "
                            f"batched={a} heap={b}")
        raise AssertionError(
            f"{scenario}: common prefix identical but lengths differ: "
            f"batched={len(batched_log)} heap={len(heap_log)}")
    assert batched_fp == heap_fp


def test_batched_matches_heap_under_faults():
    """A mid-run link failure (reroute + RTO churn through the overflow
    tier) must not perturb batched/heap equality either."""
    from repro.faults.injector import FaultInjector
    from repro.faults.spec import LinkFlap, Scenario

    def make_faults(net):
        spec = Scenario("golden-flap", converge_us=0.0).add(
            LinkFlap(link="tor0:spine0", at_us=5.0, down_us=40.0))
        return FaultInjector(net, spec)

    batched_log, batched_fp = _run("lossy", None, faults=make_faults)
    heap_log, heap_fp = _run("lossy", HeapSimulator(), faults=make_faults)
    assert batched_log == heap_log
    assert batched_fp == heap_fp
