"""Campaign cells, resilience metrics, and determinism goldens."""

import json

from repro.faults.campaign import (campaign_specs, run_campaign, run_cell,
                                   validate_result)
from repro.faults.spec import LinkFlap, Scenario

#: Fast mid-flight flap: the default 8-node/20kB workload finishes in
#: ~17us of simulated time, so the fault must land inside that.
FAST_FLAP = (Scenario("fast-flap")
             .add(LinkFlap(link="tor0:spine0", at_us=5, down_us=10))
             .compile())

EMPTY = Scenario("empty").compile()


class TestRunCell:
    def test_result_validates_and_faults_bite(self):
        doc = run_cell({"spec": FAST_FLAP}, seed=1)
        assert validate_result(doc) == []
        assert doc["completed"]
        assert doc["faults"]["applied"] == 2
        assert doc["faults"]["fault_events_recorded"] >= 2
        assert doc["drops"] > doc["baseline_drops"]
        assert doc["nacks"]["unexplained"] == 0

    def test_tail_stretch_compares_against_baseline(self):
        doc = run_cell({"spec": FAST_FLAP}, seed=1)
        assert doc["baseline_completion_ns"] is not None
        assert doc["completion_ns"] >= doc["baseline_completion_ns"]
        assert doc["tail_stretch"] >= 1.0

    def test_result_is_json_serialisable(self):
        doc = run_cell({"spec": FAST_FLAP}, seed=1)
        assert json.loads(json.dumps(doc)) == doc


class TestDeterminism:
    def test_same_seed_same_spec_is_bitwise_identical(self):
        a = run_cell({"spec": FAST_FLAP}, seed=7)
        b = run_cell({"spec": FAST_FLAP}, seed=7)
        assert a == b

    def test_empty_spec_matches_no_faults_engine(self):
        """Installing an empty schedule must not perturb the simulation:
        the fault RNG substream is forked, never drawn from."""
        from repro.harness.tracing import build_traced_alltoall

        def counters(faults):
            net, _ = build_traced_alltoall(nodes=8, loss=0.01, seed=11,
                                           message_bytes=20_000,
                                           faults=faults)
            net.run(until_ns=5_000_000)
            return (net.trace_done_ns, net.metrics.data_packets_sent,
                    net.metrics.retransmissions, net.metrics.drops,
                    net.metrics.nacks_generated)

        assert counters(None) == counters(EMPTY)

    def test_different_seeds_differ(self):
        a = run_cell({"spec": FAST_FLAP}, seed=1)
        b = run_cell({"spec": FAST_FLAP}, seed=2)
        assert a != b


class TestValidateResult:
    def test_rejects_partial_application(self):
        doc = run_cell({"spec": FAST_FLAP}, seed=1)
        doc["faults"]["applied"] -= 1
        assert any("fault events applied" in p
                   for p in validate_result(doc))

    def test_rejects_unexplained_nacks(self):
        doc = run_cell({"spec": FAST_FLAP}, seed=1)
        doc["nacks"]["unexplained"] = 3
        assert any("unexplained" in p for p in validate_result(doc))

    def test_rejects_missing_keys(self):
        assert validate_result({"version": 1}) != []
        assert validate_result("nope") == ["result is not a dict"]


class TestCampaign:
    def test_specs_are_stable_per_seed(self):
        specs = campaign_specs(FAST_FLAP, [1, 2])
        assert [s.seed for s in specs] == [1, 2]
        assert specs[0].kind == "fault_cell"
        assert specs[0].label == "fast-flap@s1"
        again = campaign_specs(FAST_FLAP, [1, 2])
        assert [s.spec_hash for s in specs] \
            == [s.spec_hash for s in again]

    def test_serial_campaign_aggregates(self):
        summary = run_campaign(FAST_FLAP, [1, 2], workers=1)
        assert summary["scenario"] == "fast-flap"
        assert summary["failures"] == []
        assert summary["validation_problems"] == []
        assert len(summary["cells"]) == 2
        agg = summary["aggregate"]
        assert agg["completed"] == 2
        assert agg["unexplained_nacks"] == 0

    def test_parallel_equals_serial(self):
        serial = run_campaign(FAST_FLAP, [1, 2], workers=1)
        parallel = run_campaign(FAST_FLAP, [1, 2], workers=2)
        assert serial["cells"] == parallel["cells"]
        assert serial["aggregate"] == parallel["aggregate"]

    def test_campaign_resumes_from_checkpoint(self, tmp_path):
        ckpt = str(tmp_path / "campaign.jsonl")
        first = run_campaign(FAST_FLAP, [1], checkpoint=ckpt)
        second = run_campaign(FAST_FLAP, [1], checkpoint=ckpt)
        assert first["cells"] == second["cells"]
        assert second["jobs"]["jobs_skipped_from_checkpoint"] == 1


class TestJobKind:
    def test_fault_cell_registered(self):
        from repro.harness.jobs import JOB_KINDS
        assert "fault_cell" in JOB_KINDS

    def test_fault_cell_runs_in_subprocess(self):
        from repro.harness.jobs import JobRunner
        spec = campaign_specs(FAST_FLAP, [5])[0]
        outcome = JobRunner(workers=1, isolation="subprocess") \
            .run_one(spec)
        assert outcome.ok
        assert validate_result(outcome.result) == []
        inproc = run_cell({"spec": FAST_FLAP}, seed=5)
        assert outcome.result == inproc
