"""Property tests (hypothesis): invariants under randomized fault schedules.

Whatever combination of flaps, degradations, latency shifts, gray loss,
and spine reboots a scenario throws at the fabric, once every fault has
healed the conservation laws must hold: all traffic completes, switch
buffers balance to zero, port busy time never exceeds elapsed time, and
retransmissions exactly account for the extra transmissions.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.faults.injector import FaultInjector
from repro.faults.spec import (LatencyShift, LinkFlap, RandomLoss,
                               RateDegrade, Scenario, SwitchReboot)
from repro.harness.network import Network, NetworkConfig, TopologySpec
from repro.net.packet import FlowKey

TOPO = TopologySpec(kind="leaf_spine", num_tors=2, num_spines=2,
                    nics_per_tor=2, link_bandwidth_bps=25e9)
LINKS = ["tor0:spine0", "tor0:spine1", "tor1:spine0", "tor1:spine1"]
LONG = 120_000_000_000

times = st.floats(0, 200, allow_nan=False, allow_infinity=False)
durations = st.floats(5, 300, allow_nan=False, allow_infinity=False)
links = st.sampled_from(LINKS)

layer = st.one_of(
    st.builds(LinkFlap, link=links, at_us=times, down_us=durations),
    st.builds(RateDegrade, link=links, at_us=times,
              duration_us=durations,
              factor=st.floats(0.05, 0.95)),
    st.builds(LatencyShift, link=links, at_us=times,
              duration_us=durations,
              extra_us=st.floats(0.5, 20),
              direction=st.sampled_from(["ab", "ba", "both"])),
    st.builds(RandomLoss, link=links, at_us=times,
              duration_us=durations,
              rate=st.floats(0.01, 0.3)),
    st.builds(SwitchReboot, switch=st.sampled_from(["spine0"]),
              at_us=times, down_us=durations),
)

schedules = st.lists(layer, min_size=1, max_size=4)

flows = st.lists(
    st.tuples(st.integers(0, 3), st.integers(0, 3),
              st.integers(10_000, 80_000)).filter(lambda t: t[0] != t[1]),
    min_size=1, max_size=4)


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 2**16), layers=schedules, workload=flows)
def test_conservation_under_random_fault_schedules(seed, layers,
                                                   workload):
    net = Network(NetworkConfig(topology=TOPO, scheme="themis",
                                seed=seed))
    scenario = Scenario("prop")
    for fault_layer in layers:
        scenario.add(fault_layer)
    injector = FaultInjector(net, scenario)
    scheduled = injector.install()

    for qp, (src, dst, nbytes) in enumerate(workload):
        net.post_message(src, dst, nbytes, qp=qp)
    net.run(until_ns=LONG)

    # 1. Every scheduled fault action was applied (none lost or skipped).
    assert len(injector.applied) == scheduled

    # 2. All faults heal, so reliable transport must finish everything.
    assert net.metrics.all_flows_done()
    assert net.fabric_intact()

    # 3. Byte/packet conservation per flow, retransmissions accounted.
    for qp, (src, dst, nbytes) in enumerate(workload):
        stats = net.metrics.flows[FlowKey(src, dst, qp)]
        assert stats.bytes_posted == nbytes
        needed = net.config.rnic.packets_for(nbytes)
        assert stats.packets_sent >= needed
        assert stats.retransmissions == stats.packets_sent - needed

    # 4. No shared-buffer leak: flushes and drops released every byte.
    for switch in net.topology.switches:
        assert switch.buffer.used_bytes == 0

    # 5. busy_ns invariant: a port cannot be busy longer than the clock,
    #    even though lost packets still charge wire time.
    for switch in net.topology.switches:
        for port in switch.ports:
            assert 0 <= port.busy_ns <= net.now_ns

    # 6. Links ended healthy: nominal rate and delay restored.
    for link in net.topology.links:
        for port in link.ports:
            assert port.up
            assert port.bandwidth_bps == port.nominal_bandwidth_bps
            assert port.delay_ns == port.nominal_delay_ns
            assert port.loss_rate == 0.0


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 2**16), layers=schedules)
def test_fault_schedules_are_deterministic(seed, layers):
    """Same seed + same schedule => identical counters, twice over."""
    def run_once():
        net = Network(NetworkConfig(topology=TOPO, scheme="themis",
                                    seed=seed))
        scenario = Scenario("prop")
        for fault_layer in layers:
            scenario.add(fault_layer)
        FaultInjector(net, scenario).install()
        net.post_message(0, 2, 60_000)
        net.post_message(3, 1, 60_000)
        net.run(until_ns=LONG)
        return (net.metrics.data_packets_sent,
                net.metrics.retransmissions, net.metrics.drops,
                net.metrics.nacks_generated)

    assert run_once() == run_once()
