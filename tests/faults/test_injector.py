"""End-to-end tests for the FaultInjector on a live fabric."""

import pytest

from repro.faults.injector import FaultInjector
from repro.faults.spec import (LatencyShift, LinkFlap, PfcStorm,
                               RandomLoss, RateDegrade, Scenario,
                               ScenarioError, SwitchReboot)
from repro.harness.network import Network, NetworkConfig, TopologySpec
from repro.obs.record import FAULT, Recorder
from repro.sim.engine import US

TOPO = TopologySpec(kind="leaf_spine", num_tors=2, num_spines=2,
                    nics_per_tor=2, link_bandwidth_bps=25e9)
LONG = 60_000_000_000


def make(scheme="themis", seed=3, recorder=None, **config):
    return Network(NetworkConfig(topology=TOPO, scheme=scheme, seed=seed,
                                 **config),
                   recorder=recorder)


def install(net, scenario):
    injector = FaultInjector(net, scenario)
    injector.install()
    return injector


def alltoall(net, nbytes=60_000):
    nodes = len(net.nics)
    for qp, (src, dst) in enumerate(
            (s, d) for s in range(nodes) for d in range(nodes) if s != d):
        net.post_message(src, dst, nbytes, qp=qp)


class TestValidation:
    def test_unknown_link_rejected(self):
        net = make()
        with pytest.raises(ScenarioError, match="link"):
            FaultInjector(net, Scenario("x").add(
                LinkFlap(link="tor0:spine9", at_us=0, down_us=1)))

    def test_unknown_switch_rejected(self):
        net = make()
        with pytest.raises(ScenarioError, match="unknown switch"):
            FaultInjector(net, Scenario("x").add(
                SwitchReboot(switch="core0", at_us=0, down_us=1)))

    def test_tor_reboot_refused(self):
        net = make()
        with pytest.raises(ScenarioError, match="ToR"):
            FaultInjector(net, Scenario("x").add(
                SwitchReboot(switch="tor0", at_us=0, down_us=1)))

    def test_double_install_rejected(self):
        net = make()
        injector = install(net, Scenario("empty"))
        with pytest.raises(RuntimeError):
            injector.install()

    def test_empty_scenario_schedules_nothing(self):
        net = make()
        injector = FaultInjector(net, Scenario("empty"))
        assert injector.install() == 0
        assert injector.first_fault_ns is None
        assert injector.last_event_ns is None

    def test_link_name_order_is_irrelevant(self):
        net = make()
        injector = install(net, Scenario("x").add(
            LinkFlap(link="spine0:tor0", at_us=10, down_us=10)))
        assert injector.first_fault_ns == 10 * US


class TestLinkFlap:
    def scenario(self):
        return Scenario("flap").add(
            LinkFlap(link="tor0:spine0", at_us=10, down_us=40))

    def test_traffic_completes_through_flap(self):
        net = make()
        injector = install(net, self.scenario())
        alltoall(net)
        net.run(until_ns=LONG)
        assert net.metrics.all_flows_done()
        assert len(injector.applied) == 2
        assert [kind for _, kind, _ in injector.applied] == [
            "link_down", "link_up"]

    def test_themis_disabled_while_down_reenabled_after(self):
        net = make()
        install(net, self.scenario())
        alltoall(net)
        # After the down-event reconverges (10 + 25 us) Themis is off.
        net.run(until_ns=40 * US)
        assert not any(mw.enabled for tor in net.topology.tors
                       for mw in tor.middleware)
        # After the up-event reconverges (50 + 25 us) it is back on.
        net.run(until_ns=LONG)
        assert all(mw.enabled for tor in net.topology.tors
                   for mw in tor.middleware)
        assert net.fabric_intact()

    def test_routes_shrink_then_recover(self):
        net = make()
        install(net, self.scenario())
        net.run(until_ns=40 * US)
        tor0 = net.topology.tors[0]
        assert len(tor0.routes[2]) == 1          # spine0 uplink gone
        net.run(until_ns=200 * US)
        assert len(tor0.routes[2]) == 2

    def test_drops_are_accounted_not_silent(self):
        net = make()
        install(net, self.scenario())
        alltoall(net)
        net.run(until_ns=LONG)
        assert net.metrics.drops > 0
        assert net.metrics.retransmissions >= net.metrics.drops
        for switch in net.topology.switches:
            assert switch.buffer.used_bytes == 0


class TestDegradeAndLatency:
    def test_degrade_slows_then_restores(self):
        net = make()
        install(net, Scenario("slow").add(
            RateDegrade(link="tor0:spine0", at_us=10, duration_us=100,
                        factor=0.25)))
        link = net.topology.link("tor0:spine0")
        nominal = link.port_ab.nominal_bandwidth_bps
        net.run(until_ns=50 * US)
        assert link.port_ab.bandwidth_bps == pytest.approx(nominal / 4)
        assert link.port_ba.bandwidth_bps == pytest.approx(nominal / 4)
        net.run(until_ns=200 * US)
        assert link.port_ab.bandwidth_bps == pytest.approx(nominal)

    def test_degrade_stretches_completion(self):
        def run(with_fault):
            net = make(scheme="ecmp")
            if with_fault:
                install(net, Scenario("slow")
                        .add(RateDegrade(link="tor0:spine0", at_us=0,
                                         duration_us=100_000,
                                         factor=0.1))
                        .add(RateDegrade(link="tor0:spine1", at_us=0,
                                         duration_us=100_000,
                                         factor=0.1)))
            net.post_message(0, 2, 200_000)
            net.run(until_ns=LONG)
            assert net.metrics.all_flows_done()
            from repro.net.packet import FlowKey
            return net.metrics.flows[FlowKey(0, 2, 0)].receiver_done_ns
        assert run(True) > run(False)

    def test_asymmetric_latency_shift(self):
        net = make()
        install(net, Scenario("skew").add(
            LatencyShift(link="tor0:spine0", at_us=10, duration_us=100,
                         extra_us=7, direction="ab")))
        link = net.topology.link("tor0:spine0")
        nominal = link.port_ab.nominal_delay_ns
        net.run(until_ns=50 * US)
        assert link.port_ab.delay_ns == nominal + 7 * US
        assert link.port_ba.delay_ns == link.port_ba.nominal_delay_ns
        net.run(until_ns=200 * US)
        assert link.port_ab.delay_ns == nominal


class TestSwitchReboot:
    def scenario(self):
        return Scenario("reboot").add(
            SwitchReboot(switch="spine0", at_us=20, down_us=100))

    def test_reboot_deactivates_downs_links_then_recovers(self):
        net = make()
        install(net, self.scenario())
        alltoall(net)
        spine0 = next(s for s in net.topology.switches
                      if s.name == "spine0")
        net.run(until_ns=60 * US)
        assert not spine0.active
        assert all(not link.up
                   for link in net.topology.links_of("spine0"))
        net.run(until_ns=LONG)
        assert spine0.active
        assert all(link.up for link in net.topology.links_of("spine0"))
        assert net.metrics.all_flows_done()
        assert spine0.buffer.used_bytes == 0

    def test_recovery_restores_only_reboot_downed_links(self):
        net = make()
        install(net, Scenario("mix")
                .add(LinkFlap(link="tor0:spine0", at_us=10, down_us=300))
                .add(SwitchReboot(switch="spine0", at_us=20, down_us=50)))
        net.run(until_ns=100 * US)
        # spine0 recovered at 70us, but the flap holds tor0:spine0 down
        # until 310us — recovery must not resurrect it early.
        assert not net.topology.link("tor0:spine0").up
        assert net.topology.link("tor1:spine0").up
        net.run(until_ns=LONG)
        assert net.fabric_intact()


class TestPfcStorm:
    def scenario(self):
        return Scenario("storm").add(
            PfcStorm(switch="spine0", at_us=10, duration_us=80))

    def victims(self, net):
        ports = []
        for link in net.topology.links_of("spine0"):
            ports.append(link.port_ba if link.a_name == "spine0"
                         else link.port_ab)
        return ports

    def test_lossy_fabric_direct_pause(self):
        net = make()
        install(net, self.scenario())
        alltoall(net, nbytes=30_000)
        net.run(until_ns=50 * US)
        assert all(p.data_paused for p in self.victims(net))
        net.run(until_ns=LONG)
        assert all(not p.data_paused for p in self.victims(net))
        assert net.metrics.all_flows_done()

    def test_lossless_fabric_storm_overrides_xon(self):
        from repro.switch.pfc import PfcConfig
        net = make(scheme="rps", buffer_bytes=120_000,
                   pfc=PfcConfig(xoff_bytes=12_000, xon_bytes=6_000))
        install(net, self.scenario())
        alltoall(net, nbytes=30_000)
        net.run(until_ns=50 * US)
        paused = [p for p in self.victims(net) if p.data_paused]
        assert paused
        net.run(until_ns=LONG)
        assert all(not p.data_paused for p in self.victims(net))
        assert net.metrics.all_flows_done()


class TestRandomLoss:
    def test_loss_window_drops_then_heals(self):
        net = make()
        install(net, Scenario("gray").add(
            RandomLoss(link="tor0:spine0", at_us=0, duration_us=500,
                       rate=0.2)))
        alltoall(net)
        net.run(until_ns=LONG)
        link = net.topology.link("tor0:spine0")
        assert link.port_ab.loss_rate == 0.0
        assert net.metrics.drops > 0
        assert net.metrics.all_flows_done()

    def test_loss_uses_dedicated_substream(self):
        """Same seed, same scenario => identical drop counts."""
        def run():
            net = make()
            install(net, Scenario("gray").add(
                RandomLoss(link="tor0:spine0", at_us=0, duration_us=500,
                           rate=0.2)))
            alltoall(net)
            net.run(until_ns=LONG)
            return (net.metrics.drops, net.metrics.retransmissions,
                    net.now_ns)
        assert run() == run()


class TestObservability:
    def test_every_action_is_recorded(self):
        recorder = Recorder(retain={FAULT})
        net = make(recorder=recorder)
        install(net, Scenario("flap").add(
            LinkFlap(link="tor0:spine0", at_us=10, down_us=40)))
        net.run(until_ns=LONG)
        names = [name for _, _, name, _, _ in recorder.records(FAULT)]
        assert "fault_link_down" in names
        assert "fault_link_up" in names
        # Each liveness change reconverges routing, visibly.
        assert names.count("fault_reconverge") == 2

    def test_reconverge_record_carries_themis_state(self):
        recorder = Recorder(retain={FAULT})
        net = make(recorder=recorder)
        install(net, Scenario("flap").add(
            LinkFlap(link="tor0:spine0", at_us=10, down_us=40)))
        net.run(until_ns=LONG)
        reconv = [detail for _, _, name, _, detail
                  in recorder.records(FAULT)
                  if name == "fault_reconverge"]
        assert reconv[0]["themis_enabled"] is False
        assert reconv[-1]["themis_enabled"] is True

    def test_no_recorder_is_fine(self):
        net = make(recorder=None)
        install(net, Scenario("flap").add(
            LinkFlap(link="tor0:spine0", at_us=10, down_us=40)))
        alltoall(net, nbytes=20_000)
        net.run(until_ns=LONG)
        assert net.metrics.all_flows_done()
