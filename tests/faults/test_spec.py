"""Tests for the declarative fault-scenario spec layer."""

import json

import pytest

from repro.faults.spec import (DEFAULT_CONVERGE_US, LatencyShift, LinkFlap,
                               PfcStorm, RandomLoss, RateDegrade, Scenario,
                               ScenarioError, SwitchReboot, compiled_spec,
                               load_scenario, scenario_from_dict,
                               spec_duration_us, validate_compiled)


class TestLayers:
    def test_flap_emits_down_up_pair(self):
        evs = LinkFlap(link="a:b", at_us=10, down_us=5).events()
        assert [(e["kind"], e["at_us"]) for e in evs] == [
            ("link_down", 10), ("link_up", 15)]

    def test_flap_repeat_defaults_to_double_down_period(self):
        evs = LinkFlap(link="a:b", at_us=0, down_us=10, repeat=3).events()
        downs = [e["at_us"] for e in evs if e["kind"] == "link_down"]
        assert downs == [0, 20, 40]

    def test_flap_period_must_exceed_down(self):
        with pytest.raises(ScenarioError):
            LinkFlap(link="a:b", at_us=0, down_us=10, repeat=2,
                     period_us=5).events()

    def test_flap_repeat_must_be_positive(self):
        with pytest.raises(ScenarioError):
            LinkFlap(link="a:b", at_us=0, down_us=1, repeat=0).events()

    def test_negative_time_rejected(self):
        with pytest.raises(ScenarioError):
            LinkFlap(link="a:b", at_us=-1, down_us=1).events()

    def test_degrade_factor_bounds(self):
        for factor in (0.0, 1.0, 2.0, -0.5):
            with pytest.raises(ScenarioError):
                RateDegrade(link="a:b", at_us=0, duration_us=10,
                            factor=factor).events()
        evs = RateDegrade(link="a:b", at_us=0, duration_us=10,
                          factor=0.5).events()
        assert [e["kind"] for e in evs] == ["degrade", "degrade_end"]

    def test_latency_direction_checked(self):
        with pytest.raises(ScenarioError):
            LatencyShift(link="a:b", at_us=0, duration_us=10, extra_us=1,
                         direction="sideways").events()
        evs = LatencyShift(link="a:b", at_us=0, duration_us=10,
                           extra_us=2, direction="ba").events()
        assert evs[0]["direction"] == "ba"

    def test_loss_rate_bounds(self):
        with pytest.raises(ScenarioError):
            RandomLoss(link="a:b", at_us=0, duration_us=10,
                       rate=0.0).events()
        with pytest.raises(ScenarioError):
            RandomLoss(link="a:b", at_us=0, duration_us=10,
                       rate=1.5).events()

    def test_reboot_and_storm_target_switches(self):
        assert SwitchReboot(switch="s", at_us=1,
                            down_us=2).events()[0]["switch"] == "s"
        assert PfcStorm(switch="s", at_us=1,
                        duration_us=2).events()[1]["kind"] == "storm_end"


class TestScenarioCompile:
    def test_events_sorted_by_time(self):
        spec = (Scenario("x")
                .add(LinkFlap(link="a:b", at_us=50, down_us=10))
                .add(RateDegrade(link="c:d", at_us=5, duration_us=100,
                                 factor=0.5))
                .compile())
        times = [e["at_us"] for e in spec["events"]]
        assert times == sorted(times)
        assert spec["converge_us"] == DEFAULT_CONVERGE_US

    def test_compile_is_deterministic(self):
        def build():
            return (Scenario("x")
                    .add(LinkFlap(link="a:b", at_us=10, down_us=10))
                    .add(LinkFlap(link="c:d", at_us=10, down_us=10))
                    .compile())
        assert build() == build()

    def test_duration(self):
        spec = Scenario("x").add(
            LinkFlap(link="a:b", at_us=40, down_us=80)).compile()
        assert spec_duration_us(spec) == 120
        assert spec_duration_us(Scenario("empty").compile()) == 0.0


class TestDeclarativeForm:
    DOC = {
        "name": "flap-smoke",
        "workload": {"nodes": 8},
        "layers": [
            {"kind": "link_flap", "link": "tor0:spine0",
             "at_us": 40, "down_us": 80},
        ],
    }

    def test_round_trip(self):
        scenario = scenario_from_dict(self.DOC)
        spec = scenario.compile()
        assert spec["name"] == "flap-smoke"
        assert [e["kind"] for e in spec["events"]] == ["link_down",
                                                       "link_up"]

    def test_unknown_kind(self):
        doc = {"name": "x", "layers": [{"kind": "gremlins"}]}
        with pytest.raises(ScenarioError, match="unknown kind"):
            scenario_from_dict(doc)

    def test_bad_layer_params(self):
        doc = {"name": "x", "layers": [{"kind": "link_flap",
                                        "wat": True}]}
        with pytest.raises(ScenarioError):
            scenario_from_dict(doc)

    def test_missing_name(self):
        with pytest.raises(ScenarioError):
            scenario_from_dict({"layers": []})

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(self.DOC))
        assert load_scenario(path).name == "flap-smoke"

    def test_load_bad_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{nope")
        with pytest.raises(ScenarioError):
            load_scenario(path)


class TestCompiledSpec:
    def test_accepts_all_three_forms(self):
        scenario = scenario_from_dict(TestDeclarativeForm.DOC)
        compiled = scenario.compile()
        assert compiled_spec(scenario) == compiled
        assert compiled_spec(TestDeclarativeForm.DOC) == compiled
        assert compiled_spec(compiled) == compiled

    def test_rejects_non_spec(self):
        with pytest.raises(ScenarioError):
            compiled_spec(42)

    def test_validate_unsorted(self):
        spec = {"name": "x", "events": [
            {"at_us": 10, "kind": "link_up", "link": "a:b"},
            {"at_us": 5, "kind": "link_down", "link": "a:b"},
        ]}
        with pytest.raises(ScenarioError, match="not time-sorted"):
            validate_compiled(spec)

    def test_validate_unknown_kind(self):
        spec = {"name": "x", "events": [{"at_us": 0, "kind": "melt",
                                         "link": "a:b"}]}
        with pytest.raises(ScenarioError, match="unknown kind"):
            validate_compiled(spec)

    def test_validate_missing_target(self):
        spec = {"name": "x", "events": [{"at_us": 0, "kind": "reboot"}]}
        with pytest.raises(ScenarioError, match="missing 'switch'"):
            validate_compiled(spec)


class TestExampleSpec:
    def test_example_scenario_is_short_and_valid(self):
        """The checked-in example must stay a ~20-line declarative spec."""
        from pathlib import Path
        path = Path(__file__).resolve().parents[2] \
            / "examples" / "scenarios" / "link_flap.json"
        text = path.read_text()
        assert len(text.strip().splitlines()) <= 20
        spec = compiled_spec(load_scenario(path))
        assert spec["events"]
