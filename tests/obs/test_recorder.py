"""Tests for the trace recorder and flight-recorder ring."""

import gc
import json
from types import SimpleNamespace

import pytest

from repro.obs.record import (ALL_CATEGORIES, NACK, PACKET, QUEUE,
                              InvariantError, Recorder, active_recorder,
                              check_invariant, dump_active_flight,
                              set_active)


class _Flow:
    src, dst, qp = 0, 1, 0

    def __str__(self):
        return "0->1#0"


def fake_packet(psn=5, ptype="data"):
    return SimpleNamespace(pkt_id=42, ptype=SimpleNamespace(value=ptype),
                           flow=_Flow(), psn=psn, epsn=0, path_index=2,
                           is_retx=False)


def fake_flow():
    return _Flow()


class TestCategories:
    def test_default_enables_all(self):
        rec = Recorder()
        assert rec.enabled == frozenset(ALL_CATEGORIES)
        for cat in ALL_CATEGORIES:
            assert rec.channel(cat) is rec

    def test_disabled_channel_is_none(self):
        rec = Recorder(categories=(NACK,))
        assert rec.channel(NACK) is rec
        assert rec.channel(PACKET) is None

    def test_empty_categories_disable_everything(self):
        rec = Recorder(categories=())
        assert all(rec.channel(c) is None for c in ALL_CATEGORIES)

    def test_unknown_category_raises(self):
        with pytest.raises(ValueError, match="unknown trace categories"):
            Recorder(categories=("bogus",))
        with pytest.raises(ValueError, match="unknown retain"):
            Recorder(retain=("bogus",))

    def test_retain_restricted_to_enabled(self):
        rec = Recorder(categories=(PACKET,), retain={NACK})
        assert rec.retain == frozenset()


class TestRingAndRetention:
    def test_ring_is_bounded_counts_are_not(self):
        rec = Recorder(ring_capacity=8)
        for i in range(20):
            rec.queue_sample(i, "tor0:p0", "enq", i * 100, i)
        assert len(rec.ring) == 8
        assert rec.total_events() == 20
        # The ring keeps the *last* N events.
        assert rec.records()[0][0] == 12

    def test_retained_category_kept_in_full(self):
        rec = Recorder(ring_capacity=4, retain={QUEUE})
        for i in range(20):
            rec.queue_sample(i, "tor0:p0", "enq", 0, 0)
        assert len(rec.records(QUEUE)) == 20

    def test_unretained_query_falls_back_to_ring(self):
        rec = Recorder(ring_capacity=64)
        rec.queue_sample(1, "a", "enq", 0, 0)
        rec.pfc(2, "b", "pause", 999)
        assert len(rec.records(QUEUE)) == 1
        assert rec.records("pfc")[0][2] == "pfc_pause"

    def test_counts_summary_has_total(self):
        rec = Recorder()
        rec.drop(1, "tor0:p1", fake_packet(), reason="tail")
        rec.drop(2, "tor0:p1", fake_packet(), reason="loss")
        summary = rec.counts_summary()
        assert summary["drop"] == 2
        assert summary["total"] == 2


class TestTypedEmitters:
    def test_packet_hop_copies_scalars_only(self):
        rec = Recorder()
        pkt = fake_packet()
        rec.packet_hop(10, "tor0", pkt)
        t, cat, name, loc, data = rec.records()[0]
        assert (t, cat, name, loc) == (10, PACKET, "hop", "tor0")
        assert data["psn"] == 5 and data["path_index"] == 2
        assert not any(v is pkt or v is pkt.flow for v in data.values())

    def test_nack_classify_computes_path_indices(self):
        rec = Recorder()
        rec.nack_classify(10, "tor1", fake_flow(), 13, "blocked",
                          tpsn=14, n_paths=8, ring_len=3, armed=True)
        data = rec.records()[0][4]
        assert data["epsn_path"] == 13 % 8
        assert data["tpsn_path"] == 14 % 8

    def test_nack_classify_guard_only_when_present(self):
        rec = Recorder()
        rec.nack_classify(1, "t", fake_flow(), 1, "blocked")
        rec.nack_classify(2, "t", fake_flow(), 2, "blocked",
                          guard="epsn_in_ring")
        first, second = (r[4] for r in rec.records())
        assert "guard" not in first
        assert second["guard"] == "epsn_in_ring"


class TestFlightDump:
    def test_dump_roundtrips_as_jsonl(self, tmp_path):
        rec = Recorder()
        rec.queue_sample(5, "tor0:p0", "enq", 1500, 1)
        rec.cc_rate(6, "cc:0->1#0", 25e9)
        path = rec.dump_flight(tmp_path / "sub" / "f.jsonl",
                               reason="unit-test")
        lines = [json.loads(ln) for ln in
                 path.read_text().splitlines()]
        header, events = lines[0], lines[1:]
        assert header["meta"] == "repro-flight-recorder"
        assert header["reason"] == "unit-test"
        assert header["events"] == 2
        assert events[0] == {"t": 5, "cat": "queue", "ev": "enq",
                             "loc": "tor0:p0", "queued_bytes": 1500,
                             "backlog_pkts": 1}
        assert rec.dumps == [path]

    def test_default_path_honours_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path))
        rec = Recorder()
        rec.queue_sample(1, "a", "enq", 0, 0)
        path = rec.dump_flight(reason="env-test")
        assert path.parent == tmp_path
        assert path.name.startswith("flight-env-test-")


class TestActiveRegistry:
    def test_dump_active_flight(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path))
        rec = Recorder()
        rec.queue_sample(1, "a", "enq", 0, 0)
        set_active(rec)
        try:
            path = dump_active_flight("probe")
            assert path is not None and path.exists()
        finally:
            set_active(None)

    def test_no_active_recorder_is_a_noop(self):
        set_active(None)
        assert active_recorder() is None
        assert dump_active_flight("nothing") is None

    def test_registry_is_weak(self):
        rec = Recorder()
        set_active(rec)
        assert active_recorder() is rec
        del rec
        gc.collect()
        assert active_recorder() is None
        set_active(None)


class TestCheckInvariant:
    def test_passing_invariant_is_silent(self):
        check_invariant(True, "fine")

    def test_failing_invariant_dumps_and_raises(self, tmp_path,
                                                monkeypatch):
        monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path))
        rec = Recorder()
        rec.queue_sample(1, "a", "enq", 0, 0)
        set_active(rec)
        try:
            with pytest.raises(InvariantError) as excinfo:
                check_invariant(False, "psn out of window")
        finally:
            set_active(None)
        message = str(excinfo.value)
        assert "psn out of window" in message
        assert "flight recorder:" in message
        dump = rec.dumps[-1]
        assert dump.exists()
        header = json.loads(dump.read_text().splitlines()[0])
        assert header["reason"] == "invariant"

    def test_invariant_error_is_assertion_error(self):
        assert issubclass(InvariantError, AssertionError)
