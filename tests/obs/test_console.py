"""Tests for the CLI console output helper."""

import io
import json

from repro.obs.console import Console


def make(**kw):
    out, err = io.StringIO(), io.StringIO()
    return Console(stream=out, err_stream=err, **kw), out, err


class TestModes:
    def test_default_prints_info_and_out(self):
        console, out, _ = make()
        console.info("progress...")
        console.out("result line")
        assert out.getvalue() == "progress...\nresult line\n"

    def test_quiet_drops_info_keeps_out(self):
        console, out, _ = make(quiet=True)
        console.info("progress...")
        console.out("result line")
        assert out.getvalue() == "result line\n"

    def test_json_mode_emits_only_the_document(self):
        console, out, _ = make(json_mode=True)
        console.info("progress...")
        console.out("result line")
        console.result({"b": 2, "a": 1})
        assert json.loads(out.getvalue()) == {"a": 1, "b": 2}

    def test_result_not_printed_in_human_mode(self):
        console, out, _ = make()
        console.result({"a": 1})
        assert out.getvalue() == ""
        assert console.last_result == {"a": 1}

    def test_warn_and_error_always_hit_stderr(self):
        console, out, err = make(json_mode=True)
        console.warn("odd")
        console.error("bad")
        assert out.getvalue() == ""
        assert err.getvalue() == "warning: odd\nerror: bad\n"

    def test_progress_printer_respects_quiet(self):
        console, out, _ = make(quiet=True)
        console.progress_printer()("job 1/10")
        assert out.getvalue() == ""
        console2, out2, _ = make()
        console2.progress_printer()("job 1/10")
        assert out2.getvalue() == "job 1/10\n"
