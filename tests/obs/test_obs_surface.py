"""The observability package surface, post shim removal.

The ``repro.sim.trace`` and ``repro.harness.tracer`` deprecation shims
have been deleted after their deprecation window; the canonical modules
(``repro.obs.timeseries``, ``repro.obs.capture``) are the only import
paths now.
"""

import importlib

import pytest


class TestShimsRemoved:
    @pytest.mark.parametrize("module", ["repro.sim.trace",
                                        "repro.harness.tracer"])
    def test_old_path_is_gone(self, module):
        with pytest.raises(ModuleNotFoundError):
            importlib.import_module(module)

    def test_canonical_homes_export_the_types(self):
        from repro.obs.capture import (PacketTracer, TraceEvent,
                                       attach_tracer)
        from repro.obs.timeseries import (RateMeter, TimeSeries,
                                          WindowedCounter, summarize)
        for obj in (PacketTracer, TraceEvent, attach_tracer, RateMeter,
                    TimeSeries, WindowedCounter, summarize):
            assert obj is not None

    def test_sim_package_still_reexports_timeseries(self):
        # The package-level re-export stays (public API); only the
        # ``repro.sim.trace`` module path was removed.
        import repro.obs.timeseries as ts
        import repro.sim as sim
        assert sim.TimeSeries is ts.TimeSeries
        assert sim.RateMeter is ts.RateMeter


class TestObsPackageSurface:
    def test_lazy_exports_resolve(self):
        import repro.obs as obs
        for name in ("PacketTracer", "TraceEvent", "attach_tracer",
                     "build_audit", "format_report", "NackAudit",
                     "NackDecision", "export_chrome_trace",
                     "write_chrome_trace", "validate_chrome_trace"):
            assert getattr(obs, name) is not None

    def test_unknown_attribute_raises(self):
        import repro.obs as obs
        with pytest.raises(AttributeError):
            obs.does_not_exist
