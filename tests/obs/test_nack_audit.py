"""Tests for the NACK-decision causality audit."""

from repro.obs.nacks import build_audit, format_report
from repro.obs.record import NACK, Recorder


class _Flow:
    def __str__(self):
        return "0->1#0"


FLOW = _Flow()


def classify(rec, t, epsn, verdict, **kw):
    rec.nack_classify(t, "tor1", FLOW, epsn, verdict, **kw)


class TestBuildAudit:
    def test_compensated_lifecycle(self):
        rec = Recorder(retain={NACK})
        rec.nack_emit(100, "nic1", FLOW, 7, 8)
        classify(rec, 110, 7, "blocked", tpsn=8, n_paths=8, ring_len=2,
                 armed=True)
        rec.nack_compensate(500, "tor1", FLOW, 7, 15)
        audit = build_audit(rec.records(NACK))
        (decision,) = audit.decisions
        assert decision.verdict == "blocked"
        assert decision.emit_t == 100
        assert decision.emit_trigger_psn == 8
        assert decision.epsn_path == 7 and decision.tpsn_path == 0
        assert decision.outcome == "compensated"
        assert decision.outcome_t == 500
        assert decision.prove_psn == 15
        assert decision.explained
        assert audit.summary()["compensated"] == 1
        assert audit.summary()["unexplained"] == 0

    def test_cancelled_lifecycle(self):
        rec = Recorder(retain={NACK})
        rec.nack_emit(100, "nic1", FLOW, 3, 4)
        classify(rec, 110, 3, "blocked", tpsn=4, n_paths=4, armed=True)
        rec.nack_cancel(400, "tor1", FLOW, 3, "bepsn_arrived")
        audit = build_audit(rec.records(NACK))
        (decision,) = audit.decisions
        assert decision.outcome == "cancelled"
        assert audit.summary()["cancelled"] == 1

    def test_armed_without_outcome_is_open_and_unexplained(self):
        rec = Recorder(retain={NACK})
        classify(rec, 110, 3, "blocked", tpsn=4, n_paths=4, armed=True)
        audit = build_audit(rec.records(NACK))
        assert audit.decisions[0].outcome == "open"
        # "open" counts as an outcome: the trace simply ended first.
        assert audit.decisions[0].explained
        assert audit.summary()["armed_open"] == 1

    def test_no_state_and_no_tpsn_self_explain(self):
        rec = Recorder(retain={NACK})
        classify(rec, 1, 3, "no_state")
        classify(rec, 2, 4, "no_tpsn", n_paths=4, ring_len=0)
        audit = build_audit(rec.records(NACK))
        assert all(d.explained for d in audit.decisions)
        summary = audit.summary()
        assert summary["no_state"] == 1 and summary["no_tpsn"] == 1

    def test_forwarded_without_context_is_unexplained(self):
        rec = Recorder(retain={NACK})
        classify(rec, 1, 3, "forwarded")  # no tpsn / n_paths
        audit = build_audit(rec.records(NACK))
        assert not audit.decisions[0].explained
        assert audit.summary()["unexplained"] == 1

    def test_rearm_supersedes_older_decision(self):
        rec = Recorder(retain={NACK})
        classify(rec, 100, 3, "blocked", tpsn=4, n_paths=4, armed=True)
        classify(rec, 200, 3, "blocked", tpsn=5, n_paths=4, armed=True)
        rec.nack_compensate(300, "tor1", FLOW, 3, 9)
        audit = build_audit(rec.records(NACK))
        first, second = audit.decisions
        assert first.outcome == "open"
        assert second.outcome == "compensated"

    def test_mixed_categories_are_ignored(self):
        rec = Recorder(retain={NACK})
        rec.pfc(1, "tor0:p0", "pause", 9000)
        classify(rec, 2, 1, "no_state")
        audit = build_audit(rec.records())  # whole ring, mixed stream
        assert len(audit.decisions) == 1


class TestFormatReport:
    def _audit(self):
        rec = Recorder(retain={NACK})
        rec.nack_emit(100, "nic1", FLOW, 7, 8)
        classify(rec, 110, 7, "blocked", tpsn=8, n_paths=8, armed=True)
        rec.nack_compensate(500, "tor1", FLOW, 7, 15)
        classify(rec, 600, 9, "no_tpsn", n_paths=8)
        return build_audit(rec.records(NACK))

    def test_report_contains_timeline(self):
        report = format_report(self._audit())
        assert "NACK causality audit" in report
        assert "receiver NACKed ePSN 7 on seeing PSN 8" in report
        assert "verdict=blocked" in report
        assert "compensated: PSN 15 proved BePSN 7 lost" in report

    def test_limit_truncates(self):
        report = format_report(self._audit(), limit=1)
        assert "1 more decisions truncated" in report

    def test_verdict_filter(self):
        report = format_report(self._audit(), verdicts={"no_tpsn"})
        assert "verdict=no_tpsn" in report
        assert "verdict=blocked" not in report


class TestEndToEnd:
    def test_lossy_alltoall_explains_every_decision(self):
        from repro.harness.tracing import run_traced_alltoall

        net, recorder = run_traced_alltoall(nodes=8, loss=0.02, seed=11,
                                            message_bytes=8000)
        audit = build_audit(recorder.records(NACK))
        summary = audit.summary()
        assert summary["decisions"] > 0, "scenario produced no NACKs"
        assert summary["unexplained"] == 0
        # Eq. 3 bookkeeping must agree with the harness counters.
        assert summary["blocked"] == net.metrics.themis.nacks_blocked
        assert summary["compensated"] == \
            net.metrics.themis.nacks_compensated
