"""The pre-obs module paths must keep working, with a deprecation nudge."""

import importlib
import warnings

import pytest


class TestSimTraceShim:
    def test_reexports_are_identical(self):
        import repro.obs.timeseries as new
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            import repro.sim.trace as old
            old = importlib.reload(old)
        assert old.TimeSeries is new.TimeSeries
        assert old.WindowedCounter is new.WindowedCounter
        assert old.RateMeter is new.RateMeter
        assert old.summarize is new.summarize

    def test_import_warns(self):
        import repro.sim.trace as old
        with pytest.warns(DeprecationWarning,
                          match="repro.obs.timeseries"):
            importlib.reload(old)


class TestHarnessTracerShim:
    def test_reexports_are_identical(self):
        import repro.obs.capture as new
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            import repro.harness.tracer as old
            old = importlib.reload(old)
        assert old.PacketTracer is new.PacketTracer
        assert old.TraceEvent is new.TraceEvent
        assert old.attach_tracer is new.attach_tracer

    def test_import_warns(self):
        import repro.harness.tracer as old
        with pytest.warns(DeprecationWarning, match="repro.obs"):
            importlib.reload(old)


class TestObsPackageSurface:
    def test_lazy_exports_resolve(self):
        import repro.obs as obs
        for name in ("PacketTracer", "TraceEvent", "attach_tracer",
                     "build_audit", "format_report", "NackAudit",
                     "NackDecision", "export_chrome_trace",
                     "write_chrome_trace", "validate_chrome_trace"):
            assert getattr(obs, name) is not None

    def test_unknown_attribute_raises(self):
        import repro.obs as obs
        with pytest.raises(AttributeError):
            obs.does_not_exist
