"""Tests for the event-handler wall-time profiler."""

import pytest

from repro.obs.profile import Profiler
from repro.sim.engine import HeapSimulator, Simulator


def busy(n=2000):
    total = 0
    for i in range(n):
        total += i
    return total


class TestProfiler:
    def run_workload(self, sim):
        fired = {"n": 0}

        def tick():
            busy()
            fired["n"] += 1
            if fired["n"] < 50:
                sim.schedule(100, tick)

        def tock():
            busy(500)

        sim.schedule(0, tick)
        sim.schedule(50, tock)
        prof = Profiler(sim).attach()
        sim.run()
        prof.detach()
        return prof

    def test_histograms_by_qualname(self):
        prof = self.run_workload(Simulator())
        keys = set(prof.stats)
        assert any("tick" in k for k in keys)
        assert any("tock" in k for k in keys)
        tick_stats = next(s for k, s in prof.stats.items() if "tick" in k)
        assert tick_stats.calls >= 10
        assert tick_stats.total_s > 0
        assert tick_stats.mean_us > 0

    def test_works_on_heap_engine_too(self):
        prof = self.run_workload(HeapSimulator())
        assert prof.stats

    def test_report_shares_sum_to_one(self):
        report = self.run_workload(Simulator()).report()
        assert report["handlers"] == sorted(
            report["handlers"], key=lambda r: -r["total_ms"])
        assert sum(r["share"] for r in report["handlers"]) == \
            pytest.approx(1.0, abs=0.01)
        assert report["total_ms"] > 0

    def test_format_table(self):
        prof = self.run_workload(Simulator())
        table = prof.format_table()
        assert "handler" in table.splitlines()[0]
        assert "total profiled wall time" in table.splitlines()[-1]

    def test_attach_conflict_raises(self):
        sim = Simulator()
        sim.trace = lambda *a: None
        with pytest.raises(RuntimeError, match="already in use"):
            Profiler(sim).attach()

    def test_context_manager_detaches(self):
        sim = Simulator()
        sim.schedule(0, busy)
        with Profiler(sim) as prof:
            assert sim.trace is not None
            sim.run()
        assert sim.trace is None
        assert prof.stats

    def test_detach_without_attach_is_noop(self):
        Profiler(Simulator()).detach()
