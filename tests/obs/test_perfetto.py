"""Tests for the Chrome/Perfetto trace_event export."""

import json
from types import SimpleNamespace

from repro.obs.perfetto import (export_chrome_trace, track_count,
                                validate_chrome_trace,
                                write_chrome_trace)
from repro.obs.record import Recorder


class _Flow:
    src, dst, qp = 0, 1, 0

    def __str__(self):
        return "0->1#0"


def sample_records():
    rec = Recorder()
    pkt = SimpleNamespace(pkt_id=1, ptype=SimpleNamespace(value="data"),
                          flow=_Flow(), psn=3, epsn=0, path_index=1,
                          is_retx=False)
    rec.packet_hop(1000, "tor0", pkt)
    rec.queue_sample(2000, "tor0:p1", "enq", 3000, 2)
    rec.cc_rate(3000, "cc:0->1#0", 50e9)
    rec.drop(4000, "tor0:p1", pkt, reason="tail")
    return rec.records()


class TestExport:
    def test_document_shape(self):
        doc = export_chrome_trace(sample_records(), label="unit")
        assert doc["displayTimeUnit"] == "ns"
        names = [e["name"] for e in doc["traceEvents"]]
        assert "process_name" in names
        # One track per distinct emitting location.
        assert track_count(doc) == 3

    def test_event_phases(self):
        doc = export_chrome_trace(sample_records())
        by_name = {}
        for ev in doc["traceEvents"]:
            by_name.setdefault(ev["name"], ev)
        assert by_name["hop"]["ph"] == "i"
        assert by_name["hop"]["s"] == "t"
        assert by_name["queue_depth tor0:p1"]["ph"] == "C"
        assert by_name["queue_depth tor0:p1"]["args"]["bytes"] == 3000
        assert by_name["cc_rate cc:0->1#0"]["args"]["gbps"] == 50.0

    def test_ts_is_microseconds(self):
        doc = export_chrome_trace(sample_records())
        hop = next(e for e in doc["traceEvents"] if e["name"] == "hop")
        assert hop["ts"] == 1.0  # 1000 ns

    def test_validates_clean(self):
        doc = export_chrome_trace(sample_records())
        assert validate_chrome_trace(doc) == []

    def test_json_serialisable(self):
        doc = export_chrome_trace(sample_records())
        assert json.loads(json.dumps(doc)) == doc


class TestWrite:
    def test_write_creates_parents(self, tmp_path):
        path = write_chrome_trace(sample_records(),
                                  tmp_path / "deep" / "t.json")
        doc = json.loads(path.read_text())
        assert validate_chrome_trace(doc) == []


class TestValidator:
    def test_rejects_non_object(self):
        assert validate_chrome_trace([]) == ["document is not a JSON object"]

    def test_rejects_missing_events(self):
        assert validate_chrome_trace({}) == \
            ["traceEvents missing or not a list"]

    def test_flags_bad_phase_and_missing_fields(self):
        doc = {"traceEvents": [
            {"ph": "X", "name": "nope", "pid": 1, "tid": 1},
            {"ph": "i", "name": "", "pid": 1, "tid": 1, "ts": 1, "s": "t"},
            {"ph": "i", "name": "ok", "pid": "one", "tid": 1, "ts": 1,
             "s": "t"},
            {"ph": "i", "name": "ok", "pid": 1, "tid": 1, "ts": -5,
             "s": "t"},
            {"ph": "i", "name": "ok", "pid": 1, "tid": 1, "ts": 1},
            {"ph": "M", "name": "process_name", "pid": 1, "tid": 0,
             "args": {}},
        ]}
        errors = validate_chrome_trace(doc)
        assert len(errors) == 6

    def test_end_to_end_trace_validates(self):
        from repro.harness.tracing import run_traced_alltoall

        _, recorder = run_traced_alltoall(nodes=4, loss=0.01, seed=5,
                                          message_bytes=4000,
                                          retain_all=True)
        events = []
        for cat in sorted(recorder.retain):
            events.extend(recorder.records(cat))
        events.sort(key=lambda r: r[0])
        doc = export_chrome_trace(events)
        assert validate_chrome_trace(doc) == []
        assert track_count(doc) > 1
