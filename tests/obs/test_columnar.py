"""Golden-equality tests for the columnar Recorder.

The Recorder stores compact struct rows and materializes the legacy
``(t, cat, name, loc, data)`` record shape lazily.  These tests pin the
materialized output — values AND dict key order — for every category, so
a storage-layout change can never silently alter what consumers
(``records()``, the NACK audit, the Perfetto export, ``dump_flight``)
see.  They also pin the "disabled tracing is free" contract: a network
built without a recorder (or with every category disabled) must never
invoke an emitter at all.
"""

from array import array
from types import SimpleNamespace

import pytest

from repro.obs.record import (ALL_CATEGORIES, CC, DROP, ECN, FAULT, NACK,
                              PACKET, PFC, QP, QUEUE, Recorder)


class _Flow:
    src, dst, qp = 0, 1, 0

    def __str__(self):
        return "0->1#0"


def fake_packet(psn=5, ptype="data"):
    return SimpleNamespace(pkt_id=42, ptype=SimpleNamespace(value=ptype),
                           flow=_Flow(), psn=psn, epsn=0, path_index=2,
                           is_retx=False)


class TestGoldenEquality:
    """Materialized records match the historical dict-based output —
    same values, same dict key order — for every category."""

    def _one(self, rec, category):
        records = rec.records(category)
        assert len(records) == 1
        return records[0]

    def test_packet_hop(self):
        rec = Recorder()
        pkt = fake_packet()
        rec.packet_hop(100, "tor0/p1", pkt)
        t, cat, name, loc, data = self._one(rec, PACKET)
        assert (t, cat, name, loc) == (100, "packet", "hop", "tor0/p1")
        assert list(data.items()) == [
            ("pkt_id", 42), ("ptype", "data"), ("src", 0), ("dst", 1),
            ("qp", 0), ("psn", 5), ("epsn", 0), ("path_index", 2),
            ("is_retx", False)]
        # The pooled packet (and its flow) must not be referenced.
        assert not any(v is pkt or v is pkt.flow for v in data.values())

    def test_queue_sample(self):
        rec = Recorder()
        rec.queue_sample(7, "sw0/p1", "enq", 3000, 2)
        t, cat, name, loc, data = self._one(rec, QUEUE)
        assert (t, cat, name, loc) == (7, "queue", "enq", "sw0/p1")
        assert list(data.items()) == [("queued_bytes", 3000),
                                      ("backlog_pkts", 2)]

    def test_queue_fast_paths_match_generic(self):
        # queue_enq/queue_deq are the statically-interned fast paths the
        # Port hot loop calls; they must materialize exactly like the
        # generic action-string emitter.
        fast, generic = Recorder(), Recorder()
        fast.queue_enq(7, "sw0/p1", 3000, 2)
        fast.queue_deq(9, "sw0/p1", 1500, 1)
        generic.queue_sample(7, "sw0/p1", "enq", 3000, 2)
        generic.queue_sample(9, "sw0/p1", "deq", 1500, 1)
        assert fast.records(QUEUE) == generic.records(QUEUE)
        assert fast.counts == generic.counts == {"enq": 1, "deq": 1}

    def test_ecn_mark(self):
        rec = Recorder()
        rec.ecn_mark(8, "sw0/p2", fake_packet(psn=9), 64_000)
        t, cat, name, loc, data = self._one(rec, ECN)
        assert (t, cat, name, loc) == (8, "ecn", "ecn_mark", "sw0/p2")
        assert list(data.items()) == [
            ("pkt_id", 42), ("psn", 9), ("flow", "0->1#0"),
            ("queued_bytes", 64_000)]

    def test_drop(self):
        rec = Recorder()
        rec.drop(9, "sw0/p3", fake_packet(psn=11), reason="tail")
        t, cat, name, loc, data = self._one(rec, DROP)
        assert (t, cat, name, loc) == (9, "drop", "drop", "sw0/p3")
        assert list(data.items()) == [
            ("pkt_id", 42), ("ptype", "data"), ("flow", "0->1#0"),
            ("psn", 11), ("reason", "tail")]

    def test_nack_emit(self):
        rec = Recorder()
        rec.nack_emit(10, "nic1", _Flow(), 4, 7)
        t, cat, name, loc, data = self._one(rec, NACK)
        assert (t, cat, name, loc) == (10, "nack", "nack_emit", "nic1")
        assert list(data.items()) == [
            ("flow", "0->1#0"), ("epsn", 4), ("trigger_psn", 7)]

    def test_nack_classify_minimal(self):
        rec = Recorder()
        rec.nack_classify(11, "sw0", _Flow(), 4, "pass")
        t, cat, name, loc, data = self._one(rec, NACK)
        assert (t, cat, name, loc) == (11, "nack", "nack_classify", "sw0")
        assert list(data.items()) == [
            ("flow", "0->1#0"), ("epsn", 4), ("verdict", "pass"),
            ("tpsn", None), ("n_paths", 0), ("ring_len", 0),
            ("armed", False)]

    def test_nack_classify_with_paths_and_guard(self):
        rec = Recorder()
        rec.nack_classify(12, "sw0", _Flow(), 10, "block", tpsn=13,
                          n_paths=4, ring_len=3, armed=True,
                          guard="epoch")
        _, _, _, _, data = self._one(rec, NACK)
        assert list(data.items()) == [
            ("flow", "0->1#0"), ("epsn", 10), ("verdict", "block"),
            ("tpsn", 13), ("n_paths", 4), ("ring_len", 3),
            ("armed", True), ("epsn_path", 2), ("tpsn_path", 1),
            ("guard", "epoch")]

    def test_nack_classify_paths_without_tpsn(self):
        rec = Recorder()
        rec.nack_classify(13, "sw0", _Flow(), 10, "block", n_paths=4)
        _, _, _, _, data = self._one(rec, NACK)
        assert data["epsn_path"] == 2
        assert data["tpsn_path"] is None

    def test_nack_compensate_and_cancel(self):
        rec = Recorder()
        rec.nack_compensate(14, "sw0", _Flow(), 4, 9)
        rec.nack_cancel(15, "sw0", _Flow(), 4, "arrived")
        comp, cancel = rec.records(NACK)
        assert comp[2] == "nack_compensate"
        assert list(comp[4].items()) == [
            ("flow", "0->1#0"), ("bepsn", 4), ("prove_psn", 9)]
        assert cancel[2] == "nack_cancel"
        assert list(cancel[4].items()) == [
            ("flow", "0->1#0"), ("bepsn", 4), ("reason", "arrived")]

    def test_pfc(self):
        rec = Recorder()
        rec.pfc(16, "tor0/p0", "pause", 180_000)
        t, cat, name, loc, data = self._one(rec, PFC)
        assert (t, cat, name, loc) == (16, "pfc", "pfc_pause", "tor0/p0")
        assert list(data.items()) == [("occupancy_bytes", 180_000)]

    def test_qp_state(self):
        rec = Recorder()
        rec.qp_state(17, "nic0/qp0", _Flow(), "rewind", snd_una=3,
                     snd_nxt=8)
        t, cat, name, loc, data = self._one(rec, QP)
        assert (t, cat, name, loc) == (17, "qp", "qp_state", "nic0/qp0")
        assert list(data.items()) == [
            ("flow", "0->1#0"), ("state", "rewind"), ("snd_una", 3),
            ("snd_nxt", 8)]

    def test_cc_rate(self):
        rec = Recorder()
        rec.cc_rate(18, "cc:0->1#0", 5.5e10)
        t, cat, name, loc, data = self._one(rec, CC)
        assert (t, cat, name, loc) == (18, "cc", "cc_rate", "cc:0->1#0")
        assert list(data.items()) == [("rate_bps", 5.5e10)]

    def test_fault(self):
        rec = Recorder()
        rec.fault(19, "tor0-spine1", "link_down", down_us=500.0)
        t, cat, name, loc, data = self._one(rec, FAULT)
        assert (t, cat, name, loc) == (19, "fault", "fault_link_down",
                                       "tor0-spine1")
        assert list(data.items()) == [("down_us", 500.0)]

    def test_str_flow_deferred_not_stale(self):
        """str(flow) happens at materialization, yet must reflect the
        flow identity at emit time — flows are immutable, so holding the
        object is safe and two emits with different flows stay distinct."""
        class _OtherFlow:
            src, dst, qp = 3, 7, 1

            def __str__(self):
                return "3->7#1"

        rec = Recorder()
        rec.nack_emit(1, "a", _Flow(), 1, None)
        rec.nack_emit(2, "b", _OtherFlow(), 2, None)
        first, second = rec.records(NACK)
        assert first[4]["flow"] == "0->1#0"
        assert second[4]["flow"] == "3->7#1"


class TestSampling:
    def test_stride_keeps_every_kth(self):
        rec = Recorder(sample={QUEUE: 4})
        for i in range(8):
            rec.queue_sample(i, "p", "enq", i * 100, i)
        kept = rec.records(QUEUE)
        assert [r[0] for r in kept] == [3, 7]  # every 4th emit

    def test_sampled_out_events_are_invisible(self):
        rec = Recorder(sample={QUEUE: 4})
        for i in range(8):
            rec.queue_sample(i, "p", "enq", 0, 0)
        assert rec.total_events() == 2
        assert rec.counts == {"enq": 2}
        assert len(rec.ring) == 2

    def test_other_categories_unaffected(self):
        rec = Recorder(sample={QUEUE: 1000})
        rec.packet_hop(1, "p", fake_packet())
        rec.queue_sample(2, "p", "enq", 0, 0)
        assert rec.counts == {"hop": 1}

    def test_invalid_stride_rejected(self):
        with pytest.raises(ValueError, match="unknown sample"):
            Recorder(sample={"bogus": 2})
        with pytest.raises(ValueError, match="must be >= 1"):
            Recorder(sample={QUEUE: 0})


class TestColumns:
    def test_packet_columns_typed(self):
        rec = Recorder(retain={PACKET})
        for psn in (3, 4, 5):
            rec.packet_hop(psn * 10, "tor0/p1", fake_packet(psn=psn))
        cols = rec.columns(PACKET)
        assert isinstance(cols["t"], array) and cols["t"].typecode == "q"
        assert cols["t"].tolist() == [30, 40, 50]
        assert cols["psn"].tolist() == [3, 4, 5]
        assert cols["src"].tolist() == [0, 0, 0]
        assert cols["is_retx"].tolist() == [0, 0, 0]
        assert cols["loc"] == ["tor0/p1"] * 3
        assert cols["ptype"] == ["data"] * 3

    def test_queue_columns_have_names(self):
        rec = Recorder()
        rec.queue_sample(1, "p", "enq", 1500, 1)
        rec.queue_sample(2, "p", "deq", 0, 0)
        cols = rec.columns(QUEUE)
        assert cols["name"] == ["enq", "deq"]
        assert cols["queued_bytes"].tolist() == [1500, 0]

    def test_ring_fallback_when_unretained(self):
        rec = Recorder()  # nothing retained: columns come from the ring
        rec.packet_hop(1, "p", fake_packet())
        rec.queue_sample(2, "p", "enq", 0, 0)
        assert len(rec.columns(PACKET)["t"]) == 1

    def test_variable_shape_category_rejected(self):
        rec = Recorder()
        with pytest.raises(ValueError, match="no uniform column layout"):
            rec.columns(NACK)


class _CountingStub(Recorder):
    """Recorder with every category disabled that fails loudly if any
    emitter is ever invoked — the wiring must hand out ``None`` channels
    so instrumented hot paths skip the call entirely."""

    def __init__(self):
        super().__init__(categories=())
        self.calls = 0

    def _boom(self, *a, **kw):
        self.calls += 1

    packet_hop = queue_sample = queue_enq = queue_deq = _boom
    ecn_mark = drop = _boom
    nack_emit = nack_classify = nack_compensate = nack_cancel = _boom
    pfc = qp_state = cc_rate = fault = _boom


class TestDisabledTracingIsFree:
    def _run(self, recorder):
        from repro.harness.network import (Network, NetworkConfig,
                                           TopologySpec)
        from repro.sim.engine import MS, US

        topo = TopologySpec(kind="leaf_spine", num_tors=2, num_spines=2,
                            nics_per_tor=2, link_bandwidth_bps=100e9,
                            link_delay_ns=US)
        net = Network(NetworkConfig(topology=topo, scheme="rps",
                                    transport="nic_sr", seed=3),
                      recorder=recorder)
        net.post_message(0, 2, 30_000)
        net.run(until_ns=MS)
        net.stop()
        return net

    def test_all_disabled_recorder_never_called(self):
        stub = _CountingStub()
        net = self._run(stub)
        assert stub.calls == 0
        assert stub.total_events() == 0
        # The hot-path channel slots hold None, not a disabled recorder.
        for tor in net.topology.tors:
            assert tor.rec is None
            assert tor._policy.rec_ecn is None
            for port in tor.ports:
                assert port._rec_enq is None
                assert port._rec_deq is None

    def test_none_recorder_matches_disabled_run(self):
        """recorder=None and an all-disabled recorder execute the exact
        same event sequence — tracing is observation-only either way."""
        events_none = self._run(None).sim.executed
        events_stub = self._run(_CountingStub()).sim.executed
        assert events_none == events_stub
