"""Crash-path coverage: every advertised dump trigger must produce a
parseable flight-recorder JSONL file.

Three triggers are wired in (see docs/observability.md): a simulation
exception inside :meth:`Network.run`, an invariant failure via
:func:`check_invariant` (covered in test_recorder.py), and a job-worker
crash in :mod:`repro.harness.jobs` — both isolation modes.
"""

import json

import pytest

from repro.harness.jobs import JobRunner, JobSpec
from repro.harness.network import Network, NetworkConfig, TopologySpec
from repro.obs.record import Recorder, set_active

TOPO = TopologySpec(kind="leaf_spine", num_tors=2, num_spines=2,
                    nics_per_tor=1, link_bandwidth_bps=25e9)


def read_dump(path):
    lines = [json.loads(ln) for ln in open(path).read().splitlines()]
    assert lines[0]["meta"] == "repro-flight-recorder"
    return lines[0], lines[1:]


class TestSimExceptionDump:
    def test_mid_sim_exception_dumps_flight_ring(self, tmp_path,
                                                 monkeypatch):
        monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path))
        rec = Recorder()
        net = Network(NetworkConfig(topology=TOPO, scheme="rps", seed=3),
                      recorder=rec)
        net.post_message(0, 1, 40_000)

        def boom():
            raise RuntimeError("injected mid-sim failure")

        # Fire after traffic has produced events, before completion.
        net.sim.schedule(20_000, boom)
        with pytest.raises(RuntimeError, match="injected mid-sim"):
            net.run(until_ns=10_000_000_000)
        set_active(None)
        assert rec.dumps, "sim exception did not dump the flight ring"
        header, events = read_dump(rec.dumps[-1])
        assert header["reason"] == "sim-exception"
        assert events, "dump carried no events"
        assert {"t", "cat", "ev", "loc"} <= set(events[0])

    def test_untraced_run_exception_propagates_cleanly(self):
        net = Network(NetworkConfig(topology=TOPO, scheme="rps", seed=3))

        def boom():
            raise RuntimeError("no recorder attached")

        net.sim.schedule(1000, boom)
        with pytest.raises(RuntimeError, match="no recorder"):
            net.run(until_ns=1_000_000)


def _plain_boom(seed):
    raise RuntimeError(f"worker exploded (seed={seed})")


def _traced_boom(seed):
    """Simulates a traced experiment dying mid-run in a worker."""
    rec = Recorder()
    set_active(rec)
    for i in range(5):
        rec.queue_sample(i, "tor0:p0", "enq", i, i)
    raise RuntimeError("traced worker exploded")


class TestJobWorkerCrashDump:
    def test_inproc_failure_appends_dump_path(self, tmp_path,
                                              monkeypatch):
        monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path))
        rec = Recorder()
        rec.queue_sample(1, "a", "enq", 0, 0)
        set_active(rec)
        try:
            runner = JobRunner(workers=1, isolation="inproc", retries=0)
            outcome = runner.run_one(JobSpec(
                kind="callable", seed=0,
                params={"target": "tests.obs.test_crash_dump:_plain_boom"}))
        finally:
            set_active(None)
        assert outcome.status == "failed"
        assert "worker exploded" in outcome.error
        assert "[flight recorder: " in outcome.error
        dump_path = outcome.error.rsplit("[flight recorder: ", 1)[1][:-1]
        header, _ = read_dump(dump_path)
        assert header["reason"] == "job-failure"

    def test_subprocess_crash_appends_dump_path(self, tmp_path,
                                                monkeypatch):
        monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path))
        runner = JobRunner(workers=1, isolation="subprocess", retries=0,
                           mp_method="spawn")
        outcome = runner.run_one(JobSpec(
            kind="callable", seed=0,
            params={"target": "tests.obs.test_crash_dump:_traced_boom"}))
        assert outcome.status == "failed"
        assert "traced worker exploded" in outcome.error
        assert "[flight recorder: " in outcome.error
        dump_path = outcome.error.rsplit("[flight recorder: ", 1)[1][:-1]
        header, events = read_dump(dump_path)
        assert header["reason"] == "job-crash"
        assert len(events) == 5


class TestDumpCollisionSafety:
    """Concurrent (or same-millisecond) failures must never race to the
    same dump file: pid + monotonic sequence + caller tag disambiguate."""

    def test_rapid_dumps_get_distinct_paths(self, tmp_path, monkeypatch):
        from repro.obs.record import dump_active_flight

        monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path))
        rec = Recorder()
        rec.queue_sample(1, "a", "enq", 0, 0)
        set_active(rec)
        try:
            paths = [dump_active_flight("collide") for _ in range(5)]
        finally:
            set_active(None)
        assert all(p is not None for p in paths)
        assert len({str(p) for p in paths}) == 5

    def test_tag_is_woven_into_filename(self, tmp_path, monkeypatch):
        from repro.obs.record import dump_active_flight

        monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path))
        rec = Recorder()
        rec.queue_sample(1, "a", "enq", 0, 0)
        set_active(rec)
        try:
            path = dump_active_flight("job-crash", tag="cafe0123")
        finally:
            set_active(None)
        assert "cafe0123" in path.name

    def test_parallel_worker_crashes_write_distinct_dumps(
            self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path))
        runner = JobRunner(workers=3, isolation="subprocess", retries=0,
                           mp_method="spawn")
        specs = [JobSpec(
            kind="callable", seed=s,
            params={"target": "tests.obs.test_crash_dump:_traced_boom"})
            for s in range(3)]
        outcomes = runner.run(specs)
        dumps = []
        for outcome in outcomes.values():
            assert outcome.status == "failed"
            assert "[flight recorder: " in outcome.error
            dumps.append(
                outcome.error.rsplit("[flight recorder: ", 1)[1][:-1])
        assert len(set(dumps)) == 3
        for dump, spec in zip(dumps, specs):
            header, _ = read_dump(dump)
            assert header["reason"] == "job-crash"
        # Each dump is tagged with its job's spec-hash.
        hashes = {spec.spec_hash for spec in specs}
        for dump in dumps:
            assert any(h in dump for h in hashes)
