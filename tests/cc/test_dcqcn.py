"""Unit tests for DCQCN rate control."""

import pytest

from repro.cc.base import FixedRate
from repro.cc.dcqcn import Dcqcn, DcqcnConfig
from repro.sim.engine import US, Simulator
from repro.obs.timeseries import TimeSeries

LINE = 100e9


def make(sim, **cfg_kwargs):
    return Dcqcn(sim, LINE, DcqcnConfig(**cfg_kwargs))


class TestConfig:
    def test_with_timers(self):
        cfg = DcqcnConfig().with_timers(300, 50)
        assert cfg.ti_ns == 300 * US
        assert cfg.td_ns == 50 * US

    def test_defaults_are_recommended_values(self):
        cfg = DcqcnConfig()
        assert cfg.ti_ns == 900 * US
        assert cfg.td_ns == 4 * US


class TestDecrease:
    def test_starts_at_line_rate(self):
        cc = make(Simulator())
        assert cc.rate_bps == LINE

    def test_first_cnp_halves_rate(self):
        # alpha starts at 1, so the first cut is Rc * (1 - 1/2 * ~1).
        cc = make(Simulator())
        cc.on_cnp()
        assert cc.rate_bps == pytest.approx(LINE / 2, rel=0.01)
        assert cc.rate_target == LINE

    def test_td_gates_decreases(self):
        sim = Simulator()
        cc = make(sim, td_ns=100 * US)
        cc.on_cnp()
        rate_after_first = cc.rate_bps
        cc.on_cnp()  # same instant: gated
        assert cc.rate_bps == rate_after_first
        sim.schedule(200 * US, cc.on_cnp)
        sim.run(until=200 * US)
        sim.step()
        assert cc.rate_bps < rate_after_first

    def test_nack_triggers_decrease(self):
        cc = make(Simulator())
        cc.on_nack()
        assert cc.rate_bps < LINE
        assert cc.decreases == 1

    def test_nack_decrease_can_be_disabled(self):
        cc = make(Simulator(), nack_triggers_decrease=False)
        cc.on_nack()
        assert cc.rate_bps == LINE

    def test_rate_floor(self):
        sim = Simulator()
        cc = make(sim, td_ns=0)
        for i in range(200):
            sim.schedule(i + 1, cc.on_cnp)
        sim.run(until=201)
        assert cc.rate_bps >= cc.min_rate_bps

    def test_timeout_drops_to_min(self):
        cc = make(Simulator())
        cc.on_timeout()
        assert cc.rate_bps == cc.min_rate_bps


class TestAlpha:
    def test_cnp_raises_alpha_toward_one(self):
        cc = make(Simulator())
        cc.alpha = 0.1
        cc.on_cnp()
        assert cc.alpha > 0.1

    def test_alpha_decays_without_cnps(self):
        sim = Simulator()
        cc = make(sim, alpha_timer_ns=10 * US)
        cc.on_cnp()
        alpha_after_cnp = cc.alpha
        sim.run(until=500 * US)
        assert cc.alpha < alpha_after_cnp

    def test_nack_does_not_touch_alpha(self):
        cc = make(Simulator())
        before = cc.alpha
        cc.on_nack()
        assert cc.alpha == before


class TestIncrease:
    def test_fast_recovery_converges_to_target(self):
        sim = Simulator()
        cc = make(sim, ti_ns=10 * US)
        cc.on_cnp()  # Rc = 50, Rt = 100
        sim.run(until=60 * US)  # 5-6 fast recovery rounds
        assert cc.rate_bps > 0.95 * LINE

    def test_full_recovery_reaches_line_rate_and_quiesces(self):
        sim = Simulator()
        cc = make(sim, ti_ns=10 * US)
        cc.on_cnp()
        sim.run()
        assert cc.rate_bps == pytest.approx(LINE, rel=1e-3)
        assert cc._increase_event is None  # no perpetual timer

    def test_slow_ti_means_slow_recovery(self):
        sim_fast = Simulator()
        fast = make(sim_fast, ti_ns=10 * US)
        fast.on_cnp()
        sim_fast.run(until=300 * US)

        sim_slow = Simulator()
        slow = make(sim_slow, ti_ns=900 * US)
        slow.on_cnp()
        sim_slow.run(until=300 * US)
        assert fast.rate_bps > slow.rate_bps

    def test_decrease_resets_recovery_stage(self):
        sim = Simulator()
        cc = make(sim, ti_ns=10 * US, td_ns=1)
        cc.on_cnp()
        sim.run(until=25 * US)     # a couple of increase rounds
        stage_before = cc._increase_stage
        assert stage_before > 0
        sim.schedule(1, cc.on_cnp)
        sim.run(until=30 * US)
        assert cc._increase_stage == 0 or cc._increase_stage < stage_before

    def test_hyper_increase_raises_target_faster(self):
        sim = Simulator()
        cfg = dict(ti_ns=10 * US, fast_recovery_rounds=2,
                   hyper_after_rounds=1)
        cc = make(sim, **cfg)
        cc.on_cnp()
        sim.run(until=35 * US)   # past fast recovery + additive
        target_before = cc.rate_target
        sim.run(until=45 * US)   # hyper round
        assert cc.rate_target >= target_before


class TestTrace:
    def test_rate_trace_records_changes(self):
        sim = Simulator()
        trace = TimeSeries("rate")
        cc = Dcqcn(sim, LINE, DcqcnConfig(ti_ns=10 * US), rate_trace=trace)
        cc.on_cnp()
        sim.run(until=100 * US)
        assert len(trace) >= 2
        assert trace.values()[0] == pytest.approx(LINE / 2, rel=0.01)

    def test_stop_cancels_timers(self):
        sim = Simulator()
        cc = make(sim, ti_ns=10 * US)
        cc.on_cnp()
        cc.stop()
        assert sim.run() == 0  # nothing pending fires a callback


class TestFixedRate:
    def test_ignores_all_signals(self):
        sim = Simulator()
        cc = FixedRate(sim, LINE)
        cc.on_cnp()
        cc.on_nack()
        cc.on_timeout()
        assert cc.rate_bps == LINE


class TestByteCounter:
    def test_disabled_by_default(self):
        cc = make(Simulator())
        cc.on_cnp()
        before = cc.rate_bps
        cc.on_bytes_sent(10**9)
        assert cc.rate_bps == before

    def test_bytes_drive_increases(self):
        sim = Simulator()
        cc = make(sim, ti_ns=10_000_000, byte_counter_bytes=100_000)
        cc.on_cnp()  # Rc = 50
        after_cut = cc.rate_bps
        cc.on_bytes_sent(500_000)  # 5 byte-counter stages, no timer
        assert cc.rate_bps > after_cut
        assert cc._byte_stage == 5

    def test_partial_bytes_accumulate(self):
        sim = Simulator()
        cc = make(sim, byte_counter_bytes=100_000)
        cc.on_cnp()
        cc.on_bytes_sent(60_000)
        assert cc._byte_stage == 0
        cc.on_bytes_sent(60_000)
        assert cc._byte_stage == 1

    def test_hyper_requires_both_clocks(self):
        sim = Simulator()
        cc = make(sim, ti_ns=10 * US, byte_counter_bytes=10_000,
                  fast_recovery_rounds=2)
        cc.on_cnp()
        # Drive the byte clock far past F while the timer stays behind.
        cc.on_bytes_sent(100_000)   # byte stage 10 > F; timer stage 0
        target_after_bytes = cc.rate_target
        # Only additive increase should have applied (not hyper): the
        # target has grown by at most stages * Rai.
        assert cc.rate_target - cc.line_rate_bps <= 0
        assert target_after_bytes <= cc.line_rate_bps
        # With both clocks running the rate fully recovers and the
        # increase machinery parks itself.
        sim.run(until=200 * US)
        assert cc.rate_bps == pytest.approx(cc.line_rate_bps, rel=1e-3)
        assert cc._increase_event is None

    def test_decrease_resets_byte_state(self):
        sim = Simulator()
        cc = make(sim, byte_counter_bytes=10_000, td_ns=0)
        cc.on_cnp()
        cc.on_bytes_sent(35_000)
        assert cc._byte_stage == 3
        sim.schedule(1, cc.on_cnp)
        sim.run()
        assert cc._byte_stage == 0
        assert cc._bytes_acc == 0

    def test_recovered_qp_ignores_bytes(self):
        sim = Simulator()
        cc = make(sim, byte_counter_bytes=10_000)
        # Never cut: at line rate from the start.
        cc.on_bytes_sent(10**6)
        assert cc._byte_stage == 0
