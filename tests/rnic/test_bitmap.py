"""Unit + property tests for the OOO reception tracker."""

from hypothesis import given, strategies as st

from repro.rnic.bitmap import OooTracker


class TestOooTracker:
    def test_empty(self):
        tracker = OooTracker()
        assert len(tracker) == 0
        assert tracker.smallest() is None
        assert 5 not in tracker

    def test_add_and_contains(self):
        tracker = OooTracker()
        tracker.add(7)
        assert 7 in tracker
        assert len(tracker) == 1

    def test_advance_over_contiguous_run(self):
        tracker = OooTracker()
        for psn in (1, 2, 3, 5):
            tracker.add(psn)
        # ePSN=0 packet arrives: advance consumes 1,2,3 and stops at 4.
        assert tracker.advance(1) == 4
        assert 5 in tracker
        assert len(tracker) == 1

    def test_advance_with_no_stored_psns(self):
        tracker = OooTracker()
        assert tracker.advance(10) == 10

    def test_peak_size(self):
        tracker = OooTracker()
        for psn in range(5):
            tracker.add(psn + 1)
        tracker.advance(1)
        assert tracker.peak_size == 5

    def test_smallest(self):
        tracker = OooTracker()
        tracker.add(9)
        tracker.add(4)
        assert tracker.smallest() == 4


@given(st.sets(st.integers(min_value=1, max_value=200)))
def test_advance_returns_first_gap(received):
    """Property: advance(1) lands exactly on the smallest missing PSN."""
    tracker = OooTracker()
    for psn in received:
        tracker.add(psn)
    expected = 1
    while expected in received:
        expected += 1
    assert tracker.advance(1) == expected
    # Everything below the returned ePSN was consumed.
    assert all(p >= expected for p in
               [tracker.smallest()] if tracker.smallest() is not None)


@given(st.lists(st.integers(min_value=0, max_value=60), min_size=1,
                unique=True))
def test_interleaved_adds_and_advances_match_reference(psns):
    """Property: tracker behaves like a reference set-based receiver when
    PSNs 0..n arrive in arbitrary order."""
    tracker = OooTracker()
    epsn = 0
    delivered = set()
    for psn in psns:
        if psn == epsn:
            delivered.add(psn)
            new_epsn = tracker.advance(psn + 1)
            delivered.update(range(psn + 1, new_epsn))
            epsn = new_epsn
        elif psn > epsn:
            tracker.add(psn)
    reference = set(psns)
    expected = 0
    while expected in reference:
        expected += 1
    assert epsn == expected
    assert delivered == {p for p in reference if p < expected}
