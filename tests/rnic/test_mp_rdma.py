"""Tests for the MPRDMA-style transport (rich NACKs + sender filtering)."""

from repro.collectives.group import interleaved_ring_groups
from repro.harness.motivation import motivation_config
from repro.harness.network import Network
from repro.net.packet import FlowKey, PacketType


class TestRichNacks:
    def test_nack_carries_trigger_psn(self):
        from tests.rnic.test_receivers import Harness
        h = Harness(transport="mp_rdma")
        h.deliver(0)
        h.deliver(3)   # trigger
        nacks = h.control_sent(PacketType.NACK)
        assert len(nacks) == 1
        assert nacks[0].epsn == 1
        assert nacks[0].psn == 3      # the trigger rides along

    def test_commodity_nack_does_not(self):
        from tests.rnic.test_receivers import Harness
        h = Harness(transport="nic_sr")
        h.deliver(0)
        h.deliver(3)
        assert h.control_sent(PacketType.NACK)[0].psn == 0


class TestSenderFiltering:
    def _sender(self, nic_pair, filter_n):
        nic0 = nic_pair.nics[0]
        nic0.post_send(1, 500_000)
        nic_pair.nics[1].expect_message(0, 500_000)
        sender = nic0.senders[FlowKey(0, 1)]
        sender.nack_filter_n_paths = filter_n
        nic_pair.run(until=5_000)
        return sender

    def test_invalid_nack_filtered(self, nic_pair):
        sender = self._sender(nic_pair, filter_n=2)
        target = sender.snd_una + 2
        retx_before = sender.stats.retransmissions
        # trigger on a different path (odd vs even residue)
        sender.on_nack(target, trigger_psn=target + 1)
        assert sender.nacks_filtered == 1
        nic_pair.run()
        assert sender.stats.retransmissions == retx_before
        assert sender.complete

    def test_valid_nack_retransmits(self, nic_pair):
        sender = self._sender(nic_pair, filter_n=2)
        target = sender.snd_una + 2
        sender.on_nack(target, trigger_psn=target + 2)  # same residue
        assert sender.nacks_filtered == 0
        nic_pair.run()
        assert sender.stats.retransmissions >= 1

    def test_no_trigger_means_no_filtering(self, nic_pair):
        sender = self._sender(nic_pair, filter_n=2)
        target = sender.snd_una + 2
        sender.on_nack(target)    # commodity NACK: must act on it
        assert sender.nacks_filtered == 0

    def test_filtered_nack_still_advances_cumulative(self, nic_pair):
        sender = self._sender(nic_pair, filter_n=2)
        target = sender.snd_una + 4
        sender.on_nack(target, trigger_psn=target + 1)
        assert sender.snd_una >= target


class TestEndToEnd:
    def test_mp_rdma_with_spraying_avoids_spurious_damage(self):
        """Sender-side Eq. 3 filtering over deterministic spraying gets
        close to Themis without any switch logic — the transport the
        paper says commodity RNICs cannot run."""
        def run(transport, scheme):
            net = Network(motivation_config(scheme=scheme,
                                            transport=transport, seed=4))
            for members in interleaved_ring_groups(8, 2):
                for i, node in enumerate(members):
                    net.post_message(node,
                                     members[(i + 1) % len(members)],
                                     1_000_000)
            net.run(until_ns=60_000_000_000)
            assert net.metrics.all_flows_done()
            filtered = sum(qp.nacks_filtered for nic in net.nics
                           for qp in nic.senders.values())
            out = {"retx": net.metrics.spurious_ratio,
                   "goodput": net.metrics.mean_goodput_gbps(),
                   "filtered": filtered}
            net.stop()
            return out

        commodity = run("nic_sr", "themis_noval")
        mp = run("mp_rdma", "themis_noval")
        assert mp["filtered"] > 0
        assert mp["retx"] < 0.5 * max(commodity["retx"], 0.002)
        assert mp["goodput"] >= commodity["goodput"]
