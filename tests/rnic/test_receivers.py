"""Unit tests for the receiver transports (NIC-SR, GBN, Ideal).

These drive receivers directly with hand-crafted packet arrival orders,
checking the §2.2 semantics the whole paper hinges on.
"""

import pytest

from repro.cc.base import FixedRate
from repro.harness.metrics import Metrics
from repro.net.packet import FlowKey, PacketType, data_packet
from repro.rnic.config import RnicConfig
from repro.rnic.nic import Rnic
from repro.rnic.reliability import GbnReceiver, IdealReceiver, NicSrReceiver
from repro.sim.engine import Simulator
from repro.sim.rng import SimRng


class Harness:
    """One receiving RNIC whose uplink is captured for inspection."""

    def __init__(self, transport="nic_sr"):
        self.sim = Simulator()
        self.metrics = Metrics(self.sim)
        self.nic = Rnic(self.sim, 1, config=RnicConfig(),
                        metrics=self.metrics, rng=SimRng(1),
                        cc_factory=lambda f: FixedRate(self.sim, 100e9),
                        transport=transport)

        class Capture:
            def __init__(self):
                self.sent = []

            def enqueue(self, packet):
                self.sent.append(packet)
                return True

        self.wire = Capture()
        self.nic.uplink = self.wire
        self.flow = FlowKey(0, 1)

    def deliver(self, psn, *, ecn=False, payload=1000):
        pkt = data_packet(self.flow, psn, payload)
        pkt.ecn_marked = ecn
        self.nic.receive(pkt, None)
        return pkt

    def control_sent(self, ptype):
        return [p for p in self.wire.sent if p.ptype is ptype]

    @property
    def receiver(self):
        return self.nic.receivers[self.flow]


class TestNicSr:
    def test_in_order_advances_epsn(self):
        h = Harness()
        for psn in range(5):
            h.deliver(psn)
        assert h.receiver.epsn == 5
        assert h.control_sent(PacketType.NACK) == []

    def test_ooo_triggers_nack_with_epsn_only(self):
        h = Harness()
        h.deliver(0)
        h.deliver(2)  # PSN 1 skipped
        nacks = h.control_sent(PacketType.NACK)
        assert len(nacks) == 1
        assert nacks[0].epsn == 1

    def test_at_most_one_nack_per_epsn(self):
        """Faithful §2.2 rule: more OOO arrivals for the same ePSN do not
        produce further NACKs."""
        h = Harness()
        h.deliver(0)
        h.deliver(2)
        h.deliver(3)
        h.deliver(4)
        assert len(h.control_sent(PacketType.NACK)) == 1

    def test_new_epsn_can_nack_again(self):
        h = Harness()
        h.deliver(0)
        h.deliver(2)                      # NACK for ePSN=1
        h.deliver(1)                      # heals; ePSN -> 3
        assert h.receiver.epsn == 3
        h.deliver(5)                      # new stall at ePSN=3
        nacks = h.control_sent(PacketType.NACK)
        assert [n.epsn for n in nacks] == [1, 3]

    def test_bitmap_fill_advances_over_run(self):
        h = Harness()
        for psn in (0, 3, 2, 4):
            h.deliver(psn)
        h.deliver(1)
        assert h.receiver.epsn == 5

    def test_duplicates_counted_not_nacked(self):
        h = Harness()
        h.deliver(0)
        h.deliver(1)
        h.deliver(1)      # duplicate below bitmap
        h.deliver(3)      # OOO, stored
        h.deliver(3)      # duplicate inside bitmap
        stats = h.metrics.flows[h.flow]
        assert stats.receiver_duplicates == 2
        assert len(h.control_sent(PacketType.NACK)) == 1

    def test_completion_on_message_boundary(self):
        h = Harness()
        done = []
        payload = RnicConfig().payload_bytes
        h.nic.expect_message(0, 3 * payload, on_done=lambda: done.append(1))
        h.deliver(0, payload=payload)
        h.deliver(2, payload=payload)   # OOO
        assert done == []
        h.deliver(1, payload=payload)   # heals -> ePSN=3 -> complete
        assert done == [1]


class TestAckGeneration:
    def test_acks_coalesced(self):
        h = Harness()
        for psn in range(4):  # ack_coalesce_packets = 4
            h.deliver(psn)
        acks = h.control_sent(PacketType.ACK)
        assert len(acks) == 1
        assert acks[0].epsn == 4

    def test_delayed_ack_fires_for_straggler(self):
        h = Harness()
        h.deliver(0)
        assert h.control_sent(PacketType.ACK) == []
        h.sim.run()
        acks = h.control_sent(PacketType.ACK)
        assert len(acks) == 1
        assert acks[0].epsn == 1

    def test_cnp_on_ecn_marked_packet(self):
        h = Harness()
        h.deliver(0, ecn=True)
        assert len(h.control_sent(PacketType.CNP)) == 1

    def test_cnp_rate_limited(self):
        h = Harness()
        for psn in range(10):
            h.deliver(psn, ecn=True)
        # All within one cnp_interval -> a single CNP.
        assert len(h.control_sent(PacketType.CNP)) == 1

    def test_cnp_interval_elapses(self):
        h = Harness()
        h.deliver(0, ecn=True)
        h.sim.run()  # drain timers
        h.sim.schedule(60_000, lambda: None)
        h.sim.run()  # advance past the 50 us interval
        h.deliver(1, ecn=True)
        assert len(h.control_sent(PacketType.CNP)) == 2


class TestGbn:
    def test_ooo_dropped_entirely(self):
        h = Harness(transport="gbn")
        h.deliver(0)
        h.deliver(2)
        assert h.receiver.epsn == 1
        assert h.receiver.ooo_dropped == 1
        # Delivering 1 now does NOT heal 2 (it was dropped, must be resent)
        h.deliver(1)
        assert h.receiver.epsn == 2

    def test_nack_once_per_epsn(self):
        h = Harness(transport="gbn")
        h.deliver(0)
        h.deliver(2)
        h.deliver(3)
        assert len(h.control_sent(PacketType.NACK)) == 1

    def test_duplicate_below_epsn(self):
        h = Harness(transport="gbn")
        h.deliver(0)
        h.deliver(0)
        assert h.metrics.flows[h.flow].receiver_duplicates == 1


class TestIdeal:
    def test_never_nacks(self):
        h = Harness(transport="ideal")
        h.deliver(0)
        h.deliver(5)
        h.deliver(3)
        assert h.control_sent(PacketType.NACK) == []

    def test_ooo_accepted_and_healed(self):
        h = Harness(transport="ideal")
        for psn in (0, 2, 3, 1):
            h.deliver(psn)
        assert h.receiver.epsn == 4

    def test_receiver_classes_registered(self):
        from repro.rnic.reliability import (RECEIVER_CLASSES,
                                            MpRdmaReceiver)
        assert RECEIVER_CLASSES == {"nic_sr": NicSrReceiver,
                                    "gbn": GbnReceiver,
                                    "ideal": IdealReceiver,
                                    "mp_rdma": MpRdmaReceiver}


class TestNicDispatch:
    def test_unknown_transport_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Rnic(sim, 0, config=RnicConfig(), metrics=Metrics(sim),
                 rng=SimRng(0), cc_factory=lambda f: FixedRate(sim, 1e9),
                 transport="bogus")

    def test_loopback_rejected(self):
        h = Harness()
        with pytest.raises(ValueError):
            h.nic.post_send(1, 100)  # nic id is 1; dst 1 = loopback

    def test_wrong_direction_qp_rejected(self):
        h = Harness()
        with pytest.raises(ValueError):
            h.nic.sender(FlowKey(5, 1))   # src != nic id
        with pytest.raises(ValueError):
            h.nic.receiver(FlowKey(1, 5))  # dst != nic id

    def test_stale_control_packet_ignored(self):
        from repro.net.packet import ack_packet
        h = Harness()
        # ACK for a QP that was never created: silently dropped.
        h.nic.receive(ack_packet(FlowKey(1, 0), 5), None)
