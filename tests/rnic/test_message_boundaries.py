"""Property tests for message segmentation and completion ordering."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.net.packet import FlowKey

from tests.rnic.conftest import NicPair

message_lists = st.lists(st.integers(1, 30_000), min_size=1, max_size=6)


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(sizes=message_lists)
def test_multi_message_completions_fire_in_order(sizes):
    """Messages posted on one QP complete in post order on both sides,
    regardless of sizes (including sub-MTU and odd remainders)."""
    pair = NicPair()
    send_order, recv_order = [], []
    for index, nbytes in enumerate(sizes):
        pair.nics[0].post_send(
            1, nbytes, on_done=lambda i=index: send_order.append(i))
        pair.nics[1].expect_message(
            0, nbytes, on_done=lambda i=index: recv_order.append(i))
    pair.run()
    assert send_order == list(range(len(sizes)))
    assert recv_order == list(range(len(sizes)))


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(sizes=message_lists)
def test_psn_space_is_exactly_the_segment_count(sizes):
    """The QP's PSN space equals the sum of per-message segment counts —
    no segment is skipped or double-counted across message boundaries."""
    pair = NicPair()
    config = pair.config
    for nbytes in sizes:
        pair.nics[0].post_send(1, nbytes)
        pair.nics[1].expect_message(0, nbytes)
    pair.run()
    sender = pair.nics[0].senders[FlowKey(0, 1)]
    expected = sum(config.packets_for(n) for n in sizes)
    assert sender.total_psns == expected
    assert sender.snd_una == expected
    receiver = pair.nics[1].receivers[FlowKey(0, 1)]
    assert receiver.epsn == expected


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(sizes=message_lists, seed=st.integers(0, 1000))
def test_payload_bytes_conserved_per_message(sizes, seed):
    """Sum of segment payloads reconstructs each message exactly."""
    pair = NicPair()
    for nbytes in sizes:
        pair.nics[0].post_send(1, nbytes)
    sender = pair.nics[0].senders[FlowKey(0, 1)]
    psn = 0
    for nbytes in sizes:
        npkts = pair.config.packets_for(nbytes)
        total = sum(sender.payload_for(psn + k) for k in range(npkts))
        assert total == nbytes
        psn += npkts
