"""Go-Back-N under loss and spraying: the CX-4/5 story end to end."""

from repro.collectives.group import interleaved_ring_groups
from repro.harness.motivation import motivation_config
from repro.harness.network import Network, NetworkConfig, TopologySpec

SMALL = TopologySpec(kind="leaf_spine", num_tors=2, num_spines=2,
                     nics_per_tor=2, link_bandwidth_bps=25e9)


class TestGbnRecovery:
    def test_gbn_completes_under_loss(self):
        net = Network(NetworkConfig(topology=SMALL, transport="gbn",
                                    scheme="ecmp", seed=5))
        for sw in net.topology.switches:
            if sw.name.startswith("spine"):
                for port in sw.ports:
                    port.set_loss(0.02, net.rng.fork(f"l{port.name}"))
        net.post_message(0, 2, 300_000)
        net.post_message(1, 3, 300_000)
        net.run(until_ns=120_000_000_000)
        assert net.metrics.all_flows_done()
        assert net.metrics.drops > 0
        # Every loss costs a whole window of retransmissions under GBN.
        assert net.metrics.retransmissions >= net.metrics.drops

    def test_gbn_retransmits_more_than_sr_for_same_loss(self):
        def retx(transport):
            net = Network(NetworkConfig(topology=SMALL,
                                        transport=transport,
                                        scheme="ecmp", seed=5))
            for sw in net.topology.switches:
                if sw.name.startswith("spine"):
                    for port in sw.ports:
                        port.set_loss(0.02,
                                      net.rng.fork(f"l{port.name}"))
            net.post_message(0, 2, 300_000)
            net.run(until_ns=120_000_000_000)
            assert net.metrics.all_flows_done()
            return net.metrics.retransmissions

        assert retx("gbn") > retx("nic_sr")

    def test_gbn_with_spraying_degrades_catastrophically(self):
        """§1's motivation for the NIC-SR generation: under spraying a
        GBN receiver throws away every OOO arrival, so the goodput
        collapse dwarfs NIC-SR's."""
        def goodput(transport):
            net = Network(motivation_config(transport=transport, seed=6))
            for members in interleaved_ring_groups(8, 2):
                for i, node in enumerate(members):
                    net.post_message(node,
                                     members[(i + 1) % len(members)],
                                     500_000)
            net.run(until_ns=120_000_000_000)
            assert net.metrics.all_flows_done()
            value = net.metrics.mean_goodput_gbps()
            net.stop()
            return value

        assert goodput("gbn") < 0.6 * goodput("nic_sr")
