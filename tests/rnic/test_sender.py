"""Unit tests for the sender QP: pacing, completions, NACK/RTO reaction."""

import pytest

from repro.cc.base import FixedRate
from repro.net.packet import FlowKey
from repro.rnic.config import RnicConfig
from repro.sim.engine import MS, US


class TestMessaging:
    def test_message_completes_end_to_end(self, nic_pair):
        done = []
        nic_pair.nics[0].post_send(1, 100_000, on_done=lambda: done.append(1))
        nic_pair.nics[1].expect_message(0, 100_000)
        nic_pair.run()
        assert done == [1]
        sender = nic_pair.nics[0].senders[FlowKey(0, 1)]
        assert sender.complete

    def test_receiver_completion_fires(self, nic_pair):
        got = []
        nic_pair.nics[0].post_send(1, 50_000)
        nic_pair.nics[1].expect_message(0, 50_000,
                                        on_done=lambda: got.append(1))
        nic_pair.run()
        assert got == [1]

    def test_multiple_messages_share_psn_space(self, nic_pair):
        order = []
        nic0, nic1 = nic_pair.nics
        nic0.post_send(1, 30_000, on_done=lambda: order.append("m1"))
        nic0.post_send(1, 30_000, on_done=lambda: order.append("m2"))
        nic1.expect_message(0, 30_000)
        nic1.expect_message(0, 30_000)
        nic_pair.run()
        assert order == ["m1", "m2"]
        sender = nic0.senders[FlowKey(0, 1)]
        cfg = nic_pair.config
        assert sender.total_psns == 2 * cfg.packets_for(30_000)

    def test_payload_for_last_packet_is_remainder(self, nic_pair):
        nic0 = nic_pair.nics[0]
        nic0.post_send(1, 2000)
        sender = nic0.senders[FlowKey(0, 1)]
        payload = nic_pair.config.payload_bytes
        assert sender.payload_for(0) == payload
        assert sender.payload_for(1) == 2000 - payload

    def test_payload_for_unposted_psn_raises(self, nic_pair):
        nic0 = nic_pair.nics[0]
        nic0.post_send(1, 1000)
        sender = nic0.senders[FlowKey(0, 1)]
        with pytest.raises(ValueError):
            sender.payload_for(99)

    def test_stats_bytes_posted(self, nic_pair):
        nic_pair.nics[0].post_send(1, 123_456)
        nic_pair.nics[1].expect_message(0, 123_456)
        nic_pair.run()
        stats = nic_pair.metrics.flows[FlowKey(0, 1)]
        assert stats.bytes_posted == 123_456
        assert stats.sender_done_ns is not None


class TestPacing:
    def test_rate_limits_throughput(self, make_nic_pair):
        # 10 Gbps CC rate on a 100 Gbps wire.
        pair = make_nic_pair()
        for nic in pair.nics:
            nic.cc_factory = lambda flow, sim=pair.sim: FixedRate(sim, 10e9)
        pair.nics[0].post_send(1, 1_000_000)
        pair.nics[1].expect_message(0, 1_000_000)
        pair.run()
        stats = pair.metrics.flows[FlowKey(0, 1)]
        seconds = stats.sender_done_ns / 1e9
        gbps = 1_000_000 * 8 / seconds / 1e9
        assert 7.0 < gbps < 10.5

    def test_line_rate_achievable(self, nic_pair):
        nic_pair.nics[0].post_send(1, 4_000_000)
        nic_pair.nics[1].expect_message(0, 4_000_000)
        nic_pair.run()
        stats = nic_pair.metrics.flows[FlowKey(0, 1)]
        gbps = 4_000_000 * 8 / stats.sender_done_ns
        assert gbps > 85  # of 100G line rate, minus ack latency

    def test_window_bounds_inflight(self, make_nic_pair):
        pair = make_nic_pair(config=RnicConfig(max_inflight_packets=4))
        pair.nics[0].post_send(1, 1_000_000)
        pair.nics[1].expect_message(0, 1_000_000)
        sender = pair.nics[0].senders[FlowKey(0, 1)]
        max_seen = 0
        while pair.sim.step():
            max_seen = max(max_seen, sender.inflight)
        assert max_seen <= 4
        assert sender.complete


class TestNackReaction:
    def test_nack_triggers_selective_retransmit(self, nic_pair):
        nic0 = nic_pair.nics[0]
        nic0.post_send(1, 100_000)
        nic_pair.nics[1].expect_message(0, 100_000)
        sender = nic0.senders[FlowKey(0, 1)]
        # Run a little, then inject a NACK for PSN 3.
        nic_pair.run(until=5_000)
        before = sender.stats.retransmissions
        target = sender.snd_una + 1  # an in-flight PSN
        assert target < sender.next_psn
        sender.on_nack(target)
        nic_pair.run()
        assert sender.stats.nacks_received == 1
        assert sender.stats.retransmissions >= before + 1
        assert sender.complete

    def test_nack_advances_cumulative_ack(self, nic_pair):
        nic0 = nic_pair.nics[0]
        nic0.post_send(1, 100_000)
        nic_pair.nics[1].expect_message(0, 100_000)
        sender = nic0.senders[FlowKey(0, 1)]
        nic_pair.run(until=5_000)
        sender.on_nack(10)
        assert sender.snd_una >= 10

    def test_duplicate_nacks_queue_single_retx(self, nic_pair):
        nic0 = nic_pair.nics[0]
        nic0.post_send(1, 1_000_000)
        sender = nic0.senders[FlowKey(0, 1)]
        nic_pair.run(until=3_000)
        target = sender.snd_una + 5
        sender._queue_retx(target)
        sender._queue_retx(target)
        assert sender._retx_queue.count(target) == 1

    def test_gbn_rewinds_on_nack(self, make_nic_pair):
        pair = make_nic_pair(transport="gbn")
        nic0 = pair.nics[0]
        nic0.post_send(1, 1_000_000)
        pair.nics[1].expect_message(0, 1_000_000)
        sender = nic0.senders[FlowKey(0, 1)]
        pair.run(until=10_000)
        high = sender.next_psn
        assert high > 10
        sender.on_nack(5)
        assert sender.next_psn == 5
        pair.run()
        assert sender.complete
        # The rewound span was re-sent.
        assert sender.stats.retransmissions >= high - 5 - 1


class TestTimeout:
    def test_rto_fires_when_no_progress(self, make_nic_pair):
        pair = make_nic_pair(config=RnicConfig(rto_ns=100 * US))
        # Break the wire so nothing is delivered.
        pair.nics[0].uplink.up = False
        pair.nics[0].post_send(1, 10_000)
        pair.run(until=2 * MS)
        sender = pair.nics[0].senders[FlowKey(0, 1)]
        assert sender.stats.timeouts >= 1
        assert not sender.complete

    def test_rto_backoff_is_bounded(self, make_nic_pair):
        cfg = RnicConfig(rto_ns=100 * US, rto_backoff=2.0,
                         rto_max_ns=400 * US)
        pair = make_nic_pair(config=cfg)
        pair.nics[0].uplink.up = False
        pair.nics[0].post_send(1, 10_000)
        pair.run(until=5 * MS)
        sender = pair.nics[0].senders[FlowKey(0, 1)]
        assert sender._rto_current_ns <= cfg.rto_max_ns

    def test_recovery_after_transient_outage(self, make_nic_pair):
        pair = make_nic_pair(config=RnicConfig(rto_ns=100 * US))
        pair.nics[0].uplink.up = False
        done = []
        pair.nics[0].post_send(1, 10_000, on_done=lambda: done.append(1))
        pair.nics[1].expect_message(0, 10_000)
        pair.run(until=300 * US)
        pair.nics[0].uplink.up = True
        pair.run()
        assert done == [1]


class TestOracle:
    def test_force_retransmit_resends_without_nack(self, nic_pair):
        nic0 = nic_pair.nics[0]
        nic0.post_send(1, 100_000)
        nic_pair.nics[1].expect_message(0, 100_000)
        sender = nic0.senders[FlowKey(0, 1)]
        nic_pair.run(until=3_000)
        sender.force_retransmit(sender.snd_una + 1)
        nic_pair.run()
        assert sender.stats.retransmissions >= 1
        assert sender.stats.nacks_received == 0
        assert sender.complete
