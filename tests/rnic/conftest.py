"""Fixtures: two RNICs wired back-to-back with a direct cable.

No switches involved — reliability/pacing behaviour in isolation.
"""

import pytest

from repro.cc.base import FixedRate
from repro.harness.metrics import Metrics
from repro.net.port import Port
from repro.rnic.config import RnicConfig
from repro.rnic.nic import Rnic
from repro.sim.engine import Simulator
from repro.sim.rng import SimRng


class NicPair:
    """Two directly cabled RNICs plus shared sim/metrics."""

    def __init__(self, transport="nic_sr", config=None,
                 bandwidth_bps=100e9, delay_ns=1000, cc_factory=None):
        self.sim = Simulator()
        self.metrics = Metrics(self.sim)
        self.config = config or RnicConfig()
        line = bandwidth_bps

        def default_cc(flow):
            return FixedRate(self.sim, line)

        self.nics = []
        for nic_id in (0, 1):
            nic = Rnic(self.sim, nic_id, config=self.config,
                       metrics=self.metrics, rng=SimRng(nic_id),
                       cc_factory=cc_factory or default_cc,
                       transport=transport)
            self.nics.append(nic)
        for me, other in ((0, 1), (1, 0)):
            port = Port(self.sim, self.nics[me],
                        bandwidth_bps=bandwidth_bps, delay_ns=delay_ns)
            port.connect(self.nics[other])
            self.nics[me].uplink = port

    def run(self, until=None):
        return self.sim.run(until=until)


@pytest.fixture
def nic_pair():
    return NicPair()


@pytest.fixture
def make_nic_pair():
    return NicPair
