"""Dashboard smoke tests: headless rendering and a real HTTP round trip."""

import json
import threading
import urllib.request

import pytest

from repro.results import ResultsStore, ingest_doc
from repro.results.query import arena_cells
from repro.results.server import Dashboard, check_pages, make_server
from repro.results.store import connect_readonly

from tests.results.test_store import (make_arena_doc, make_bench_doc,
                                      make_faults_doc)


@pytest.fixture()
def db(tmp_path):
    path = str(tmp_path / "r.sqlite")
    with ResultsStore(path) as store:
        ingest_doc(store, make_arena_doc(), source="a1")
        ingest_doc(store, make_arena_doc(), source="a2")
        ingest_doc(store, make_faults_doc(), source="f1")
        ingest_doc(store, make_bench_doc(), source="b1")
    return path


class TestHeadlessRendering:
    def test_check_pages_clean_on_populated_store(self, db):
        assert check_pages(db) == []

    def test_check_pages_clean_on_empty_store(self, tmp_path):
        path = str(tmp_path / "empty.sqlite")
        ResultsStore(path).close()
        assert check_pages(path) == []

    def test_pages_render_html_documents(self, db):
        dashboard = Dashboard(db)
        for path in ("/", "/arena", "/arena/1", "/faults", "/bench"):
            status, ctype, body = dashboard.render(path)
            assert status == 200, path
            assert ctype.startswith("text/html")
            text = body.decode()
            assert text.startswith("<!DOCTYPE html>")
            assert "</html>" in text

    def test_unknown_routes_404(self, db):
        dashboard = Dashboard(db)
        assert dashboard.render("/nope")[0] == 404
        assert dashboard.render("/arena/999")[0] == 404
        assert dashboard.render("/cell/1/ffffffffffffffff")[0] == 404
        assert dashboard.render("/api/arena/999")[0] == 404

    def test_api_endpoints_serve_query_json(self, db):
        dashboard = Dashboard(db)
        status, ctype, body = dashboard.render("/api/summary")
        assert status == 200 and ctype == "application/json"
        summary = json.loads(body)
        assert summary["arena_runs"] == 2
        status, _, body = dashboard.render("/api/ranking-over-time")
        assert status == 200
        assert len(json.loads(body)["run_ids"]) == 2

    def test_cell_page_and_api(self, db):
        conn = connect_readonly(db)
        spec_hash = arena_cells(conn, 1)[0]["spec_hash"]
        dashboard = Dashboard(db)
        status, _, body = dashboard.render(f"/cell/1/{spec_hash}")
        assert status == 200
        assert spec_hash[:10] in body.decode()
        status, _, body = dashboard.render(f"/api/cell/1/{spec_hash}")
        detail = json.loads(body)
        assert [h["run_id"] for h in detail["history"]] == [1, 2]

    def test_query_strings_are_ignored(self, db):
        assert Dashboard(db).render("/arena?refresh=1")[0] == 200


class TestTraces:
    def test_trace_served_and_deep_linked(self, db, tmp_path):
        conn = connect_readonly(db)
        spec_hash = arena_cells(conn, 1)[0]["spec_hash"]
        traces = tmp_path / "traces"
        traces.mkdir()
        (traces / f"{spec_hash}.json").write_text('{"traceEvents": []}')
        dashboard = Dashboard(db, traces_dir=str(traces))
        status, ctype, body = dashboard.render(
            f"/traces/{spec_hash}.json")
        assert status == 200 and ctype == "application/json"
        page = dashboard.render(f"/cell/1/{spec_hash}",
                                host="localhost:8000")[2].decode()
        assert "ui.perfetto.dev" in page
        assert f"{spec_hash}.json" in page

    def test_no_traces_dir_hints_instead(self, db):
        conn = connect_readonly(db)
        spec_hash = arena_cells(conn, 1)[0]["spec_hash"]
        page = Dashboard(db).render(f"/cell/1/{spec_hash}")[2].decode()
        assert "No exported trace" in page

    def test_path_traversal_rejected(self, db, tmp_path):
        traces = tmp_path / "traces"
        traces.mkdir()
        (tmp_path / "secret.json").write_text("{}")
        dashboard = Dashboard(db, traces_dir=str(traces))
        # The route regex only admits [\w.-]+ names; dotted relative
        # names that resolve outside the directory are rejected too.
        assert dashboard.render("/traces/../secret.json")[0] == 404
        assert dashboard.render("/traces/..%2Fsecret.json")[0] == 404


class TestHttpRoundTrip:
    def test_threaded_server_serves_pages_and_api(self, db):
        server = make_server(db, port=0, quiet=True)
        host, port = server.server_address[:2]
        thread = threading.Thread(target=server.serve_forever,
                                  daemon=True)
        thread.start()
        try:
            base = f"http://{host}:{port}"
            with urllib.request.urlopen(f"{base}/", timeout=10) as resp:
                assert resp.status == 200
                assert "text/html" in resp.headers["Content-Type"]
                assert b"</html>" in resp.read()
            with urllib.request.urlopen(f"{base}/api/summary",
                                        timeout=10) as resp:
                assert json.loads(resp.read())["arena_runs"] == 2
            with urllib.request.urlopen(f"{base}/healthz",
                                        timeout=10) as resp:
                assert json.loads(resp.read())["ok"] is True
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

    def test_concurrent_requests_use_per_thread_connections(self, db):
        server = make_server(db, port=0, quiet=True)
        host, port = server.server_address[:2]
        thread = threading.Thread(target=server.serve_forever,
                                  daemon=True)
        thread.start()
        results, errors = [], []

        def fetch(path):
            try:
                with urllib.request.urlopen(
                        f"http://{host}:{port}{path}",
                        timeout=10) as resp:
                    results.append((path, resp.status))
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append((path, exc))

        try:
            workers = [threading.Thread(target=fetch, args=(p,))
                       for p in ("/", "/arena", "/faults", "/bench",
                                 "/api/summary", "/api/arena/runs")]
            for w in workers:
                w.start()
            for w in workers:
                w.join(timeout=15)
            assert not errors, errors
            assert sorted(s for _, s in results) == [200] * 6
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)
