"""Run-cache semantics: warm re-runs execute zero jobs, same bytes.

The acceptance property of the results store as a cache: it must be
*semantically invisible*.  A cold run and a cache-warm re-run of the
same spec list produce byte-identical output documents; the only
observable difference is the :class:`JobCounters` bookkeeping.
"""

import json

from repro.faults.campaign import build_faults_doc, run_campaign
from repro.faults.scenarios import builtin
from repro.harness import arena
from repro.harness.jobs import JobRunner, JobSpec, callable_target
from repro.harness.metrics import JobCounters
from repro.results.store import ResultsStore


# Module-level so subprocess workers can import them by path.
def square(seed):
    return float(seed * seed)


def always_raises(seed):
    raise ValueError(f"deterministic failure for seed {seed}")


def _spec(fn, seed, **kwargs):
    return JobSpec(kind="callable", seed=seed,
                   params={"target": callable_target(fn),
                           "kwargs": kwargs})


class TestRunnerCache:
    def test_warm_run_executes_nothing(self, tmp_path):
        db = str(tmp_path / "r.sqlite")
        specs = [_spec(square, s) for s in (1, 2, 3)]

        cold = JobCounters()
        first = JobRunner(cache=db, counters=cold).run(specs)
        assert cold.executed == 3 and cold.cache_hits == 0

        warm = JobCounters()
        second = JobRunner(cache=db, counters=warm).run(specs)
        assert warm.executed == 0
        assert warm.cache_hits == 3
        assert warm.submitted == 3
        for spec in specs:
            a = first[spec.spec_hash]
            b = second[spec.spec_hash]
            assert b.from_cache and not a.from_cache
            assert b.attempts == 0
            assert a.result == b.result

    def test_counters_summary_reports_cache_hits(self, tmp_path):
        db = str(tmp_path / "r.sqlite")
        JobRunner(cache=db).run([_spec(square, 1)])
        warm = JobCounters()
        JobRunner(cache=db, counters=warm).run([_spec(square, 1)])
        assert warm.summary()["jobs_cache_hits"] == 1
        assert "cached" in str(warm)

    def test_partial_overlap_executes_only_new_specs(self, tmp_path):
        db = str(tmp_path / "r.sqlite")
        JobRunner(cache=db).run([_spec(square, s) for s in (1, 2)])
        counters = JobCounters()
        outcomes = JobRunner(cache=db, counters=counters).run(
            [_spec(square, s) for s in (1, 2, 3)])
        assert counters.cache_hits == 2
        assert counters.executed == 1
        assert all(o.ok for o in outcomes.values())

    def test_failures_are_not_cached(self, tmp_path):
        db = str(tmp_path / "r.sqlite")
        spec = _spec(always_raises, 1)
        JobRunner(cache=db, retries=0).run([spec])
        with ResultsStore(db) as store:
            assert store.get_job_result(spec.spec_hash) is None
        counters = JobCounters()
        outcomes = JobRunner(cache=db, retries=0,
                             counters=counters).run([spec])
        assert counters.cache_hits == 0
        assert counters.executed == 1
        assert not outcomes[spec.spec_hash].ok

    def test_checkpoint_takes_precedence_over_cache(self, tmp_path):
        db = str(tmp_path / "r.sqlite")
        ckpt = str(tmp_path / "ckpt.jsonl")
        spec = _spec(square, 4)
        JobRunner(cache=db, checkpoint=ckpt).run([spec])
        counters = JobCounters()
        outcomes = JobRunner(cache=db, checkpoint=ckpt,
                             counters=counters).run([spec])
        out = outcomes[spec.spec_hash]
        assert out.from_checkpoint and not out.from_cache
        assert counters.skipped == 1 and counters.cache_hits == 0

    def test_open_store_accepted_directly(self, tmp_path):
        with ResultsStore(str(tmp_path / "r.sqlite")) as store:
            JobRunner(cache=store).run([_spec(square, 9)])
            counters = JobCounters()
            JobRunner(cache=store, counters=counters).run(
                [_spec(square, 9)])
            assert counters.cache_hits == 1

    def test_parallel_cold_run_populates_cache(self, tmp_path):
        db = str(tmp_path / "r.sqlite")
        specs = [_spec(square, s) for s in (1, 2, 3, 4)]
        JobRunner(cache=db, workers=2).run(specs)
        warm = JobCounters()
        JobRunner(cache=db, counters=warm).run(specs)
        assert warm.cache_hits == 4 and warm.executed == 0


class TestArenaWarmRun:
    def test_cold_and_warm_docs_byte_identical(self, tmp_path):
        db = str(tmp_path / "r.sqlite")
        kwargs = dict(
            lbs=("ecmp",), transports=("commodity", "themis"),
            ccs=("dcqcn",), workloads=("alltoall",),
            topologies={
                "leaf_spine": arena.QUICK_TOPOLOGIES["leaf_spine"]},
            seeds=(1,), quick=True)
        cold = JobCounters()
        doc1 = arena.run_arena(cache=db, counters=cold, **kwargs)
        warm = JobCounters()
        doc2 = arena.run_arena(cache=db, counters=warm, **kwargs)
        assert json.dumps(doc1, indent=2) == json.dumps(doc2, indent=2)
        assert cold.executed == 2 and cold.cache_hits == 0
        assert warm.executed == 0 and warm.cache_hits == 2


class TestFaultCampaignWarmRun:
    def test_cold_and_warm_docs_byte_identical(self, tmp_path):
        db = str(tmp_path / "r.sqlite")
        spec = builtin("link-flap-smoke").compile()
        cold = JobCounters()
        s1 = run_campaign(spec, [1], cache=db, counters=cold)
        warm = JobCounters()
        s2 = run_campaign(spec, [1], cache=db, counters=warm)
        d1, d2 = build_faults_doc(s1), build_faults_doc(s2)
        assert json.dumps(d1, indent=2) == json.dumps(d2, indent=2)
        assert cold.executed == 1 and warm.executed == 0
        assert warm.cache_hits == 1
        # The versioned doc must exclude the cold/warm-varying counters.
        assert "jobs" in s1 and "jobs" not in d1
