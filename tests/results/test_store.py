"""Results store: ingest -> query -> re-emit round trips.

The core property: ingesting a versioned document and re-emitting it
reconstructs the exact bytes (``json.dumps`` equality with matching
options), for synthetic documents across the whole metric space — the
store is lossless, not a lossy summary.
"""

import json
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.harness.arena import (arena_job_specs, build_arena_doc,
                                 validate_arena_doc)
from repro.harness.jobs import JobOutcome, JobSpec
from repro.faults.campaign import FAULTS_SCHEMA, validate_faults_doc
from repro.results import (IngestError, ResultsStore, detect_doc_kind,
                           emit_arena_doc, emit_faults_doc, ingest_doc,
                           ingest_file)
from repro.results.store import connect_readonly

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))


# ----------------------------------------------------------------------
# Synthetic documents (valid, no simulation)
# ----------------------------------------------------------------------
def fake_cell_metrics(i: int, *, slowdown: float = None) -> dict:
    return {
        "completed": True,
        "tail_ns": 1000 + i,
        "mean_slowdown": (round(1.0 + 0.1 * i, 4)
                          if slowdown is None else slowdown),
        "goodput_gbps": round(20.0 - i, 3),
        "reorder_rate": round(0.01 * i, 4),
        "nack_validity": 1.0,
        "nacks": i,
        "drops": i,
        "nacks_blocked": 0,
        "retransmissions": i,
    }


def make_arena_doc(lbs=("ecmp", "reps"), seeds=(1,),
                   metrics=None) -> dict:
    """A valid ``repro-arena-v1`` document from synthetic metrics."""
    specs = arena_job_specs(lbs=lbs, transports=("commodity",),
                            ccs=("dcqcn",), workloads=("alltoall",),
                            topologies={"leaf_spine": {
                                "kind": "leaf_spine", "num_tors": 4,
                                "num_spines": 2, "nics_per_tor": 2}},
                            seeds=seeds, quick=True)
    outcomes = {}
    for i, spec in enumerate(specs):
        result = (metrics[i] if metrics is not None
                  else fake_cell_metrics(i))
        outcomes[spec.spec_hash] = JobOutcome(spec=spec, status="done",
                                              result=result)
    doc = build_arena_doc(specs, outcomes)
    assert validate_arena_doc(doc) == []
    return doc


def make_faults_doc(seeds=(1, 2)) -> dict:
    cells = []
    for seed in seeds:
        cells.append({
            "version": 1, "scenario": "synthetic-flap", "seed": seed,
            "workload": {"nodes": 8}, "completed": True,
            "completion_ns": 100_000 + seed,
            "baseline_completion_ns": 90_000,
            "tail_stretch": round(1.1 + 0.01 * seed, 6),
            "goodput": {"window_ns": 10_000, "windows": 10,
                        "pre_fault_gbps": 80.0, "dip_gbps": 40.0,
                        "dip_frac": 0.5, "recovery_ns": 20_000},
            "faults": {"scheduled": 2, "applied": 2, "first_ns": 1000,
                       "last_ns": 2000, "converge_ns": 0,
                       "fault_events_recorded": 2},
            "nacks": {"decisions": 4, "unexplained": 0},
            "drops": 3, "retransmissions": 5,
            "baseline_drops": 0, "baseline_retransmissions": 0,
        })
    doc = {"schema": FAULTS_SCHEMA, "scenario": "synthetic-flap",
           "duration_us": 200.0, "seeds": list(seeds), "cells": cells,
           "failures": [], "validation_problems": [],
           "aggregate": {"completed": len(cells), "cells": len(cells),
                         "unexplained_nacks": 0,
                         "mean_recovery_ns": 20_000,
                         "worst_dip_frac": 0.5,
                         "worst_tail_stretch": 1.12}}
    assert validate_faults_doc(doc) == []
    return doc


def make_bench_doc() -> dict:
    return {
        "schema_version": 3, "quick": True, "python": "3.12.0",
        "scenarios": {
            "alltoall-lossy": {"scenario": "alltoall-lossy",
                               "engine": "calendar", "events": 50_000,
                               "wall_s": 0.5, "events_per_sec": 100_000,
                               "sim_time_ns": 1_000_000,
                               "completed": True}},
        "heap_baseline": {"scenario": "alltoall-lossy", "engine": "heap",
                          "events": 50_000, "wall_s": 1.0,
                          "events_per_sec": 50_000},
        "speedup_vs_heap": 2.0,
        "tracing": {"scenario": "alltoall-lossy", "events": 50_000,
                    "wall_s": 0.6, "events_per_sec": 83_000,
                    "overhead_ratio": 1.2},
    }


def dumps(doc: dict) -> str:
    return json.dumps(doc, indent=2)


# ----------------------------------------------------------------------
# Job-result cache table
# ----------------------------------------------------------------------
class TestJobResults:
    def test_put_get_roundtrip_is_canonical(self, tmp_path):
        spec = JobSpec(kind="callable", seed=3,
                       params={"target": "m:f", "kwargs": {"b": 2, "a": 1}})
        payload = {"value": [1.5, {"z": 1, "a": 2}]}
        with ResultsStore(str(tmp_path / "r.sqlite")) as store:
            assert store.get_job_result(spec.spec_hash) is None
            store.put_job_result(spec, payload)
            got = store.get_job_result(spec.spec_hash)
        assert got == payload
        # Same canonical JSON the runner's other paths produce.
        assert json.dumps(got, sort_keys=True) == \
            json.dumps(payload, sort_keys=True)

    def test_replace_updates_in_place(self, tmp_path):
        spec = JobSpec(kind="callable", seed=1, params={"target": "m:f"})
        with ResultsStore(str(tmp_path / "r.sqlite")) as store:
            store.put_job_result(spec, {"value": 1})
            store.put_job_result(spec, {"value": 2})
            assert store.get_job_result(spec.spec_hash) == {"value": 2}
            assert store.job_count() == 1

    def test_schema_version_mismatch_refuses(self, tmp_path):
        path = str(tmp_path / "r.sqlite")
        with ResultsStore(path) as store:
            store.conn.execute("PRAGMA user_version=99")
            store.conn.commit()
        with pytest.raises(RuntimeError, match="schema v99"):
            ResultsStore(path)

    def test_readonly_connection_rejects_writes(self, tmp_path):
        path = str(tmp_path / "r.sqlite")
        ResultsStore(path).close()
        conn = connect_readonly(path)
        import sqlite3
        with pytest.raises(sqlite3.OperationalError):
            conn.execute("INSERT INTO runs (schema, name, ingested_s) "
                         "VALUES ('x', 'y', 0)")

    def test_readonly_requires_existing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            connect_readonly(str(tmp_path / "absent.sqlite"))


# ----------------------------------------------------------------------
# Ingest + re-emit round trips
# ----------------------------------------------------------------------
class TestArenaRoundTrip:
    def test_detect(self):
        assert detect_doc_kind(make_arena_doc()) == "arena"

    def test_ingest_emit_byte_identical(self, tmp_path):
        doc = make_arena_doc(lbs=("ecmp", "reps", "rps"), seeds=(1, 2))
        with ResultsStore(str(tmp_path / "r.sqlite")) as store:
            receipt = ingest_doc(store, doc, source="test")
            out = emit_arena_doc(store, receipt["run_id"])
        assert dumps(out) == dumps(doc)
        assert receipt["cells"] == len(doc["cells"])

    def test_ingest_file(self, tmp_path):
        doc = make_arena_doc()
        path = tmp_path / "arena.json"
        path.write_text(dumps(doc))
        with ResultsStore(str(tmp_path / "r.sqlite")) as store:
            receipt = ingest_file(store, str(path))
            assert dumps(emit_arena_doc(store, receipt["run_id"])) \
                == dumps(doc)

    def test_incomplete_cells_still_ingest(self, tmp_path):
        # validate_arena_doc flags censored cells as problems, but an
        # incomplete cell is data, not corruption — ingest keeps it.
        doc = make_arena_doc()
        doc["cells"][0]["completed"] = False
        with ResultsStore(str(tmp_path / "r.sqlite")) as store:
            receipt = ingest_doc(store, doc)
            assert dumps(emit_arena_doc(store, receipt["run_id"])) \
                == dumps(doc)

    def test_malformed_doc_rejected_before_any_row(self, tmp_path):
        doc = make_arena_doc()
        del doc["cells"][0]["spec_hash"]
        with ResultsStore(str(tmp_path / "r.sqlite")) as store:
            with pytest.raises(IngestError):
                ingest_doc(store, doc)
            assert store.counts()["runs"] == 0
            assert store.counts()["arena_cells"] == 0

    @settings(max_examples=25, deadline=None)
    @given(st.lists(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False,
                  allow_infinity=False),
        min_size=2, max_size=2))
    def test_roundtrip_property_over_metric_space(self, tmp_path_factory,
                                                  slowdowns):
        """Any finite metric values survive ingest->emit exactly (JSON
        float round-trips are lossless)."""
        metrics = [fake_cell_metrics(i, slowdown=s)
                   for i, s in enumerate(slowdowns)]
        doc = make_arena_doc(lbs=("ecmp", "reps"), metrics=metrics)
        tmp = tmp_path_factory.mktemp("prop")
        with ResultsStore(str(tmp / "r.sqlite")) as store:
            receipt = ingest_doc(store, doc)
            out = emit_arena_doc(store, receipt["run_id"])
        assert dumps(out) == dumps(doc)


class TestFaultsRoundTrip:
    def test_detect(self):
        assert detect_doc_kind(make_faults_doc()) == "faults"

    def test_ingest_emit_byte_identical(self, tmp_path):
        doc = make_faults_doc(seeds=(1, 2, 3))
        with ResultsStore(str(tmp_path / "r.sqlite")) as store:
            receipt = ingest_doc(store, doc, source="test")
            out = emit_faults_doc(store, receipt["run_id"])
        assert dumps(out) == dumps(doc)

    def test_validate_faults_doc_catches_shape_errors(self):
        doc = make_faults_doc()
        del doc["cells"][0]["goodput"]
        assert any("missing fields" in p
                   for p in validate_faults_doc(doc))
        assert validate_faults_doc({"schema": "nope"})
        assert validate_faults_doc([1, 2]) == ["document is not an object"]


class TestBenchIngest:
    def test_detect(self):
        assert detect_doc_kind(make_bench_doc()) == "bench"

    def test_ingest_normalises_schema_and_rows(self, tmp_path):
        with ResultsStore(str(tmp_path / "r.sqlite")) as store:
            receipt = ingest_doc(store, make_bench_doc())
            run = store.run_row(receipt["run_id"])
            assert run["schema"] == "repro-bench-v3"
            engines = {r["engine"] for r in store.conn.execute(
                "SELECT engine FROM bench_scenarios WHERE run_id=?",
                (receipt["run_id"],))}
        # scenario row + heap baseline + traced run
        assert engines == {"calendar", "heap", "traced"}

    def test_tracked_bench_history_ingests(self, tmp_path):
        """The repo's real BENCH_engine.json is a valid ingest source."""
        path = os.path.join(REPO_ROOT, "BENCH_engine.json")
        with ResultsStore(str(tmp_path / "r.sqlite")) as store:
            receipt = ingest_file(store, path)
            assert receipt["kind"] == "bench"
            assert receipt["scenarios"] >= 1

    def test_unknown_doc_rejected(self, tmp_path):
        with pytest.raises(IngestError, match="unrecognised"):
            detect_doc_kind({"schema": "wat-v9"})
        with ResultsStore(str(tmp_path / "r.sqlite")) as store:
            with pytest.raises(IngestError):
                ingest_doc(store, {"hello": 1})


# ----------------------------------------------------------------------
# Query layer over a populated store
# ----------------------------------------------------------------------
class TestQueries:
    @pytest.fixture()
    def conn(self, tmp_path):
        path = str(tmp_path / "r.sqlite")
        with ResultsStore(path) as store:
            ingest_doc(store, make_arena_doc(), source="a1")
            ingest_doc(store, make_arena_doc(), source="a2")
            ingest_doc(store, make_faults_doc(), source="f1")
            ingest_doc(store, make_bench_doc(), source="b1")
        return connect_readonly(path)

    def test_summary_counts(self, conn):
        from repro.results.query import summary
        s = summary(conn)
        assert s["arena_runs"] == 2
        assert s["fault_runs"] == 1
        assert s["bench_runs"] == 1

    def test_ranking_over_time_aligns_runs(self, conn):
        from repro.results.query import ranking_over_time
        data = ranking_over_time(conn)
        assert len(data["run_ids"]) == 2
        for series in data["series"]:
            assert len(series["ranks"]) == 2
            assert series["latest_rank"] == series["ranks"][-1]
        # Identical docs -> identical ranks across both runs.
        assert [s["ranks"][0] for s in data["series"]] == \
            [s["ranks"][1] for s in data["series"]]

    def test_cell_detail_history_spans_runs(self, conn):
        from repro.results.query import arena_cells, cell_detail
        cells = arena_cells(conn, 1)
        detail = cell_detail(conn, 1, cells[0]["spec_hash"])
        assert detail["cell"] == cells[0]
        assert [h["run_id"] for h in detail["history"]] == [1, 2]
        assert cell_detail(conn, 1, "0" * 16) is None

    def test_fault_panels_aggregate(self, conn):
        from repro.results.query import fault_panels
        panels = fault_panels(conn)
        assert len(panels) == 1
        agg = panels[0]["aggregate"]
        assert agg["cells"] == 2
        assert agg["unexplained_nacks"] == 0
        assert agg["mean_recovery_ns"] == 20_000

    def test_bench_series(self, conn):
        from repro.results.query import bench_series
        data = bench_series(conn)
        assert len(data["run_ids"]) == 1
        keys = {(s["scenario"], s["engine"]) for s in data["series"]}
        assert ("alltoall-lossy", "calendar") in keys
        assert data["runs"][0]["tracing_overhead"] == 1.2
