"""Tests for the iterated training-job workload."""

import pytest

from repro.collectives.group import cross_rack_groups
from repro.collectives.ring import RingAllreduce
from repro.collectives.training import TrainingJob
from repro.harness.network import Network, NetworkConfig, TopologySpec
from repro.sim.engine import US


def make_network(scheme="ecmp"):
    topo = TopologySpec(kind="leaf_spine", num_tors=4, num_spines=2,
                        nics_per_tor=2, link_bandwidth_bps=25e9)
    return Network(NetworkConfig(topology=topo, scheme=scheme))


def make_job(net, iterations=3, compute_ns=20 * US, nbytes=100_000):
    groups = cross_rack_groups(4, 2)
    return TrainingJob(net, groups, collective_cls=RingAllreduce,
                       bytes_per_iteration=nbytes, iterations=iterations,
                       compute_time_ns=compute_ns)


class TestValidation:
    def test_iterations_positive(self):
        net = make_network()
        with pytest.raises(ValueError):
            make_job(net, iterations=0)

    def test_compute_time_nonnegative(self):
        net = make_network()
        with pytest.raises(ValueError):
            make_job(net, compute_ns=-1)


class TestExecution:
    def test_runs_all_iterations(self):
        net = make_network()
        job = make_job(net, iterations=3)
        job.start()
        net.run(until_ns=60_000_000_000)
        assert job.done
        assert len(job.iteration_times_ns) == 3
        assert all(t > 0 for t in job.iteration_times_ns)

    def test_compute_gaps_separate_iterations(self):
        """Fabric goes idle between iterations: total time >= comm +
        compute phases."""
        net = make_network()
        compute = 200 * US
        job = make_job(net, iterations=2, compute_ns=compute)
        job.start()
        net.run(until_ns=60_000_000_000)
        total_comm = sum(job.iteration_times_ns)
        assert net.now_ns >= total_comm + 2 * compute

    def test_mean_and_max(self):
        net = make_network()
        job = make_job(net, iterations=4)
        job.start()
        net.run(until_ns=60_000_000_000)
        assert job.max_iteration_ns >= job.mean_iteration_ns > 0

    def test_synchronized_start_all_groups(self):
        """Both groups launch in the same event (bursty pattern)."""
        net = make_network()
        job = make_job(net, iterations=1, compute_ns=0)
        job.start()
        net.sim.step()  # the _begin_iteration event
        starts = {c.start_ns for c in job._current}
        assert len(starts) == 1

    def test_themis_improves_iteration_time(self):
        def run(scheme):
            net = make_network(scheme=scheme)
            job = make_job(net, iterations=3, nbytes=400_000)
            job.start()
            net.run(until_ns=120_000_000_000)
            assert job.done
            return job.mean_iteration_ns

        assert run("themis") < run("rps")
