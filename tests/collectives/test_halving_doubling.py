"""Tests for halving-doubling allreduce."""

import pytest

from repro.collectives.halving_doubling import HalvingDoublingAllreduce
from repro.harness.network import Network, NetworkConfig, TopologySpec


def make_network(num_tors=4, nics_per_tor=1, num_spines=2,
                 scheme="ecmp"):
    topo = TopologySpec(kind="leaf_spine", num_tors=num_tors,
                        num_spines=num_spines, nics_per_tor=nics_per_tor,
                        link_bandwidth_bps=25e9)
    return Network(NetworkConfig(topology=topo, scheme=scheme))


class TestSchedule:
    def test_power_of_two_required(self):
        net = make_network(num_tors=3)
        with pytest.raises(ValueError):
            HalvingDoublingAllreduce(net, [0, 1, 2], 30_000)

    def test_step_count(self):
        net = make_network(num_tors=8)
        coll = HalvingDoublingAllreduce(net, list(range(8)), 80_000)
        assert coll.num_steps == 6  # 2 * log2(8)

    def test_partner_distances_butterfly(self):
        net = make_network(num_tors=8)
        coll = HalvingDoublingAllreduce(net, list(range(8)), 80_000)
        # RS phase: distance 4, 2, 1; AG phase: 1, 2, 4.
        assert [coll.partner(0, s) for s in range(6)] == [4, 2, 1, 1, 2, 4]

    def test_partnering_is_symmetric(self):
        net = make_network(num_tors=8)
        coll = HalvingDoublingAllreduce(net, list(range(8)), 80_000)
        for step in range(coll.num_steps):
            for pos in range(8):
                peer = coll.partner(pos, step)
                assert coll.partner(peer, step) == pos

    def test_message_sizes_halve_then_double(self):
        net = make_network(num_tors=8)
        coll = HalvingDoublingAllreduce(net, list(range(8)), 80_000)
        sizes = [s for _, s in coll._schedule]
        assert sizes == [40_000, 20_000, 10_000, 10_000, 20_000, 40_000]


class TestExecution:
    @pytest.mark.parametrize("scheme", ["ecmp", "rps", "themis"])
    def test_completes(self, scheme):
        net = make_network(num_tors=4, scheme=scheme)
        coll = HalvingDoublingAllreduce(net, [0, 1, 2, 3], 200_000)
        coll.start()
        net.run(until_ns=20_000_000_000)
        assert coll.complete
        assert coll.completion_time_ns() > 0

    def test_total_volume(self):
        """Each node moves S/2 + S/4 + ... + S/n twice ≈ 2S(n-1)/n."""
        net = make_network(num_tors=4)
        total = 400_000
        coll = HalvingDoublingAllreduce(net, [0, 1, 2, 3], total)
        coll.start()
        net.run(until_ns=20_000_000_000)
        posted = sum(f.bytes_posted for f in net.metrics.flows.values())
        expected_per_node = 2 * (total // 2 + total // 4)
        assert posted == 4 * expected_per_node

    def test_eight_members_across_two_racks(self):
        net = make_network(num_tors=4, nics_per_tor=2)
        coll = HalvingDoublingAllreduce(net, list(range(8)), 400_000)
        coll.start()
        net.run(until_ns=20_000_000_000)
        assert coll.complete

    def test_registered_in_collective_classes(self):
        from repro.collectives import COLLECTIVE_CLASSES
        assert COLLECTIVE_CLASSES["hd_allreduce"] \
            is HalvingDoublingAllreduce
