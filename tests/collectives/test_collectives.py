"""Tests for collective workloads over a small fabric."""

import pytest

from repro.collectives import (AllToAll, COLLECTIVE_CLASSES, RingAllgather,
                               RingAllreduce, RingReduceScatter,
                               cross_rack_groups, interleaved_ring_groups)
from repro.harness.network import Network, NetworkConfig, TopologySpec


def make_network(scheme="ecmp", num_tors=2, num_spines=2, nics_per_tor=2):
    topo = TopologySpec(kind="leaf_spine", num_tors=num_tors,
                        num_spines=num_spines, nics_per_tor=nics_per_tor,
                        link_bandwidth_bps=25e9)
    return Network(NetworkConfig(topology=topo, scheme=scheme))


class TestGroupLayouts:
    def test_cross_rack_groups_one_nic_per_rack(self):
        groups = cross_rack_groups(num_tors=4, nics_per_tor=3)
        assert len(groups) == 3
        assert groups[0] == [0, 3, 6, 9]
        assert groups[2] == [2, 5, 8, 11]
        # Every member of a group lives under a different ToR.
        for group in groups:
            assert len({nic // 3 for nic in group}) == 4

    def test_interleaved_ring_groups(self):
        groups = interleaved_ring_groups(8, 2)
        assert groups == [[0, 2, 4, 6], [1, 3, 5, 7]]

    def test_interleaved_requires_divisibility(self):
        with pytest.raises(ValueError):
            interleaved_ring_groups(7, 2)


class TestValidation:
    def test_needs_two_members(self):
        net = make_network()
        with pytest.raises(ValueError):
            RingAllreduce(net, [0], 1000)

    def test_rejects_duplicates(self):
        net = make_network()
        with pytest.raises(ValueError):
            RingAllreduce(net, [0, 0, 1], 3000)

    def test_message_must_chunk(self):
        net = make_network()
        with pytest.raises(ValueError):
            RingAllreduce(net, [0, 1, 2], 2)

    def test_double_start_rejected(self):
        net = make_network()
        coll = RingAllreduce(net, [0, 2], 10_000)
        coll.start()
        with pytest.raises(RuntimeError):
            coll.start()

    def test_completion_time_before_done_raises(self):
        net = make_network()
        coll = RingAllreduce(net, [0, 2], 10_000)
        with pytest.raises(RuntimeError):
            coll.completion_time_ns()


class TestRingCollectives:
    @pytest.mark.parametrize("cls,steps_of_n", [
        (RingAllreduce, lambda n: 2 * (n - 1)),
        (RingAllgather, lambda n: n - 1),
        (RingReduceScatter, lambda n: n - 1),
    ])
    def test_step_counts(self, cls, steps_of_n):
        net = make_network(nics_per_tor=2, num_tors=2)
        coll = cls(net, [0, 1, 2, 3], 100_000)
        assert coll.num_steps == steps_of_n(4)

    def test_allreduce_completes_cross_rack(self):
        net = make_network(num_tors=4, nics_per_tor=1, num_spines=2)
        coll = RingAllreduce(net, [0, 1, 2, 3], 400_000)
        coll.start()
        net.run(until_ns=10_000_000_000)
        assert coll.complete
        assert coll.completion_time_ns() > 0

    def test_allreduce_moves_expected_volume(self):
        net = make_network(num_tors=4, nics_per_tor=1, num_spines=2)
        total = 400_000
        coll = RingAllreduce(net, [0, 1, 2, 3], total)
        coll.start()
        net.run(until_ns=10_000_000_000)
        # Each node sends 2*(n-1) chunks of total/n.
        per_node = 2 * 3 * (total // 4)
        posted = sum(f.bytes_posted for f in net.metrics.flows.values())
        assert posted == per_node * 4

    def test_steps_are_dependency_ordered(self):
        """A node never has more than one outstanding send message."""
        net = make_network(num_tors=2, nics_per_tor=1)
        coll = RingAllgather(net, [0, 1], 100_000)
        coll.start()
        max_backlog = 0
        while net.sim.step():
            for nic in net.nics:
                for qp in nic.senders.values():
                    backlog = len(qp._messages) - qp._next_completion
                    max_backlog = max(max_backlog, backlog)
        assert coll.complete
        assert max_backlog <= 1

    def test_all_schemes_complete(self):
        for scheme in ("ecmp", "rps", "ar", "themis"):
            net = make_network(scheme=scheme, num_tors=4, nics_per_tor=1,
                               num_spines=2)
            coll = RingAllreduce(net, [0, 1, 2, 3], 200_000)
            coll.start()
            net.run(until_ns=20_000_000_000)
            assert coll.complete, scheme


class TestAllToAll:
    def test_completes(self):
        net = make_network(num_tors=4, nics_per_tor=1, num_spines=2)
        coll = AllToAll(net, [0, 1, 2, 3], 400_000)
        coll.start()
        net.run(until_ns=10_000_000_000)
        assert coll.complete

    def test_pairwise_qps(self):
        net = make_network(num_tors=4, nics_per_tor=1, num_spines=2)
        coll = AllToAll(net, [0, 1, 2, 3], 400_000)
        coll.start()
        net.run(until_ns=10_000_000_000)
        # n*(n-1) directed pairs, each its own QP flow.
        assert len(net.metrics.flows) == 12

    def test_volume(self):
        net = make_network(num_tors=4, nics_per_tor=1, num_spines=2)
        total = 400_000
        coll = AllToAll(net, [0, 1, 2, 3], total)
        coll.start()
        net.run(until_ns=10_000_000_000)
        posted = sum(f.bytes_posted for f in net.metrics.flows.values())
        assert posted == 12 * (total // 4)

    def test_registry(self):
        assert set(COLLECTIVE_CLASSES) == {"allreduce", "allgather",
                                           "reducescatter", "alltoall",
                                           "hd_allreduce"}
