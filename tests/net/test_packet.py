"""Unit tests for the packet model."""

from repro.net.packet import (CONTROL_PACKET_BYTES, DATA_HEADER_BYTES,
                              FlowKey, PacketType, ack_packet, cnp_packet,
                              data_packet, nack_packet)


class TestFlowKey:
    def test_reversed(self):
        flow = FlowKey(1, 2, 5)
        rev = flow.reversed()
        assert (rev.src, rev.dst, rev.qp) == (2, 1, 5)
        assert rev.reversed() == flow

    def test_hashable_and_equal(self):
        assert FlowKey(1, 2, 0) == FlowKey(1, 2, 0)
        assert len({FlowKey(1, 2, 0), FlowKey(1, 2, 0),
                    FlowKey(1, 2, 1)}) == 2

    def test_str(self):
        assert str(FlowKey(3, 4, 2)) == "3->4#2"


class TestDataPacket:
    def test_wire_size_includes_headers(self):
        pkt = data_packet(FlowKey(0, 1), psn=7, payload_bytes=1000)
        assert pkt.wire_bytes == 1000 + DATA_HEADER_BYTES
        assert pkt.is_data
        assert not pkt.is_control

    def test_addressing_follows_flow(self):
        pkt = data_packet(FlowKey(3, 9), psn=0, payload_bytes=100)
        assert pkt.src == 3
        assert pkt.dst == 9

    def test_unique_ids(self):
        flow = FlowKey(0, 1)
        a = data_packet(flow, 0, 10)
        b = data_packet(flow, 0, 10)
        assert a.pkt_id != b.pkt_id

    def test_retx_flag(self):
        pkt = data_packet(FlowKey(0, 1), 5, 10, is_retx=True)
        assert pkt.is_retx


class TestControlPackets:
    def test_ack_travels_reverse_and_carries_epsn(self):
        flow = FlowKey(1, 2)
        ack = ack_packet(flow, epsn=42)
        assert ack.ptype is PacketType.ACK
        assert ack.flow == flow.reversed()
        assert ack.epsn == 42
        assert ack.wire_bytes == CONTROL_PACKET_BYTES
        assert ack.is_control

    def test_nack_carries_only_epsn(self):
        nack = nack_packet(FlowKey(1, 2), epsn=10)
        assert nack.ptype is PacketType.NACK
        assert nack.epsn == 10
        # Faithful to §2.2: no tPSN field exists on the packet at all.
        assert not hasattr(nack, "tpsn")

    def test_cnp(self):
        cnp = cnp_packet(FlowKey(5, 6))
        assert cnp.ptype is PacketType.CNP
        assert cnp.flow == FlowKey(6, 5)

    def test_control_never_marked_initially(self):
        assert not nack_packet(FlowKey(0, 1), 0).ecn_marked
