"""Conservation tests for the folded Port transmit path.

The folded path schedules one delivery event per packet and tracks the
serializer with a timestamp, so ``busy_ns`` is accumulated analytically
(at pop time) rather than measured between start/finish events.  These
tests pin the accounting: busy time equals the sum of per-packet
serialization times, lost packets still occupy the wire, and idle gaps
never accrue.
"""

from repro.net.packet import FlowKey, ack_packet, data_packet
from repro.sim.engine import Simulator
from repro.sim.rng import SimRng
from tests.net.test_port import make_port


class TestBusyNsConservation:
    def test_busy_equals_sum_of_serialization_times(self):
        sim = Simulator()
        port, dst = make_port(sim, bandwidth_bps=1e9, delay_ns=100)
        pkts = [data_packet(FlowKey(0, 1), i, 1000 - 58) for i in range(5)]
        expected = sum(port.serialization_ns(p) for p in pkts)
        for pkt in pkts:
            port.enqueue(pkt)
        sim.run()
        assert port.busy_ns == expected == 5 * 8000
        assert len(dst.received) == 5

    def test_mixed_control_and_data_all_accounted(self):
        sim = Simulator()
        port, dst = make_port(sim, bandwidth_bps=1e9, delay_ns=0)
        pkts = [data_packet(FlowKey(0, 1), 0, 1000 - 58),
                ack_packet(FlowKey(1, 0), 7),
                data_packet(FlowKey(0, 1), 1, 500 - 58)]
        expected = sum(port.serialization_ns(p) for p in pkts)
        for pkt in pkts:
            port.enqueue(pkt)
        sim.run()
        assert port.busy_ns == expected
        assert len(dst.received) == 3

    def test_lost_packets_still_occupy_the_wire(self):
        """A drop decided at serialization start still burns one packet
        time of link capacity — loss must not deflate utilisation."""
        sim = Simulator()
        port, dst = make_port(sim, bandwidth_bps=1e9, delay_ns=0)
        port.set_loss(1.0, SimRng(3))
        pkts = [data_packet(FlowKey(0, 1), i, 1000 - 58) for i in range(4)]
        expected = sum(port.serialization_ns(p) for p in pkts)
        for pkt in pkts:
            port.enqueue(pkt)
        sim.run()
        assert dst.received == []
        assert port.packets_dropped == 4
        assert port.busy_ns == expected

    def test_idle_gaps_do_not_accrue(self):
        sim = Simulator()
        port, dst = make_port(sim, bandwidth_bps=1e9, delay_ns=0)
        port.enqueue(data_packet(FlowKey(0, 1), 0, 1000 - 58))
        sim.run()
        sim.schedule(50_000, lambda: port.enqueue(
            data_packet(FlowKey(0, 1), 1, 1000 - 58)))
        sim.run()
        # Two packets of wire time, regardless of the 50 us idle gap.
        assert port.busy_ns == 2 * 8000
        assert sim.now >= 58_000

    def test_busy_never_exceeds_elapsed_time_under_load(self):
        sim = Simulator()
        port, dst = make_port(sim, bandwidth_bps=1e9, delay_ns=200)
        for i in range(50):
            port.enqueue(data_packet(FlowKey(0, 1), i, 1000 - 58))
        sim.run()
        assert port.busy_ns <= sim.now
        # Back-to-back backlog: the serializer was busy the whole time
        # except the trailing propagation delay.
        assert port.busy_ns == 50 * 8000 == sim.now - 200

    def test_paused_data_does_not_serialize(self):
        sim = Simulator()
        port, dst = make_port(sim, bandwidth_bps=1e9, delay_ns=0)
        port.pause_data()
        port.enqueue(data_packet(FlowKey(0, 1), 0, 1000 - 58))
        sim.run()
        assert port.busy_ns == 0 and dst.received == []
        port.resume_data()
        sim.run()
        assert port.busy_ns == 8000 and len(dst.received) == 1
