"""Tests for the dragonfly topology builder."""

import pytest

from repro.harness.network import Network, NetworkConfig, TopologySpec
from repro.net.node import Device
from repro.net.topology import dragonfly
from repro.sim.engine import Simulator
from repro.sim.rng import SimRng
from repro.switch.buffer import SharedBuffer
from repro.switch.ecn import EcnConfig, EcnMarker
from repro.switch.lb import EcmpLB
from repro.switch.switch import Switch


def factory(sim):
    def make(name):
        return Switch(sim, name, lb=EcmpLB(),
                      buffer=SharedBuffer(10**6),
                      ecn_marker=EcnMarker(EcnConfig(), SimRng(0)))
    return make


def build(groups=4, routers=2, hosts=1, global_links=2):
    sim = Simulator()
    topo = dragonfly(sim, factory(sim), groups=groups,
                     routers_per_group=routers, hosts_per_router=hosts,
                     global_links_per_router=global_links,
                     link_bandwidth_bps=25e9)
    return sim, topo


class TestDragonflyBuilder:
    def test_dimension_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            dragonfly(sim, factory(sim), groups=1, routers_per_group=2,
                      hosts_per_router=1, link_bandwidth_bps=25e9)
        with pytest.raises(ValueError):
            dragonfly(sim, factory(sim), groups=4, routers_per_group=0,
                      hosts_per_router=1, link_bandwidth_bps=25e9)
        # groups-1 = 3 > routers * global_links = 2: not wireable.
        with pytest.raises(ValueError):
            dragonfly(sim, factory(sim), groups=4, routers_per_group=2,
                      hosts_per_router=1, global_links_per_router=1,
                      link_bandwidth_bps=25e9)

    def test_switch_and_link_counts(self):
        g, r = 4, 2
        _, topo = build(groups=g, routers=r)
        assert len(topo.switches) == g * r
        # Every router hosts NICs, so every router is a ToR.
        assert len(topo.tors) == g * r
        intra = g * r * (r - 1) // 2
        inter = g * (g - 1) // 2
        fabric = [ln for ln in topo.links if ln.kind == "fabric"]
        assert len(fabric) == intra + inter

    def test_nic_numbering(self):
        _, topo = build(groups=4, routers=2, hosts=2)
        assert topo.num_nics == 16
        # NIC ids are sequential per router: NICs 0,1 under df0_0 ...
        assert topo.nic_tor[0].name == "df0_0"
        assert topo.nic_tor[1].name == "df0_0"
        assert topo.nic_tor[2].name == "df0_1"
        assert topo.nic_tor[15].name == "df3_1"

    def test_every_group_pair_has_a_global_link(self):
        g = 5
        _, topo = build(groups=g, routers=2, global_links=2)
        names = {(ln.a_name, ln.b_name) for ln in topo.links
                 if ln.kind == "fabric"}
        for x in range(g):
            for y in range(x + 1, g):
                crossing = [pair for pair in names
                            if pair[0].startswith(f"df{x}_")
                            and pair[1].startswith(f"df{y}_")]
                assert crossing, f"groups {x},{y} not connected"

    def test_routes_reach_every_nic(self):
        sim, topo = build()
        for nic_id in range(topo.num_nics):
            topo.attach_nic(nic_id, Device(sim, f"nic{nic_id}"))
        topo.build_routes()
        for switch in topo.switches:
            for nic_id in range(topo.num_nics):
                assert nic_id in switch.routes, \
                    f"{switch.name} has no route to NIC {nic_id}"


class TestDragonflyNetwork:
    def spec(self):
        return TopologySpec(kind="dragonfly", df_groups=4, df_routers=2,
                            df_hosts=1, df_global_links=2,
                            link_bandwidth_bps=25e9)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            TopologySpec(kind="butterfly")

    def test_cross_group_messages_complete(self):
        net = Network(NetworkConfig(topology=self.spec(), scheme="ecmp"))
        # NIC 0 is in group 0; NIC 7 is in group 3.
        net.post_message(0, 7, 100_000)
        net.post_message(7, 0, 100_000)
        net.run(until_ns=50_000_000)
        assert net.metrics.all_flows_done()

    def test_spraying_schemes_complete_cross_group(self):
        for scheme in ("rps", "reps", "prime", "spritz", "sprinklers"):
            net = Network(NetworkConfig(topology=self.spec(),
                                        scheme=scheme, seed=5))
            net.post_message(0, 5, 60_000)
            net.run(until_ns=50_000_000)
            assert net.metrics.all_flows_done(), scheme

    def test_fail_global_link_reconverges(self):
        """Losing one global link must not partition the fabric: the
        intra-group mesh reroutes through a peer router's gateway."""
        net = Network(NetworkConfig(topology=self.spec(), scheme="reps"))
        fabric = [ln for ln in net.topology.links if ln.kind == "fabric"]
        # The df0 <-> df1 global link (palmtree: df0_0 <-> df1_0).
        target = next(ln for ln in fabric
                      if ln.a_name.startswith("df0_")
                      and ln.b_name.startswith("df1_"))
        net.fail_link(target.a_name, target.b_name)
        net.post_message(0, 3, 60_000)
        net.run(until_ns=50_000_000)
        assert net.metrics.all_flows_done()
