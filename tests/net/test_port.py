"""Unit tests for the egress port (serialization, priority, drops)."""

import pytest

from repro.net.node import Device
from repro.net.packet import FlowKey, ack_packet, data_packet
from repro.net.port import Port, QueuePolicy
from repro.sim.engine import Simulator
from repro.sim.rng import SimRng


class SinkDevice(Device):
    """Records everything it receives."""

    def __init__(self, sim, name="sink"):
        super().__init__(sim, name)
        self.received = []

    def receive(self, packet, in_port):
        self.received.append((self.sim.now, packet))


def make_port(sim, bandwidth_bps=1e9, delay_ns=100):
    src = SinkDevice(sim, "src")
    dst = SinkDevice(sim, "dst")
    port = Port(sim, src, bandwidth_bps=bandwidth_bps, delay_ns=delay_ns)
    port.connect(dst)
    return port, dst


class TestSerialization:
    def test_delivery_time_is_serialization_plus_propagation(self):
        sim = Simulator()
        port, dst = make_port(sim, bandwidth_bps=1e9, delay_ns=100)
        pkt = data_packet(FlowKey(0, 1), 0, 1000 - 58)  # 1000 B wire
        port.enqueue(pkt)
        sim.run()
        # 1000 B at 1 Gbps = 8000 ns, plus 100 ns propagation.
        assert dst.received == [(8100, pkt)]

    def test_back_to_back_packets_pipeline(self):
        sim = Simulator()
        port, dst = make_port(sim, bandwidth_bps=1e9, delay_ns=0)
        p1 = data_packet(FlowKey(0, 1), 0, 1000 - 58)
        p2 = data_packet(FlowKey(0, 1), 1, 1000 - 58)
        port.enqueue(p1)
        port.enqueue(p2)
        sim.run()
        times = [t for t, _ in dst.received]
        assert times == [8000, 16000]

    def test_fifo_order_preserved(self):
        sim = Simulator()
        port, dst = make_port(sim)
        pkts = [data_packet(FlowKey(0, 1), i, 100) for i in range(10)]
        for pkt in pkts:
            port.enqueue(pkt)
        sim.run()
        assert [p.psn for _, p in dst.received] == list(range(10))

    def test_hop_counter_increments(self):
        sim = Simulator()
        port, dst = make_port(sim)
        pkt = data_packet(FlowKey(0, 1), 0, 100)
        port.enqueue(pkt)
        sim.run()
        assert pkt.hops == 1


class TestPriority:
    def test_control_preempts_queued_data(self):
        sim = Simulator()
        port, dst = make_port(sim, bandwidth_bps=1e9, delay_ns=0)
        data = [data_packet(FlowKey(0, 1), i, 1000) for i in range(3)]
        for pkt in data:
            port.enqueue(pkt)
        ack = ack_packet(FlowKey(1, 0), 5)
        port.enqueue(ack)
        sim.run()
        order = [p for _, p in dst.received]
        # First data packet was already in flight; the ACK jumps the rest.
        assert order[0] is data[0]
        assert order[1] is ack

    def test_control_bypasses_admission_policy(self):
        class DropAll(QueuePolicy):
            def admit(self, port, packet):
                return False

        sim = Simulator()
        port, dst = make_port(sim)
        port.policy = DropAll()
        port.enqueue(ack_packet(FlowKey(1, 0), 1))
        port.enqueue(data_packet(FlowKey(0, 1), 0, 100))
        sim.run()
        assert len(dst.received) == 1
        assert dst.received[0][1].is_control
        assert port.packets_dropped == 1


class TestDropsAndFaults:
    def test_policy_drop_invokes_callback(self):
        class DropAll(QueuePolicy):
            def admit(self, port, packet):
                return False

        sim = Simulator()
        port, dst = make_port(sim)
        port.policy = DropAll()
        dropped = []
        port.on_drop = lambda pkt, prt: dropped.append(pkt)
        pkt = data_packet(FlowKey(0, 1), 0, 100)
        assert not port.enqueue(pkt)
        assert dropped == [pkt]

    def test_loss_rate_drops_some_data(self):
        sim = Simulator()
        port, dst = make_port(sim)
        port.set_loss(0.5, SimRng(3))
        for i in range(200):
            port.enqueue(data_packet(FlowKey(0, 1), i, 100))
        sim.run()
        assert 0 < len(dst.received) < 200
        assert port.packets_dropped == 200 - len(dst.received)

    def test_loss_rate_validation(self):
        sim = Simulator()
        port, _ = make_port(sim)
        with pytest.raises(ValueError):
            port.set_loss(1.5, SimRng(0))

    def test_link_down_drops_everything(self):
        sim = Simulator()
        port, dst = make_port(sim)
        port.up = False
        port.enqueue(data_packet(FlowKey(0, 1), 0, 100))
        sim.run()
        assert dst.received == []
        assert port.packets_dropped == 1


class TestAccounting:
    def test_queued_bytes_tracks_data_backlog(self):
        sim = Simulator()
        port, _ = make_port(sim)
        pkt = data_packet(FlowKey(0, 1), 0, 1000)
        port.enqueue(pkt)       # starts transmitting immediately
        port.enqueue(data_packet(FlowKey(0, 1), 1, 1000))
        assert port.queued_bytes == 1058
        sim.run()
        assert port.queued_bytes == 0

    def test_stats_counters(self):
        sim = Simulator()
        port, _ = make_port(sim)
        for i in range(5):
            port.enqueue(data_packet(FlowKey(0, 1), i, 100))
        sim.run()
        assert port.packets_sent == 5
        assert port.bytes_sent == 5 * 158
        assert port.busy_ns > 0
