"""Unit tests for topology builders and route computation."""

import pytest

from repro.net.node import Device
from repro.net.topology import Topology, fat_tree, leaf_spine
from repro.sim.engine import Simulator
from repro.sim.rng import SimRng
from repro.switch.buffer import SharedBuffer
from repro.switch.ecn import EcnConfig, EcnMarker
from repro.switch.lb import EcmpLB
from repro.switch.switch import Switch


def factory(sim):
    def make(name):
        return Switch(sim, name, lb=EcmpLB(), buffer=SharedBuffer(10**6),
                      ecn_marker=EcnMarker(EcnConfig(), SimRng(0)))
    return make


def attach_all(sim, topo):
    nics = []
    for nic_id in range(topo.num_nics):
        nic = Device(sim, f"nic{nic_id}")
        topo.attach_nic(nic_id, nic)
        nics.append(nic)
    topo.build_routes()
    return nics


class TestLeafSpine:
    def test_dimensions(self):
        sim = Simulator()
        topo = leaf_spine(sim, factory(sim), num_tors=4, num_spines=2,
                          nics_per_tor=3, link_bandwidth_bps=1e9)
        assert len(topo.switches) == 6
        assert len(topo.tors) == 4
        assert topo.num_nics == 12

    def test_nic_numbering_by_rack(self):
        sim = Simulator()
        topo = leaf_spine(sim, factory(sim), num_tors=3, num_spines=2,
                          nics_per_tor=4, link_bandwidth_bps=1e9)
        for nic_id, tor in topo.nic_tor.items():
            assert tor.name == f"tor{nic_id // 4}"

    def test_routes_local_nic_single_down_port(self):
        sim = Simulator()
        topo = leaf_spine(sim, factory(sim), num_tors=2, num_spines=4,
                          nics_per_tor=2, link_bandwidth_bps=1e9)
        attach_all(sim, topo)
        tor0 = topo.tors[0]
        assert len(tor0.routes[0]) == 1
        assert tor0.routes[0][0].peer.name == "nic0"

    def test_routes_remote_nic_all_uplinks(self):
        sim = Simulator()
        topo = leaf_spine(sim, factory(sim), num_tors=2, num_spines=4,
                          nics_per_tor=2, link_bandwidth_bps=1e9)
        attach_all(sim, topo)
        tor0 = topo.tors[0]
        candidates = tor0.routes[2]  # NIC 2 lives under tor1
        assert len(candidates) == 4
        assert {p.peer.name for p in candidates} \
            == {f"spine{i}" for i in range(4)}

    def test_uplink_order_matches_spine_index(self):
        sim = Simulator()
        topo = leaf_spine(sim, factory(sim), num_tors=2, num_spines=4,
                          nics_per_tor=1, link_bandwidth_bps=1e9)
        attach_all(sim, topo)
        candidates = topo.tors[0].routes[1]
        assert [p.peer.name for p in candidates] \
            == [f"spine{i}" for i in range(4)]

    def test_spine_routes_are_deterministic_single_hop(self):
        sim = Simulator()
        topo = leaf_spine(sim, factory(sim), num_tors=3, num_spines=2,
                          nics_per_tor=1, link_bandwidth_bps=1e9)
        attach_all(sim, topo)
        spine = next(s for s in topo.switches if s.name == "spine0")
        for nic_id in range(3):
            assert len(spine.routes[nic_id]) == 1

    def test_path_count_cross_rack(self):
        sim = Simulator()
        topo = leaf_spine(sim, factory(sim), num_tors=2, num_spines=8,
                          nics_per_tor=2, link_bandwidth_bps=1e9)
        attach_all(sim, topo)
        assert topo.path_count(0, 2) == 8
        assert topo.equal_paths(0, 2) == 8

    def test_path_count_intra_rack(self):
        sim = Simulator()
        topo = leaf_spine(sim, factory(sim), num_tors=2, num_spines=8,
                          nics_per_tor=2, link_bandwidth_bps=1e9)
        attach_all(sim, topo)
        assert topo.path_count(0, 1) == 1
        assert topo.equal_paths(0, 1) == 1

    def test_build_routes_requires_attached_nics(self):
        sim = Simulator()
        topo = leaf_spine(sim, factory(sim), num_tors=2, num_spines=2,
                          nics_per_tor=1, link_bandwidth_bps=1e9)
        with pytest.raises(RuntimeError):
            topo.build_routes()

    def test_dimension_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            leaf_spine(sim, factory(sim), num_tors=0, num_spines=1,
                       nics_per_tor=1, link_bandwidth_bps=1e9)

    def test_duplicate_nic_slot_rejected(self):
        sim = Simulator()
        topo = Topology(sim)
        sw = topo.add_switch(factory(sim)("t"), is_tor=True)
        topo.register_nic_slot(0, sw, 1e9, 100)
        with pytest.raises(ValueError):
            topo.register_nic_slot(0, sw, 1e9, 100)


class TestFatTree:
    def test_k4_dimensions(self):
        sim = Simulator()
        topo = fat_tree(sim, factory(sim), k=4, link_bandwidth_bps=1e9)
        # k=4: 4 cores, 8 aggs, 8 edges, 16 hosts
        assert len(topo.switches) == 4 + 8 + 8
        assert len(topo.tors) == 8
        assert topo.num_nics == 16

    def test_k_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            fat_tree(sim, factory(sim), k=3, link_bandwidth_bps=1e9)
        with pytest.raises(ValueError):
            fat_tree(sim, factory(sim), k=4, nics_per_tor=3,
                     link_bandwidth_bps=1e9)

    def test_cross_pod_path_count(self):
        sim = Simulator()
        topo = fat_tree(sim, factory(sim), k=4, link_bandwidth_bps=1e9)
        attach_all(sim, topo)
        # Cross-pod: (k/2)^2 = 4 shortest paths.
        assert topo.path_count(0, 15) == 4
        # Same pod, different edge: k/2 = 2 paths.
        assert topo.path_count(0, 2) == 2
        # Same edge: 1.
        assert topo.path_count(0, 1) == 1

    def test_cross_pod_first_hop_fanout(self):
        sim = Simulator()
        topo = fat_tree(sim, factory(sim), k=4, link_bandwidth_bps=1e9)
        attach_all(sim, topo)
        assert topo.equal_paths(0, 15) == 2  # k/2 aggs at the edge

    def test_forwarding_reaches_destination(self):
        """End-to-end: inject at edge switch, packet reaches remote NIC."""
        from repro.net.packet import FlowKey, data_packet

        class Recorder(Device):
            def __init__(self, sim, name):
                super().__init__(sim, name)
                self.got = []

            def receive(self, packet, in_port):
                self.got.append(packet)

        sim = Simulator()
        topo = fat_tree(sim, factory(sim), k=4, link_bandwidth_bps=1e9)
        nics = []
        for nic_id in range(topo.num_nics):
            nic = Recorder(sim, f"nic{nic_id}")
            topo.attach_nic(nic_id, nic)
            nics.append(nic)
        topo.build_routes()
        src_tor = topo.nic_tor[0]
        src_tor.receive(data_packet(FlowKey(0, 13), 0, 100), None)
        sim.run()
        assert len(nics[13].got) == 1
