"""Tests for the packet tracer — including the end-to-end Eq. 1 check."""

import json

from repro.harness.network import Network, NetworkConfig, TopologySpec
from repro.obs import attach_tracer
from repro.net.packet import FlowKey

TOPO = TopologySpec(kind="leaf_spine", num_tors=2, num_spines=4,
                    nics_per_tor=1, link_bandwidth_bps=25e9)


def traced_run(scheme, nbytes=150_000, flow=None):
    net = Network(NetworkConfig(topology=TOPO, scheme=scheme, seed=2))
    tracer = attach_tracer(net, flow=flow)
    net.post_message(0, 1, nbytes)
    net.run(until_ns=10_000_000_000)
    assert net.metrics.all_flows_done()
    return net, tracer


class TestCapture:
    def test_records_every_hop(self):
        net, tracer = traced_run("ecmp")
        # Any data packet crosses tor0 -> spineX -> tor1 = 3 switches.
        first_data = next(e for e in tracer.events if e.ptype == "data")
        hops = [e.location for e in tracer.hops_of(first_data.pkt_id)]
        assert len(hops) == 3
        assert hops[0] == "tor0"
        assert hops[1].startswith("spine")
        assert hops[2] == "tor1"

    def test_flow_filter(self):
        net = Network(NetworkConfig(topology=TOPO, scheme="ecmp", seed=2))
        tracer = attach_tracer(net, flow=FlowKey(0, 1, 7))
        net.post_message(0, 1, 50_000, qp=7)
        net.post_message(1, 0, 50_000, qp=3)  # different flow: ignored
        net.run(until_ns=10_000_000_000)
        assert tracer.events
        assert all(e.qp == 7 for e in tracer.events)

    def test_acks_captured_on_reverse_flow_filter(self):
        net, tracer = traced_run("ecmp", flow=FlowKey(0, 1, 0))
        assert any(e.ptype == "ack" for e in tracer.events)

    def test_max_events_truncates(self):
        net = Network(NetworkConfig(topology=TOPO, scheme="ecmp", seed=2))
        tracer = attach_tracer(net)
        tracer.max_events = 10
        net.post_message(0, 1, 150_000)
        net.run(until_ns=10_000_000_000)
        assert len(tracer.events) == 10
        assert tracer.truncated

    def test_write_jsonl(self, tmp_path):
        net, tracer = traced_run("ecmp", nbytes=20_000)
        path = tracer.write_jsonl(tmp_path / "cap" / "trace.jsonl")
        lines = path.read_text().splitlines()
        assert len(lines) == len(tracer.events)
        event = json.loads(lines[0])
        assert {"time_ns", "location", "ptype", "psn"} <= set(event)


class TestEq1EndToEnd:
    def test_psn_residue_determines_spine(self):
        """The tracer proves Eq. 1 on the wire: under Themis every data
        packet's spine is a function of PSN mod N only."""
        net, tracer = traced_run("themis", nbytes=300_000)
        n = 4  # spines
        spine_by_residue = {}
        for event in tracer.events:
            if event.ptype != "data" or event.location != "tor0":
                continue
            spine = tracer.spine_of(event.pkt_id)
            residue = event.psn % n
            spine_by_residue.setdefault(residue, set()).add(spine)
        assert set(spine_by_residue) == {0, 1, 2, 3}
        for residue, spines in spine_by_residue.items():
            assert len(spines) == 1, f"residue {residue} split: {spines}"
        distinct = {next(iter(s)) for s in spine_by_residue.values()}
        assert len(distinct) == 4

    def test_ecmp_single_path(self):
        net, tracer = traced_run("ecmp")
        spines = {tracer.spine_of(e.pkt_id) for e in tracer.events
                  if e.ptype == "data" and e.location == "tor0"}
        assert len(spines) == 1

    def test_rps_uses_many_paths(self):
        net, tracer = traced_run("rps")
        spines = {tracer.spine_of(e.pkt_id) for e in tracer.events
                  if e.ptype == "data" and e.location == "tor0"}
        assert len(spines) == 4


class TestQueryHelpers:
    def test_packets_by_psn(self):
        net, tracer = traced_run("themis", nbytes=50_000)
        events = tracer.packets_by_psn(0)
        assert events
        assert all(e.psn == 0 and e.ptype == "data" for e in events)

    def test_nack_events_collected_when_present(self):
        net, tracer = traced_run("rps", nbytes=150_000)
        nacks = tracer.nack_events()
        assert all(e.ptype == "nack" for e in nacks)

    def test_nack_events_present_on_lossy_uplinks(self):
        from repro.switch.switch import Switch
        net = Network(NetworkConfig(topology=TOPO, scheme="rps", seed=2))
        tracer = attach_tracer(net)
        loss_rng = net.rng.fork("loss")
        for port in net.topology.tors[0].ports:
            if isinstance(port.peer, Switch):
                port.set_loss(0.05, loss_rng)
        net.post_message(0, 1, 150_000)
        net.run(until_ns=10_000_000_000)
        nacks = tracer.nack_events()
        assert nacks, "lossy run produced no NACK trace events"
        assert all(e.ptype == "nack" for e in nacks)

    def test_spine_of_unknown_packet(self):
        net, tracer = traced_run("ecmp", nbytes=20_000)
        assert tracer.spine_of(-1) is None
