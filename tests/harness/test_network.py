"""Integration tests for the Network assembly and scheme wiring."""

import pytest

from repro.harness.network import (Network, NetworkConfig, SCHEMES,
                                   TopologySpec, TRANSPORTS)
from repro.themis.dest import ThemisDest
from repro.themis.source import ThemisSource

SMALL = TopologySpec(kind="leaf_spine", num_tors=2, num_spines=2,
                     nics_per_tor=2, link_bandwidth_bps=25e9)


class TestConstruction:
    def test_invalid_scheme_rejected(self):
        with pytest.raises(ValueError):
            NetworkConfig(scheme="wat")

    def test_invalid_transport_rejected(self):
        with pytest.raises(ValueError):
            NetworkConfig(transport="wat")

    def test_nic_count_matches_topology(self):
        net = Network(NetworkConfig(topology=SMALL))
        assert len(net.nics) == 4

    def test_variant_derives_config(self):
        cfg = NetworkConfig(topology=SMALL, scheme="ecmp")
        var = cfg.variant(scheme="themis")
        assert var.scheme == "themis"
        assert var.topology == cfg.topology

    def test_themis_middleware_only_on_tors(self):
        net = Network(NetworkConfig(topology=SMALL, scheme="themis"))
        for tor in net.topology.tors:
            kinds = {type(m) for m in tor.middleware}
            assert kinds == {ThemisDest, ThemisSource}
        spines = [s for s in net.topology.switches
                  if s not in net.topology.tors]
        assert all(not s.middleware for s in spines)

    def test_non_themis_has_no_middleware(self):
        net = Network(NetworkConfig(topology=SMALL, scheme="ecmp"))
        assert all(not s.middleware for s in net.topology.switches)

    def test_fat_tree_themis_uses_pathmap_mode(self):
        topo = TopologySpec(kind="fat_tree", fat_tree_k=4,
                            link_bandwidth_bps=25e9)
        net = Network(NetworkConfig(topology=topo, scheme="themis"))
        assert net._themis_cfg.spray_mode == "pathmap"


class TestEndToEnd:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_cross_rack_message_completes(self, scheme):
        net = Network(NetworkConfig(topology=SMALL, scheme=scheme))
        done = {"snd": False, "rcv": False}
        net.post_message(0, 2, 200_000,
                         on_sender_done=lambda: done.update(snd=True),
                         on_receiver_done=lambda: done.update(rcv=True))
        net.run(until_ns=5_000_000_000)
        assert done == {"snd": True, "rcv": True}

    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_transports_complete(self, transport):
        net = Network(NetworkConfig(topology=SMALL, transport=transport))
        net.post_message(0, 2, 200_000)
        net.run(until_ns=5_000_000_000)
        assert net.metrics.all_flows_done()

    def test_intra_rack_message(self):
        net = Network(NetworkConfig(topology=SMALL, scheme="themis"))
        net.post_message(0, 1, 100_000)
        net.run(until_ns=5_000_000_000)
        assert net.metrics.all_flows_done()

    def test_bidirectional_traffic(self):
        net = Network(NetworkConfig(topology=SMALL))
        net.post_message(0, 2, 100_000)
        net.post_message(2, 0, 100_000)
        net.run(until_ns=5_000_000_000)
        assert net.metrics.all_flows_done()

    def test_multiple_qps_between_same_pair(self):
        net = Network(NetworkConfig(topology=SMALL))
        net.post_message(0, 2, 50_000, qp=0)
        net.post_message(0, 2, 50_000, qp=1)
        net.run(until_ns=5_000_000_000)
        assert len(net.metrics.flows) == 2
        assert net.metrics.all_flows_done()

    def test_determinism_same_seed(self):
        def run_once():
            net = Network(NetworkConfig(topology=SMALL, scheme="rps",
                                        seed=7))
            net.post_message(0, 2, 300_000)
            net.post_message(1, 3, 300_000)
            net.run(until_ns=5_000_000_000)
            return (net.now_ns, net.metrics.data_packets_sent,
                    net.metrics.nacks_generated)

        assert run_once() == run_once()

    def test_different_seeds_differ(self):
        def run_once(seed):
            net = Network(NetworkConfig(topology=SMALL, scheme="rps",
                                        seed=seed))
            for src, dst in ((0, 2), (1, 3), (2, 0), (3, 1)):
                net.post_message(src, dst, 300_000)
            net.run(until_ns=5_000_000_000)
            return net.metrics.summary()

        # Spray choices differ; some counter must differ.
        assert run_once(1) != run_once(2)


class TestInvariants:
    def _loaded_network(self, scheme):
        net = Network(NetworkConfig(topology=SMALL, scheme=scheme, seed=5))
        for src, dst in ((0, 2), (1, 3), (2, 1), (3, 0)):
            net.post_message(src, dst, 400_000)
        net.run(until_ns=10_000_000_000)
        return net

    @pytest.mark.parametrize("scheme", ["ecmp", "rps", "ar", "themis"])
    def test_all_posted_bytes_complete(self, scheme):
        net = self._loaded_network(scheme)
        assert net.metrics.all_flows_done()
        for stats in net.metrics.flows.values():
            assert stats.receiver_done_ns is not None
            assert stats.sender_done_ns is not None

    def test_themis_nack_accounting_balances(self):
        net = self._loaded_network("themis")
        themis = net.metrics.themis
        assert themis.nacks_inspected \
            == themis.nacks_blocked + themis.nacks_forwarded

    def test_no_buffer_leak(self):
        net = self._loaded_network("rps")
        for switch in net.topology.switches:
            assert switch.buffer.used_bytes == 0

    def test_ideal_transport_no_nacks(self):
        net = Network(NetworkConfig(topology=SMALL, transport="ideal",
                                    scheme="rps"))
        for src, dst in ((0, 2), (1, 3)):
            net.post_message(src, dst, 400_000)
        net.run(until_ns=10_000_000_000)
        assert net.metrics.nacks_generated == 0
        assert net.metrics.all_flows_done()
