"""Tests for ASCII figure rendering and result export."""

import csv
import json

from repro.harness.export import FLOW_FIELDS, flows_to_csv, run_to_json
from repro.harness.figures import (bar_chart, grouped_bar_chart,
                                   line_panel, render_fig1)
from repro.harness.motivation import motivation_config, run_motivation
from repro.harness.network import Network, NetworkConfig, TopologySpec


class TestBarChart:
    def test_empty(self):
        assert bar_chart([]) == "(no data)"

    def test_proportional_bars(self):
        out = bar_chart([("a", 10.0), ("b", 5.0)])
        lines = out.splitlines()
        assert lines[0].count("█") > lines[1].count("█")

    def test_unit_suffix(self):
        assert "ms" in bar_chart([("x", 1.0)], unit=" ms")

    def test_grouped(self):
        out = grouped_bar_chart({"g1": {"a": 1.0, "b": 2.0},
                                 "g2": {"a": 3.0}})
        assert "g1:" in out and "g2:" in out
        assert out.count("|") == 3


class TestLinePanel:
    def test_empty(self):
        assert line_panel([]) == "(empty series)"

    def test_renders_extremes(self):
        series = [(0, 0.0), (1000, 100.0), (2000, 50.0)]
        out = line_panel(series)
        assert "100.00" in out
        assert "0.00" in out
        assert "·" in out

    def test_single_point(self):
        out = line_panel([(500, 42.0)])
        assert "42.00" in out


class TestRenderFig1:
    def test_full_panel(self):
        result = run_motivation(motivation_config(),
                                flow_bytes=1_500_000)
        out = render_fig1(result)
        assert "(1b)" in out and "(1c)" in out and "(1d)" in out
        assert "Gbps" in out


class TestExport:
    def _run(self):
        topo = TopologySpec(kind="leaf_spine", num_tors=2, num_spines=2,
                            nics_per_tor=2, link_bandwidth_bps=25e9)
        net = Network(NetworkConfig(topology=topo, scheme="themis"))
        net.post_message(0, 2, 100_000)
        net.post_message(3, 1, 50_000)
        net.run(until_ns=10_000_000_000)
        return net

    def test_flows_to_csv(self, tmp_path):
        net = self._run()
        path = flows_to_csv(net.metrics, tmp_path / "flows.csv")
        with path.open() as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == 2
        assert set(rows[0]) == set(FLOW_FIELDS)
        by_src = {row["src"]: row for row in rows}
        assert by_src["0"]["bytes_posted"] == "100000"
        assert float(by_src["0"]["goodput_gbps"]) > 0

    def test_run_to_json(self, tmp_path):
        net = self._run()
        path = run_to_json(net.metrics, tmp_path / "run.json",
                           extra={"scheme": "themis"})
        payload = json.loads(path.read_text())
        assert payload["experiment"]["scheme"] == "themis"
        assert len(payload["flows"]) == 2
        assert "nacks_blocked" in payload["themis"]
        assert payload["summary"]["data_packets_sent"] > 0
