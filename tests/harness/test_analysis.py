"""Tests for utilization/fairness analysis."""

import pytest

from repro.harness.analysis import (flow_fairness, jain_fairness,
                                    link_utilization, uplink_imbalance)
from repro.harness.network import Network, NetworkConfig, TopologySpec

TOPO = TopologySpec(kind="leaf_spine", num_tors=2, num_spines=4,
                    nics_per_tor=4, link_bandwidth_bps=25e9)


def loaded(scheme, seed=3, nbytes=500_000):
    net = Network(NetworkConfig(topology=TOPO, scheme=scheme, seed=seed))
    # Four cross-rack flows from rack 0 to rack 1.
    for i in range(4):
        net.post_message(i, 4 + i, nbytes)
    net.run(until_ns=30_000_000_000)
    assert net.metrics.all_flows_done()
    return net


class TestJain:
    def test_perfectly_fair(self):
        assert jain_fairness([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_single_hog(self):
        assert jain_fairness([10.0, 0.0, 0.0, 0.0]) \
            == pytest.approx(0.25)

    def test_empty_is_fair(self):
        assert jain_fairness([]) == 1.0

    def test_zero_sum_is_fair(self):
        assert jain_fairness([0.0, 0.0]) == 1.0


class TestLinkUtilization:
    def test_reports_only_interswitch_links(self):
        net = loaded("ecmp")
        links = link_utilization(net)
        # 2 tors x 4 spines x 2 directions = 16 directed links.
        assert len(links) == 16
        assert all(0.0 <= u.busy_fraction <= 1.0 for u in links)

    def test_bytes_conserved_in_one_direction(self):
        net = loaded("themis")
        up = sum(u.bytes_sent for u in link_utilization(net)
                 if u.src == "tor0")
        # Everything rack 0 sent crossed its uplinks (plus control).
        posted = sum(f.bytes_posted for f in net.metrics.flows.values())
        assert up >= posted

    def test_spray_balances_uplinks(self):
        ecmp = uplink_imbalance(loaded("ecmp"), "tor0")
        themis = uplink_imbalance(loaded("themis"), "tor0")
        assert themis < ecmp
        assert themis == pytest.approx(1.0, abs=0.15)

    def test_unknown_tor_is_balanced_vacuously(self):
        net = loaded("ecmp")
        assert uplink_imbalance(net, "nonexistent") == 1.0


class TestFlowFairness:
    def test_spraying_more_fair_than_ecmp(self):
        # With 4 flows hashed onto 4 uplinks, collisions make some flows
        # slower; spraying equalizes.
        assert flow_fairness(loaded("themis")) \
            >= flow_fairness(loaded("ecmp"))

    def test_fairness_in_unit_range(self):
        value = flow_fairness(loaded("rps"))
        assert 0.0 < value <= 1.0
