"""Tests for §6 link-failure tolerance: fail, revert to ECMP, heal."""

import pytest

from repro.harness.network import Network, NetworkConfig, TopologySpec

TOPO = TopologySpec(kind="leaf_spine", num_tors=2, num_spines=2,
                    nics_per_tor=2, link_bandwidth_bps=25e9)


def make(scheme="themis"):
    return Network(NetworkConfig(topology=TOPO, scheme=scheme, seed=3))


class TestFailLink:
    def test_dead_port_leaves_candidate_sets(self):
        net = make()
        net.fail_link("tor0", "spine0")
        tor0 = net.topology.tors[0]
        candidates = tor0.routes[2]
        assert len(candidates) == 1
        assert candidates[0].peer.name == "spine1"

    def test_both_directions_fail(self):
        net = make()
        net.fail_link("tor0", "spine0")
        spine0 = next(s for s in net.topology.switches
                      if s.name == "spine0")
        tor0 = net.topology.tors[0]
        assert any(not p.up for p in spine0.ports)
        assert any(not p.up for p in tor0.ports)

    def test_unknown_switch_raises(self):
        net = make()
        with pytest.raises(LookupError):
            net.fail_link("tor0", "nope")

    def test_unconnected_pair_raises(self):
        net = make()
        with pytest.raises(LookupError):
            net.fail_link("tor0", "tor1")

    def test_double_failure_of_same_link_raises(self):
        net = make()
        net.fail_link("tor0", "spine0")
        with pytest.raises(LookupError):
            net.fail_link("tor0", "spine0")

    def test_partition_raises(self):
        net = make()
        net.fail_link("tor0", "spine0")
        with pytest.raises(RuntimeError):
            net.fail_link("tor0", "spine1")  # tor0 would be cut off


class TestThemisFallback:
    def test_failure_disables_themis(self):
        net = make()
        net.fail_link("tor0", "spine0")
        for tor in net.topology.tors:
            assert all(not mw.enabled for mw in tor.middleware)

    def test_traffic_completes_after_failure(self):
        net = make()
        net.fail_link("tor0", "spine0")
        net.post_message(0, 2, 200_000)
        net.post_message(3, 1, 200_000)
        net.run(until_ns=10_000_000_000)
        assert net.metrics.all_flows_done()
        # With Themis disabled, no packet was sprayed / no NACK touched.
        assert net.metrics.themis.nacks_inspected == 0

    def test_mid_flight_failure_still_completes(self):
        net = make()
        net.post_message(0, 2, 2_000_000)
        net.post_message(1, 3, 2_000_000)
        net.run(until_ns=20_000)           # let traffic start
        net.fail_link("tor0", "spine1")
        net.run(until_ns=30_000_000_000)
        assert net.metrics.all_flows_done()

    def test_heal_restores_routes_and_themis(self):
        net = make()
        net.fail_link("tor0", "spine0")
        net.heal_links()
        tor0 = net.topology.tors[0]
        assert len(tor0.routes[2]) == 2
        for tor in net.topology.tors:
            assert all(mw.enabled for mw in tor.middleware)

    def test_heal_resets_dest_state(self):
        net = make()
        net.post_message(0, 2, 200_000)
        net.run(until_ns=10_000_000_000)
        net.fail_link("tor0", "spine0")
        net.heal_links()
        dest = next(mw for tor in net.topology.tors
                    for mw in tor.middleware
                    if hasattr(mw, "table"))
        assert len(dest.table) == 0

    def test_ecmp_scheme_failure_works_without_middleware(self):
        net = make(scheme="ecmp")
        net.fail_link("tor0", "spine0")
        net.post_message(0, 2, 100_000)
        net.run(until_ns=10_000_000_000)
        assert net.metrics.all_flows_done()
