"""Shape tests for the Fig. 1 motivation pipeline (scaled small for CI).

These assert the paper's *qualitative* claims; the benchmarks regenerate
the full-size panels.
"""

import pytest

from repro.harness.motivation import (motivation_config, run_motivation,
                                      run_fig1d_comparison)

FLOW_BYTES = 2_000_000  # small enough for quick tests, long enough that
                        # the flow spans several 100 us trace windows


@pytest.fixture(scope="module")
def nic_sr_result():
    return run_motivation(motivation_config(), flow_bytes=FLOW_BYTES)


@pytest.fixture(scope="module")
def ideal_result():
    return run_motivation(motivation_config(transport="ideal"),
                          flow_bytes=FLOW_BYTES)


class TestFig1bRetransmissions:
    def test_no_real_loss_occurs(self, nic_sr_result):
        """§2.2: 'we observe that no packet loss occurs'."""
        assert nic_sr_result.drops == 0

    def test_yet_retransmissions_happen(self, nic_sr_result):
        """... while the spurious retransmission ratio stays well above
        zero (paper: 16% average)."""
        assert nic_sr_result.avg_retx_ratio > 0.02

    def test_ratio_series_nonempty(self, nic_sr_result):
        assert len(nic_sr_result.retx_ratio_series) >= 3
        assert all(0 <= v <= 1 for _, v in nic_sr_result.retx_ratio_series)


class TestFig1cRate:
    def test_rate_dips_below_line(self, nic_sr_result):
        """NACKs trigger slow starts: the average rate sits below line."""
        assert nic_sr_result.avg_rate_gbps < 0.95 * 100.0

    def test_rate_trace_shows_cuts(self, nic_sr_result):
        values = [v for _, v in nic_sr_result.rate_series_gbps]
        assert values, "watched flow should have rate changes"
        assert min(values) < 60.0

    def test_ideal_keeps_line_rate(self, ideal_result):
        assert ideal_result.avg_rate_gbps == pytest.approx(100.0)


class TestFig1dThroughput:
    def test_nic_sr_well_below_ideal(self, nic_sr_result, ideal_result):
        """Paper: 68 vs 95 Gbps (~71%).  Assert a clear gap."""
        assert ideal_result.mean_goodput_gbps > 80.0
        ratio = (nic_sr_result.mean_goodput_gbps
                 / ideal_result.mean_goodput_gbps)
        assert ratio < 0.9

    def test_ideal_has_no_nacks(self, ideal_result):
        assert ideal_result.nacks == 0
        assert ideal_result.avg_retx_ratio == 0.0

    def test_comparison_helper(self):
        results = run_fig1d_comparison(flow_bytes=FLOW_BYTES)
        assert set(results) == {"nic_sr", "ideal"}
        assert results["ideal"].mean_goodput_gbps \
            > results["nic_sr"].mean_goodput_gbps


class TestThemisOnMotivation:
    """Running Themis on the same workload removes most of the damage."""

    @pytest.fixture(scope="class")
    def themis_result(self):
        return run_motivation(motivation_config(scheme="themis"),
                              flow_bytes=FLOW_BYTES)

    def test_blocks_most_nacks(self, themis_result):
        themis = themis_result.summary
        assert themis["themis_blocked"] > 0
        blocked_frac = themis["themis_blocked"] / (
            themis["themis_blocked"] + themis["themis_forwarded"])
        assert blocked_frac > 0.8

    def test_retx_far_below_rps(self, themis_result, nic_sr_result):
        assert themis_result.avg_retx_ratio \
            < 0.5 * nic_sr_result.avg_retx_ratio

    def test_goodput_beats_rps(self, themis_result, nic_sr_result):
        assert themis_result.mean_goodput_gbps \
            > nic_sr_result.mean_goodput_gbps

    def test_no_compensation_needed_without_loss(self, themis_result):
        assert themis_result.summary["themis_compensated"] == 0
