"""Tests for the LB arena (repro.harness.arena)."""

import json

import pytest

from repro.harness import arena
from repro.harness.arena import (ARENA_SCHEMA, arena_job_specs,
                                 build_arena_doc, render_arena_table,
                                 run_arena, run_arena_cell,
                                 validate_arena_doc)
from repro.harness.jobs import JobSpec, execute_spec

SMALL = dict(lbs=("reps", "prime"), transports=("commodity",),
             ccs=("dcqcn",), workloads=("alltoall",),
             topologies={"leaf_spine":
                         arena.QUICK_TOPOLOGIES["leaf_spine"]},
             seeds=(1,), quick=True)


def small_params(**over):
    params = {"lb": "reps", "transport": "commodity", "cc": "dcqcn",
              "workload": "alltoall", "topology": "leaf_spine",
              "topo": dict(arena.QUICK_TOPOLOGIES["leaf_spine"]),
              "bytes": 20_000, "deadline_us": 20_000.0}
    params.update(over)
    return params


class TestArenaCell:
    def test_cell_completes_and_reports_metrics(self):
        result = run_arena_cell(small_params(), seed=1)
        assert result["completed"]
        assert result["tail_ns"] > 0
        assert result["mean_slowdown"] >= 1.0
        assert result["goodput_gbps"] > 0
        assert 0.0 <= result["reorder_rate"] <= 1.0
        assert 0.0 <= result["nack_validity"] <= 1.0

    def test_all_workloads_run(self):
        for workload in arena.WORKLOADS:
            result = run_arena_cell(small_params(workload=workload),
                                    seed=1)
            assert result["completed"], workload

    def test_themis_transport_installs_overlay(self):
        """The overlay must actually engage: spraying on dragonfly
        reorders, and validation inspects the resulting NACKs."""
        commodity = run_arena_cell(small_params(
            lb="rps", topology="dragonfly",
            topo=dict(arena.QUICK_TOPOLOGIES["dragonfly"])), seed=1)
        themis = run_arena_cell(small_params(
            lb="rps", transport="themis", topology="dragonfly",
            topo=dict(arena.QUICK_TOPOLOGIES["dragonfly"])), seed=1)
        assert commodity["nacks_blocked"] == 0
        if themis["nacks"]:
            assert themis["nacks_blocked"] > 0

    def test_unknown_axes_rejected(self):
        with pytest.raises(ValueError):
            run_arena_cell(small_params(transport="quic"), seed=1)
        with pytest.raises(ValueError):
            run_arena_cell(small_params(cc="bbr"), seed=1)
        with pytest.raises(ValueError):
            run_arena_cell(small_params(workload="gossip"), seed=1)

    def test_registered_as_job_kind(self):
        spec = JobSpec(kind="arena_cell", seed=1, params=small_params())
        payload = execute_spec(spec)
        assert payload["completed"]


class TestArenaSpecs:
    def test_spec_order_is_deterministic(self):
        a = arena_job_specs(**SMALL)
        b = arena_job_specs(**SMALL)
        assert [s.spec_hash for s in a] == [s.spec_hash for s in b]

    def test_grid_covers_every_combination(self):
        specs = arena_job_specs(
            lbs=("ecmp", "rps"), transports=("commodity", "themis"),
            ccs=("dcqcn",), workloads=("alltoall", "incast"),
            topologies=arena.QUICK_TOPOLOGIES, seeds=(1, 2), quick=True)
        assert len(specs) == 2 * 2 * 1 * 2 * 3 * 2
        assert len({s.spec_hash for s in specs}) == len(specs)

    def test_params_are_self_contained(self):
        (spec,) = arena_job_specs(
            lbs=("reps",), transports=("commodity",), workloads=("incast",),
            topologies={"dragonfly": arena.QUICK_TOPOLOGIES["dragonfly"]},
            quick=True)
        assert spec.params["topo"]["kind"] == "dragonfly"
        assert spec.params["bytes"] == arena.QUICK_BYTES
        assert spec.params["deadline_us"] == arena.QUICK_DEADLINE_US


class TestArenaRun:
    def test_doc_schema_and_ranking(self):
        doc = run_arena(**SMALL)
        assert validate_arena_doc(doc) == []
        assert doc["schema"] == ARENA_SCHEMA
        assert {r["lb"] for r in doc["ranking"]} == {"reps", "prime"}
        ranks = [r["rank"] for r in doc["ranking"]]
        assert ranks == [1, 2]
        slowdowns = [r["mean_slowdown"] for r in doc["ranking"]]
        assert slowdowns == sorted(slowdowns)

    def test_parallel_run_bitwise_identical_to_serial(self):
        """The ISSUE acceptance criterion, at test scale: workers=2
        (subprocess pool) must produce the identical document."""
        serial = run_arena(workers=1, **SMALL)
        parallel = run_arena(workers=2, **SMALL)
        assert json.dumps(serial, sort_keys=True) == \
            json.dumps(parallel, sort_keys=True)

    def test_render_table_lists_every_pair(self):
        doc = run_arena(**SMALL)
        table = render_arena_table(doc)
        assert "reps" in table and "prime" in table
        assert "slowdown" in table


class TestValidation:
    def doc(self):
        specs = arena_job_specs(**SMALL)
        from repro.harness.jobs import run_jobs
        return build_arena_doc(specs, run_jobs(specs))

    def test_accepts_good_doc(self):
        assert validate_arena_doc(self.doc()) == []

    def test_rejects_wrong_schema(self):
        doc = self.doc()
        doc["schema"] = "repro-arena-v0"
        assert any("schema" in p for p in validate_arena_doc(doc))

    def test_rejects_missing_cells(self):
        doc = self.doc()
        doc["cells"] = []
        assert any("cells" in p for p in validate_arena_doc(doc))

    def test_rejects_incomplete_cell(self):
        doc = self.doc()
        doc["cells"][0]["completed"] = False
        assert any("did not complete" in p
                   for p in validate_arena_doc(doc))

    def test_rejects_unsorted_ranking(self):
        doc = self.doc()
        doc["ranking"].reverse()
        problems = validate_arena_doc(doc)
        assert any("rank" in p or "sorted" in p for p in problems)

    def test_rejects_missing_cell_fields(self):
        doc = self.doc()
        del doc["cells"][0]["nack_validity"]
        assert any("missing fields" in p for p in validate_arena_doc(doc))


class TestArenaCli:
    def test_quick_arena_json(self, capsys):
        from repro.harness.cli import main
        rc = main(["--json", "arena", "--quick", "--lbs", "reps,prime",
                   "--transports", "commodity", "--workloads", "alltoall",
                   "--topos", "leaf_spine,dragonfly"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert validate_arena_doc(doc) == []
        assert doc["axes"]["topologies"] == ["leaf_spine", "dragonfly"]

    def test_unknown_topology_preset_rejected(self, capsys):
        from repro.harness.cli import main
        rc = main(["--quiet", "arena", "--quick", "--topos", "moebius"])
        assert rc == 2

    def test_out_file_written(self, tmp_path, capsys):
        from repro.harness.cli import main
        out = tmp_path / "arena.json"
        rc = main(["--quiet", "arena", "--quick", "--lbs", "sprinklers",
                   "--transports", "commodity", "--workloads", "incast",
                   "--topos", "fat_tree", "--out", str(out)])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert validate_arena_doc(doc) == []
