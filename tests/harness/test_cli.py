"""Tests for the command-line interface."""

import pytest

from repro.harness.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_memory_defaults(self):
        args = build_parser().parse_args(["memory"])
        assert args.n_paths == 256
        assert args.bandwidth_gbps == 400.0

    def test_motivation_scheme_validation(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["motivation", "--scheme", "nope"])


class TestCommands:
    def test_memory_output(self, capsys):
        assert main(["memory"]) == 0
        out = capsys.readouterr().out
        assert "192512" in out
        assert "192.5" in out

    def test_memory_custom_params(self, capsys):
        assert main(["memory", "--n-qp", "200"]) == 0
        out = capsys.readouterr().out
        assert "384512" in out  # 512 + 120*200*16

    def test_motivation_small(self, capsys):
        rc = main(["motivation", "--flow-bytes", "200000",
                   "--scheme", "themis"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "spurious retx ratio" in out
        assert "mean goodput" in out

    def test_pathmap(self, capsys):
        assert main(["pathmap", "--k", "4", "--src", "0",
                     "--dst", "15"]) == 0
        out = capsys.readouterr().out
        assert "PSN mod N" in out
        assert "core" in out

    def test_collective_quick(self, capsys):
        rc = main(["collective", "--collective", "allgather",
                   "--scheme", "themis", "--ti-us", "10",
                   "--td-us", "200"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "tail completion" in out


class TestJsonExport:
    def test_collective_json_export(self, tmp_path, capsys):
        out = tmp_path / "result.json"
        rc = main(["collective", "--collective", "allgather",
                   "--scheme", "ecmp", "--ti-us", "10",
                   "--td-us", "200", "--json", str(out)])
        assert rc == 0
        import json
        payload = json.loads(out.read_text())
        assert payload["scheme"] == "ecmp"
        assert payload["completed"]
        assert payload["tail_completion_ms"] > 0
