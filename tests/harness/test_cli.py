"""Tests for the command-line interface."""

import pytest

from repro.harness.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_memory_defaults(self):
        args = build_parser().parse_args(["memory"])
        assert args.n_paths == 256
        assert args.bandwidth_gbps == 400.0

    def test_motivation_scheme_validation(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["motivation", "--scheme", "nope"])


class TestCommands:
    def test_memory_output(self, capsys):
        assert main(["memory"]) == 0
        out = capsys.readouterr().out
        assert "192512" in out
        assert "192.5" in out

    def test_memory_custom_params(self, capsys):
        assert main(["memory", "--n-qp", "200"]) == 0
        out = capsys.readouterr().out
        assert "384512" in out  # 512 + 120*200*16

    def test_motivation_small(self, capsys):
        rc = main(["motivation", "--flow-bytes", "200000",
                   "--scheme", "themis"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "spurious retx ratio" in out
        assert "mean goodput" in out

    def test_pathmap(self, capsys):
        assert main(["pathmap", "--k", "4", "--src", "0",
                     "--dst", "15"]) == 0
        out = capsys.readouterr().out
        assert "PSN mod N" in out
        assert "core" in out

    def test_collective_quick(self, capsys):
        rc = main(["collective", "--collective", "allgather",
                   "--scheme", "themis", "--ti-us", "10",
                   "--td-us", "200"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "tail completion" in out


class TestJsonExport:
    def test_collective_json_export(self, tmp_path, capsys):
        out = tmp_path / "result.json"
        rc = main(["collective", "--collective", "allgather",
                   "--scheme", "ecmp", "--ti-us", "10",
                   "--td-us", "200", "--json", str(out)])
        assert rc == 0
        import json
        payload = json.loads(out.read_text())
        assert payload["scheme"] == "ecmp"
        assert payload["completed"]
        assert payload["tail_completion_ms"] > 0


class TestGlobalOutputFlags:
    def test_json_before_subcommand(self, capsys):
        import json
        assert main(["--json", "memory"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["total_bytes"] == 192512

    def test_json_after_subcommand(self, capsys):
        import json
        assert main(["memory", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["total_kb"] == 192.5

    def test_quiet_keeps_primary_output(self, capsys):
        assert main(["--quiet", "memory"]) == 0
        assert "192512" in capsys.readouterr().out

    def test_collective_json_path_flag_still_parses(self):
        args = build_parser().parse_args(
            ["collective", "--json", "out.json"])
        assert args.json == "out.json"
        assert args.json_mode is False


class TestTraceCommand:
    def test_nack_report(self, capsys):
        rc = main(["trace", "nacks", "--nodes", "6", "--bytes", "6000",
                   "--loss", "0.02", "--limit", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "NACK causality audit" in out
        assert "unexplained=0" in out

    def test_quiet_drops_progress_keeps_report(self, capsys):
        rc = main(["--quiet", "trace", "--nodes", "4",
                   "--bytes", "4000"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "running traced" not in out
        assert "NACK causality audit" in out

    def test_json_mode_emits_audit_document(self, capsys):
        import json
        rc = main(["--json", "trace", "--nodes", "4", "--bytes", "4000"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["report"] == "nacks"
        assert payload["audit"]["unexplained"] == 0
        assert payload["metrics"]["trace_events"] > 0

    def test_perfetto_and_dump_artifacts(self, tmp_path, capsys):
        import json
        trace = tmp_path / "trace.json"
        dump = tmp_path / "flight.jsonl"
        rc = main(["trace", "--nodes", "4", "--bytes", "4000",
                   "--perfetto", str(trace), "--dump", str(dump)])
        assert rc == 0
        from repro.obs.perfetto import validate_chrome_trace
        assert validate_chrome_trace(json.loads(trace.read_text())) == []
        lines = dump.read_text().splitlines()
        assert json.loads(lines[0])["meta"] == "repro-flight-recorder"
        assert all(json.loads(ln) for ln in lines)

    def test_odd_node_count_rejected(self):
        with pytest.raises(ValueError, match="even"):
            main(["trace", "--nodes", "5"])


class TestProfileCommand:
    def test_table_output(self, capsys):
        rc = main(["profile", "--nodes", "4", "--bytes", "4000",
                   "--top", "5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "handler" in out
        assert "total profiled wall time" in out

    def test_json_report(self, tmp_path, capsys):
        import json
        out_file = tmp_path / "profile.json"
        rc = main(["--json", "profile", "--nodes", "4",
                   "--bytes", "4000", "--out", str(out_file)])
        assert rc == 0
        stdout_doc = json.loads(capsys.readouterr().out)
        file_doc = json.loads(out_file.read_text())
        for doc in (stdout_doc, file_doc):
            assert doc["handlers"]
            assert doc["total_ms"] > 0
            assert {"handler", "calls", "total_ms", "mean_us",
                    "share"} <= set(doc["handlers"][0])


class TestFaultsCommand:
    def test_list_names_builtins(self, capsys):
        assert main(["faults", "list"]) == 0
        out = capsys.readouterr().out
        assert "link-flap-smoke" in out
        assert "spine-reboot" in out

    def test_show_builtin_spec(self, capsys):
        import json
        assert main(["--json", "faults", "show", "--name",
                     "link-flap-smoke"]) == 0
        spec = json.loads(capsys.readouterr().out)
        assert spec["name"] == "link-flap-smoke"
        assert [e["kind"] for e in spec["events"]] == ["link_down",
                                                       "link_up"]

    def test_show_unknown_name_fails(self, capsys):
        assert main(["faults", "show", "--name", "nope"]) == 2
        assert "no builtin scenario" in capsys.readouterr().out

    def test_run_campaign_from_spec_file(self, tmp_path, capsys):
        import json
        spec_file = tmp_path / "flap.json"
        spec_file.write_text(json.dumps({
            "name": "cli-flap",
            "workload": {"nodes": 8, "message_bytes": 20000},
            "layers": [{"kind": "link_flap", "link": "tor0:spine0",
                        "at_us": 5, "down_us": 10}],
        }))
        out_file = tmp_path / "campaign.json"
        rc = main(["--json", "faults", "run", "--spec", str(spec_file),
                   "--seeds", "1", "--out", str(out_file)])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scenario"] == "cli-flap"
        assert payload["aggregate"]["completed"] == 1
        assert payload["aggregate"]["unexplained_nacks"] == 0
        written = json.loads(out_file.read_text())
        assert written["cells"][0]["faults"]["applied"] == 2

    def test_run_requires_spec_or_name(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["faults", "run"])

    def test_trace_with_fault_link_flag(self, capsys):
        import json
        rc = main(["--json", "trace", "nacks", "--nodes", "8",
                   "--bytes", "200000", "--fault-link", "tor0:spine0",
                   "--fault-at-us", "40", "--fault-down-us", "80"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["audit"]["unexplained"] == 0
        assert payload["faults"]["applied"] == 2
        assert payload["faults"]["recorded"] >= 2
