"""Unit tests for reporting helpers."""

import json

from repro.harness.report import (format_series, format_table, percent,
                                  sparkline, write_json)


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["name", "value"],
                           [["a", 1], ["long-name", 22]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert "long-name" in lines[3]
        # All rows share the same width.
        assert len({len(line.rstrip()) for line in lines[2:]}) <= 2

    def test_empty_rows(self):
        out = format_table(["a"], [])
        assert out.splitlines()[0] == "a"


class TestFormatSeries:
    def test_empty(self):
        assert "empty" in format_series([])

    def test_downsamples(self):
        series = [(i * 1000, float(i)) for i in range(100)]
        out = format_series(series, max_rows=10)
        assert len(out.splitlines()) <= 12

    def test_includes_last_point(self):
        series = [(i * 1000, float(i)) for i in range(7)]
        out = format_series(series)
        assert "6.000" in out


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_monotone_shape(self):
        line = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert line[0] == "▁"
        assert line[-1] == "█"

    def test_constant_series(self):
        assert len(sparkline([5.0] * 10)) == 10


def test_percent():
    assert percent(0.156) == "15.6%"


def test_write_json(tmp_path):
    path = write_json(tmp_path / "out" / "r.json", {"a": 1})
    assert json.loads(path.read_text()) == {"a": 1}
