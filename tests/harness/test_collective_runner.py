"""Unit tests for the Fig. 5 collective runner and sweep machinery."""

import pytest

from repro.harness.collective_runner import (EvalScale, fig5_config,
                                             run_collective)
from repro.harness.sweep import DCQCN_SWEEP, SweepResult, run_fig5_sweep

TINY = EvalScale(num_tors=2, num_spines=2, nics_per_tor=2,
                 collective_bytes=100_000, link_bandwidth_bps=25e9)


class TestFig5Config:
    def test_timers_applied(self):
        cfg = fig5_config("themis", 300, 50, scale=TINY)
        assert cfg.dcqcn.ti_ns == 300_000
        assert cfg.dcqcn.td_ns == 50_000
        assert cfg.scheme == "themis"

    def test_scale_shapes_topology(self):
        cfg = fig5_config("ecmp", 900, 4, scale=TINY)
        assert cfg.topology.num_tors == 2
        assert cfg.topology.link_bandwidth_bps == 25e9
        assert cfg.buffer_bytes == TINY.buffer_bytes

    def test_env_scale_paper(self, monkeypatch):
        monkeypatch.setenv("REPRO_EVAL_SCALE", "paper")
        scale = EvalScale.from_env()
        assert scale.num_tors == 16
        assert scale.collective_bytes == 300_000_000
        assert scale.link_bandwidth_bps == 400e9

    def test_env_scale_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_EVAL_SCALE", raising=False)
        assert EvalScale.from_env() == EvalScale()


class TestRunCollective:
    def test_unknown_collective_rejected(self):
        cfg = fig5_config("ecmp", 10, 200, scale=TINY)
        with pytest.raises(ValueError):
            run_collective(cfg, "bogus", scale=TINY)

    def test_result_fields(self):
        cfg = fig5_config("themis", 10, 200, scale=TINY)
        result = run_collective(cfg, "allgather", scale=TINY)
        assert result.completed
        assert result.collective == "allgather"
        assert result.scheme == "themis"
        assert result.tail_completion_ns > 0
        assert result.tail_completion_ms \
            == result.tail_completion_ns / 1e6
        assert len(result.group_completion_ns) == TINY.nics_per_tor
        assert result.summary["data_packets_sent"] > 0

    def test_tail_is_max_of_groups(self):
        cfg = fig5_config("ecmp", 10, 200, scale=TINY)
        result = run_collective(cfg, "allreduce", scale=TINY)
        assert result.tail_completion_ns \
            == max(result.group_completion_ns)

    def test_bytes_override(self):
        cfg = fig5_config("ecmp", 10, 200, scale=TINY)
        result = run_collective(cfg, "allreduce", scale=TINY,
                                bytes_per_group=40_000)
        assert result.bytes_per_group == 40_000


class TestSweep:
    def test_sweep_structure_and_math(self):
        result = run_fig5_sweep(
            "allgather", schemes=("ecmp", "themis"),
            conditions=((10, 200),), scale=TINY)
        assert isinstance(result, SweepResult)
        assert set(result.runs) == {(10, 200)}
        assert set(result.runs[(10, 200)]) == {"ecmp", "themis"}
        imp = result.improvement_over("ecmp", "themis", (10, 200))
        ecmp_ms = result.tail_ms((10, 200), "ecmp")
        themis_ms = result.tail_ms((10, 200), "themis")
        assert imp == pytest.approx(1 - themis_ms / ecmp_ms)

    def test_improvement_range(self):
        result = run_fig5_sweep(
            "allgather", schemes=("ecmp", "themis"),
            conditions=((10, 200), (10, 50)), scale=TINY)
        lo, hi = result.improvement_range("ecmp", "themis")
        assert lo <= hi

    def test_default_sweep_constants(self):
        assert DCQCN_SWEEP == ((900, 4), (300, 4), (10, 4), (10, 50),
                               (10, 200))
