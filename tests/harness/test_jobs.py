"""Job-runner semantics: isolation, retry, timeout, resume, determinism."""

import json
import os
import time

import pytest

from repro.harness.collective_runner import EvalScale
from repro.harness.jobs import (JobSpec, callable_target,
                                checkpoint_status, load_completed,
                                raise_on_failures, read_checkpoint,
                                run_jobs)
from repro.harness.metrics import JobCounters
from repro.harness.replication import replicate, replicate_many
from repro.harness.sweep import DCQCN_SWEEP, run_fig5_sweep, sweep_job_specs

TINY_SCALE = EvalScale(num_tors=2, num_spines=2, nics_per_tor=2,
                       collective_bytes=60_000)


# ----------------------------------------------------------------------
# Worker-side helpers (module-level so they are importable from workers)
# ----------------------------------------------------------------------
def square(seed):
    return float(seed * seed)


def seed_metrics(seed):
    return {"seed": float(seed), "double": float(2 * seed)}


def crash_unless_marker(seed, marker=""):
    """os._exit (a hard worker crash, no exception) on the first attempt;
    succeed once the marker file exists."""
    if os.path.exists(marker):
        return seed + 100
    with open(marker, "w") as fh:
        fh.write("attempted\n")
    os._exit(3)


def always_crash(seed):
    os._exit(3)


def sleep_forever(seed):
    time.sleep(60)
    return seed


def always_raises(seed):
    raise ValueError(f"deterministic failure for seed {seed}")


def _callable_spec(fn, seed, **kwargs):
    return JobSpec(kind="callable", seed=seed,
                   params={"target": callable_target(fn),
                           "kwargs": kwargs})


class TestJobSpec:
    def test_spec_hash_is_stable_and_param_sensitive(self):
        a = JobSpec(kind="callable", seed=1, params={"target": "m:f"})
        b = JobSpec(kind="callable", seed=1, params={"target": "m:f"},
                    label="display only")
        c = JobSpec(kind="callable", seed=2, params={"target": "m:f"})
        assert a.spec_hash == b.spec_hash  # label excluded
        assert a.spec_hash != c.spec_hash
        assert a == JobSpec.from_dict(a.to_dict())

    def test_callable_target_rejects_lambdas(self):
        assert callable_target(lambda s: s) is None
        assert callable_target(square) == \
            f"{__name__}:square"

    def test_unknown_kind_fails_cleanly(self):
        outcomes = run_jobs([JobSpec(kind="nope", seed=1)])
        (outcome,) = outcomes.values()
        assert not outcome.ok
        with pytest.raises(RuntimeError, match="1 job"):
            raise_on_failures(outcomes)


class TestRunnerCore:
    def test_serial_inproc_execution(self):
        specs = [_callable_spec(square, s) for s in (1, 2, 3)]
        outcomes = run_jobs(specs, workers=1)
        assert [outcomes[s.spec_hash].result["value"]
                for s in specs] == [1.0, 4.0, 9.0]
        assert all(o.ok and not o.from_checkpoint
                   for o in outcomes.values())

    def test_parallel_subprocess_execution(self):
        specs = [_callable_spec(square, s) for s in range(1, 7)]
        counters = JobCounters()
        outcomes = run_jobs(specs, workers=3, counters=counters)
        assert [outcomes[s.spec_hash].result["value"]
                for s in specs] == [1.0, 4.0, 9.0, 16.0, 25.0, 36.0]
        assert counters.completed == 6
        assert counters.failed == 0

    def test_duplicate_specs_run_once(self):
        spec = _callable_spec(square, 5)
        counters = JobCounters()
        outcomes = run_jobs([spec, spec, spec], counters=counters)
        assert counters.submitted == 1
        assert len(outcomes) == 1

    def test_job_exception_fails_without_retry(self):
        counters = JobCounters()
        outcomes = run_jobs([_callable_spec(always_raises, 1)],
                            workers=2, counters=counters)
        (outcome,) = outcomes.values()
        assert not outcome.ok
        assert "deterministic failure" in outcome.error
        assert outcome.attempts == 1
        assert counters.retries == 0


class TestCrashAndTimeout:
    def test_worker_crash_is_retried_until_success(self, tmp_path):
        marker = str(tmp_path / "attempted.flag")
        counters = JobCounters()
        outcomes = run_jobs(
            [_callable_spec(crash_unless_marker, 7, marker=marker)],
            workers=2, retries=2, backoff_s=0.01, counters=counters)
        (outcome,) = outcomes.values()
        assert outcome.ok
        assert outcome.result["value"] == 107
        assert outcome.attempts == 2
        assert counters.crashes == 1
        assert counters.retries == 1

    def test_worker_crash_exhausts_bounded_retries(self):
        counters = JobCounters()
        outcomes = run_jobs(
            [_callable_spec(always_crash, 7)],
            workers=2, retries=1, backoff_s=0.01, counters=counters)
        (outcome,) = outcomes.values()
        assert not outcome.ok
        assert outcome.attempts == 2  # 1 try + 1 retry
        assert counters.failed == 1

    def test_timeout_kills_the_worker(self):
        counters = JobCounters()
        start = time.monotonic()
        outcomes = run_jobs([_callable_spec(sleep_forever, 1)],
                            workers=2, timeout_s=0.5, retries=0,
                            counters=counters)
        elapsed = time.monotonic() - start
        (outcome,) = outcomes.values()
        assert not outcome.ok
        assert "timeout" in outcome.error
        assert counters.timeouts == 1
        assert elapsed < 30  # the 60s sleep was killed, not awaited

    def test_timeout_then_retry_counts_both(self):
        counters = JobCounters()
        outcomes = run_jobs([_callable_spec(sleep_forever, 1)],
                            workers=2, timeout_s=0.3, retries=1,
                            backoff_s=0.01, counters=counters)
        (outcome,) = outcomes.values()
        assert not outcome.ok
        assert outcome.attempts == 2
        assert counters.timeouts == 2
        assert counters.retries == 1


class TestCheckpointResume:
    def test_completed_jobs_are_skipped_on_resume(self, tmp_path):
        ckpt = str(tmp_path / "ckpt.jsonl")
        first = [_callable_spec(square, s) for s in (1, 2)]
        run_jobs(first, workers=2, checkpoint=ckpt)

        both = first + [_callable_spec(square, 3)]
        counters = JobCounters()
        outcomes = run_jobs(both, workers=2, checkpoint=ckpt,
                            counters=counters)
        assert counters.skipped == 2
        assert counters.completed == 1  # only the new job ran
        assert [outcomes[s.spec_hash].result["value"]
                for s in both] == [1.0, 4.0, 9.0]
        assert [outcomes[s.spec_hash].from_checkpoint
                for s in both] == [True, True, False]

    def test_failed_checkpoint_entries_are_rerun(self, tmp_path):
        ckpt = str(tmp_path / "ckpt.jsonl")
        run_jobs([_callable_spec(always_raises, 1)], checkpoint=ckpt)
        assert checkpoint_status(ckpt)["failed"] == 1

        counters = JobCounters()
        run_jobs([_callable_spec(always_raises, 1)], checkpoint=ckpt,
                 counters=counters)
        assert counters.skipped == 0  # failures never satisfy resume
        assert counters.failed == 1

    def test_truncated_final_line_is_tolerated(self, tmp_path):
        ckpt = str(tmp_path / "ckpt.jsonl")
        spec = _callable_spec(square, 2)
        run_jobs([spec], checkpoint=ckpt)
        with open(ckpt, "a") as fh:
            fh.write('{"spec_hash": "deadbeef", "status": "do')  # crash
        assert len(read_checkpoint(ckpt)) == 1
        assert spec.spec_hash in load_completed(ckpt)

    def test_checkpoint_status_summary(self, tmp_path):
        ckpt = str(tmp_path / "ckpt.jsonl")
        run_jobs([_callable_spec(square, s) for s in (1, 2)],
                 checkpoint=ckpt)
        run_jobs([_callable_spec(always_raises, 9)], checkpoint=ckpt)
        status = checkpoint_status(ckpt)
        assert status["jobs"] == 3
        assert status["done"] == 2
        assert status["failed"] == 1
        assert status["kinds"] == {"callable": 3}
        assert len(status["failures"]) == 1

    def test_missing_checkpoint_reads_empty(self, tmp_path):
        assert read_checkpoint(str(tmp_path / "absent.jsonl")) == []
        assert checkpoint_status(str(tmp_path / "absent.jsonl"))["jobs"] == 0


class TestSweepIntegration:
    CONDS = DCQCN_SWEEP[:2]
    SCHEMES = ("ecmp", "themis")

    @staticmethod
    def _fingerprint(result):
        """Canonical byte-level encoding of an aggregated SweepResult."""
        return json.dumps(
            {f"{ti:g},{td:g}": {scheme: vars(run)
                                for scheme, run in row.items()}
             for (ti, td), row in result.runs.items()},
            sort_keys=True)

    def test_sweep_specs_are_deterministic(self):
        a = sweep_job_specs("allreduce", schemes=self.SCHEMES,
                            conditions=self.CONDS, scale=TINY_SCALE)
        b = sweep_job_specs("allreduce", schemes=self.SCHEMES,
                            conditions=self.CONDS, scale=TINY_SCALE)
        assert [s.spec_hash for s in a] == [s.spec_hash for s in b]
        assert len({s.spec_hash for s in a}) == len(a)

    def test_golden_serial_equals_parallel(self):
        """The acceptance-gate invariant: parallel aggregation is
        bitwise-identical to serial."""
        serial = run_fig5_sweep("allreduce", schemes=self.SCHEMES,
                                conditions=self.CONDS, scale=TINY_SCALE,
                                workers=1)
        parallel = run_fig5_sweep("allreduce", schemes=self.SCHEMES,
                                  conditions=self.CONDS, scale=TINY_SCALE,
                                  workers=4)
        assert self._fingerprint(serial) == self._fingerprint(parallel)

    def test_sweep_resume_roundtrip(self, tmp_path):
        ckpt = str(tmp_path / "sweep.jsonl")
        full = run_fig5_sweep("allreduce", schemes=self.SCHEMES,
                              conditions=self.CONDS, scale=TINY_SCALE,
                              workers=2, checkpoint=ckpt)
        counters = JobCounters()
        resumed = run_fig5_sweep("allreduce", schemes=self.SCHEMES,
                                 conditions=self.CONDS, scale=TINY_SCALE,
                                 workers=2, checkpoint=ckpt,
                                 counters=counters)
        assert counters.skipped == len(self.CONDS) * len(self.SCHEMES)
        assert counters.completed == 0
        assert self._fingerprint(full) == self._fingerprint(resumed)


class TestReplicationIntegration:
    def test_parallel_replicate_matches_serial(self):
        serial = replicate(square, seeds=(1, 2, 3), name="sq", workers=1)
        parallel = replicate(square, seeds=(1, 2, 3), name="sq",
                             workers=3)
        assert serial == parallel
        assert parallel.values == (1.0, 4.0, 9.0)

    def test_parallel_replicate_many(self):
        stats = replicate_many(seed_metrics, seeds=(1, 2), workers=2)
        assert stats["double"].values == (2.0, 4.0)

    def test_lambda_falls_back_to_serial(self):
        stat = replicate(lambda s: float(s), seeds=(4, 5), workers=4)
        assert stat.values == (4.0, 5.0)


# ----------------------------------------------------------------------
# Injected infrastructure faults (REPRO_JOBS_FAULT_HOOK)
# ----------------------------------------------------------------------
def fault_hook_crash_once(spec_doc):
    """Deterministic infrastructure fault: hard-kill the first worker
    that runs each spec (marker file keyed by spec params)."""
    marker = spec_doc["params"]["kwargs"]["marker"]
    if not os.path.exists(marker):
        with open(marker, "w") as fh:
            fh.write("hook fired\n")
        os._exit(3)


def fault_hook_always_crash(spec_doc):
    os._exit(3)


def marked_square(seed, marker=""):
    return float(seed * seed)


class TestInjectedFaultHook:
    """Satellite: retry-with-backoff exercised via the deterministic
    worker fault hook, not ad-hoc monkeypatching of runner internals."""

    def test_injected_crash_is_retried_to_success(self, tmp_path,
                                                  monkeypatch):
        from repro.harness.jobs import FAULT_HOOK_ENV
        monkeypatch.setenv(FAULT_HOOK_ENV,
                           "tests.harness.test_jobs:fault_hook_crash_once")
        marker = str(tmp_path / "hook.flag")
        counters = JobCounters()
        outcomes = run_jobs(
            [_callable_spec(marked_square, 6, marker=marker)],
            workers=2, retries=2, backoff_s=0.01, counters=counters)
        (outcome,) = outcomes.values()
        assert outcome.ok
        assert outcome.result["value"] == 36.0
        assert outcome.attempts == 2
        assert counters.crashes == 1
        assert counters.retries == 1

    def test_injected_crash_exhausts_retries(self, monkeypatch):
        from repro.harness.jobs import FAULT_HOOK_ENV
        monkeypatch.setenv(
            FAULT_HOOK_ENV,
            "tests.harness.test_jobs:fault_hook_always_crash")
        counters = JobCounters()
        outcomes = run_jobs([_callable_spec(square, 2)],
                            workers=2, retries=1, backoff_s=0.01,
                            counters=counters)
        (outcome,) = outcomes.values()
        assert not outcome.ok
        assert outcome.attempts == 2
        assert counters.crashes == 2

    def test_hook_is_inert_when_unset(self, monkeypatch):
        from repro.harness.jobs import FAULT_HOOK_ENV
        monkeypatch.delenv(FAULT_HOOK_ENV, raising=False)
        outcomes = run_jobs([_callable_spec(square, 3)], workers=2)
        (outcome,) = outcomes.values()
        assert outcome.ok and outcome.attempts == 1
