"""Tests for Network's internal sizing/wiring helpers."""

import pytest

from repro.harness.network import Network, NetworkConfig, TopologySpec
from repro.net.packet import FlowKey
from repro.switch.ecn import EcnConfig
from repro.themis.config import ThemisConfig


def themis_net(**overrides):
    topo = overrides.pop("topology", TopologySpec(
        kind="leaf_spine", num_tors=2, num_spines=4, nics_per_tor=2,
        link_bandwidth_bps=25e9))
    return Network(NetworkConfig(topology=topo, scheme="themis",
                                 **overrides))


class TestQueueCapacitySizing:
    def test_capacity_covers_bdp_plus_ecn_queueing(self):
        net = themis_net(ecn=EcnConfig(kmin_bytes=15_000,
                                       kmax_bytes=60_000))
        cap = net._queue_capacity_for(FlowKey(0, 2))
        # RTT = 2 us prop + 60 KB / 25 Gbps = 2 us + 19.2 us -> BDP
        # ~66 KB -> x1.5 / 1500 B MTU ~= 67 entries.
        assert 50 <= cap <= 80

    def test_override_respected(self):
        net = themis_net(themis=ThemisConfig(queue_entries_override=9))
        assert net._queue_capacity_for(FlowKey(0, 2)) == 9

    def test_capacity_scales_with_ecn_depth(self):
        shallow = themis_net(ecn=EcnConfig(kmin_bytes=5_000,
                                           kmax_bytes=20_000))
        deep = themis_net(ecn=EcnConfig(kmin_bytes=50_000,
                                        kmax_bytes=200_000))
        assert deep._queue_capacity_for(FlowKey(0, 2)) \
            > shallow._queue_capacity_for(FlowKey(0, 2))


class TestNPathsResolution:
    def test_leaf_spine_direct_mode_uses_uplink_count(self):
        net = themis_net()
        assert net._n_paths_for(FlowKey(0, 2)) == 4

    def test_fat_tree_pathmap_mode_uses_full_path_count(self):
        topo = TopologySpec(kind="fat_tree", fat_tree_k=4,
                            link_bandwidth_bps=25e9)
        net = themis_net(topology=topo)
        assert net._themis_cfg.spray_mode == "pathmap"
        assert net._n_paths_for(FlowKey(0, 15)) == 4   # (k/2)^2
        assert net._n_paths_for(FlowKey(0, 2)) == 2    # same pod


class TestSchemeLbWiring:
    @pytest.mark.parametrize("scheme,lb_name", [
        ("ecmp", "ecmp"), ("rps", "rps"), ("ar", "ar"),
        ("flowlet", "flowlet"), ("themis", "ecmp"),
        ("conweave_spray", "rps"),
    ])
    def test_lb_selected_per_scheme(self, scheme, lb_name):
        topo = TopologySpec(kind="leaf_spine", num_tors=2, num_spines=2,
                            nics_per_tor=1, link_bandwidth_bps=25e9)
        net = Network(NetworkConfig(topology=topo, scheme=scheme))
        assert net.topology.switches[0].lb.name == lb_name

    def test_mp_rdma_filter_hook_installed(self):
        topo = TopologySpec(kind="leaf_spine", num_tors=2, num_spines=4,
                            nics_per_tor=1, link_bandwidth_bps=25e9)
        net = Network(NetworkConfig(topology=topo,
                                    scheme="themis_noval",
                                    transport="mp_rdma"))
        assert net.nics[0].nack_filter_paths is not None
        assert net.nics[0].nack_filter_paths(FlowKey(0, 1)) == 4

    def test_non_mp_rdma_has_no_filter(self):
        net = themis_net()
        assert net.nics[0].nack_filter_paths is None
