"""Tests for multi-seed replication statistics."""

import pytest

from repro.harness.replication import (ReplicatedStat, replicate,
                                       replicate_many)


class TestReplicatedStat:
    def test_mean_std(self):
        stat = ReplicatedStat("x", (1.0, 2.0, 3.0))
        assert stat.mean == 2.0
        assert stat.std == pytest.approx(1.0)
        assert stat.min == 1.0
        assert stat.max == 3.0
        assert stat.n == 3

    def test_single_value_std_zero(self):
        stat = ReplicatedStat("x", (5.0,))
        assert stat.std == 0.0
        assert stat.ci95_halfwidth() == 0.0

    def test_str_contains_name_and_n(self):
        text = str(ReplicatedStat("goodput", (1.0, 2.0)))
        assert "goodput" in text
        assert "n=2" in text


class TestReplicate:
    def test_calls_metric_per_seed(self):
        seen = []

        def metric(seed):
            seen.append(seed)
            return seed * 2.0

        stat = replicate(metric, seeds=(1, 2, 3), name="double")
        assert seen == [1, 2, 3]
        assert stat.values == (2.0, 4.0, 6.0)

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            replicate(lambda s: 0.0, seeds=())

    def test_replicate_many(self):
        stats = replicate_many(lambda s: {"a": s, "b": s * 10},
                               seeds=(1, 2))
        assert stats["a"].values == (1.0, 2.0)
        assert stats["b"].mean == 15.0

    def test_replicate_many_key_mismatch(self):
        calls = iter([{"a": 1}, {"b": 2}])
        with pytest.raises(ValueError):
            replicate_many(lambda s: next(calls), seeds=(1, 2))


class TestEndToEnd:
    def test_themis_beats_rps_across_seeds(self):
        """The paper's core claim holds in the mean, not just for one
        lucky seed."""
        from repro.collectives.group import interleaved_ring_groups
        from repro.harness.motivation import motivation_config
        from repro.harness.network import Network

        def goodput(scheme):
            def metric(seed):
                net = Network(motivation_config(scheme=scheme, seed=seed))
                for members in interleaved_ring_groups(8, 2):
                    for i, node in enumerate(members):
                        net.post_message(node,
                                         members[(i + 1) % len(members)],
                                         500_000)
                net.run(until_ns=30_000_000_000)
                value = net.metrics.mean_goodput_gbps()
                net.stop()
                return value
            return metric

        seeds = (1, 2, 3)
        rps = replicate(goodput("rps"), seeds=seeds, name="rps")
        themis = replicate(goodput("themis"), seeds=seeds, name="themis")
        assert themis.mean > rps.mean
        assert themis.min > 0
