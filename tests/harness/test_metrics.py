"""Unit tests for the Metrics hub and FlowStats math."""

import pytest

from repro.harness.metrics import FlowStats, Metrics
from repro.net.packet import FlowKey, data_packet
from repro.sim.engine import Simulator


class TestFlowStats:
    def test_goodput_math(self):
        stats = FlowStats(FlowKey(0, 1), start_ns=1000)
        stats.bytes_posted = 125_000          # 1 Mbit
        stats.sender_done_ns = 1000 + 1_000_000  # 1 ms later
        assert stats.goodput_gbps() == pytest.approx(1.0)

    def test_goodput_zero_without_completion(self):
        stats = FlowStats(FlowKey(0, 1))
        stats.bytes_posted = 1000
        assert stats.goodput_gbps() == 0.0

    def test_retransmission_ratio(self):
        stats = FlowStats(FlowKey(0, 1))
        stats.packets_sent = 100
        stats.retransmissions = 16
        assert stats.retransmission_ratio == pytest.approx(0.16)

    def test_ratio_zero_without_traffic(self):
        assert FlowStats(FlowKey(0, 1)).retransmission_ratio == 0.0


class TestMetrics:
    def _metrics(self):
        return Metrics(Simulator())

    def test_flow_stats_created_on_demand(self):
        metrics = self._metrics()
        flow = FlowKey(0, 1)
        stats = metrics.flow_stats(flow)
        assert metrics.flow_stats(flow) is stats

    def test_on_data_sent_counts(self):
        metrics = self._metrics()
        flow = FlowKey(0, 1)
        metrics.on_data_sent(flow, data_packet(flow, 0, 1000))
        metrics.on_data_sent(flow, data_packet(flow, 0, 1000,
                                               is_retx=True))
        assert metrics.data_packets_sent == 2
        assert metrics.retransmissions == 1
        assert metrics.spurious_ratio == pytest.approx(0.5)
        stats = metrics.flows[flow]
        assert stats.packets_sent == 2
        assert stats.retransmissions == 1

    def test_spurious_ratio_empty(self):
        assert self._metrics().spurious_ratio == 0.0

    def test_watch_flow_creates_trace_sinks(self):
        metrics = self._metrics()
        flow = FlowKey(2, 3)
        metrics.watch_flow(flow)
        assert flow in metrics.sent_counters
        assert flow in metrics.rate_traces
        assert metrics.rate_trace_for(flow) is not None
        assert metrics.rate_trace_for(FlowKey(9, 9)) is None

    def test_watched_flow_series_populated(self):
        metrics = self._metrics()
        flow = FlowKey(2, 3)
        metrics.watch_flow(flow)
        metrics.on_data_sent(flow, data_packet(flow, 0, 1000))
        metrics.on_delivered(flow, data_packet(flow, 0, 1000))
        assert metrics.sent_counters[flow].total() == 1
        assert metrics.throughput_meters[flow].total_bytes() == 1000

    def test_unwatched_flow_has_no_series(self):
        metrics = self._metrics()
        flow = FlowKey(2, 3)
        metrics.on_data_sent(flow, data_packet(flow, 0, 1000))
        assert flow not in metrics.sent_counters

    def test_all_flows_done(self):
        metrics = self._metrics()
        stats = metrics.flow_stats(FlowKey(0, 1))
        assert not metrics.all_flows_done()
        stats.receiver_done_ns = 5
        assert metrics.all_flows_done()

    def test_mean_goodput_ignores_empty_flows(self):
        metrics = self._metrics()
        a = metrics.flow_stats(FlowKey(0, 1))
        a.bytes_posted = 125_000
        a.sender_done_ns = 1_000_000
        metrics.flow_stats(FlowKey(2, 3))  # no bytes posted
        assert metrics.mean_goodput_gbps() == pytest.approx(1.0)

    def test_summary_keys(self):
        summary = self._metrics().summary()
        assert {"data_packets_sent", "spurious_ratio", "drops",
                "themis_blocked", "mean_goodput_gbps"} <= set(summary)

    def test_drop_listener_called(self):
        metrics = self._metrics()
        seen = []
        metrics.drop_listeners.append(seen.append)
        pkt = data_packet(FlowKey(0, 1), 0, 100)
        metrics.on_drop(pkt, None, None)
        assert seen == [pkt]
        assert metrics.drops == 1
