"""End-to-end property tests (hypothesis) on the whole stack.

Each generated case builds a small fabric, posts a random workload under a
random scheme, runs to completion, and checks conservation invariants that
must hold regardless of load balancing, reordering, or retransmission
behaviour.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.harness.network import Network, NetworkConfig, TopologySpec
from repro.net.packet import FlowKey

SCHEMES = ["ecmp", "rps", "ar", "themis", "themis_nocomp"]

workloads = st.lists(
    st.tuples(st.integers(0, 3), st.integers(0, 3),
              st.integers(5_000, 120_000)).filter(lambda t: t[0] != t[1]),
    min_size=1, max_size=6)


def build(scheme, seed):
    topo = TopologySpec(kind="leaf_spine", num_tors=2, num_spines=2,
                        nics_per_tor=2, link_bandwidth_bps=25e9)
    return Network(NetworkConfig(topology=topo, scheme=scheme, seed=seed))


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(scheme=st.sampled_from(SCHEMES), seed=st.integers(0, 2**16),
       flows=workloads)
def test_random_workloads_complete_and_conserve(scheme, seed, flows):
    net = build(scheme, seed)
    # Aggregate duplicate (src, dst) pairs onto distinct QPs so each
    # posted message is its own flow.
    for qp, (src, dst, nbytes) in enumerate(flows):
        net.post_message(src, dst, nbytes, qp=qp)
    net.run(until_ns=20_000_000_000)

    # 1. Everything completes (lossless fabric, retransmission safety).
    assert net.metrics.all_flows_done()

    for (qp, (src, dst, nbytes)) in enumerate(flows):
        flow = FlowKey(src, dst, qp)
        stats = net.metrics.flows[flow]
        # 2. Byte conservation per flow.
        assert stats.bytes_posted == nbytes
        # 3. Receiver finished no earlier than sender started.
        assert stats.receiver_done_ns >= stats.start_ns
        # 4. Sent >= needed; retransmissions accounted inside the total.
        needed = net.config.rnic.packets_for(nbytes)
        assert stats.packets_sent >= needed
        assert stats.retransmissions == stats.packets_sent - needed

    # 5. No switch buffer leaks.
    for switch in net.topology.switches:
        assert switch.buffer.used_bytes == 0

    # 6. Themis accounting balances.
    themis = net.metrics.themis
    assert themis.nacks_inspected \
        == themis.nacks_blocked + themis.nacks_forwarded


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 2**16),
       loss_permille=st.integers(1, 8),
       nbytes=st.integers(20_000, 150_000))
def test_lossy_fabric_still_completes(seed, loss_permille, nbytes):
    """With random drops injected, reliable transport must still finish
    (by NACK, compensation, or timeout) under Themis."""
    net = build("themis", seed)
    for sw in net.topology.switches:
        if sw.name.startswith("spine"):
            for port in sw.ports:
                port.set_loss(loss_permille / 1000.0,
                              net.rng.fork(f"loss{port.name}"))
    net.post_message(0, 2, nbytes)
    net.post_message(1, 3, nbytes)
    net.run(until_ns=60_000_000_000)
    assert net.metrics.all_flows_done()


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 2**16))
def test_same_seed_reproduces_exact_counters(seed):
    def run_once():
        net = build("rps", seed)
        net.post_message(0, 2, 150_000)
        net.post_message(3, 1, 150_000)
        net.run(until_ns=20_000_000_000)
        return (net.now_ns, net.metrics.data_packets_sent,
                net.metrics.retransmissions, net.metrics.nacks_generated)

    assert run_once() == run_once()


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 2**16), flows=workloads)
def test_pfc_fabric_never_drops(seed, flows):
    """Losslessness property: with PFC configured with proper headroom,
    no data packet is ever dropped, for arbitrary small workloads."""
    from repro.switch.pfc import PfcConfig

    topo = TopologySpec(kind="leaf_spine", num_tors=2, num_spines=2,
                        nics_per_tor=2, link_bandwidth_bps=25e9)
    net = Network(NetworkConfig(
        topology=topo, scheme="rps", seed=seed, buffer_bytes=120_000,
        pfc=PfcConfig(xoff_bytes=12_000, xon_bytes=6_000)))
    for qp, (src, dst, nbytes) in enumerate(flows):
        net.post_message(src, dst, nbytes, qp=qp)
    net.run(until_ns=60_000_000_000)
    assert net.metrics.drops == 0
    assert net.metrics.all_flows_done()


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 2**16), flows=workloads)
def test_conweave_reorder_buffer_conserves_packets(seed, flows):
    """The in-order middleware never loses or duplicates a held packet:
    every posted byte still completes."""
    net = build("conweave_spray", seed)
    for qp, (src, dst, nbytes) in enumerate(flows):
        net.post_message(src, dst, nbytes, qp=qp)
    net.run(until_ns=60_000_000_000)
    assert net.metrics.all_flows_done()
    for dest in net.conweave_dests:
        for flow_state in dest._state.values():
            assert not flow_state.buffer  # everything released
