"""Unit + property tests for the ring PSN queue (§3.3)."""

import pytest
from hypothesis import given, strategies as st

from repro.themis.ring_queue import PsnRingQueue


class TestBasics:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            PsnRingQueue(0)

    def test_fifo(self):
        q = PsnRingQueue(8)
        for psn in (3, 1, 4, 1):
            q.enqueue(psn)
        assert [q.dequeue() for _ in range(4)] == [3, 1, 4, 1]

    def test_dequeue_empty_raises(self):
        with pytest.raises(IndexError):
            PsnRingQueue(4).dequeue()

    def test_wraparound_reuses_slots(self):
        q = PsnRingQueue(4)
        for psn in range(4):
            q.enqueue(psn)
        q.dequeue()
        q.dequeue()
        q.enqueue(10)
        q.enqueue(11)
        assert q.snapshot() == [2, 3, 10, 11]

    def test_overflow_evicts_oldest(self):
        q = PsnRingQueue(3)
        for psn in range(5):
            q.enqueue(psn)
        assert q.overflows == 2
        assert q.snapshot() == [2, 3, 4]

    def test_truncation_to_one_byte(self):
        q = PsnRingQueue(4, psn_bits=8)
        q.enqueue(0x1FF)
        assert q.dequeue() == 0xFF


class TestFindTpsn:
    def test_paper_example_fig4b(self):
        """Fig. 4b walkthrough: arrivals 0,1,3,2 then NACK(ePSN=2)."""
        q = PsnRingQueue(8)
        for psn in (0, 1, 3, 2):
            q.enqueue(psn)
        assert q.find_tpsn(2) == 3
        # Scanned entries (0, 1) and the match (3) were consumed; 2 stays.
        assert q.snapshot() == [2]

    def test_paper_example_second_nack(self):
        """Continuation: arrivals 6, 2(4?) ... NACK(ePSN=4) finds 6."""
        q = PsnRingQueue(8)
        for psn in (0, 1, 3, 2):
            q.enqueue(psn)
        q.find_tpsn(2)
        q.enqueue(6)
        q.enqueue(2)
        assert q.find_tpsn(4) == 6

    def test_not_found_drains_queue(self):
        q = PsnRingQueue(8)
        for psn in (0, 1, 2):
            q.enqueue(psn)
        assert q.find_tpsn(5) is None
        assert len(q) == 0

    def test_truncated_serial_comparison_handles_wrap(self):
        """PSNs crossing the 8-bit boundary still compare correctly."""
        q = PsnRingQueue(16, psn_bits=8)
        for psn in (254, 255, 257):  # 257 truncates to 1
            q.enqueue(psn)
        # NACK for ePSN=256 (truncated 0): first *larger* PSN is 257.
        assert q.find_tpsn(256) == 257 & 0xFF

    def test_contains_scan(self):
        q = PsnRingQueue(8)
        for psn in (5, 6, 9):
            q.enqueue(psn)
        assert q.contains(6)
        assert not q.contains(7)

    def test_contains_uses_truncation(self):
        q = PsnRingQueue(8, psn_bits=8)
        q.enqueue(300)  # stored as 44
        assert q.contains(300)
        assert q.contains(44)


@given(st.lists(st.integers(min_value=0, max_value=120), max_size=50),
       st.integers(min_value=0, max_value=120))
def test_find_tpsn_matches_reference_scan(psns, epsn):
    """Property: find_tpsn == linear scan of the FIFO for first PSN > ePSN
    (full-width PSNs, no truncation effects)."""
    q = PsnRingQueue(64, psn_bits=8)
    for psn in psns:
        q.enqueue(psn)
    expected = None
    for i, psn in enumerate(psns):
        if psn > epsn:
            expected = psn
            break
    assert q.find_tpsn(epsn) == expected


@given(st.lists(st.integers(min_value=0, max_value=255), min_size=1,
                max_size=200))
def test_size_never_exceeds_capacity(psns):
    q = PsnRingQueue(16)
    for psn in psns:
        q.enqueue(psn)
    assert len(q) <= 16
    assert q.snapshot() == [p & 0xFF for p in psns[-len(q):]]
