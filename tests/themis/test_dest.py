"""Unit tests for Themis-D: tPSN identification, Eq. 3 validation, and
NACK compensation — driven packet by packet against a mock ToR."""

from repro.harness.metrics import Metrics
from repro.net.node import Device
from repro.net.packet import (FlowKey, PacketType, data_packet,
                              nack_packet)
from repro.sim.engine import Simulator
from repro.sim.rng import SimRng
from repro.switch.buffer import SharedBuffer
from repro.switch.ecn import EcnConfig, EcnMarker
from repro.switch.lb import EcmpLB
from repro.switch.switch import Switch
from repro.themis.config import ThemisConfig
from repro.themis.dest import ThemisDest

#: data flow: remote NIC 0 -> local NIC 1, N = 2 paths.
FLOW = FlowKey(0, 1)
N_PATHS = 2


class Sink(Device):
    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.got = []

    def receive(self, packet, in_port):
        self.got.append(packet)


class DestHarness:
    def __init__(self, *, config=None, n_paths=N_PATHS, capacity=32):
        self.sim = Simulator()
        self.metrics = Metrics(self.sim)
        self.tor = Switch(self.sim, "dtor", lb=EcmpLB(),
                          buffer=SharedBuffer(10**6),
                          ecn_marker=EcnMarker(EcnConfig(), SimRng(0)))
        self.tor.down_nics.add(1)
        self.local = Sink(self.sim, "nic1")
        self.remote = Sink(self.sim, "sender-side")
        down = self.tor.add_port(1e9, 0)
        down.connect(self.local)
        self.tor.routes[1] = [down]
        up = self.tor.add_port(1e9, 0)
        up.connect(self.remote)
        self.tor.routes[0] = [up]
        self.dest = ThemisDest(
            config or ThemisConfig(), self.metrics,
            n_paths_for=lambda flow: n_paths,
            queue_capacity_for=lambda flow: capacity)
        self.tor.add_middleware(self.dest)

    def data(self, psn):
        """Data packet from the fabric heading to the local NIC."""
        pkt = data_packet(FLOW, psn, 1000)
        self.tor.receive(pkt, None)
        return pkt

    def nack(self, epsn):
        """NACK from the local NIC; returns True if it was forwarded."""
        pkt = nack_packet(FLOW, epsn)
        before = len(self.remote.got)
        self.tor.receive(pkt, None)
        self.sim.run()
        return len(self.remote.got) > before

    def entry(self):
        return self.dest.table.get(FLOW)


class TestValidation:
    def test_invalid_nack_blocked(self):
        """Fig. 4b: arrivals 0,1,3 -> NACK(2); tPSN=3, 3%2 != 2%2."""
        h = DestHarness()
        for psn in (0, 1, 3):
            h.data(psn)
        assert not h.nack(2)
        assert h.metrics.themis.nacks_blocked == 1

    def test_valid_nack_forwarded(self):
        """Same-path overtake: arrivals 0,1,4 -> NACK(2); tPSN=4,
        4%2 == 2%2 -> the PSN-2 packet is genuinely lost."""
        h = DestHarness()
        for psn in (0, 1, 4):
            h.data(psn)
        assert h.nack(2)
        assert h.metrics.themis.nacks_forwarded == 1
        assert h.metrics.themis.nacks_blocked == 0

    def test_fig4b_full_sequence(self):
        h = DestHarness()
        for psn in (0, 1, 3, 2):
            h.data(psn)
        assert not h.nack(2)      # tPSN=3 -> invalid
        h.data(6)
        h.data(2)                  # duplicate retransmit arriving late
        assert h.nack(4)           # tPSN=6 -> 6%2 == 4%2 -> valid

    def test_unknown_flow_nack_forwarded_conservatively(self):
        h = DestHarness()
        assert h.nack(0)
        assert h.metrics.themis.tpsn_not_found == 1

    def test_drained_queue_forwards_conservatively(self):
        h = DestHarness()
        h.data(0)
        assert h.nack(5)  # no PSN > 5 in queue
        assert h.metrics.themis.tpsn_not_found == 1

    def test_validation_disabled_forwards_everything(self):
        h = DestHarness(config=ThemisConfig(enable_validation=False))
        for psn in (0, 1, 3):
            h.data(psn)
        assert h.nack(2)
        assert h.metrics.themis.nacks_blocked == 0

    def test_intra_rack_traffic_ignored(self):
        """Themis-D only tracks cross-rack QPs."""
        h = DestHarness()
        h.tor.down_nics.add(0)  # both ends local now
        h.data(0)
        assert h.dest.table.get(FLOW) is None

    def test_themis_generated_nack_not_reinspected(self):
        h = DestHarness()
        pkt = nack_packet(FLOW, 3)
        pkt.themis_generated = True
        h.tor.receive(pkt, None)
        h.sim.run()
        assert h.metrics.themis.nacks_inspected == 0
        assert len(h.remote.got) == 1


class TestCompensation:
    def test_fig4c_compensates_when_loss_confirmed(self):
        """Fig. 4c: block NACK(2), then PSN 4 (same path as 2) arrives
        while 2 never does -> Themis crafts NACK(2)."""
        h = DestHarness()
        for psn in (0, 1, 3):
            h.data(psn)
        assert not h.nack(2)
        entry = h.entry()
        assert entry.valid and entry.blocked_epsn == 2
        h.data(4)
        h.sim.run()
        comp = [p for p in h.remote.got if p.ptype is PacketType.NACK]
        assert len(comp) == 1
        assert comp[0].epsn == 2
        assert comp[0].themis_generated
        assert not entry.valid
        assert h.metrics.themis.nacks_compensated == 1

    def test_compensation_fires_once(self):
        h = DestHarness()
        for psn in (0, 1, 3):
            h.data(psn)
        h.nack(2)
        h.data(4)
        h.data(6)  # same residue again: must NOT re-fire
        h.sim.run()
        comp = [p for p in h.remote.got if p.ptype is PacketType.NACK]
        assert len(comp) == 1

    def test_arrival_of_bepsn_cancels(self):
        """§3.4: if the blocked ePSN packet shows up, no compensation."""
        h = DestHarness()
        for psn in (0, 1, 3):
            h.data(psn)
        h.nack(2)
        h.data(2)   # the "lost" packet was only delayed
        h.data(4)   # same residue afterwards: must not fire
        h.sim.run()
        comp = [p for p in h.remote.got if p.ptype is PacketType.NACK]
        assert comp == []
        assert h.metrics.themis.compensation_cancelled == 1

    def test_different_path_packet_does_not_trigger(self):
        h = DestHarness()
        for psn in (0, 1, 3):
            h.data(psn)
        h.nack(2)
        h.data(5)   # 5 % 2 != 2 % 2: different path, says nothing about 2
        h.sim.run()
        comp = [p for p in h.remote.got if p.ptype is PacketType.NACK]
        assert comp == []
        assert h.entry().valid  # still armed

    def test_arming_guard_when_epsn_already_passed_tor(self):
        """The stale-NACK case: PSN 2 passed the ToR (it is in the ring
        behind the trigger) before its NACK arrived.  Compensation must
        not arm — PSN 2 is demonstrably not lost."""
        h = DestHarness()
        for psn in (0, 1, 3, 2):   # 2 passes the ToR before the NACK
            h.data(psn)
        assert not h.nack(2)
        assert not h.entry().valid
        h.data(4)
        h.sim.run()
        comp = [p for p in h.remote.got if p.ptype is PacketType.NACK]
        assert comp == []

    def test_compensation_disabled(self):
        h = DestHarness(config=ThemisConfig(enable_compensation=False))
        for psn in (0, 1, 3):
            h.data(psn)
        h.nack(2)
        h.data(4)
        h.sim.run()
        comp = [p for p in h.remote.got if p.ptype is PacketType.NACK]
        assert comp == []
        assert h.entry().blocked_epsn is None


class TestFlowTableIntegration:
    def test_entry_created_on_first_data(self):
        h = DestHarness()
        assert h.entry() is None
        h.data(0)
        assert h.entry() is not None
        assert h.entry().n_paths == N_PATHS

    def test_non_power_of_two_paths_use_full_psns(self):
        h = DestHarness(n_paths=3)
        h.data(0)
        assert h.entry().queue.psn_bits == 32

    def test_queue_overflow_counted(self):
        h = DestHarness(capacity=4)
        for psn in range(10):
            h.data(psn)
        assert h.metrics.themis.queue_overflows == 6
