"""Model-checking properties of Themis-D x NIC-SR (hypothesis).

An abstract pipeline — deterministic PSN spraying over N per-path FIFOs,
arbitrary cross-path interleavings, a real NIC-SR receiver, a real
Themis-D — explored across thousands of arrival orders.  Two theorems
the design relies on:

* **No false compensation**: on a loss-free run, Themis never fabricates
  a NACK, for *any* FIFO-respecting interleaving.
* **Loss recovery coverage**: dropping one packet D that has at least
  one same-path successor always surfaces a NACK for D to the sender —
  either the RNIC's own NACK validated as genuine, or a compensated one.
"""

from hypothesis import given, settings, strategies as st

from repro.cc.base import FixedRate
from repro.harness.metrics import Metrics
from repro.net.packet import FlowKey, PacketType, data_packet
from repro.rnic.config import RnicConfig
from repro.rnic.nic import Rnic
from repro.sim.engine import Simulator
from repro.sim.rng import SimRng
from repro.themis.config import ThemisConfig
from repro.themis.dest import ThemisDest

FLOW = FlowKey(0, 1)


class MiniToR:
    """Just enough switch surface for ThemisDest: down NICs + forward."""

    def __init__(self, sim):
        self.sim = sim
        self.down_nics = {1}
        self.to_sender = []          # NACKs surviving toward the sender

    def forward(self, packet):
        self.to_sender.append(packet)


class Pipeline:
    """ToR (Themis-D) wired synchronously to a NIC-SR receiver."""

    def __init__(self, n_paths, capacity=256):
        self.sim = Simulator()
        self.metrics = Metrics(self.sim)
        self.tor = MiniToR(self.sim)
        self.dest = ThemisDest(
            ThemisConfig(), self.metrics,
            n_paths_for=lambda flow: n_paths,
            queue_capacity_for=lambda flow: capacity)
        nic = Rnic(self.sim, 1, config=RnicConfig(),
                   metrics=self.metrics, rng=SimRng(0),
                   cc_factory=lambda f: FixedRate(self.sim, 1e9))
        pipeline = self

        class Loopback:
            def enqueue(self, packet):
                if packet.ptype is PacketType.NACK:
                    # The NACK rides back to the ToR instantly.
                    if pipeline.dest.on_packet(pipeline.tor, packet,
                                               None):
                        pipeline.tor.to_sender.append(packet)
                return True

        nic.uplink = Loopback()
        self.receiver = nic.receiver(FLOW)

    def deliver(self, psn):
        packet = data_packet(FLOW, psn, 100)
        if self.dest.on_packet(self.tor, packet, None):
            self.receiver.on_data(packet)

    def sender_nack_epsns(self):
        return {p.epsn for p in self.tor.to_sender
                if p.ptype is PacketType.NACK}


def fifo_interleavings(n_packets, n_paths):
    """Strategy: arrival orders preserving per-path (mod-N) FIFO order.

    Encoded as a sequence of path picks; each pick releases that path's
    next pending PSN.  Invalid (exhausted-path) picks wrap to the next
    non-empty path, keeping every generated order valid.
    """
    return st.lists(st.integers(0, n_paths - 1), min_size=n_packets,
                    max_size=n_packets).map(
        lambda picks: _decode(picks, n_packets, n_paths))


def _decode(picks, n_packets, n_paths):
    pending = {p: [psn for psn in range(n_packets)
                   if psn % n_paths == p] for p in range(n_paths)}
    order = []
    for pick in picks:
        for offset in range(n_paths):
            path = (pick + offset) % n_paths
            if pending[path]:
                order.append(pending[path].pop(0))
                break
    # Release anything left (picks ran out of some paths).
    for path in range(n_paths):
        order.extend(pending[path])
    return order


@settings(max_examples=300, deadline=None)
@given(n_paths=st.sampled_from([2, 4]),
       data=st.data())
def test_lossless_runs_never_compensate(n_paths, data):
    n_packets = data.draw(st.integers(n_paths + 1, 40))
    order = data.draw(fifo_interleavings(n_packets, n_paths))
    pipe = Pipeline(n_paths)
    for psn in order:
        pipe.deliver(psn)
    # Theorem 1: no fabricated NACKs without loss.
    assert pipe.metrics.themis.nacks_compensated == 0
    # Sanity: the receiver assembled the whole stream.
    assert pipe.receiver.epsn == n_packets
    # Accounting closes.
    themis = pipe.metrics.themis
    assert themis.nacks_inspected \
        == themis.nacks_blocked + themis.nacks_forwarded


@settings(max_examples=300, deadline=None)
@given(n_paths=st.sampled_from([2, 4]),
       data=st.data())
def test_single_loss_surfaces_a_nack_given_late_successor(n_paths, data):
    """Theorem 2, with its true precondition.

    §3.4 can only compensate when a same-path successor of the dropped
    PSN traverses the ToR *after* the blocked NACK (hypothesis found the
    counter-example where the only successor raced ahead — that case is
    what the RTO fallback exists for).  Appending a tail of N+1 fresh
    PSNs guarantees such a successor, after which recovery must be
    NACK-driven: the dropped PSN reaches the sender either as a
    validated RNIC NACK or as a Themis-compensated one.
    """
    n_packets = data.draw(st.integers(2 * n_paths + 2, 40))
    dropped = data.draw(st.integers(0, n_packets - 1))
    order = data.draw(fifo_interleavings(n_packets, n_paths))
    pipe = Pipeline(n_paths)
    for psn in order:
        if psn != dropped:
            pipe.deliver(psn)
    # Late tail: one packet per path, in order, after everything else.
    for psn in range(n_packets, n_packets + n_paths + 1):
        pipe.deliver(psn)
    # Theorem 2: the sender hears about the loss (validated-through or
    # compensated NACK carrying exactly the dropped PSN).
    assert dropped in pipe.sender_nack_epsns()
    # And the receiver is stuck exactly at the dropped PSN.
    assert pipe.receiver.epsn == dropped


@settings(max_examples=200, deadline=None)
@given(n_paths=st.sampled_from([2, 4]),
       data=st.data())
def test_compensated_nacks_name_only_truly_lost_psns(n_paths, data):
    """Safety dual of theorem 2: a compensated NACK is *never* fabricated
    for data that was merely delayed.  With exactly one dropped PSN,
    every Themis-generated NACK must carry exactly that PSN."""
    n_packets = data.draw(st.integers(n_paths + 1, 40))
    dropped = data.draw(st.integers(0, n_packets - 1))
    order = data.draw(fifo_interleavings(n_packets, n_paths))
    pipe = Pipeline(n_paths)
    for psn in order:
        if psn != dropped:
            pipe.deliver(psn)
    for psn in range(n_packets, n_packets + n_paths + 1):
        pipe.deliver(psn)
    fabricated = [p for p in pipe.tor.to_sender
                  if p.ptype is PacketType.NACK and p.themis_generated]
    assert all(p.epsn == dropped for p in fabricated)
