"""Unit tests for ThemisConfig sizing math."""

import pytest

from repro.themis.config import ThemisConfig


class TestQueueEntries:
    def test_bdp_formula(self):
        cfg = ThemisConfig(queue_capacity_factor=1.5)
        # 400 Gbps, 2 us RTT, 1500 B MTU: BDP = 100 KB -> 100 entries
        # (matches the §4 reference computation).
        assert cfg.queue_entries(400e9, 2_000, 1500) == 100

    def test_override_wins(self):
        cfg = ThemisConfig(queue_entries_override=42)
        assert cfg.queue_entries(400e9, 2_000, 1500) == 42

    def test_minimum_floor(self):
        cfg = ThemisConfig()
        assert cfg.queue_entries(1e9, 10, 9000) >= 4

    def test_scales_with_factor(self):
        small = ThemisConfig(queue_capacity_factor=1.2)
        big = ThemisConfig(queue_capacity_factor=2.4)
        assert big.queue_entries(100e9, 4_000, 1500) \
            == 2 * small.queue_entries(100e9, 4_000, 1500)


class TestValidation:
    def test_psn_bits_range(self):
        with pytest.raises(ValueError):
            ThemisConfig(psn_bits=2)
        with pytest.raises(ValueError):
            ThemisConfig(psn_bits=64)

    def test_defaults_match_paper(self):
        cfg = ThemisConfig()
        assert cfg.queue_capacity_factor == 1.5   # Table 1's F
        assert cfg.psn_bits == 8                  # 1-byte entries (§4)
        assert cfg.enable_validation and cfg.enable_compensation


class TestFatTreeIntegration:
    def test_themis_end_to_end_on_fat_tree(self):
        """PathMap-mode Themis carries cross-pod traffic to completion
        and the flow table records the full (k/2)^2 path count."""
        from repro.harness.network import (Network, NetworkConfig,
                                           TopologySpec)
        net = Network(NetworkConfig(
            topology=TopologySpec(kind="fat_tree", fat_tree_k=4,
                                  link_bandwidth_bps=25e9),
            scheme="themis", seed=2))
        net.post_message(0, 15, 300_000)   # cross-pod
        net.post_message(5, 10, 300_000)   # cross-pod
        net.run(until_ns=30_000_000_000)
        assert net.metrics.all_flows_done()
        entries = [e for tor in net.topology.tors
                   for mw in tor.middleware if hasattr(mw, "table")
                   for e in mw.table.entries()]
        assert entries
        assert all(e.n_paths == 4 for e in entries)
        # Non-power-of-two? 4 divides 256, so 1-byte PSNs suffice.
        assert all(e.queue.psn_bits == 8 for e in entries)
