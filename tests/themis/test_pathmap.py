"""Tests for the PathMap construction on a fat-tree (Fig. 3 mechanism)."""

import pytest

from repro.net.packet import FlowKey
from repro.net.topology import fat_tree, leaf_spine
from repro.sim.engine import Simulator
from repro.sim.rng import SimRng
from repro.switch.buffer import SharedBuffer
from repro.switch.ecn import EcnConfig, EcnMarker
from repro.switch.lb import EcmpLB
from repro.switch.switch import Switch
from repro.net.node import Device
from repro.themis.pathmap import (apply_pathmap, build_pathmap,
                                  pathmap_memory_bytes, trace_path)


def build_fat_tree(k=4):
    sim = Simulator()

    def factory(name):
        return Switch(sim, name, lb=EcmpLB(), buffer=SharedBuffer(10**6),
                      ecn_marker=EcnMarker(EcnConfig(), SimRng(0)))

    topo = fat_tree(sim, factory, k=k, link_bandwidth_bps=1e9)
    for nic_id in range(topo.num_nics):
        topo.attach_nic(nic_id, Device(sim, f"nic{nic_id}"))
    topo.build_routes()
    return topo


@pytest.fixture(scope="module")
def ft_topology():
    return build_fat_tree()


class TestTracePath:
    def test_deterministic(self, ft_topology):
        flow = FlowKey(0, 15)
        assert trace_path(ft_topology, flow, 700) \
            == trace_path(ft_topology, flow, 700)

    def test_starts_at_source_edge(self, ft_topology):
        flow = FlowKey(0, 15)
        path = trace_path(ft_topology, flow, 700)
        assert path[0] == ft_topology.nic_tor[0].name

    def test_cross_pod_path_has_five_switches(self, ft_topology):
        # edge -> agg -> core -> agg -> edge
        path = trace_path(ft_topology, FlowKey(0, 15), 700)
        assert len(path) == 5

    def test_missing_route_raises(self, ft_topology):
        with pytest.raises(LookupError):
            trace_path(ft_topology, FlowKey(0, 999), 700)


class TestBuildPathmap:
    def test_covers_all_cross_pod_paths(self, ft_topology):
        flow = FlowKey(0, 15)
        n = ft_topology.path_count(0, 15)
        assert n == 4
        deltas = build_pathmap(ft_topology, flow, 700, n)
        assert len(deltas) == n
        assert deltas[0] == 0
        paths = {trace_path(ft_topology, flow, 700 ^ d) for d in deltas}
        assert len(paths) == n

    def test_residue_class_determinism(self, ft_topology):
        """The end-to-end guarantee Themis-D relies on: equal PSN mod N
        => identical fabric path; different residue => different path."""
        flow = FlowKey(0, 15)
        n = ft_topology.path_count(0, 15)
        deltas = build_pathmap(ft_topology, flow, 700, n)
        paths_by_residue = {}
        for psn in range(32):
            sport = apply_pathmap(deltas, 700, psn)
            paths_by_residue.setdefault(psn % n, set()).add(
                trace_path(ft_topology, flow, sport))
        assert all(len(paths) == 1 for paths in paths_by_residue.values())
        distinct = {next(iter(p)) for p in paths_by_residue.values()}
        assert len(distinct) == n

    def test_same_pod_smaller_pathset(self, ft_topology):
        flow = FlowKey(0, 2)  # same pod, different edge switch
        n = ft_topology.path_count(0, 2)
        assert n == 2
        deltas = build_pathmap(ft_topology, flow, 900, n)
        paths = {trace_path(ft_topology, flow, 900 ^ d) for d in deltas}
        assert len(paths) == 2

    def test_impossible_count_raises(self, ft_topology):
        with pytest.raises(ValueError):
            build_pathmap(ft_topology, FlowKey(0, 15), 700, 99)

    def test_zero_paths_rejected(self, ft_topology):
        with pytest.raises(ValueError):
            build_pathmap(ft_topology, FlowKey(0, 15), 700, 0)

    def test_memory_model(self):
        assert pathmap_memory_bytes(256) == 512


class TestLeafSpinePathmap:
    def test_leaf_spine_paths_reachable_via_sport(self):
        sim = Simulator()

        def factory(name):
            return Switch(sim, name, lb=EcmpLB(),
                          buffer=SharedBuffer(10**6),
                          ecn_marker=EcnMarker(EcnConfig(), SimRng(0)))

        topo = leaf_spine(sim, factory, num_tors=2, num_spines=4,
                          nics_per_tor=1, link_bandwidth_bps=1e9)
        for nic_id in range(2):
            topo.attach_nic(nic_id, Device(sim, f"nic{nic_id}"))
        topo.build_routes()
        deltas = build_pathmap(topo, FlowKey(0, 1), 1234, 4)
        paths = {trace_path(topo, FlowKey(0, 1), 1234 ^ d)
                 for d in deltas}
        assert len(paths) == 4
