"""Tests for the deployed-state memory audit."""

from repro.harness.network import Network, NetworkConfig, TopologySpec
from repro.themis.audit import audit_network
from repro.themis.memory import FLOW_ENTRY_BYTES

TOPO = TopologySpec(kind="leaf_spine", num_tors=2, num_spines=2,
                    nics_per_tor=2, link_bandwidth_bps=25e9)


def loaded_network(scheme="themis", n_flows=2):
    net = Network(NetworkConfig(topology=TOPO, scheme=scheme, seed=1))
    pairs = [(0, 2), (1, 3), (2, 1), (3, 0)][:n_flows]
    for src, dst in pairs:
        net.post_message(src, dst, 100_000)
    net.run(until_ns=10_000_000_000)
    return net


class TestAudit:
    def test_counts_cross_rack_qps(self):
        net = loaded_network(n_flows=2)  # 0->2 and 1->3, one per dst ToR
        audits = {a.switch_name: a for a in audit_network(net)}
        # Each ToR terminates exactly one cross-rack QP.
        assert audits["tor0"].flow_entries + audits["tor1"].flow_entries \
            == 2

    def test_dest_bytes_match_constants(self):
        net = loaded_network(n_flows=1)
        audit = next(a for a in audit_network(net) if a.flow_entries)
        assert audit.dest_bytes \
            == FLOW_ENTRY_BYTES + audit.queue_entry_slots

    def test_source_side_base_cache_priced(self):
        net = loaded_network(n_flows=2)
        total_pathmap = sum(a.pathmap_entries for a in audit_network(net))
        assert total_pathmap == 2  # one base-path word per sprayed flow

    def test_no_themis_no_state(self):
        net = loaded_network(scheme="ecmp")
        assert all(a.total_bytes == 0 for a in audit_network(net))

    def test_intra_rack_flows_cost_nothing(self):
        net = Network(NetworkConfig(topology=TOPO, scheme="themis",
                                    seed=1))
        net.post_message(0, 1, 50_000)  # same rack
        net.run(until_ns=10_000_000_000)
        assert all(a.total_bytes == 0 for a in audit_network(net))

    def test_audit_scales_with_qp_count(self):
        small = sum(a.total_bytes
                    for a in audit_network(loaded_network(n_flows=2)))
        large = sum(a.total_bytes
                    for a in audit_network(loaded_network(n_flows=4)))
        assert large > small
